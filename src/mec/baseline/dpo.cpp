#include "mec/baseline/dpo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mec/common/error.hpp"

namespace mec::baseline {

double dpo_cost(const core::UserParams& u, double rho,
                double edge_delay_value) {
  u.check();
  MEC_EXPECTS(rho >= 0.0 && rho <= 1.0);
  MEC_EXPECTS(edge_delay_value >= 0.0);
  const double lambda = u.arrival_rate * (1.0 - rho);
  if (lambda >= u.service_rate)
    return std::numeric_limits<double>::infinity();
  const double mean_in_system = lambda / (u.service_rate - lambda);
  const double offload_price_per_task =
      u.weight * u.energy_offload + edge_delay_value + u.offload_latency;
  return u.weight * u.energy_local * (1.0 - rho) +
         mean_in_system / u.arrival_rate + offload_price_per_task * rho;
}

double optimal_offload_probability(const core::UserParams& u,
                                   double edge_delay_value) {
  u.check();
  MEC_EXPECTS(edge_delay_value >= 0.0);
  const double k = u.weight * u.energy_offload + edge_delay_value +
                   u.offload_latency;
  const double local_energy_cost = u.weight * u.energy_local;
  if (k <= local_energy_cost) return 1.0;  // offloading dominates outright
  const double s = u.service_rate;
  const double u_star =
      (s - std::sqrt(s / (k - local_energy_cost))) / u.arrival_rate;
  const double u_clamped = std::clamp(u_star, 0.0, 1.0);
  return 1.0 - u_clamped;
}

double grid_search_offload_probability(const core::UserParams& u,
                                       double edge_delay_value, double step) {
  MEC_EXPECTS(step > 0.0 && step < 1.0);
  double best_rho = 1.0;  // rho = 1 always has finite cost
  double best_cost = dpo_cost(u, 1.0, edge_delay_value);
  for (double rho = 0.0; rho < 1.0; rho += step) {
    const double c = dpo_cost(u, rho, edge_delay_value);
    if (c < best_cost) {
      best_cost = c;
      best_rho = rho;
    }
  }
  return best_rho;
}

double dpo_utilization(std::span<const core::UserParams> users,
                       std::span<const double> rhos, double capacity) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(users.size() == rhos.size());
  MEC_EXPECTS(capacity > 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n) {
    MEC_EXPECTS(rhos[n] >= 0.0 && rhos[n] <= 1.0);
    acc += users[n].arrival_rate * rhos[n];
  }
  return acc / (static_cast<double>(users.size()) * capacity);
}

namespace {

/// Best-response utilization at gamma: every user plays rho*(gamma).
double best_response_utilization(std::span<const core::UserParams> users,
                                 const core::EdgeDelay& delay, double capacity,
                                 double gamma, std::vector<double>* rhos_out) {
  const double g = delay(gamma);
  double acc = 0.0;
  if (rhos_out) rhos_out->clear();
  for (const auto& u : users) {
    const double rho = optimal_offload_probability(u, g);
    if (rhos_out) rhos_out->push_back(rho);
    acc += u.arrival_rate * rho;
  }
  return acc / (static_cast<double>(users.size()) * capacity);
}

}  // namespace

DpoEquilibrium solve_dpo_equilibrium(std::span<const core::UserParams> users,
                                     const core::EdgeDelay& delay,
                                     double capacity, double tolerance) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(tolerance > 0.0);

  const double v0 =
      best_response_utilization(users, delay, capacity, 0.0, nullptr);
  MEC_EXPECTS_MSG(v0 < 1.0, "DPO best response at gamma=0 exceeds capacity");

  DpoEquilibrium eq;
  if (v0 == 0.0) {
    eq.gamma_star = 0.0;
  } else {
    double lo = 0.0, hi = 1.0;
    while (hi - lo > tolerance && eq.iterations < 200) {
      const double mid = 0.5 * (lo + hi);
      const double v =
          best_response_utilization(users, delay, capacity, mid, nullptr);
      if (v > mid)
        lo = mid;
      else
        hi = mid;
      ++eq.iterations;
    }
    eq.gamma_star = 0.5 * (lo + hi);
  }

  best_response_utilization(users, delay, capacity, eq.gamma_star, &eq.rhos);
  const double g = delay(eq.gamma_star);
  double cost_acc = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n)
    cost_acc += dpo_cost(users[n], eq.rhos[n], g);
  eq.average_cost = cost_acc / static_cast<double>(users.size());
  return eq;
}

double delay_only_offload_probability(const core::UserParams& u,
                                      double edge_delay_value) {
  u.check();
  MEC_EXPECTS(edge_delay_value >= 0.0);
  const double k = edge_delay_value + u.offload_latency;
  if (k <= 0.0) return 1.0;  // offloading is delay-free: offload everything
  const double s = u.service_rate;
  const double u_star = (s - std::sqrt(s / k)) / u.arrival_rate;
  return 1.0 - std::clamp(u_star, 0.0, 1.0);
}

CommonRhoResult solve_common_rho_dpo(std::span<const core::UserParams> users,
                                     const core::EdgeDelay& delay,
                                     double capacity, double grid_step) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(grid_step > 0.0 && grid_step < 1.0);

  double mean_arrival = 0.0;
  for (const auto& u : users) mean_arrival += u.arrival_rate;
  mean_arrival /= static_cast<double>(users.size());

  CommonRhoResult best;
  best.average_cost = std::numeric_limits<double>::infinity();
  for (double rho = 0.0; rho <= 1.0 + grid_step / 2.0; rho += grid_step) {
    const double r = std::min(rho, 1.0);
    const double gamma = std::min(1.0, r * mean_arrival / capacity);
    const double g = delay(gamma);
    double cost = 0.0;
    for (const auto& u : users) cost += dpo_cost(u, r, g);
    cost /= static_cast<double>(users.size());
    if (cost < best.average_cost) {
      best.rho = r;
      best.gamma = gamma;
      best.average_cost = cost;
    }
  }
  MEC_ENSURES(std::isfinite(best.average_cost));
  return best;
}

}  // namespace mec::baseline

// Distributed Probabilistic Offloading (DPO) — the paper's comparison
// baseline (Section IV-C; cf. refs [22], [23], [25] therein).
//
// Each user offloads every incoming task independently with probability rho,
// leaving an M/M/1 local queue with thinned arrival rate a(1-rho).  The
// per-user cost mirrors Eq. (1):
//
//   h(rho) = w*p_L*(1-rho) + L(rho)/a + (w*p_E + g(gamma) + tau)*rho,
//   L(rho) = a(1-rho) / (s - a(1-rho))        (mean number in system),
//
// defined for a(1-rho) < s and +infinity otherwise.  Substituting u = 1-rho,
// h is strictly convex in u with derivative w*p_L - K + s/(s-au)^2
// (K = w*p_E + g + tau), so the optimum has the closed form
//
//   u* = (s - sqrt(s/(K - w*p_L))) / a        if K > w*p_L  (clamped to [0,1])
//   u* = 0  (rho = 1, offload everything)      if K <= w*p_L.
//
// The induced utilization map gamma -> E[A*rho*(gamma)]/c is non-increasing,
// so the DPO game also has a unique equilibrium, found by bisection.
#pragma once

#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"

namespace mec::baseline {

/// Cost of user `u` offloading with probability `rho` when the edge delay
/// value is g(gamma). Returns +infinity when the local queue is unstable.
/// Requires 0 <= rho <= 1, edge_delay_value >= 0.
double dpo_cost(const core::UserParams& u, double rho,
                double edge_delay_value);

/// Closed-form cost-minimizing offload probability (see header comment).
double optimal_offload_probability(const core::UserParams& u,
                                   double edge_delay_value);

/// Grid-search argmin over rho in [0,1]; test/validation reference.
double grid_search_offload_probability(const core::UserParams& u,
                                       double edge_delay_value, double step);

/// Aggregate edge utilization when user n offloads with probability rhos[n]:
/// (1/N) * sum a_n * rhos[n] / c. Sizes must match; capacity > 0.
double dpo_utilization(std::span<const core::UserParams> users,
                       std::span<const double> rhos, double capacity);

struct DpoEquilibrium {
  double gamma_star = 0.0;
  std::vector<double> rhos;     ///< equilibrium offload probabilities
  double average_cost = 0.0;    ///< population mean of h(rho*) at gamma_star
  int iterations = 0;
};

/// Unique fixed point of the DPO best-response utilization map, by bisection.
/// Requires non-empty users, valid delay, capacity > 0.
DpoEquilibrium solve_dpo_equilibrium(std::span<const core::UserParams> users,
                                     const core::EdgeDelay& delay,
                                     double capacity,
                                     double tolerance = 1e-10);

// --- Weaker probabilistic variants (alternative baselines) ----------------
//
// The paper does not publish its DPO implementation; the two variants below
// bracket plausible readings of the probabilistic-offloading literature it
// cites and are reported alongside the per-user-optimal DPO in the Table-III
// harness (see EXPERIMENTS.md).

/// Delay-only best response: rho minimizing queueing delay + offload delay,
/// ignoring the energy terms (delay-centric designs, e.g. refs [22]/[24]).
/// The *evaluated* cost still uses the full Eq.-(1) objective.
double delay_only_offload_probability(const core::UserParams& u,
                                      double edge_delay_value);

struct CommonRhoResult {
  double rho = 0.0;           ///< the single shared offload probability
  double gamma = 0.0;         ///< induced utilization rho*E[A]/c
  double average_cost = 0.0;  ///< population mean of the full Eq.-(1) cost
};

/// Single-parameter probabilistic policy: one offload probability shared by
/// every user, chosen to minimize the population-average cost, with the edge
/// utilization consistently induced by that probability.  Heterogeneity
/// forces a compromise, so this baseline degrades most at light load.
/// Requires non-empty users, valid delay, capacity > 0, 0 < grid_step < 1.
CommonRhoResult solve_common_rho_dpo(std::span<const core::UserParams> users,
                                     const core::EdgeDelay& delay,
                                     double capacity,
                                     double grid_step = 0.002);

}  // namespace mec::baseline

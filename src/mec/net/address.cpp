#include "mec/net/address.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "mec/common/error.hpp"

namespace mec::net {

Address parse_address(const std::string& spec, bool allow_port_zero) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0)
    throw RuntimeError("worker address \"" + spec +
                       "\" is not of the form host:port");
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      !std::isdigit(static_cast<unsigned char>(port_text.front())))
    throw RuntimeError("worker address \"" + spec +
                       "\" is not of the form host:port");
  char* end = nullptr;
  errno = 0;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  const long port_lo = allow_port_zero ? 0 : 1;
  if (*end != '\0' || errno != 0 || port < port_lo || port > 65535)
    throw RuntimeError("worker address \"" + spec +
                       "\" has an invalid port (expected an integer in [" +
                       std::to_string(port_lo) + ", 65535])");
  return Address{host, static_cast<std::uint16_t>(port)};
}

std::vector<Address> parse_worker_list(const std::string& csv) {
  std::vector<Address> workers;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t comma = csv.find(',', begin);
    if (comma == std::string::npos) comma = csv.size();
    workers.push_back(parse_address(csv.substr(begin, comma - begin)));
    begin = comma + 1;
  }
  check_unique_worker_addresses(workers);
  return workers;
}

void check_unique_worker_addresses(const std::vector<Address>& workers) {
  if (workers.empty())
    throw RuntimeError("the tcp worker list is empty (need at least one "
                       "host:port)");
  for (std::size_t i = 0; i < workers.size(); ++i)
    for (std::size_t j = i + 1; j < workers.size(); ++j)
      if (workers[i] == workers[j])
        throw RuntimeError(
            "tcp worker " + workers[i].str() +
            " is listed twice (assigned to rank " + std::to_string(i) +
            " and rank " + std::to_string(j) +
            "); each rank needs its own daemon");
}

}  // namespace mec::net

#include "mec/net/worker.hpp"

#include <sys/socket.h>

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/net/protocol.hpp"
#include "mec/obs/wire.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/engine.hpp"

namespace mec::net {

namespace pwire = parallel::wire;

namespace {

// Rebuilds the rank's slice and serves the barrier loop until finalize.
//
// Arrays are full-size with only the owned slice populated: LegRunner tags
// barrier views with *global* shard ids and LegContext pointers are indexed
// by global device id, so a compacted layout would corrupt the merge order.
// The shipped RNG words are the coordinator's pre-init snapshots
// (ws.rng_init); re-running init_shard here reproduces the coordinator's
// initial-arrival draws bit for bit, which is what keeps the streamed
// .meclog bytes identical to inproc for any worker placement.
template <bool WithFaults>
void serve_rank(int fd, const wire::WorkerPopulation& pop) {
  sim::SimWorkspace::Impl ws;
  ws.prepare(pop.n_devices);
  std::vector<core::UserParams> users(pop.n_devices);
  for (std::size_t i = 0; i < pop.users.size(); ++i)
    users[pop.device_lo + i] = pop.users[i];
  for (std::size_t i = 0; i < pop.rng_states.size(); ++i)
    ws.rngs[pop.device_lo + i] =
        random::Xoshiro256::from_state(pop.rng_states[i]);

  const bool measuring_from_start = pop.warmup == 0.0;
  ws.shards.resize(pop.shard_count);
  for (std::uint32_t s = pop.shard_lo; s < pop.shard_hi; ++s) {
    parallel::ShardContext& sc = ws.shards[s];
    sc.reset(parallel::shard_bound(pop.n_devices, pop.shard_count, s),
             parallel::shard_bound(pop.n_devices, pop.shard_count, s + 1),
             measuring_from_start);
    sc.cluster_offloads.assign(pop.n_clusters, 0);
    sim::engine::init_shard<WithFaults>(sc, users, pop.n_initial, ws.rngs,
                                        pop.actions);
  }

  const sim::ServiceSampler service = sim::make_service_sampler(pop.service);
  const sim::LatencySampler latency = sim::make_latency_sampler(pop.latency);
  std::vector<double> mirror(pop.n_devices, 0.0);
  const sim::engine::LegContext<sim::TroValueDecide> lc{
      users.data(),  ws.devices.data(),   ws.rngs.data(),  nullptr,
      &service,      &latency,            pop.warmup,      pop.t_end,
      pop.n_devices, pop.n_clusters,      pop.has_fixed_gamma,
      pop.fixed_delay};
  sim::engine::LegRunner<WithFaults, sim::TroValueDecide> runner(
      ws, sim::TroValueDecide{mirror.data()}, lc, pop.shard_lo, pop.shard_hi,
      nullptr, &mirror);

  obs::wire::ByteWriter w(4);
  w.put_u32(pop.rank);
  pwire::write_frame(fd, pwire::kFrameReady, w.take());
  parallel::serve_worker(runner, pop.rank, fd);
}

}  // namespace

WorkerDaemon::WorkerDaemon(const Options& options)
    : options_(options), listen_fd_(listen_on(options.listen)) {
  if (!options_.quiet)
    std::fprintf(stderr,
                 "mec worker: listening on %s:%u (wire schema revision %u)\n",
                 options_.listen.host.c_str(),
                 static_cast<unsigned>(port()),
                 static_cast<unsigned>(wire::kSchemaRevision));
}

std::uint16_t WorkerDaemon::port() const {
  return bound_port(listen_fd_.get());
}

void WorkerDaemon::shutdown() {
  stopping_.store(true);
  // Shutting down a listening socket makes a blocked accept() return with
  // an error, which serve() translates into a clean exit.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
}

void WorkerDaemon::serve_connection(int fd) {
  const long timeout_ms = parallel::resolve_transport_timeout_ms();
  pwire::DecodedFrame frame = pwire::read_frame_deadline(fd, timeout_ms);
  if (frame.kind != pwire::kFrameHello)
    throw RuntimeError("mec worker expected a hello frame, got " +
                       pwire::frame_kind_name(frame.kind));
  const wire::Hello hello = wire::decode_hello(frame.payload);
  if (hello.revision != wire::kSchemaRevision)
    throw RuntimeError(
        "tcp transport schema revision mismatch: this worker speaks "
        "revision " +
        std::to_string(wire::kSchemaRevision) + ", coordinator sent revision " +
        std::to_string(hello.revision) +
        " (rebuild one side so both run the same wire schema)");
  if (hello.ranks == 0 || hello.rank >= hello.ranks)
    throw RuntimeError("tcp hello assigns rank " + std::to_string(hello.rank) +
                       " of " + std::to_string(hello.ranks));
  wire::HelloAck ack;
  ack.rank = hello.rank;
  pwire::write_frame(fd, pwire::kFrameHelloAck, wire::encode_hello_ack(ack));

  frame = pwire::read_frame_deadline(fd, timeout_ms);
  if (frame.kind != pwire::kFramePopulation)
    throw RuntimeError("mec worker expected a population frame, got " +
                       pwire::frame_kind_name(frame.kind));
  const wire::WorkerPopulation pop = wire::decode_population(frame.payload);
  if (pop.rank != hello.rank)
    throw RuntimeError("population frame is for rank " +
                       std::to_string(pop.rank) +
                       " but the hello assigned rank " +
                       std::to_string(hello.rank));
  if (!options_.quiet)
    std::fprintf(stderr,
                 "mec worker: serving rank %u/%u (devices [%u, %u), shards "
                 "[%u, %u) of %u, %s)\n",
                 pop.rank, pop.ranks, pop.device_lo, pop.device_hi,
                 pop.shard_lo, pop.shard_hi, pop.shard_count,
                 pop.with_faults ? "faults on" : "faults off");
  if (pop.with_faults)
    serve_rank<true>(fd, pop);
  else
    serve_rank<false>(fd, pop);
}

int WorkerDaemon::serve() {
  std::size_t completed = 0;
  for (;;) {
    ScopedFd conn;
    try {
      conn = accept_connection(listen_fd_.get());
    } catch (const std::exception&) {
      if (stopping_.load()) return 0;
      throw;
    }
    if (stopping_.load()) return 0;
    try {
      serve_connection(conn.get());
      ++completed;
      if (!options_.quiet)
        std::fprintf(stderr, "mec worker: run %zu complete\n", completed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mec worker: connection failed: %s\n", e.what());
      // Best-effort error frame so the coordinator fails with a named
      // cause instead of a bare connection close; the daemon itself
      // survives to serve the next connection.
      try {
        obs::wire::ByteWriter w;
        const std::string what = e.what();
        w.put_u32(static_cast<std::uint32_t>(what.size()));
        w.put_bytes(what.data(), what.size());
        pwire::write_frame(conn.get(), pwire::kFrameError, w.take());
      } catch (...) {
      }
    }
    if (options_.max_runs != 0 && completed >= options_.max_runs) return 0;
  }
}

}  // namespace mec::net

#include "mec/net/protocol.hpp"

#include <cstddef>
#include <cstdio>
#include <string>

#include "mec/common/error.hpp"
#include "mec/obs/wire.hpp"

namespace mec::net::wire {

using obs::wire::ByteReader;
using obs::wire::ByteWriter;

// The population layout mirrors these in-memory structs field by field;
// the asserts make a drifted struct a build error here instead of a silent
// protocol skew (same convention as the barrier codec in
// parallel/transport.cpp).
static_assert(sizeof(core::UserParams) == 48 &&
                  offsetof(core::UserParams, arrival_rate) == 0 &&
                  offsetof(core::UserParams, service_rate) == 8 &&
                  offsetof(core::UserParams, offload_latency) == 16 &&
                  offsetof(core::UserParams, energy_local) == 24 &&
                  offsetof(core::UserParams, energy_offload) == 32 &&
                  offsetof(core::UserParams, weight) == 40,
              "UserParams layout drifted; update the population codec and "
              "kUserParamsWireSize together");
static_assert(kUserParamsWireSize == 48);
static_assert(sizeof(std::array<std::uint64_t, 4>) == 32,
              "xoshiro256 state is four words");
static_assert(kRngStateWireSize == 32);
static_assert(offsetof(fault::ResolvedAction, time) == 0 &&
                  offsetof(fault::ResolvedAction, kind) == 8 &&
                  offsetof(fault::ResolvedAction, device) == 12 &&
                  offsetof(fault::ResolvedAction, value) == 16 &&
                  offsetof(fault::ResolvedAction, outage_mode) == 24 &&
                  offsetof(fault::ResolvedAction, cluster) == 26 &&
                  offsetof(fault::ResolvedAction, effective) == 28 &&
                  offsetof(fault::ResolvedAction, active_after) == 32,
              "ResolvedAction layout drifted; update the population codec "
              "and kResolvedActionWireSize together");
// 8 (time) + 1 (kind) + 4 (device) + 8 (value) + 1 (outage_mode) +
// 2 (cluster) + 1 (effective) + 4 (active_after): the wire form is packed,
// unlike the padded in-memory struct.
static_assert(kResolvedActionWireSize == 29);

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  ByteWriter w(kHelloWireSize);
  w.put_u32(kHelloMagic);
  w.put_u32(hello.revision);
  w.put_u32(hello.rank);
  w.put_u32(hello.ranks);
  return w.take();
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t magic = r.get_u32();
  if (magic != kHelloMagic) {
    char got[16];
    std::snprintf(got, sizeof got, "%08X", magic);
    throw RuntimeError("tcp handshake magic mismatch (got 0x" +
                       std::string(got) +
                       ", want 0x5443454D \"MECT\") - the peer is not a mec "
                       "transport endpoint");
  }
  Hello hello;
  hello.revision = r.get_u32();
  hello.rank = r.get_u32();
  hello.ranks = r.get_u32();
  if (!r.exhausted())
    throw RuntimeError("tcp hello payload has trailing bytes");
  return hello;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack) {
  ByteWriter w(kHelloAckWireSize);
  w.put_u32(kHelloMagic);
  w.put_u32(ack.revision);
  w.put_u32(ack.rank);
  return w.take();
}

HelloAck decode_hello_ack(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  if (r.get_u32() != kHelloMagic)
    throw RuntimeError("tcp hello ack magic mismatch — the peer is not a "
                       "mec transport endpoint");
  HelloAck ack;
  ack.revision = r.get_u32();
  ack.rank = r.get_u32();
  if (!r.exhausted())
    throw RuntimeError("tcp hello ack payload has trailing bytes");
  return ack;
}

namespace {

void encode_sampler_spec(ByteWriter& w, const sim::SamplerSpec& spec) {
  w.put_u8(static_cast<std::uint8_t>(spec.kind));
  w.put_f64(spec.param);
  w.put_u32(static_cast<std::uint32_t>(spec.data.size()));
  for (const double v : spec.data) w.put_f64(v);
}

sim::SamplerSpec decode_sampler_spec(ByteReader& r) {
  sim::SamplerSpec spec;
  const std::uint8_t kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(sim::SamplerSpec::Kind::kEmpirical))
    throw RuntimeError("population frame has an unknown sampler kind " +
                       std::to_string(kind));
  spec.kind = static_cast<sim::SamplerSpec::Kind>(kind);
  spec.param = r.get_f64();
  const std::uint32_t n = r.get_u32();
  spec.data.resize(n);
  for (double& v : spec.data) v = r.get_f64();
  return spec;
}

}  // namespace

std::vector<std::uint8_t> encode_population(const WorkerPopulation& pop) {
  const std::size_t slice = pop.users.size();
  ByteWriter w(96 + slice * (kUserParamsWireSize + kRngStateWireSize) +
               pop.actions.size() * kResolvedActionWireSize +
               (pop.service.data.size() + pop.latency.data.size()) * 8);
  w.put_u32(pop.rank);
  w.put_u32(pop.ranks);
  w.put_u64(pop.seed);
  w.put_u32(pop.n_devices);
  w.put_u32(pop.n_initial);
  w.put_u32(pop.n_clusters);
  w.put_u32(pop.shard_count);
  w.put_u32(pop.shard_lo);
  w.put_u32(pop.shard_hi);
  w.put_u32(pop.device_lo);
  w.put_u32(pop.device_hi);
  w.put_f64(pop.warmup);
  w.put_f64(pop.t_end);
  w.put_u8(pop.has_fixed_gamma ? 1 : 0);
  w.put_f64(pop.fixed_delay);
  w.put_u8(pop.with_faults ? 1 : 0);
  encode_sampler_spec(w, pop.service);
  encode_sampler_spec(w, pop.latency);
  w.put_u32(static_cast<std::uint32_t>(pop.users.size()));
  for (const core::UserParams& u : pop.users) {
    w.put_f64(u.arrival_rate);
    w.put_f64(u.service_rate);
    w.put_f64(u.offload_latency);
    w.put_f64(u.energy_local);
    w.put_f64(u.energy_offload);
    w.put_f64(u.weight);
  }
  w.put_u32(static_cast<std::uint32_t>(pop.rng_states.size()));
  for (const std::array<std::uint64_t, 4>& s : pop.rng_states)
    for (const std::uint64_t word : s) w.put_u64(word);
  w.put_u32(static_cast<std::uint32_t>(pop.actions.size()));
  for (const fault::ResolvedAction& a : pop.actions) {
    w.put_f64(a.time);
    w.put_u8(static_cast<std::uint8_t>(a.kind));
    w.put_u32(a.device);
    w.put_f64(a.value);
    w.put_u8(static_cast<std::uint8_t>(a.outage_mode));
    w.put_u16(a.cluster);
    w.put_u8(a.effective ? 1 : 0);
    w.put_u32(a.active_after);
  }
  return w.take();
}

WorkerPopulation decode_population(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WorkerPopulation pop;
  pop.rank = r.get_u32();
  pop.ranks = r.get_u32();
  pop.seed = r.get_u64();
  pop.n_devices = r.get_u32();
  pop.n_initial = r.get_u32();
  pop.n_clusters = r.get_u32();
  pop.shard_count = r.get_u32();
  pop.shard_lo = r.get_u32();
  pop.shard_hi = r.get_u32();
  pop.device_lo = r.get_u32();
  pop.device_hi = r.get_u32();
  pop.warmup = r.get_f64();
  pop.t_end = r.get_f64();
  pop.has_fixed_gamma = r.get_u8() != 0;
  pop.fixed_delay = r.get_f64();
  pop.with_faults = r.get_u8() != 0;
  pop.service = decode_sampler_spec(r);
  pop.latency = decode_sampler_spec(r);
  const std::uint32_t n_users = r.get_u32();
  pop.users.resize(n_users);
  for (core::UserParams& u : pop.users) {
    u.arrival_rate = r.get_f64();
    u.service_rate = r.get_f64();
    u.offload_latency = r.get_f64();
    u.energy_local = r.get_f64();
    u.energy_offload = r.get_f64();
    u.weight = r.get_f64();
  }
  const std::uint32_t n_rngs = r.get_u32();
  pop.rng_states.resize(n_rngs);
  for (std::array<std::uint64_t, 4>& s : pop.rng_states)
    for (std::uint64_t& word : s) word = r.get_u64();
  const std::uint32_t n_actions = r.get_u32();
  pop.actions.resize(n_actions);
  for (fault::ResolvedAction& a : pop.actions) {
    a.time = r.get_f64();
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(fault::FaultKind::kUserDeparture))
      throw RuntimeError("population frame has an unknown fault kind " +
                         std::to_string(kind));
    a.kind = static_cast<fault::FaultKind>(kind);
    a.device = r.get_u32();
    a.value = r.get_f64();
    const std::uint8_t mode = r.get_u8();
    if (mode > static_cast<std::uint8_t>(fault::OutageMode::kPenalty))
      throw RuntimeError("population frame has an unknown outage mode " +
                         std::to_string(mode));
    a.outage_mode = static_cast<fault::OutageMode>(mode);
    a.cluster = r.get_u16();
    a.effective = r.get_u8() != 0;
    a.active_after = r.get_u32();
  }
  if (!r.exhausted())
    throw RuntimeError("population payload has trailing bytes");

  if (pop.ranks == 0 || pop.rank >= pop.ranks)
    throw RuntimeError("population frame assigns rank " +
                       std::to_string(pop.rank) + " of " +
                       std::to_string(pop.ranks));
  if (pop.n_devices == 0 || pop.n_initial > pop.n_devices ||
      pop.n_clusters == 0)
    throw RuntimeError("population frame has an empty or inconsistent "
                       "population");
  if (pop.shard_count == 0 || pop.shard_lo >= pop.shard_hi ||
      pop.shard_hi > pop.shard_count)
    throw RuntimeError("population frame has an invalid shard slice [" +
                       std::to_string(pop.shard_lo) + ", " +
                       std::to_string(pop.shard_hi) + ") of " +
                       std::to_string(pop.shard_count));
  if (pop.device_lo >= pop.device_hi || pop.device_hi > pop.n_devices)
    throw RuntimeError("population frame has an invalid device slice");
  const std::size_t slice = pop.device_hi - pop.device_lo;
  if (pop.users.size() != slice || pop.rng_states.size() != slice)
    throw RuntimeError("population frame slice arrays do not match the "
                       "device range (" +
                       std::to_string(pop.users.size()) + " users, " +
                       std::to_string(pop.rng_states.size()) + " rng states, "
                       "expected " +
                       std::to_string(slice) + ")");
  if (!pop.with_faults && !pop.actions.empty())
    throw RuntimeError("population frame carries fault actions but "
                       "with_faults is off");
  return pop;
}

}  // namespace mec::net::wire

// Worker-address parsing for the TCP transport.
//
// Addresses are "host:port" strings (IPv4 literals or resolvable hostnames;
// port 1-65535, or 0 where the caller explicitly allows an ephemeral bind).
// Parsing is eager and loud: the CLI's --workers list and the engine's
// worker_addresses option both go through here, so a typo'd port or a
// duplicated worker (two ranks on one daemon would deadlock the barrier
// protocol) fails before any socket is opened, naming the offending entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mec::net {

/// One worker endpoint.  `str()` renders the canonical "host:port" form
/// used by every diagnostic that names a peer.
struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }

  bool operator==(const Address&) const = default;
};

/// Parses "host:port".  Throws mec::RuntimeError naming `spec` when the
/// colon is missing, the host is empty, or the port is not an integer in
/// [1, 65535] ([0, 65535] with `allow_port_zero`, for ephemeral binds).
Address parse_address(const std::string& spec, bool allow_port_zero = false);

/// Parses a comma-separated worker list ("h1:p1,h2:p2,..."), one rank per
/// entry in rank order.  Throws on an empty list, a malformed entry, or a
/// duplicated address — the error names both ranks assigned to it.
std::vector<Address> parse_worker_list(const std::string& csv);

/// Rejects duplicate addresses in an already-parsed rank list, naming both
/// ranks (the engine re-checks here because worker_addresses can be built
/// programmatically, bypassing parse_worker_list).
void check_unique_worker_addresses(const std::vector<Address>& workers);

}  // namespace mec::net

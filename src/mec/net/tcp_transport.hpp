// Coordinator side of the multi-host backend: one rank per `mec worker`
// daemon, reached over TCP.
//
// Same wire dialect and barrier protocol as parallel::ProcessTransport —
// the coordinator loop cannot tell them apart — plus what a machine
// boundary adds: connect retry with bounded exponential backoff, the
// versioned handshake, and explicit population distribution (protocol.hpp).
// Every read is bounded by the MEC_TRANSPORT_TIMEOUT_MS poll deadline, and
// a worker that dies or stalls raises mec::RuntimeError naming the rank,
// the peer address, the last completed barrier, and the pending frame kind
// — never a hang.
//
// Determinism contract #8 extends unchanged: ranks own ascending contiguous
// shard slices and payloads merge in rank order, so any worker placement
// streams the exact inproc bytes (pinned by tests/test_net.cpp and the CI
// cmp step).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mec/net/address.hpp"
#include "mec/net/socket.hpp"
#include "mec/parallel/transport.hpp"

namespace mec::net {

class TcpTransport final : public parallel::Transport {
 public:
  struct Config {
    /// One rank per address, rank order; duplicate-free (checked, the
    /// error names both ranks) and no longer than shard_count.
    std::vector<Address> workers;
    std::size_t shard_count = 1;
    std::uint32_t n_devices = 0;
    /// Total connect budget per worker; -1 uses the read deadline
    /// (MEC_TRANSPORT_TIMEOUT_MS or its default).
    long connect_timeout_ms = -1;
  };

  /// Connects and handshakes every rank, ships populations[r] to rank r,
  /// waits for every rank's ready frame, then pushes `initial_thresholds`.
  /// Throws mec::RuntimeError (naming rank + peer address) on any refusal:
  /// unreachable daemon, schema-revision mismatch (both revisions named),
  /// wrong rank echo, or a worker-side build failure.
  TcpTransport(const Config& config,
               std::span<const std::vector<std::uint8_t>> populations,
               std::span<const double> initial_thresholds);
  ~TcpTransport() override = default;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::size_t ranks() const override { return peers_.size(); }
  std::span<const parallel::ShardBarrierView> advance(
      const parallel::BarrierRequest& request) override;
  double total_q() const override { return total_q_; }
  double total_q2() const override { return total_q2_; }
  bool wants_thresholds() const override { return true; }
  void broadcast_thresholds(std::span<const double> values) override;
  void finalize(bool flipped) override;
  parallel::DeviceTotals device_totals(std::uint32_t device) const override;
  bool metered() const override { return true; }
  parallel::RankStats rank_stats(std::size_t rank) const override;

 private:
  struct Peer {
    ScopedFd fd;
    Address address;
    std::size_t shard_lo = 0;
    std::size_t shard_hi = 0;
    parallel::wire::RankBarrierData data;
    parallel::RankStats stats;
    std::uint64_t barriers_done = 0;
    double last_barrier_time = 0.0;
    /// Frame kind currently awaited from this peer (0 = none); named in
    /// the crash/stall diagnostic.
    std::uint32_t pending = 0;
  };

  void send_frame(Peer& peer, std::uint32_t kind,
                  std::span<const std::uint8_t> payload);
  /// Deadline-bounded read that unwraps kFrameError and rejects any kind
  /// other than `expected` via fail_peer.
  parallel::wire::DecodedFrame read_frame(Peer& peer, double barrier_time,
                                          std::uint32_t expected);
  [[noreturn]] void fail_peer(Peer& peer, double barrier_time,
                              const std::string& what);

  Config config_;
  std::vector<Peer> peers_;
  std::vector<parallel::ShardBarrierView> views_;
  std::vector<parallel::DeviceTotals> totals_;
  double total_q_ = 0.0;
  double total_q2_ = 0.0;
  long timeout_ms_ = 300000;
};

}  // namespace mec::net

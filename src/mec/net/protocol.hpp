// TCP-transport wire protocol: the versioned handshake and the population
// frame.
//
// Both payloads ride the PR 9 transport envelope (u32 kind | u32 len |
// payload | u32 CRC32(payload), little-endian — parallel::wire) with the
// kFrameHello / kFrameHelloAck / kFramePopulation / kFrameReady kinds.
//
// Handshake (per connection, coordinator -> worker first):
//   hello      magic "MECT" | schema revision | rank | ranks
//   hello ack  magic | worker's schema revision | rank echo
// A revision mismatch is rejected by whichever side is newer with an error
// naming both revisions (same shape as the .meclog v1/v2 reader); garbage
// bytes on connect die in the envelope decode (oversize length or CRC) and
// the daemon survives to serve the next connection.
//
// The population frame carries everything a remote rank needs to rebuild
// its slice of the run: scenario scalars, sampler specs, the owned slice of
// user parameters and per-device RNG streams (the *pre-init* snapshots —
// the worker re-runs init_shard and reproduces the coordinator's draws
// bit-for-bit), and the full resolved fault plan (outage/capacity state is
// global; see apply_shard_fault).  Layouts are pinned with static_asserts
// in protocol.cpp and golden bytes in tests/test_wire_format.cpp, mirroring
// the barrier-payload conventions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/user.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::net::wire {

/// Handshake magic: the bytes "MECT" on the wire (u32 0x5443454D, LE).
inline constexpr std::uint32_t kHelloMagic = 0x5443454D;

/// Wire schema revision.  Bump whenever any transport payload layout
/// changes; the handshake rejects mismatched peers by name.
inline constexpr std::uint32_t kSchemaRevision = 1;

/// Wire sizes pinned by the golden-vector tests.
inline constexpr std::size_t kHelloWireSize = 16;
inline constexpr std::size_t kHelloAckWireSize = 12;
inline constexpr std::size_t kUserParamsWireSize = 48;
inline constexpr std::size_t kRngStateWireSize = 32;
inline constexpr std::size_t kResolvedActionWireSize = 29;

struct Hello {
  std::uint32_t revision = kSchemaRevision;
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
};

struct HelloAck {
  std::uint32_t revision = kSchemaRevision;
  std::uint32_t rank = 0;
};

std::vector<std::uint8_t> encode_hello(const Hello& hello);
/// Throws mec::RuntimeError on a bad magic or a truncated payload; a
/// revision mismatch is NOT rejected here (the caller needs the value to
/// name both revisions in its error).
Hello decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack);
HelloAck decode_hello_ack(std::span<const std::uint8_t> payload);

/// One rank's scenario slice, as shipped in the population frame.
struct WorkerPopulation {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  std::uint64_t seed = 0;
  /// Full population incl. churn users; n_initial is the pre-churn count.
  std::uint32_t n_devices = 0;
  std::uint32_t n_initial = 0;
  std::uint32_t n_clusters = 0;
  /// Global shard count K; this rank owns shards [shard_lo, shard_hi) and
  /// devices [device_lo, device_hi).
  std::uint32_t shard_count = 0;
  std::uint32_t shard_lo = 0;
  std::uint32_t shard_hi = 0;
  std::uint32_t device_lo = 0;
  std::uint32_t device_hi = 0;
  double warmup = 0.0;
  double t_end = 0.0;
  bool has_fixed_gamma = false;
  /// g(fixed_gamma), precomputed — the worker never needs the EdgeDelay.
  double fixed_delay = 0.0;
  bool with_faults = false;
  sim::SamplerSpec service;
  sim::SamplerSpec latency;
  /// Owned slice only (device_hi - device_lo entries each): per-worker
  /// network stays O(slice) even though the worker materializes full-size
  /// arrays for global indexing.
  std::vector<core::UserParams> users;
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  /// Full resolved schedule — every rank replays the global outage/capacity
  /// timeline (apply_shard_fault touches only owned devices).
  std::vector<fault::ResolvedAction> actions;
};

std::vector<std::uint8_t> encode_population(const WorkerPopulation& pop);
/// Validates every range (rank < ranks, shard/device bounds, enum values,
/// slice sizes, trailing bytes); throws mec::RuntimeError on any violation.
WorkerPopulation decode_population(std::span<const std::uint8_t> payload);

}  // namespace mec::net::wire

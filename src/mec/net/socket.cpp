#include "mec/net/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "mec/common/error.hpp"

namespace mec::net {

void ScopedFd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

struct ResolvedAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_INET;
};

ResolvedAddr resolve(const Address& address, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_INET;  // the wire dialect tests pin v4 loopback
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string port = std::to_string(address.port);
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(address.host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0)
    throw RuntimeError("cannot resolve worker address " + address.str() +
                       ": " + ::gai_strerror(rc));
  ResolvedAddr out;
  out.family = result->ai_family;
  out.len = static_cast<socklen_t>(result->ai_addrlen);
  std::memcpy(&out.storage, result->ai_addr, result->ai_addrlen);
  ::freeaddrinfo(result);
  return out;
}

/// One non-blocking connect attempt bounded by `budget_ms`.  Returns the
/// connected fd, or an invalid ScopedFd on a retryable failure (refused,
/// unreachable, timed out); throws only on setup errors that retrying
/// cannot fix.
ScopedFd try_connect(const ResolvedAddr& addr, long budget_ms, int& err) {
  ScopedFd fd(::socket(addr.family, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid())
    throw RuntimeError(std::string("tcp socket creation failed: ") +
                       std::strerror(errno));
  const int rc = ::connect(
      fd.get(), reinterpret_cast<const sockaddr*>(&addr.storage), addr.len);
  if (rc != 0 && errno != EINPROGRESS) {
    err = errno;
    return {};
  }
  if (rc != 0) {
    struct pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::max(budget_ms, 1L)));
    if (ready <= 0) {
      err = ready == 0 ? ETIMEDOUT : errno;
      return {};
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      err = so_error;
      return {};
    }
  }
  // Back to blocking: the transport's reads are deadline-bounded by poll,
  // and writes may block on the kernel buffer like the socketpair path.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
  set_nodelay(fd.get());
  return fd;
}

}  // namespace

ScopedFd connect_with_backoff(const Address& address, long timeout_ms) {
  const ResolvedAddr addr = resolve(address, /*passive=*/false);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  long backoff_ms = 50;
  int last_err = ECONNREFUSED;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const long remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    if (remaining <= 0) break;
    ScopedFd fd = try_connect(addr, std::min(remaining, 2000L), last_err);
    if (fd.valid()) return fd;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(backoff_ms, remaining)));
    backoff_ms = std::min(backoff_ms * 2, 1600L);
  }
  throw RuntimeError("tcp transport could not connect to worker at " +
                     address.str() + " within " + std::to_string(timeout_ms) +
                     " ms (last error: " + std::strerror(last_err) + ")");
}

ScopedFd listen_on(const Address& address, int backlog) {
  const ResolvedAddr addr = resolve(address, /*passive=*/true);
  ScopedFd fd(::socket(addr.family, SOCK_STREAM, 0));
  if (!fd.valid())
    throw RuntimeError(std::string("tcp socket creation failed: ") +
                       std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr.storage),
             addr.len) != 0)
    throw RuntimeError("mec worker cannot bind " + address.str() + ": " +
                       std::strerror(errno));
  if (::listen(fd.get(), backlog) != 0)
    throw RuntimeError("mec worker cannot listen on " + address.str() + ": " +
                       std::strerror(errno));
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &len) != 0)
    throw RuntimeError(std::string("getsockname failed: ") +
                       std::strerror(errno));
  if (storage.ss_family == AF_INET)
    return ntohs(reinterpret_cast<const sockaddr_in&>(storage).sin_port);
  return ntohs(reinterpret_cast<const sockaddr_in6&>(storage).sin6_port);
}

ScopedFd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return ScopedFd(fd);
    }
    if (errno == EINTR) continue;
    throw RuntimeError(std::string("mec worker accept failed: ") +
                       std::strerror(errno));
  }
}

}  // namespace mec::net

// The `mec worker` daemon: one TCP rank endpoint.
//
// A daemon binds HOST:PORT (port 0 = ephemeral, for tests), accepts one
// coordinator connection at a time, and serves one full run per connection:
// versioned handshake, population decode, worker-side rebuild of the rank's
// scenario slice, then the ordinary serve_worker barrier loop — the same
// loop a forked ProcessTransport child runs, over a TCP fd instead of a
// socketpair.  After finalize (or any error) it goes back to accepting, so
// one daemon can serve many runs back to back.
//
// Handshake reads are deadline-bounded (MEC_TRANSPORT_TIMEOUT_MS), so a
// port-scanning or garbage client cannot wedge the daemon: a bad magic,
// oversized length, or CRC mismatch kills that connection with a best-effort
// error frame and the daemon survives to serve the next one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "mec/net/address.hpp"
#include "mec/net/socket.hpp"

namespace mec::net {

class WorkerDaemon {
 public:
  struct Options {
    Address listen;          ///< port 0 binds an ephemeral port
    std::size_t max_runs = 0;  ///< serve() returns after this many (0 = forever)
    bool quiet = false;        ///< suppress the per-run log lines
  };

  /// Binds and listens immediately (throws mec::RuntimeError on failure) so
  /// the caller can read port() — and a test can bind before forking —
  /// before any coordinator connects.
  explicit WorkerDaemon(const Options& options);

  /// The resolved listen port (meaningful after an ephemeral bind).
  std::uint16_t port() const;

  /// Accept loop: serves one run per connection until max_runs complete
  /// runs (failed connections do not count) or shutdown().  Returns 0 on a
  /// clean exit; connection-level errors are logged and answered with an
  /// error frame, never fatal to the daemon.
  int serve();

  /// Wakes a blocked serve() and makes it return (callable from another
  /// thread; used by the in-process test harness).
  void shutdown();

 private:
  void serve_connection(int fd);

  Options options_;
  ScopedFd listen_fd_;
  std::atomic<bool> stopping_{false};
};

}  // namespace mec::net

#include "mec/net/tcp_transport.hpp"

#include <chrono>
#include <cstring>
#include <string>

#include "mec/common/error.hpp"
#include "mec/net/protocol.hpp"
#include "mec/obs/wire.hpp"

namespace mec::net {

namespace pwire = parallel::wire;

TcpTransport::TcpTransport(
    const Config& config,
    std::span<const std::vector<std::uint8_t>> populations,
    std::span<const double> initial_thresholds)
    : config_(config) {
  MEC_EXPECTS_MSG(!config.workers.empty() &&
                      config.workers.size() <= config.shard_count,
                  "tcp transport needs 1..shard_count workers");
  MEC_EXPECTS(populations.size() == config.workers.size());
  check_unique_worker_addresses(config.workers);
  timeout_ms_ = parallel::resolve_transport_timeout_ms();
  const long connect_budget =
      config.connect_timeout_ms > 0 ? config.connect_timeout_ms : timeout_ms_;

  const std::size_t workers = config.workers.size();
  peers_.resize(workers);
  for (std::size_t r = 0; r < workers; ++r) {
    Peer& peer = peers_[r];
    peer.address = config.workers[r];
    peer.shard_lo = config.shard_count * r / workers;
    peer.shard_hi = config.shard_count * (r + 1) / workers;
  }

  // Connect + handshake + population, rank by rank; then one ready-barrier
  // pass so every worker builds its slice before the run starts.
  for (std::size_t r = 0; r < workers; ++r) {
    Peer& peer = peers_[r];
    peer.fd = connect_with_backoff(peer.address, connect_budget);
    wire::Hello hello;
    hello.rank = static_cast<std::uint32_t>(r);
    hello.ranks = static_cast<std::uint32_t>(workers);
    send_frame(peer, pwire::kFrameHello, wire::encode_hello(hello));
    const double t_handshake = -1.0;  // no barrier yet
    pwire::DecodedFrame frame =
        read_frame(peer, t_handshake, pwire::kFrameHelloAck);
    const wire::HelloAck ack = wire::decode_hello_ack(frame.payload);
    if (ack.revision != wire::kSchemaRevision)
      throw RuntimeError(
          "tcp transport schema revision mismatch: this coordinator speaks "
          "revision " +
          std::to_string(wire::kSchemaRevision) + ", worker at " +
          peer.address.str() + " answered revision " +
          std::to_string(ack.revision) +
          " (rebuild one side so both run the same wire schema)");
    if (ack.rank != hello.rank)
      fail_peer(peer, t_handshake,
                "acknowledged rank " + std::to_string(ack.rank) +
                    " instead of its assignment");
    send_frame(peer, pwire::kFramePopulation, populations[r]);
  }
  for (Peer& peer : peers_) {
    const double t_build = -1.0;
    pwire::DecodedFrame frame = read_frame(peer, t_build, pwire::kFrameReady);
    obs::wire::ByteReader r(frame.payload);
    const std::uint32_t echoed = r.get_u32();
    const std::size_t index = static_cast<std::size_t>(&peer - peers_.data());
    if (echoed != index)
      fail_peer(peer, t_build,
                "reported ready as rank " + std::to_string(echoed));
  }
  broadcast_thresholds(initial_thresholds);
}

void TcpTransport::send_frame(Peer& peer, std::uint32_t kind,
                              std::span<const std::uint8_t> payload) {
  pwire::write_frame(peer.fd.get(), kind, payload);
  ++peer.stats.frames_sent;
}

void TcpTransport::fail_peer(Peer& peer, double barrier_time,
                             const std::string& what) {
  const std::size_t index = static_cast<std::size_t>(&peer - peers_.data());
  std::string msg = "tcp transport worker rank " + std::to_string(index) +
                    " at " + peer.address.str() + " " + what +
                    " before the barrier at t=" +
                    std::to_string(barrier_time) +
                    "; last completed barrier #" +
                    std::to_string(peer.barriers_done) + " (t=" +
                    std::to_string(peer.last_barrier_time) + ")";
  if (peer.pending != 0)
    msg += "; pending frame: " + pwire::frame_kind_name(peer.pending);
  throw RuntimeError(msg);
}

pwire::DecodedFrame TcpTransport::read_frame(Peer& peer, double barrier_time,
                                             std::uint32_t expected) {
  peer.pending = expected;
  pwire::DecodedFrame frame;
  try {
    frame = pwire::read_frame_deadline(peer.fd.get(), timeout_ms_);
  } catch (const pwire::PeerError& e) {
    if (e.kind() == pwire::PeerError::Kind::kTimeout)
      fail_peer(peer, barrier_time,
                "stopped responding (no payload within " +
                    std::to_string(timeout_ms_) + " ms)");
    fail_peer(peer, barrier_time, "closed the connection");
  }
  ++peer.stats.frames_received;
  peer.stats.payload_bytes += frame.payload.size();
  if (frame.kind == pwire::kFrameError) {
    obs::wire::ByteReader r(frame.payload);
    const std::uint32_t n = r.get_u32();
    fail_peer(peer, barrier_time, "failed: " + r.get_string(n));
  }
  if (frame.kind != expected)
    fail_peer(peer, barrier_time,
              "sent " + pwire::frame_kind_name(frame.kind) + " instead of " +
                  pwire::frame_kind_name(expected));
  peer.pending = 0;
  return frame;
}

std::span<const parallel::ShardBarrierView> TcpTransport::advance(
    const parallel::BarrierRequest& request) {
  const std::vector<std::uint8_t> payload =
      pwire::encode_barrier_request(request);
  for (Peer& peer : peers_)
    send_frame(peer, pwire::kFrameAdvance, payload);
  for (Peer& peer : peers_) {
    const auto t0 = std::chrono::steady_clock::now();
    pwire::DecodedFrame frame =
        read_frame(peer, request.limit, pwire::kFrameBarrier);
    peer.stats.barrier_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    peer.data = pwire::decode_barrier_payload(frame.payload);
    ++peer.barriers_done;
    peer.last_barrier_time = request.limit;
  }
  views_.clear();
  total_q_ = 0.0;
  total_q2_ = 0.0;
  for (Peer& peer : peers_) {
    for (const parallel::ShardBarrierView& v : peer.data.views())
      views_.push_back(v);
    if (peer.data.has_q) {
      total_q_ += peer.data.total_q;
      total_q2_ += peer.data.total_q2;
    }
  }
  return views_;
}

void TcpTransport::broadcast_thresholds(std::span<const double> values) {
  const std::vector<std::uint8_t> payload = pwire::encode_thresholds(values);
  for (Peer& peer : peers_)
    send_frame(peer, pwire::kFrameThresholds, payload);
}

void TcpTransport::finalize(bool flipped) {
  obs::wire::ByteWriter w(1);
  w.put_u8(flipped ? 1 : 0);
  const std::vector<std::uint8_t> payload = w.take();
  for (Peer& peer : peers_)
    send_frame(peer, pwire::kFrameFinalize, payload);
  totals_.assign(config_.n_devices, parallel::DeviceTotals{});
  const double t_mark = -1.0;  // finalize has no barrier time
  for (Peer& peer : peers_) {
    pwire::DecodedFrame frame = read_frame(peer, t_mark, pwire::kFrameFinal);
    pwire::FinalTotals fin = pwire::decode_device_totals(frame.payload);
    if (fin.device_hi > config_.n_devices)
      throw RuntimeError("transport final totals exceed the device range");
    for (std::uint32_t d = fin.device_lo; d < fin.device_hi; ++d)
      totals_[d] = fin.totals[d - fin.device_lo];
    peer.fd.reset();  // run complete; the daemon goes back to accepting
  }
}

parallel::DeviceTotals TcpTransport::device_totals(
    std::uint32_t device) const {
  MEC_EXPECTS(device < totals_.size());
  return totals_[device];
}

parallel::RankStats TcpTransport::rank_stats(std::size_t rank) const {
  MEC_EXPECTS(rank < peers_.size());
  return peers_[rank].stats;
}

}  // namespace mec::net

// Thin TCP socket helpers for the net transport: resolve + connect with
// bounded exponential backoff (daemons may still be starting when the
// coordinator launches), listen/accept for the worker daemon, and a
// move-only RAII fd so every error path closes its socket.
//
// All sockets get TCP_NODELAY — barrier frames are small and
// latency-sensitive, and the transport never streams partial frames that
// would benefit from coalescing.
#pragma once

#include <cstdint>
#include <utility>

#include "mec/net/address.hpp"

namespace mec::net {

/// Move-only owning file descriptor.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to `address` within `timeout_ms` total, retrying refused or
/// timed-out attempts with exponential backoff (50 ms doubling to 1.6 s) so
/// a coordinator started moments before its daemons still comes up.  Each
/// attempt is a non-blocking connect bounded by the remaining budget.
/// Throws mec::RuntimeError naming the address, the timeout, and the last
/// OS error once the budget is spent.
ScopedFd connect_with_backoff(const Address& address, long timeout_ms);

/// Binds and listens on `address` (port 0 binds an ephemeral port; recover
/// it with bound_port).  Sets SO_REUSEADDR so restarted daemons do not trip
/// over TIME_WAIT.  Throws mec::RuntimeError naming the address on failure.
ScopedFd listen_on(const Address& address, int backlog = 8);

/// The local port a bound socket ended up on (resolves ephemeral binds).
std::uint16_t bound_port(int fd);

/// Blocking accept (EINTR-retrying); returns the connected fd with
/// TCP_NODELAY applied.  Throws mec::RuntimeError on accept failure —
/// including EBADF/EINVAL after another thread shut the listener down,
/// which WorkerDaemon::serve treats as a clean shutdown.
ScopedFd accept_connection(int listen_fd);

}  // namespace mec::net

// Best-effort cache prefetch hint; a no-op on compilers without
// __builtin_prefetch.  Used by the DES hot path to overlap the next
// event's state loads with the current event's processing.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define MEC_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define MEC_PREFETCH(addr) ((void)0)
#endif

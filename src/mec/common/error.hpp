// Contract checking and error reporting for the mec library.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12), preconditions and
// postconditions are checked with MEC_EXPECTS / MEC_ENSURES.  Violations throw
// mec::ContractViolation (a std::logic_error): a contract violation is a
// programming error in the caller, not an environmental failure, but throwing
// keeps the library testable and usable from long-running harnesses.
//
// Environmental / numerical failures (non-convergence, invalid user-supplied
// configuration files) throw mec::RuntimeError instead.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mec {

/// Thrown when a precondition/postcondition/invariant check fails.
class ContractViolation final : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for recoverable runtime failures (bad config, non-convergence, ...).
class RuntimeError final : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, int line,
                                   std::string_view message);
}  // namespace detail

}  // namespace mec

/// Precondition check: throws mec::ContractViolation when `cond` is false.
#define MEC_EXPECTS(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::mec::detail::contract_failure("precondition", #cond, __FILE__,        \
                                      __LINE__, "");                          \
  } while (false)

/// Precondition check with an explanatory message.
#define MEC_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::mec::detail::contract_failure("precondition", #cond, __FILE__,        \
                                      __LINE__, (msg));                       \
  } while (false)

/// Postcondition check: throws mec::ContractViolation when `cond` is false.
#define MEC_ENSURES(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::mec::detail::contract_failure("postcondition", #cond, __FILE__,       \
                                      __LINE__, "");                          \
  } while (false)

/// Internal invariant check.
#define MEC_ASSERT(cond)                                                      \
  do {                                                                        \
    if (!(cond))                                                              \
      ::mec::detail::contract_failure("invariant", #cond, __FILE__, __LINE__, \
                                      "");                                    \
  } while (false)

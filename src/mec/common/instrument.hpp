// Compile-time gate for engine instrumentation.
//
// The `MEC_OBS_COUNTERS` CMake option (default ON) defines the macro of the
// same name; hot-path counter increments are wrapped in MEC_OBS_COUNT so a
// build with the option OFF compiles them to nothing at all — the
// des_scaling throughput floor is measured with the counters compiled in
// but *disabled at runtime*, and must be unaffected either way.
#pragma once

#ifdef MEC_OBS_COUNTERS
#define MEC_OBS_COUNT(statement) \
  do {                           \
    statement;                   \
  } while (false)
#else
#define MEC_OBS_COUNT(statement) \
  do {                           \
  } while (false)
#endif

namespace mec {

/// True when the build compiled engine counters in (MEC_OBS_COUNTERS=ON).
constexpr bool obs_counters_compiled() noexcept {
#ifdef MEC_OBS_COUNTERS
  return true;
#else
  return false;
#endif
}

}  // namespace mec

#include "mec/common/error.hpp"

#include <sstream>

namespace mec::detail {

void contract_failure(std::string_view kind, std::string_view expr,
                      std::string_view file, int line,
                      std::string_view message) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}

}  // namespace mec::detail

// Deterministic, splittable pseudo-random number generation.
//
// The library uses its own xoshiro256++ engine rather than std::mt19937 so that
// (a) streams are cheap to fork per simulated device (each device gets an
// independent stream, making event order changes not perturb other devices'
// randomness), and (b) results are bit-reproducible across standard libraries
// (std::uniform_real_distribution is implementation-defined; ours is not).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mec::random {

/// xoshiro256++ engine (Blackman & Vigna, 2019), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by iterating splitmix64 from `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to fork independent
  /// sub-streams for parallel/simulated entities.
  void long_jump() noexcept;

  /// Returns a forked engine 2^128 steps ahead, advancing *this as well so a
  /// sequence of split() calls yields pairwise-independent streams.
  Xoshiro256 split() noexcept;

  /// The raw 256-bit engine state, for serialization.  The TCP transport
  /// ships each device's pre-run stream to its worker as four words;
  /// from_state() reconstructs an engine that continues the exact sequence.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Rebuilds an engine from a state() snapshot (words must not be all zero;
  /// the all-zero state is a fixed point and is coerced to a valid one).
  static Xoshiro256 from_state(
      const std::array<std::uint64_t, 4>& words) noexcept;

  bool operator==(const Xoshiro256&) const noexcept = default;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Uniform double in [0, 1) with 53 bits of randomness.
double uniform01(Xoshiro256& rng) noexcept;

/// Uniform double in [lo, hi). Requires lo <= hi.
double uniform(Xoshiro256& rng, double lo, double hi) noexcept;

/// Exponential with the given rate (mean 1/rate). Requires rate > 0.
double exponential(Xoshiro256& rng, double rate) noexcept;

/// Standard normal via Box–Muller (no cached spare; stateless w.r.t. caller).
double standard_normal(Xoshiro256& rng) noexcept;

/// Bernoulli draw: true with probability p (clamped to [0,1]).
bool bernoulli(Xoshiro256& rng, double p) noexcept;

/// Uniform integer in [0, n). Requires n > 0.
std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) noexcept;

}  // namespace mec::random

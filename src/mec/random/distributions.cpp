#include "mec/random/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "mec/common/error.hpp"

namespace mec::random {

Distribution::Distribution(std::shared_ptr<const DistributionModel> model)
    : model_(std::move(model)) {
  MEC_EXPECTS(model_ != nullptr);
}

double Distribution::sample(Xoshiro256& rng) const {
  MEC_EXPECTS_MSG(model_ != nullptr, "sampling from an empty Distribution");
  return model_->sample(rng);
}

double Distribution::mean() const {
  MEC_EXPECTS(model_ != nullptr);
  return model_->mean();
}

double Distribution::upper_bound() const {
  MEC_EXPECTS(model_ != nullptr);
  return model_->upper_bound();
}

double Distribution::lower_bound() const {
  MEC_EXPECTS(model_ != nullptr);
  return model_->lower_bound();
}

std::string Distribution::describe() const {
  return model_ ? model_->describe() : "<empty>";
}

namespace {

constexpr int kMaxRejectionIters = 1'000'000;

class UniformModel final : public DistributionModel {
 public:
  UniformModel(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Xoshiro256& rng) const override {
    return uniform(rng, lo_, hi_);
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double upper_bound() const override { return hi_; }
  double lower_bound() const override { return lo_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "U(" << lo_ << ", " << hi_ << ")";
    return os.str();
  }

 private:
  double lo_, hi_;
};

class ConstantModel final : public DistributionModel {
 public:
  explicit ConstantModel(double v) : v_(v) {}
  double sample(Xoshiro256&) const override { return v_; }
  double mean() const override { return v_; }
  double upper_bound() const override { return v_; }
  double lower_bound() const override { return v_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "const(" << v_ << ")";
    return os.str();
  }

 private:
  double v_;
};

/// Shared rejection-sampling helper: draws from `gen` until the value lands in
/// [lo, hi]. Throws RuntimeError if acceptance appears to be ~0.
template <typename Gen>
double rejection_sample(Xoshiro256& rng, double lo, double hi, Gen&& gen) {
  for (int i = 0; i < kMaxRejectionIters; ++i) {
    const double v = gen(rng);
    if (v >= lo && v <= hi) return v;
  }
  throw mec::RuntimeError(
      "rejection sampling failed: truncation interval carries ~zero mass");
}

class TruncatedExponentialModel final : public DistributionModel {
 public:
  TruncatedExponentialModel(double mean, double cap)
      : rate_(1.0 / mean), cap_(cap) {}
  double sample(Xoshiro256& rng) const override {
    return rejection_sample(rng, 0.0, cap_, [this](Xoshiro256& r) {
      return exponential(r, rate_);
    });
  }
  double mean() const override {
    // E[X | X <= cap] for Exp(rate): (1/rate) - cap*e^{-rate*cap}/(1-e^{-rate*cap})
    const double rc = rate_ * cap_;
    return 1.0 / rate_ - cap_ * std::exp(-rc) / (-std::expm1(-rc));
  }
  double upper_bound() const override { return cap_; }
  double lower_bound() const override { return 0.0; }
  std::string describe() const override {
    std::ostringstream os;
    os << "TruncExp(mean=" << 1.0 / rate_ << ", cap=" << cap_ << ")";
    return os.str();
  }

 private:
  double rate_, cap_;
};

class TruncatedNormalModel final : public DistributionModel {
 public:
  TruncatedNormalModel(double mu, double sigma, double lo, double hi)
      : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {}
  double sample(Xoshiro256& rng) const override {
    return rejection_sample(rng, lo_, hi_, [this](Xoshiro256& r) {
      return mu_ + sigma_ * standard_normal(r);
    });
  }
  double mean() const override {
    // Exact truncated-normal mean via the standard phi/Phi formula.
    const auto phi = [](double z) {
      return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::acos(-1.0));
    };
    const auto Phi = [](double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); };
    const double a = (lo_ - mu_) / sigma_;
    const double b = (hi_ - mu_) / sigma_;
    const double z = Phi(b) - Phi(a);
    return mu_ + sigma_ * (phi(a) - phi(b)) / z;
  }
  double upper_bound() const override { return hi_; }
  double lower_bound() const override { return lo_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "TruncN(" << mu_ << ", " << sigma_ << "; [" << lo_ << ", " << hi_
       << "])";
    return os.str();
  }

 private:
  double mu_, sigma_, lo_, hi_;
};

class TruncatedLognormalModel final : public DistributionModel {
 public:
  TruncatedLognormalModel(double mu, double sigma, double cap)
      : mu_(mu), sigma_(sigma), cap_(cap) {}
  double sample(Xoshiro256& rng) const override {
    return rejection_sample(rng, 0.0, cap_, [this](Xoshiro256& r) {
      return std::exp(mu_ + sigma_ * standard_normal(r));
    });
  }
  double mean() const override {
    // Truncated lognormal mean: E[X | X<=cap] =
    //   exp(mu+sigma^2/2) * Phi((ln cap - mu - sigma^2)/sigma) / Phi((ln cap - mu)/sigma)
    const auto Phi = [](double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); };
    const double lc = std::log(cap_);
    const double num = Phi((lc - mu_ - sigma_ * sigma_) / sigma_);
    const double den = Phi((lc - mu_) / sigma_);
    return std::exp(mu_ + 0.5 * sigma_ * sigma_) * num / den;
  }
  double upper_bound() const override { return cap_; }
  double lower_bound() const override { return 0.0; }
  std::string describe() const override {
    std::ostringstream os;
    os << "TruncLogN(" << mu_ << ", " << sigma_ << "; cap=" << cap_ << ")";
    return os.str();
  }

 private:
  double mu_, sigma_, cap_;
};

/// Marsaglia–Tsang gamma sampler; valid for shape >= 1, with the standard
/// boost trick for shape < 1.
double gamma_sample(Xoshiro256& rng, double shape, double scale) {
  if (shape < 1.0) {
    const double u = uniform01(rng);
    return gamma_sample(rng, shape + 1.0, scale) *
           std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = standard_normal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform01(rng);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

class TruncatedGammaModel final : public DistributionModel {
 public:
  TruncatedGammaModel(double shape, double scale, double cap)
      : shape_(shape), scale_(scale), cap_(cap) {
    // Estimate the truncated mean once, numerically, by fine Riemann sum of
    // x * pdf over [0, cap] (pdf renormalized to the cap).
    constexpr int kCells = 20000;
    const double h = cap_ / kCells;
    double mass = 0.0, first = 0.0;
    for (int i = 0; i < kCells; ++i) {
      const double x = (i + 0.5) * h;
      const double logpdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                            std::lgamma(shape_) - shape_ * std::log(scale_);
      const double p = std::exp(logpdf) * h;
      mass += p;
      first += x * p;
    }
    mean_ = first / mass;
  }
  double sample(Xoshiro256& rng) const override {
    return rejection_sample(rng, 0.0, cap_, [this](Xoshiro256& r) {
      return gamma_sample(r, shape_, scale_);
    });
  }
  double mean() const override { return mean_; }
  double upper_bound() const override { return cap_; }
  double lower_bound() const override { return 0.0; }
  std::string describe() const override {
    std::ostringstream os;
    os << "TruncGamma(k=" << shape_ << ", theta=" << scale_ << "; cap=" << cap_
       << ")";
    return os.str();
  }

 private:
  double shape_, scale_, cap_;
  double mean_;
};

class ResamplingModel final : public DistributionModel {
 public:
  ResamplingModel(std::vector<double> data, std::string label)
      : data_(std::move(data)), label_(std::move(label)) {
    mean_ = std::accumulate(data_.begin(), data_.end(), 0.0) /
            static_cast<double>(data_.size());
    const auto [lo, hi] = std::minmax_element(data_.begin(), data_.end());
    lo_ = *lo;
    hi_ = *hi;
  }
  double sample(Xoshiro256& rng) const override {
    return data_[uniform_index(rng, data_.size())];
  }
  double mean() const override { return mean_; }
  double upper_bound() const override { return hi_; }
  double lower_bound() const override { return lo_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "Empirical(" << label_ << ", n=" << data_.size()
       << ", mean=" << mean_ << ")";
    return os.str();
  }

 private:
  std::vector<double> data_;
  std::string label_;
  double mean_, lo_, hi_;
};

class MixtureModel final : public DistributionModel {
 public:
  MixtureModel(std::vector<Distribution> components, std::vector<double> cdf,
               double mean)
      : components_(std::move(components)), cdf_(std::move(cdf)), mean_(mean) {}
  double sample(Xoshiro256& rng) const override {
    const double u = uniform01(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                 static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
    return components_[idx].sample(rng);
  }
  double mean() const override { return mean_; }
  double upper_bound() const override {
    double hi = components_.front().upper_bound();
    for (const auto& component : components_)
      hi = std::max(hi, component.upper_bound());
    return hi;
  }
  double lower_bound() const override {
    double lo = components_.front().lower_bound();
    for (const auto& component : components_)
      lo = std::min(lo, component.lower_bound());
    return lo;
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "Mixture(" << components_.size() << " components)";
    return os.str();
  }

 private:
  std::vector<Distribution> components_;
  std::vector<double> cdf_;  // cumulative weights, last entry == 1
  double mean_;
};

class AffineModel final : public DistributionModel {
 public:
  AffineModel(Distribution base, double scale, double shift, bool clamp)
      : base_(std::move(base)), scale_(scale), shift_(shift), clamp_(clamp) {}
  double sample(Xoshiro256& rng) const override {
    const double v = scale_ * base_.sample(rng) + shift_;
    return clamp_ ? std::max(0.0, v) : v;
  }
  double mean() const override {
    // Exact when clamping never binds; callers that clamp accept the bias.
    return scale_ * base_.mean() + shift_;
  }
  double upper_bound() const override {
    const double a = scale_ * base_.lower_bound() + shift_;
    const double b = scale_ * base_.upper_bound() + shift_;
    return std::max(a, b);
  }
  double lower_bound() const override {
    const double a = scale_ * base_.lower_bound() + shift_;
    const double b = scale_ * base_.upper_bound() + shift_;
    const double lo = std::min(a, b);
    return clamp_ ? std::max(0.0, lo) : lo;
  }
  std::string describe() const override {
    std::ostringstream os;
    os << scale_ << "*[" << base_.describe() << "]+" << shift_;
    return os.str();
  }

 private:
  Distribution base_;
  double scale_, shift_;
  bool clamp_;
};

}  // namespace

Distribution make_uniform(double lo, double hi) {
  MEC_EXPECTS(lo <= hi);
  return Distribution(std::make_shared<UniformModel>(lo, hi));
}

Distribution make_constant(double value) {
  return Distribution(std::make_shared<ConstantModel>(value));
}

Distribution make_truncated_exponential(double mean, double cap) {
  MEC_EXPECTS(mean > 0.0);
  MEC_EXPECTS_MSG(cap > mean / 4.0, "cap too tight for rejection sampling");
  return Distribution(std::make_shared<TruncatedExponentialModel>(mean, cap));
}

Distribution make_truncated_normal(double mu, double sigma, double lo,
                                   double hi) {
  MEC_EXPECTS(sigma > 0.0);
  MEC_EXPECTS(lo < hi);
  return Distribution(std::make_shared<TruncatedNormalModel>(mu, sigma, lo, hi));
}

Distribution make_truncated_lognormal(double mu, double sigma, double cap) {
  MEC_EXPECTS(sigma > 0.0);
  MEC_EXPECTS(cap > 0.0);
  return Distribution(std::make_shared<TruncatedLognormalModel>(mu, sigma, cap));
}

Distribution make_truncated_gamma(double shape, double scale, double cap) {
  MEC_EXPECTS(shape > 0.0);
  MEC_EXPECTS(scale > 0.0);
  MEC_EXPECTS(cap > 0.0);
  return Distribution(std::make_shared<TruncatedGammaModel>(shape, scale, cap));
}

Distribution make_resampling(std::vector<double> data, std::string label) {
  MEC_EXPECTS(!data.empty());
  MEC_EXPECTS(std::all_of(data.begin(), data.end(),
                          [](double v) { return v >= 0.0; }));
  return Distribution(
      std::make_shared<ResamplingModel>(std::move(data), std::move(label)));
}

Distribution make_mixture(std::vector<Distribution> components,
                          std::vector<double> weights) {
  MEC_EXPECTS(!components.empty());
  MEC_EXPECTS(components.size() == weights.size());
  MEC_EXPECTS(std::all_of(weights.begin(), weights.end(),
                          [](double w) { return w >= 0.0; }));
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  MEC_EXPECTS(total > 0.0);

  std::vector<double> cdf(weights.size());
  double acc = 0.0, mean = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cdf[i] = acc;
    mean += weights[i] / total * components[i].mean();
  }
  cdf.back() = 1.0;
  return Distribution(
      std::make_shared<MixtureModel>(std::move(components), std::move(cdf), mean));
}

Distribution make_affine(Distribution base, double scale, double shift,
                         bool clamp_at_zero) {
  MEC_EXPECTS(base.valid());
  return Distribution(
      std::make_shared<AffineModel>(std::move(base), scale, shift, clamp_at_zero));
}

}  // namespace mec::random

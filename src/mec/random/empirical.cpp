#include "mec/random/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "mec/common/error.hpp"

namespace mec::random {

EmpiricalDataset::EmpiricalDataset(std::vector<double> samples,
                                   std::string name)
    : samples_(std::move(samples)), name_(std::move(name)) {
  MEC_EXPECTS(!samples_.empty());
  MEC_EXPECTS(std::all_of(samples_.begin(), samples_.end(),
                          [](double v) { return v >= 0.0; }));
  std::sort(samples_.begin(), samples_.end());
  const auto n = static_cast<double>(samples_.size());
  mean_ = std::accumulate(samples_.begin(), samples_.end(), 0.0) / n;
  double ss = 0.0;
  for (const double v : samples_) ss += (v - mean_) * (v - mean_);
  variance_ = samples_.size() > 1 ? ss / (n - 1.0) : 0.0;
  min_ = samples_.front();
  max_ = samples_.back();
}

double EmpiricalDataset::quantile(double q) const {
  MEC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - std::floor(pos);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDataset::resample(Xoshiro256& rng) const {
  return samples_[uniform_index(rng, samples_.size())];
}

Distribution EmpiricalDataset::as_distribution() const {
  return make_resampling(samples_, name_);
}

std::pair<std::vector<double>, std::vector<double>> EmpiricalDataset::histogram(
    std::size_t bins) const {
  MEC_EXPECTS(bins >= 1);
  std::vector<double> edges(bins), mass(bins, 0.0);
  const double width = (max_ - min_) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i)
    edges[i] = min_ + static_cast<double>(i) * width;
  if (width <= 0.0) {  // degenerate: all samples equal
    mass[0] = 1.0;
    return {edges, mass};
  }
  for (const double v : samples_) {
    auto idx = static_cast<std::size_t>((v - min_) / width);
    idx = std::min(idx, bins - 1);
    mass[idx] += 1.0 / static_cast<double>(samples_.size());
  }
  return {edges, mass};
}

EmpiricalDataset EmpiricalDataset::scaled(double factor,
                                          std::string new_name) const {
  MEC_EXPECTS(factor > 0.0);
  std::vector<double> scaled_samples = samples_;
  for (double& v : scaled_samples) v *= factor;
  return EmpiricalDataset(std::move(scaled_samples), std::move(new_name));
}

}  // namespace mec::random

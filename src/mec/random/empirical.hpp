// Empirical datasets: fixed collections of measurements that users of the
// library can resample from, summarize, and bin into histograms.  This is the
// in-library representation of the paper's "real-world data we have collected"
// (Fig. 6): 1000 per-image local processing times and 1000 upload latencies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mec/random/distributions.hpp"
#include "mec/random/rng.hpp"

namespace mec::random {

/// An immutable, named set of non-negative scalar measurements.
class EmpiricalDataset {
 public:
  /// Requires non-empty, all-non-negative samples.
  EmpiricalDataset(std::vector<double> samples, std::string name);

  const std::vector<double>& samples() const noexcept { return samples_; }
  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return samples_.size(); }

  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return variance_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Empirical q-quantile (linear interpolation). Requires q in [0, 1].
  double quantile(double q) const;

  /// Uniform draw with replacement.
  double resample(Xoshiro256& rng) const;

  /// Distribution view (resampling) for use in scenario configs.
  Distribution as_distribution() const;

  /// Normalized histogram (bin mass sums to 1) over [min, max] with `bins`
  /// equal-width cells; returns (bin_left_edges, mass).  Requires bins >= 1.
  std::pair<std::vector<double>, std::vector<double>> histogram(
      std::size_t bins) const;

  /// Dataset with every sample multiplied by `factor` (> 0); used to rescale
  /// measured processing times into service-rate units.
  EmpiricalDataset scaled(double factor, std::string new_name) const;

 private:
  std::vector<double> samples_;  // kept sorted for quantiles
  std::string name_;
  double mean_ = 0.0, variance_ = 0.0, min_ = 0.0, max_ = 0.0;
};

}  // namespace mec::random

#include "mec/random/empirical_data.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::random {

namespace {

double lognormal(Xoshiro256& rng, double mu, double sigma) {
  return std::exp(mu + sigma * standard_normal(rng));
}

}  // namespace

EmpiricalDataset synthetic_yolo_processing_times(std::uint64_t seed,
                                                 std::size_t n) {
  MEC_EXPECTS(n >= 1);
  Xoshiro256 rng(seed);
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Body: typical detection ~0.10 s; stragglers (thermal throttling, large
    // scenes) ~2.5x slower with more spread.
    const bool straggler = bernoulli(rng, 0.07);
    const double t = straggler ? lognormal(rng, std::log(0.25), 0.30)
                               : lognormal(rng, std::log(0.10), 0.35);
    times.push_back(t);
  }
  return EmpiricalDataset(std::move(times), "yolo_rpi4_processing_time_s");
}

EmpiricalDataset service_rates_from_times(const EmpiricalDataset& times,
                                          double target_mean_rate) {
  MEC_EXPECTS(target_mean_rate > 0.0);
  MEC_EXPECTS_MSG(times.min() > 0.0, "processing times must be positive");
  std::vector<double> rates;
  rates.reserve(times.size());
  for (const double t : times.samples()) rates.push_back(1.0 / t);
  const double mean =
      std::accumulate(rates.begin(), rates.end(), 0.0) /
      static_cast<double>(rates.size());
  for (double& r : rates) r *= target_mean_rate / mean;
  return EmpiricalDataset(std::move(rates), "yolo_rpi4_service_rate");
}

EmpiricalDataset synthetic_wifi_offload_latencies(std::uint64_t seed,
                                                  std::size_t n,
                                                  double target_mean) {
  MEC_EXPECTS(n >= 1);
  MEC_EXPECTS(target_mean > 0.0);
  Xoshiro256 rng(seed);
  std::vector<double> latencies;
  latencies.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Body: typical upload; spikes: transient WiFi congestion / retransmits.
    const bool spike = bernoulli(rng, 0.05);
    const double l = spike ? lognormal(rng, std::log(3.0), 0.40)
                           : lognormal(rng, std::log(0.9), 0.45);
    latencies.push_back(l);
  }
  const double mean =
      std::accumulate(latencies.begin(), latencies.end(), 0.0) /
      static_cast<double>(latencies.size());
  for (double& l : latencies) l *= target_mean / mean;
  return EmpiricalDataset(std::move(latencies), "wifi_upload_latency_s");
}

}  // namespace mec::random

// Synthetic stand-ins for the paper's measured datasets (Fig. 6).
//
// The authors measured (a) per-image YOLOv3 object-detection times on a
// Raspberry Pi 4 and (b) per-image WiFi upload latencies to Google Drive, for
// 1000 VOC2012 images, then sampled each user's mean service rate S and mean
// offloading latency T from those measurements (practical settings,
// E[S] = 8.9437).  The raw traces are not published, so we synthesize
// datasets with the same qualitative shape (unimodal, right-skewed, a small
// congestion/straggler mode — cf. the Fig. 6 histograms) and the same mean
// service rate.  See DESIGN.md §5 for the substitution argument.
#pragma once

#include <cstdint>

#include "mec/random/empirical.hpp"

namespace mec::random {

/// Mean service rate of the practical settings in the paper (Section IV-B).
inline constexpr double kPaperMeanServiceRate = 8.9437;

/// Default seed used by the reproduction benches; fixed for determinism.
inline constexpr std::uint64_t kDatasetSeed = 0xDA7A5EEDULL;

/// 1000 synthetic per-image local processing times (seconds): lognormal body
/// with a 7% straggler mode, emulating Fig. 6a.
EmpiricalDataset synthetic_yolo_processing_times(
    std::uint64_t seed = kDatasetSeed, std::size_t n = 1000);

/// Converts measured processing times into a per-user mean *service rate*
/// dataset (rate = 1/time), rescaled so its mean equals `target_mean_rate`.
/// This is the dataset practical scenarios draw S from. Requires all
/// processing times > 0 and target_mean_rate > 0.
EmpiricalDataset service_rates_from_times(const EmpiricalDataset& times,
                                          double target_mean_rate =
                                              kPaperMeanServiceRate);

/// 1000 synthetic per-image WiFi upload latencies (seconds): lognormal body
/// with a 5% congestion-spike mode, rescaled to `target_mean`, emulating
/// Fig. 6b. Requires target_mean > 0.
EmpiricalDataset synthetic_wifi_offload_latencies(
    std::uint64_t seed = kDatasetSeed + 1, std::size_t n = 1000,
    double target_mean = 2.0);

}  // namespace mec::random

// Bounded continuous probability distributions used to model heterogeneity.
//
// The paper draws each user's mean arrival rate A, mean service rate S, mean
// offloading latency T, and per-task energies P_L, P_E from bounded continuous
// distributions.  Distribution is a small closed-for-modification value-type
// hierarchy behind a shared_ptr pimpl so ScenarioConfig stays copyable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mec/random/rng.hpp"

namespace mec::random {

/// Abstract sampling interface for a scalar distribution.
class DistributionModel {
 public:
  virtual ~DistributionModel() = default;
  virtual double sample(Xoshiro256& rng) const = 0;
  virtual double mean() const = 0;
  /// Smallest closed upper bound on the support (support is bounded by model).
  virtual double upper_bound() const = 0;
  /// Largest closed lower bound on the support.
  virtual double lower_bound() const = 0;
  virtual std::string describe() const = 0;
};

/// Value-semantic handle to an immutable distribution model.
class Distribution {
 public:
  Distribution() = default;  // empty; sampling from it is a contract violation
  explicit Distribution(std::shared_ptr<const DistributionModel> model);

  double sample(Xoshiro256& rng) const;
  double mean() const;
  double upper_bound() const;
  double lower_bound() const;
  std::string describe() const;
  bool valid() const noexcept { return model_ != nullptr; }

 private:
  std::shared_ptr<const DistributionModel> model_;
};

/// U(lo, hi). Requires lo <= hi.
Distribution make_uniform(double lo, double hi);

/// Point mass at `value`.
Distribution make_constant(double value);

/// Exponential with given mean, truncated to [0, cap] by rejection.
/// Requires mean > 0 and cap > mean/4 (so acceptance stays reasonable).
Distribution make_truncated_exponential(double mean, double cap);

/// Normal(mu, sigma) truncated to [lo, hi] by rejection. Requires lo < hi and
/// the interval to carry at least ~1e-6 of the mass (checked empirically by
/// capping rejection iterations).
Distribution make_truncated_normal(double mu, double sigma, double lo,
                                   double hi);

/// Lognormal with log-space parameters (mu, sigma), truncated to [0, cap].
Distribution make_truncated_lognormal(double mu, double sigma, double cap);

/// Gamma(shape k, scale theta) truncated to [0, cap]. Requires k > 0,
/// theta > 0. Sampling uses Marsaglia–Tsang.
Distribution make_truncated_gamma(double shape, double scale, double cap);

/// Resamples uniformly from a fixed set of observations (the paper's
/// "sampled from the real-world data we collected").
/// Requires non-empty data with non-negative values.
Distribution make_resampling(std::vector<double> data, std::string label);

/// Finite mixture: picks component i with probability weights[i] (normalized)
/// and samples from it. Requires equal non-zero sizes and positive total mass.
Distribution make_mixture(std::vector<Distribution> components,
                          std::vector<double> weights);

/// Affine transform a*X + b of an existing distribution, clamped to stay
/// non-negative when clamp_at_zero is true.
Distribution make_affine(Distribution base, double scale, double shift,
                         bool clamp_at_zero = false);

}  // namespace mec::random

#include "mec/random/rng.hpp"

#include <cmath>
#include <numbers>

namespace mec::random {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // An all-zero state is a fixed point of the transition; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 1;
}

Xoshiro256 Xoshiro256::from_state(
    const std::array<std::uint64_t, 4>& words) noexcept {
  Xoshiro256 rng(0);
  rng.state_ = words;
  if (rng.state_[0] == 0 && rng.state_[1] == 0 && rng.state_[2] == 0 &&
      rng.state_[3] == 0)
    rng.state_[0] = 1;
  return rng;
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Xoshiro256 Xoshiro256::split() noexcept {
  Xoshiro256 child = *this;
  long_jump();  // advance parent past the child's stream
  return child;
}

double uniform01(Xoshiro256& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

double exponential(Xoshiro256& rng, double rate) noexcept {
  // 1 - U in (0, 1] avoids log(0).
  return -std::log1p(-uniform01(rng)) / rate;
}

double standard_normal(Xoshiro256& rng) noexcept {
  double u1 = uniform01(rng);
  while (u1 <= 0.0) u1 = uniform01(rng);
  const double u2 = uniform01(rng);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool bernoulli(Xoshiro256& rng, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(rng) < p;
}

std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  using u128 = unsigned __int128;
  std::uint64_t x = rng();
  u128 m = static_cast<u128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = rng();
      m = static_cast<u128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace mec::random

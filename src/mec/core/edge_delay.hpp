// Edge-server processing delay g(gamma).
//
// The model only requires g : [0,1] -> [0, Gmax] increasing and continuous.
// The paper's evaluation uses g(gamma) = 1/(1.1 - gamma); the ablation benches
// exercise alternative shapes.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "mec/common/error.hpp"

namespace mec::core {

/// Value-semantic wrapper around an increasing continuous delay function.
class EdgeDelay {
 public:
  EdgeDelay() = default;  // empty; calling it is a contract violation

  /// Requires fn increasing on [0,1] (spot-checked) and non-negative at 0.
  EdgeDelay(std::function<double(double)> fn, std::string description);

  /// Delay at utilization gamma. Requires 0 <= gamma <= 1.
  double operator()(double gamma) const;

  const std::string& description() const noexcept { return description_; }
  bool valid() const noexcept { return static_cast<bool>(fn_); }

 private:
  std::function<double(double)> fn_;
  std::string description_;
};

/// The paper's evaluation delay g(gamma) = 1/(margin - gamma).
/// Requires margin > 1 so g is finite and increasing on [0,1].
EdgeDelay make_reciprocal_delay(double margin = 1.1);

/// Linear delay g(gamma) = g0 + slope * gamma. Requires g0 >= 0, slope >= 0.
EdgeDelay make_linear_delay(double g0, double slope);

/// Power-law delay g(gamma) = gmax * gamma^p. Requires gmax >= 0, p > 0.
EdgeDelay make_power_delay(double gmax, double p);

/// Constant delay (degenerate but admissible; useful in tests).
EdgeDelay make_constant_delay(double value);

/// Queueing-theoretic edge delay: the cluster is an M/M/N system with
/// `servers` servers of rate `server_rate`; utilization gamma maps to
/// offered load gamma * N * server_rate and the delay is the Erlang-C mean
/// sojourn time, saturated at `gamma_cap` (< 1) so g stays bounded on [0,1]
/// as the model requires. Requires servers >= 1, server_rate > 0,
/// 0 < gamma_cap < 1.
EdgeDelay make_erlang_c_delay(std::size_t servers, double server_rate,
                              double gamma_cap = 0.95);

}  // namespace mec::core

// Lemma 1: the closed-form best-response threshold.
//
// Define f(0|theta) = 0 and f(m|theta) = sum_{i=1..m} (m-i+1) * theta^i for
// m >= 1 (strictly increasing in m for theta > 0).  With the offload price
// beta = a*(g(gamma) + tau + w*(p_E - p_L)), the cost (1) is minimized by the
// integer threshold
//
//   x* = 0                      if beta < f(1|theta)  (including beta <= 0),
//   x* = m                      if f(m|theta) <= beta < f(m+1|theta).
//
// f is evaluated with the exact recurrence f(m+1) = f(m) + sum_{i<=m+1} theta^i,
// stopping as soon as f exceeds beta, so there is no overflow for any input in
// the model's bounded-parameter regime.
#pragma once

#include <cstdint>

#include "mec/core/cost_model.hpp"
#include "mec/core/user.hpp"

namespace mec::core {

/// f(m|theta) via the stable recurrence. Requires theta > 0, m >= 0,
/// m <= 10^6 (far beyond any optimal threshold in the bounded model).
double f_recursive(std::int64_t m, double theta);

/// f(m|theta) via the closed form
///   theta * (theta^{m+1} - (m+1)*theta + m) / (1-theta)^2.
/// For |1 - theta| < 1e-3 (including theta == 1) the quotient cancels
/// catastrophically, so the implementation falls back to the exact
/// recurrence there; agreement across the seam is tested. Requires
/// theta > 0, m >= 0, and m <= 10^6 when the fallback band is hit.
double f_closed_form(std::int64_t m, double theta);

/// Best-response integer threshold of Lemma 1 for offload price `beta` and
/// intensity `theta`. Requires theta > 0.
std::int64_t best_threshold_for_price(double beta, double theta);

/// Best-response threshold of user `u` when the edge delay value is
/// g(gamma) = `edge_delay_value` >= 0.
std::int64_t best_threshold(const UserParams& u, double edge_delay_value);

/// Brute-force argmin of the Eq. (1) cost over a fine grid of thresholds
/// in [0, x_max]; used by tests/benches to validate Lemma 1 independently.
double grid_search_threshold(const UserParams& u, double edge_delay_value,
                             double x_max, double step);

}  // namespace mec::core

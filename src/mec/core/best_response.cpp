#include "mec/core/best_response.hpp"

#include "mec/core/cost_model.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace mec::core {

namespace {

// Users per pool chunk: the Lemma-1 oracle costs ~100ns/user, so this keeps
// dispatch overhead below a percent while still load-balancing 10^4 users.
constexpr std::size_t kUserGrain = 256;

double user_offload_rate(const UserParams& u, double threshold) {
  return u.arrival_rate *
         queueing::tro_offload_probability(u.intensity(), threshold);
}

}  // namespace

BestResponse best_response(std::span<const UserParams> users,
                           const EdgeDelay& delay, double capacity,
                           double gamma) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  const double g = delay(gamma);

  BestResponse out;
  out.thresholds.reserve(users.size());
  double acc = 0.0;
  for (const UserParams& u : users) {
    const std::int64_t x = best_threshold(u, g);
    out.thresholds.push_back(x);
    acc += user_offload_rate(u, static_cast<double>(x));
  }
  out.utilization = acc / (static_cast<double>(users.size()) * capacity);
  MEC_ENSURES(out.utilization >= 0.0);
  return out;
}

BestResponse best_response(std::span<const UserParams> users,
                           const EdgeDelay& delay, double capacity,
                           double gamma, parallel::ThreadPool& pool) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  const double g = delay(gamma);

  BestResponse out;
  out.thresholds.assign(users.size(), 0);
  std::vector<double> rates(users.size(), 0.0);
  pool.parallel_for_each(
      users.size(),
      [&](std::size_t n) {
        const std::int64_t x = best_threshold(users[n], g);
        out.thresholds[n] = x;
        rates[n] = user_offload_rate(users[n], static_cast<double>(x));
      },
      kUserGrain);
  // In-order serial reduction: the same additions, in the same order, as the
  // serial overload's accumulation loop.
  double acc = 0.0;
  for (const double r : rates) acc += r;
  out.utilization = acc / (static_cast<double>(users.size()) * capacity);
  MEC_ENSURES(out.utilization >= 0.0);
  return out;
}

double utilization_of_thresholds(std::span<const UserParams> users,
                                 std::span<const double> thresholds,
                                 double capacity) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(users.size() == thresholds.size());
  MEC_EXPECTS(capacity > 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n)
    acc += user_offload_rate(users[n], thresholds[n]);
  return acc / (static_cast<double>(users.size()) * capacity);
}

double utilization_of_thresholds(std::span<const UserParams> users,
                                 std::span<const double> thresholds,
                                 double capacity, parallel::ThreadPool& pool) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(users.size() == thresholds.size());
  MEC_EXPECTS(capacity > 0.0);
  std::vector<double> rates(users.size(), 0.0);
  pool.parallel_for_each(
      users.size(),
      [&](std::size_t n) {
        rates[n] = user_offload_rate(users[n], thresholds[n]);
      },
      kUserGrain);
  double acc = 0.0;
  for (const double r : rates) acc += r;
  return acc / (static_cast<double>(users.size()) * capacity);
}

double average_cost(std::span<const UserParams> users,
                    std::span<const double> thresholds,
                    const EdgeDelay& delay, double gamma) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(users.size() == thresholds.size());
  const double g = delay(gamma);
  double acc = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n)
    acc += tro_cost(users[n], thresholds[n], g);
  return acc / static_cast<double>(users.size());
}

}  // namespace mec::core

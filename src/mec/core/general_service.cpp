#include "mec/core/general_service.hpp"

#include <limits>

#include "mec/common/error.hpp"

namespace mec::core {

double phase_type_cost(const UserParams& u, const queueing::PhaseType& shape,
                       double x, double edge_delay_value) {
  u.check();
  MEC_EXPECTS(x >= 0.0);
  MEC_EXPECTS(edge_delay_value >= 0.0);
  const queueing::PhaseType service =
      shape.scaled_to_mean(1.0 / u.service_rate);
  const queueing::TroMetrics m =
      queueing::tro_metrics_phase_type(u.arrival_rate, service, x);
  return u.weight * u.energy_local * (1.0 - m.offload_probability) +
         m.mean_queue_length / u.arrival_rate +
         (u.weight * u.energy_offload + edge_delay_value +
          u.offload_latency) *
             m.offload_probability;
}

std::int64_t best_threshold_phase_type(const UserParams& u,
                                       const queueing::PhaseType& shape,
                                       double edge_delay_value,
                                       std::int64_t max_threshold,
                                       int patience) {
  MEC_EXPECTS(max_threshold >= 1 && max_threshold <= 400);
  MEC_EXPECTS(patience >= 1);
  std::int64_t best = 0;
  double best_cost = phase_type_cost(u, shape, 0.0, edge_delay_value);
  int rising = 0;
  for (std::int64_t x = 1; x <= max_threshold; ++x) {
    const double c =
        phase_type_cost(u, shape, static_cast<double>(x), edge_delay_value);
    if (c < best_cost) {
      best_cost = c;
      best = x;
      rising = 0;
    } else if (++rising >= patience) {
      break;
    }
  }
  return best;
}

double phase_type_best_response(std::span<const UserParams> users,
                                const queueing::PhaseType& shape,
                                const EdgeDelay& delay, double capacity,
                                double gamma) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  const double g = delay(gamma);
  double acc = 0.0;
  for (const UserParams& u : users) {
    const std::int64_t x = best_threshold_phase_type(u, shape, g);
    const queueing::PhaseType service =
        shape.scaled_to_mean(1.0 / u.service_rate);
    acc += u.arrival_rate *
           queueing::tro_metrics_phase_type(u.arrival_rate, service,
                                            static_cast<double>(x))
               .offload_probability;
  }
  return acc / (static_cast<double>(users.size()) * capacity);
}

PhaseTypeEquilibrium solve_phase_type_equilibrium(
    std::span<const UserParams> users, const queueing::PhaseType& shape,
    const EdgeDelay& delay, double capacity, double tolerance) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(tolerance > 0.0);

  const double v0 = phase_type_best_response(users, shape, delay, capacity,
                                             0.0);
  MEC_EXPECTS_MSG(v0 < 1.0, "V(0) >= 1: capacity too small");

  double lo = 0.0, hi = 1.0;
  if (v0 == 0.0) {
    lo = hi = 0.0;
  } else {
    while (hi - lo > tolerance) {
      const double mid = 0.5 * (lo + hi);
      if (phase_type_best_response(users, shape, delay, capacity, mid) > mid)
        lo = mid;
      else
        hi = mid;
    }
  }

  PhaseTypeEquilibrium eq;
  eq.gamma_star = 0.5 * (lo + hi);
  const double g = delay(eq.gamma_star);
  double cost = 0.0;
  eq.thresholds.reserve(users.size());
  for (const UserParams& u : users) {
    const std::int64_t x = best_threshold_phase_type(u, shape, g);
    eq.thresholds.push_back(x);
    cost += phase_type_cost(u, shape, static_cast<double>(x), g);
  }
  eq.average_cost = cost / static_cast<double>(users.size());
  return eq;
}

}  // namespace mec::core

// Mean-Field Nash Equilibrium solver (Theorem 1).
//
// V(gamma) is continuous and non-increasing with V(0) < 1 (because
// A_max < c), so h(gamma) = V(gamma) - gamma is continuous and strictly
// decreasing with h(1) < 0; the unique root gamma* = V(gamma*) is found by
// bisection.  On a finite sampled population V is piecewise constant in
// gamma (thresholds are integers), so the "root" is the unique crossing
// point; bisection still brackets it to any tolerance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/best_response.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"

namespace mec::core {

struct MfneOptions {
  double tolerance = 1e-10;   ///< bisection interval width at termination
  int max_iterations = 200;   ///< bisection guard (2^-200 << any tolerance)
};

struct MfneResult {
  double gamma_star = 0.0;                ///< the equilibrium utilization
  double best_response_value = 0.0;       ///< V(gamma_star)
  std::vector<std::int64_t> thresholds;   ///< equilibrium thresholds
  int iterations = 0;                     ///< bisection iterations used
  /// True when the bracket reached `tolerance`; false when the bisection
  /// was cut off by `max_iterations` (e.g. a tolerance below one ulp of
  /// gamma*, where the interval stops shrinking) and gamma_star is only
  /// the midpoint of the last bracket.
  bool converged = false;
};

/// Finds gamma* with |V(gamma*) crossing| bracketed within
/// options.tolerance. Requires valid delay, capacity > 0, non-empty users,
/// and (checked) V(0) < 1.
MfneResult solve_mfne(std::span<const UserParams> users, const EdgeDelay& delay,
                      double capacity, const MfneOptions& options = {});

}  // namespace mec::core

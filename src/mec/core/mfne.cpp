#include "mec/core/mfne.hpp"

#include <cmath>

#include "mec/common/error.hpp"

namespace mec::core {

MfneResult solve_mfne(std::span<const UserParams> users, const EdgeDelay& delay,
                      double capacity, const MfneOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(options.tolerance > 0.0);

  const double v0 = best_response(users, delay, capacity, 0.0).utilization;
  MEC_EXPECTS_MSG(v0 < 1.0,
                  "V(0) >= 1: capacity too small (model requires A_max < c)");
  if (v0 == 0.0) {
    // Degenerate: nobody offloads even at zero edge delay penalty.
    MfneResult r;
    r.gamma_star = 0.0;
    r.best_response_value = 0.0;
    r.thresholds = best_response(users, delay, capacity, 0.0).thresholds;
    r.converged = true;  // exact: gamma* = 0
    return r;
  }

  // h(gamma) = V(gamma) - gamma: h(0) = v0 > 0, h(1) = V(1) - 1 < 0.
  double lo = 0.0, hi = 1.0;
  int iters = 0;
  while (hi - lo > options.tolerance && iters < options.max_iterations) {
    const double mid = 0.5 * (lo + hi);
    const double v = best_response(users, delay, capacity, mid).utilization;
    if (v > mid)
      lo = mid;
    else
      hi = mid;
    ++iters;
  }

  MfneResult r;
  r.gamma_star = 0.5 * (lo + hi);
  BestResponse br = best_response(users, delay, capacity, r.gamma_star);
  r.best_response_value = br.utilization;
  r.thresholds = std::move(br.thresholds);
  r.iterations = iters;
  r.converged = hi - lo <= options.tolerance;
  MEC_ENSURES(r.gamma_star >= 0.0 && r.gamma_star <= 1.0);
  return r;
}

}  // namespace mec::core

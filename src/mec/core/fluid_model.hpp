// Fluid (ODE) approximation of the utilization dynamics.
//
// On the fast time scale the paper treats gamma as quasi-stationary; the
// natural continuous-time counterpart of repeated best-response play is the
// smooth best-response dynamic
//
//     d(gamma)/dt = kappa * ( V(gamma) - gamma ),
//
// whose unique rest point is the MFNE (V is continuous and non-increasing,
// so V(gamma) - gamma is strictly decreasing: trajectories approach gamma*
// monotonically from either side — a continuous-time version of Theorem 2's
// bisection picture).  This module provides a generic RK4 scalar integrator
// and the fluid trajectory built on the population best response.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"

namespace mec::core {

/// One sample of an integrated scalar trajectory.
struct OdePoint {
  double t = 0.0;
  double y = 0.0;
};

/// Classic fixed-step RK4 for dy/dt = f(t, y) from (t0, y0) to t1.
/// Returns the trajectory including both endpoints. Requires t1 > t0,
/// dt > 0, and f finite on the trajectory.
std::vector<OdePoint> integrate_rk4(
    const std::function<double(double, double)>& f, double y0, double t0,
    double t1, double dt);

struct FluidOptions {
  double kappa = 1.0;      ///< adaptation rate, > 0
  double gamma0 = 0.0;     ///< initial utilization in [0, 1]
  double horizon = 30.0;   ///< integration time, > 0
  double dt = 0.05;        ///< RK4 step, > 0
};

/// Integrates the smooth best-response dynamic for the given population.
/// The returned trajectory is clipped to [0, 1] pointwise.
std::vector<OdePoint> fluid_trajectory(std::span<const UserParams> users,
                                       const EdgeDelay& delay, double capacity,
                                       const FluidOptions& options = {});

}  // namespace mec::core

#include "mec/core/edge_delay.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mec/queueing/erlang.hpp"

namespace mec::core {

EdgeDelay::EdgeDelay(std::function<double(double)> fn, std::string description)
    : fn_(std::move(fn)), description_(std::move(description)) {
  MEC_EXPECTS(static_cast<bool>(fn_));
  MEC_EXPECTS_MSG(fn_(0.0) >= 0.0, "edge delay must be non-negative");
  // Spot-check monotonicity on a coarse grid (full verification is the
  // caller's contract; this catches obvious mistakes cheaply).
  double prev = fn_(0.0);
  for (int i = 1; i <= 10; ++i) {
    const double v = fn_(i / 10.0);
    MEC_EXPECTS_MSG(v >= prev, "edge delay must be non-decreasing");
    prev = v;
  }
}

double EdgeDelay::operator()(double gamma) const {
  MEC_EXPECTS_MSG(valid(), "calling an empty EdgeDelay");
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  return fn_(gamma);
}

EdgeDelay make_reciprocal_delay(double margin) {
  MEC_EXPECTS_MSG(margin > 1.0, "reciprocal delay needs margin > 1");
  std::ostringstream os;
  os << "1/(" << margin << " - gamma)";
  return EdgeDelay([margin](double g) { return 1.0 / (margin - g); },
                   os.str());
}

EdgeDelay make_linear_delay(double g0, double slope) {
  MEC_EXPECTS(g0 >= 0.0);
  MEC_EXPECTS(slope >= 0.0);
  std::ostringstream os;
  os << g0 << " + " << slope << "*gamma";
  return EdgeDelay([g0, slope](double g) { return g0 + slope * g; }, os.str());
}

EdgeDelay make_power_delay(double gmax, double p) {
  MEC_EXPECTS(gmax >= 0.0);
  MEC_EXPECTS(p > 0.0);
  std::ostringstream os;
  os << gmax << "*gamma^" << p;
  return EdgeDelay(
      [gmax, p](double g) { return gmax * std::pow(g, p); }, os.str());
}

EdgeDelay make_constant_delay(double value) {
  MEC_EXPECTS(value >= 0.0);
  std::ostringstream os;
  os << "const " << value;
  return EdgeDelay([value](double) { return value; }, os.str());
}

EdgeDelay make_erlang_c_delay(std::size_t servers, double server_rate,
                              double gamma_cap) {
  MEC_EXPECTS(servers >= 1);
  MEC_EXPECTS(server_rate > 0.0);
  MEC_EXPECTS(gamma_cap > 0.0 && gamma_cap < 1.0);
  std::ostringstream os;
  os << "ErlangC(N=" << servers << ", mu=" << server_rate
     << ", cap=" << gamma_cap << ")";
  return EdgeDelay(
      [servers, server_rate, gamma_cap](double gamma) {
        const double g = std::min(gamma, gamma_cap);
        const double lambda =
            g * static_cast<double>(servers) * server_rate;
        return queueing::mmn_mean_sojourn(servers, server_rate, lambda);
      },
      os.str());
}

}  // namespace mec::core

#include "mec/core/fluid_model.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"

namespace mec::core {

std::vector<OdePoint> integrate_rk4(
    const std::function<double(double, double)>& f, double y0, double t0,
    double t1, double dt) {
  MEC_EXPECTS(static_cast<bool>(f));
  MEC_EXPECTS(t1 > t0);
  MEC_EXPECTS(dt > 0.0);

  std::vector<OdePoint> trajectory;
  trajectory.reserve(static_cast<std::size_t>((t1 - t0) / dt) + 2);
  double t = t0, y = y0;
  trajectory.push_back({t, y});
  while (t < t1 - 1e-12) {
    const double h = std::min(dt, t1 - t);
    const double k1 = f(t, y);
    const double k2 = f(t + h / 2.0, y + h / 2.0 * k1);
    const double k3 = f(t + h / 2.0, y + h / 2.0 * k2);
    const double k4 = f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t += h;
    MEC_EXPECTS_MSG(std::isfinite(y), "RK4 trajectory diverged");
    trajectory.push_back({t, y});
  }
  return trajectory;
}

std::vector<OdePoint> fluid_trajectory(std::span<const UserParams> users,
                                       const EdgeDelay& delay, double capacity,
                                       const FluidOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(options.kappa > 0.0);
  MEC_EXPECTS(options.gamma0 >= 0.0 && options.gamma0 <= 1.0);
  MEC_EXPECTS(options.horizon > 0.0);
  MEC_EXPECTS(options.dt > 0.0);

  const auto drift = [&](double, double gamma) {
    const double g = std::clamp(gamma, 0.0, 1.0);
    return options.kappa *
           (best_response(users, delay, capacity, g).utilization - g);
  };
  auto trajectory = integrate_rk4(drift, options.gamma0, 0.0, options.horizon,
                                  options.dt);
  for (OdePoint& p : trajectory) p.y = std::clamp(p.y, 0.0, 1.0);
  return trajectory;
}

}  // namespace mec::core

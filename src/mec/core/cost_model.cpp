#include "mec/core/cost_model.hpp"

#include "mec/queueing/threshold_queue.hpp"

namespace mec::core {

CostBreakdown tro_cost_breakdown(const UserParams& u, double x,
                                 double edge_delay_value) {
  u.check();
  MEC_EXPECTS(x >= 0.0);
  MEC_EXPECTS(edge_delay_value >= 0.0);
  const queueing::TroMetrics m = queueing::tro_metrics(u.intensity(), x);
  CostBreakdown c{};
  c.alpha = m.offload_probability;
  c.mean_queue = m.mean_queue_length;
  c.local_energy = u.weight * u.energy_local * (1.0 - m.offload_probability);
  c.queueing = m.mean_queue_length / u.arrival_rate;
  c.offload = (u.weight * u.energy_offload + edge_delay_value +
               u.offload_latency) *
              m.offload_probability;
  return c;
}

double tro_cost(const UserParams& u, double x, double edge_delay_value) {
  return tro_cost_breakdown(u, x, edge_delay_value).total();
}

double offload_price(const UserParams& u, double edge_delay_value) {
  u.check();
  MEC_EXPECTS(edge_delay_value >= 0.0);
  return u.arrival_rate *
         (edge_delay_value + u.offload_latency +
          u.weight * (u.energy_offload - u.energy_local));
}

}  // namespace mec::core

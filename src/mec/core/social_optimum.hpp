// Socially optimal thresholds and the price of anarchy of the MFNE.
//
// The MFNE is a *Nash* point: each user ignores that offloading one more
// task raises g(gamma) for everyone.  A planner internalizes the externality;
// the first-order condition turns into a per-user Lemma-1 problem with a
// congestion-priced edge delay
//
//     g_tilde_n = g(gamma) + g'(gamma) * a_n * mean_alpha / c,
//
// (differentiate the average cost through gamma = E[A*alpha]/c), solved by
// damped fixed-point iteration on (gamma, mean_alpha).  Because thresholds
// are integers, the result is a first-order planner solution within the
// threshold class; the solver falls back to the Nash thresholds if they ever
// evaluate better, so its cost is never above the equilibrium cost and the
// reported price of anarchy is >= 1 by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"

namespace mec::core {

struct SocialOptimumOptions {
  double damping = 0.3;       ///< fixed-point damping in (0, 1]
  double tolerance = 1e-6;    ///< stop when |gamma step| falls below this
  int max_iterations = 500;
};

struct SocialOptimum {
  double gamma = 0.0;                    ///< utilization of the planner point
  double mean_alpha = 0.0;               ///< population mean offload prob.
  double congestion_price = 0.0;         ///< g'(gamma) * mean_alpha / c
  std::vector<std::int64_t> thresholds;  ///< planner thresholds
  double average_cost = 0.0;             ///< W at the planner point
  int iterations = 0;
  bool converged = false;
};

/// Numerical derivative of the edge delay (central difference, clipped to
/// [0,1]). Exposed for tests. Requires 0 <= gamma <= 1.
double edge_delay_derivative(const EdgeDelay& delay, double gamma,
                             double h = 1e-6);

/// Solves the congestion-priced fixed point described above.
/// Requires non-empty users, valid delay, capacity > 0.
SocialOptimum solve_social_optimum(std::span<const UserParams> users,
                                   const EdgeDelay& delay, double capacity,
                                   const SocialOptimumOptions& options = {});

/// W(Nash)/W(planner) >= 1: how inefficient selfish threshold play is.
double price_of_anarchy(std::span<const UserParams> users,
                        const EdgeDelay& delay, double capacity);

}  // namespace mec::core

#include "mec/core/dtu.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/threshold_oracle.hpp"

namespace mec::core {

AnalyticUtilization::AnalyticUtilization(std::span<const UserParams> users,
                                         double capacity)
    : users_(users.begin(), users.end()), capacity_(capacity) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
}

double AnalyticUtilization::utilization(std::span<const double> thresholds) {
  return utilization_of_thresholds(users_, thresholds, capacity_);
}

UpdateGate make_bernoulli_gate(double p, std::uint64_t seed) {
  MEC_EXPECTS(p >= 0.0 && p <= 1.0);
  // Stateless splitmix64 hash of (n, t, seed): deterministic, independent
  // across pairs, and insensitive to evaluation order.
  return [p, seed](std::size_t n, int t) {
    std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ULL * (n + 1)) ^
                      (0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(t + 1));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53 < p;
  };
}

DtuResult run_dtu(std::span<const UserParams> users, const EdgeDelay& delay,
                  UtilizationSource& source, const DtuOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(options.eta0 > 0.0 && options.eta0 <= 1.0);
  MEC_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MEC_EXPECTS(options.max_iterations >= 1);
  MEC_EXPECTS(options.initial_thresholds.empty() ||
              options.initial_thresholds.size() == users.size());

  const std::size_t n_users = users.size();
  std::vector<double> thresholds =
      options.initial_thresholds.empty()
          ? std::vector<double>(n_users, 0.0)
          : options.initial_thresholds;
  MEC_EXPECTS(std::all_of(thresholds.begin(), thresholds.end(),
                          [](double x) { return x >= 0.0; }));

  DtuResult result;
  // gamma_1: true utilization of the initial thresholds.
  double gamma = source.utilization(thresholds);

  double ghat_prev2 = 1.0;  // gamma_hat_{-1}
  double ghat_prev = 0.0;   // gamma_hat_0
  double eta = options.eta0;
  int counter_l = 1;

  for (int t = 1; t <= options.max_iterations; ++t) {
    if (std::abs(ghat_prev - ghat_prev2) <= options.epsilon) {
      result.converged = true;
      break;
    }

    // Line 3: signed fixed step towards the true utilization, clamped to
    // [0, 1] (the paper clamps at 1; the 0 clamp is never active when
    // gamma_t > 0 but protects degenerate inputs).
    double step = 0.0;
    if (gamma > ghat_prev)
      step = eta;
    else if (gamma < ghat_prev)
      step = -eta;
    const double ghat = std::clamp(ghat_prev + step, 0.0, 1.0);

    // Lines 5-7: every (gated) user best-responds to the broadcast estimate
    // using only its own parameters.
    const double g_value = delay(ghat);
    for (std::size_t n = 0; n < n_users; ++n) {
      if (options.update_gate && !options.update_gate(n, t)) continue;
      thresholds[n] =
          static_cast<double>(best_threshold(users[n], g_value));
    }

    // Lines 9-14: shrink the step when the estimate 2-cycles.
    if (t >= 2 && std::abs(ghat - ghat_prev2) <= options.oscillation_tol) {
      ++counter_l;
      eta = options.eta0 / counter_l;
    }

    // Line 15: next true utilization.
    const double gamma_next = source.utilization(thresholds);

    double mean_x = 0.0;
    for (const double x : thresholds) mean_x += x;
    mean_x /= static_cast<double>(n_users);
    const double realized_cost = average_cost(
        users, thresholds, delay, std::clamp(gamma_next, 0.0, 1.0));
    result.trace.push_back(
        DtuIterate{t, gamma, ghat, eta, mean_x, realized_cost});

    ghat_prev2 = ghat_prev;
    ghat_prev = ghat;
    gamma = gamma_next;
  }

  result.thresholds = std::move(thresholds);
  result.final_gamma_hat = ghat_prev;
  result.final_gamma = gamma;
  result.iterations = static_cast<int>(result.trace.size());
  return result;
}

}  // namespace mec::core

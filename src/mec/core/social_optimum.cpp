#include "mec/core/social_optimum.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace mec::core {

double edge_delay_derivative(const EdgeDelay& delay, double gamma, double h) {
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  MEC_EXPECTS(h > 0.0);
  const double lo = std::max(0.0, gamma - h);
  const double hi = std::min(1.0, gamma + h);
  return (delay(hi) - delay(lo)) / (hi - lo);
}

namespace {

/// Consistent evaluation of a threshold vector: the utilization it induces
/// and the average cost at that utilization.
struct Evaluated {
  double gamma;
  double mean_alpha;
  double cost;
};

Evaluated evaluate(std::span<const UserParams> users,
                   std::span<const double> xs, const EdgeDelay& delay,
                   double capacity) {
  Evaluated e{};
  e.gamma = std::min(1.0, utilization_of_thresholds(users, xs, capacity));
  double alpha_acc = 0.0;
  for (std::size_t n = 0; n < users.size(); ++n)
    alpha_acc += queueing::tro_offload_probability(users[n].intensity(),
                                                   xs[n]);
  e.mean_alpha = alpha_acc / static_cast<double>(users.size());
  e.cost = average_cost(users, xs, delay, e.gamma);
  return e;
}

}  // namespace

SocialOptimum solve_social_optimum(std::span<const UserParams> users,
                                   const EdgeDelay& delay, double capacity,
                                   const SocialOptimumOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(options.damping > 0.0 && options.damping <= 1.0);
  MEC_EXPECTS(options.tolerance > 0.0);
  MEC_EXPECTS(options.max_iterations >= 1);

  // Start from the Nash equilibrium (a feasible, decent initial point).
  const MfneResult nash = solve_mfne(users, delay, capacity);
  std::vector<double> nash_xs(nash.thresholds.begin(), nash.thresholds.end());
  const Evaluated nash_eval = evaluate(users, nash_xs, delay, capacity);

  double gamma = nash_eval.gamma;
  double mean_alpha = nash_eval.mean_alpha;

  SocialOptimum out;
  std::vector<double> xs(users.size(), 0.0);
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double price_base =
        edge_delay_derivative(delay, gamma) * mean_alpha / capacity;
    const double g_value = delay(gamma);
    for (std::size_t n = 0; n < users.size(); ++n) {
      // Congestion-priced edge delay for user n (price scales with a_n).
      const double priced =
          g_value + price_base * users[n].arrival_rate;
      xs[n] = static_cast<double>(best_threshold(users[n], priced));
    }
    const Evaluated e = evaluate(users, xs, delay, capacity);
    const double step = e.gamma - gamma;
    gamma += options.damping * step;
    mean_alpha += options.damping * (e.mean_alpha - mean_alpha);
    out.iterations = it;
    if (std::abs(step) < options.tolerance) {
      out.converged = true;
      break;
    }
  }

  Evaluated final_eval = evaluate(users, xs, delay, capacity);
  // A planner can always fall back to the Nash thresholds; never do worse.
  if (final_eval.cost > nash_eval.cost) {
    xs = nash_xs;
    final_eval = nash_eval;
  }
  out.gamma = final_eval.gamma;
  out.mean_alpha = final_eval.mean_alpha;
  out.congestion_price =
      edge_delay_derivative(delay, out.gamma) * out.mean_alpha / capacity;
  out.average_cost = final_eval.cost;
  out.thresholds.assign(xs.size(), 0);
  for (std::size_t n = 0; n < xs.size(); ++n)
    out.thresholds[n] = static_cast<std::int64_t>(std::llround(xs[n]));
  MEC_ENSURES(out.average_cost <= nash_eval.cost + 1e-12);
  return out;
}

double price_of_anarchy(std::span<const UserParams> users,
                        const EdgeDelay& delay, double capacity) {
  const MfneResult nash = solve_mfne(users, delay, capacity);
  std::vector<double> nash_xs(nash.thresholds.begin(), nash.thresholds.end());
  const double nash_cost =
      average_cost(users, nash_xs, delay,
                   std::min(1.0, utilization_of_thresholds(users, nash_xs,
                                                           capacity)));
  const SocialOptimum so = solve_social_optimum(users, delay, capacity);
  MEC_ENSURES(so.average_cost > 0.0);
  return nash_cost / so.average_cost;
}

}  // namespace mec::core

#include "mec/core/threshold_oracle.hpp"

#include <cmath>

#include "mec/common/error.hpp"

namespace mec::core {

namespace {
constexpr std::int64_t kMaxThreshold = 1'000'000;
}

double f_recursive(std::int64_t m, double theta) {
  MEC_EXPECTS(theta > 0.0);
  MEC_EXPECTS(m >= 0);
  MEC_EXPECTS(m <= kMaxThreshold);
  double f = 0.0;      // f(0)
  double geo = 0.0;    // sum_{i=1..j} theta^i
  double pw = 1.0;     // theta^j
  for (std::int64_t j = 1; j <= m; ++j) {
    pw *= theta;
    geo += pw;
    f += geo;  // f(j) = f(j-1) + sum_{i=1..j} theta^i
  }
  return f;
}

double f_closed_form(std::int64_t m, double theta) {
  MEC_EXPECTS(theta > 0.0);
  MEC_EXPECTS(m >= 0);
  const double one_minus = 1.0 - theta;
  // As theta -> 1 the numerator collapses to O(m^2 (1-theta)^2) through
  // cancellation of O(m)-sized terms, so the quotient loses ~2 digits per
  // decade of |1-theta| (worst at small m, where the numerator is just
  // (1-theta)^2); inside the cutoff the exact recurrence is both accurate
  // and cheap (it also covers theta == 1, where f = m(m+1)/2).
  if (std::abs(one_minus) < 1e-3) return f_recursive(m, theta);
  const auto md = static_cast<double>(m);
  return theta *
         (std::pow(theta, md + 1.0) - (md + 1.0) * theta + md) /
         (one_minus * one_minus);
}

std::int64_t best_threshold_for_price(double beta, double theta) {
  MEC_EXPECTS(theta > 0.0);
  if (beta < theta) return 0;  // f(1|theta) = theta; covers beta <= 0 too
  // Walk f(m) upward until f(m) <= beta < f(m+1).
  std::int64_t m = 1;
  double f = theta;    // f(1)
  double geo = theta;  // sum_{i=1..m} theta^i
  double pw = theta;   // theta^m
  for (;;) {
    pw *= theta;
    geo += pw;
    const double f_next = f + geo;  // f(m+1)
    if (beta < f_next) return m;
    f = f_next;
    ++m;
    MEC_EXPECTS_MSG(m <= kMaxThreshold,
                    "optimal threshold exceeds supported range; check that "
                    "model parameters are bounded");
  }
}

std::int64_t best_threshold(const UserParams& u, double edge_delay_value) {
  return best_threshold_for_price(offload_price(u, edge_delay_value),
                                  u.intensity());
}

double grid_search_threshold(const UserParams& u, double edge_delay_value,
                             double x_max, double step) {
  MEC_EXPECTS(x_max > 0.0);
  MEC_EXPECTS(step > 0.0);
  double best_x = 0.0;
  double best_cost = tro_cost(u, 0.0, edge_delay_value);
  for (double x = step; x <= x_max + step / 2.0; x += step) {
    const double c = tro_cost(u, x, edge_delay_value);
    if (c < best_cost) {
      best_cost = c;
      best_x = x;
    }
  }
  return best_x;
}

}  // namespace mec::core

// Large-system-limit best response via deterministic quasi-Monte Carlo.
//
// Theorem 1 is a statement about the mean-field expectation
//   V(gamma) = E_{A,S,T,P_L,P_E}[ A * alpha(x*(gamma)) / c ],
// not about any sampled population.  This module evaluates that expectation
// directly with a Halton low-discrepancy sequence pushed through the five
// marginal inverse CDFs (the heterogeneity coordinates are independent by
// assumption), giving a population-free, noise-free approximation of the
// limit.  Tests verify it agrees with the sampled-population V(gamma) to the
// expected O(1/sqrt(N)) statistical error.
#pragma once

#include <cstddef>
#include <functional>

#include "mec/core/edge_delay.hpp"

namespace mec::core {

/// Inverse CDF (quantile function) of a scalar marginal: maps u in [0,1)
/// to a sample value.
using InverseCdf = std::function<double(double)>;

/// Inverse CDF of U(lo, hi). Requires lo <= hi.
InverseCdf uniform_inverse_cdf(double lo, double hi);

/// Inverse CDF of a point mass.
InverseCdf constant_inverse_cdf(double value);

/// The five independent heterogeneity marginals plus system constants.
struct MeanFieldModel {
  InverseCdf arrival;         ///< A
  InverseCdf service;         ///< S
  InverseCdf latency;         ///< T
  InverseCdf energy_local;    ///< P_L
  InverseCdf energy_offload;  ///< P_E
  double weight = 1.0;        ///< w (common to all users, as in the paper)
  double capacity = 10.0;     ///< c
  EdgeDelay delay;            ///< g(.)
};

/// d-th Halton coordinate (prime bases 2,3,5,7,11) of index i >= 1.
/// Requires 0 <= d < 5.
double halton(std::size_t index, std::size_t dimension);

/// QMC estimate of V(gamma) with `points` Halton nodes.
/// Requires a fully-populated model, points >= 1, 0 <= gamma <= 1.
double mean_field_best_response(const MeanFieldModel& model, double gamma,
                                std::size_t points = 1 << 16);

/// Outcome of the mean-field bisection (mirrors MfneResult's contract).
struct MeanFieldEquilibrium {
  double gamma_star = 0.0;  ///< midpoint of the final bracket
  int iterations = 0;       ///< bisection iterations used
  /// True when the bracket reached `tolerance`; false when `max_iterations`
  /// cut the bisection off first (tolerances at or below one ulp of gamma*
  /// can never be met — the bracket stops shrinking).
  bool converged = false;
};

/// Solves V(gamma) = gamma by bisection on the QMC evaluation.
/// Requires V(0) < 1 (checked), tolerance > 0, max_iterations >= 1.
MeanFieldEquilibrium mean_field_equilibrium(const MeanFieldModel& model,
                                            std::size_t points = 1 << 16,
                                            double tolerance = 1e-8,
                                            int max_iterations = 200);

}  // namespace mec::core

// The Distributed Threshold Update (DTU) Algorithm — Algorithm 1.
//
// The edge broadcasts an *estimated* utilization gamma_hat_t that moves by a
// fixed step eta towards the true utilization gamma_t; every user then plays
// its Lemma-1 best response to gamma_hat_t using only its own parameters.
// When gamma_hat oscillates (gamma_hat_t == gamma_hat_{t-2}) the equilibrium
// lies between the two iterates and the step shrinks to eta_0/L with an
// incremented counter L.  Theorem 2: the iterates converge to the unique
// MFNE.
//
// The true utilization gamma_t is obtained from a pluggable
// UtilizationSource: the analytic Eq.-(6) evaluator (exact for exponential
// service) or a discrete-event-simulation-backed measurement (practical
// settings; see mec/sim/mec_simulation.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"

namespace mec::core {

/// Provides the true edge utilization induced by a threshold vector
/// (Algorithm 1, Eq. (6), or a measurement thereof).
class UtilizationSource {
 public:
  virtual ~UtilizationSource() = default;
  /// thresholds[n] is user n's current TRO threshold; returns gamma in [0,1+).
  virtual double utilization(std::span<const double> thresholds) = 0;
};

/// Exact Eq.-(6) utilization under exponential local service.
class AnalyticUtilization final : public UtilizationSource {
 public:
  /// Copies the population. Requires non-empty users and capacity > 0.
  AnalyticUtilization(std::span<const UserParams> users, double capacity);
  double utilization(std::span<const double> thresholds) override;

 private:
  std::vector<UserParams> users_;
  double capacity_;
};

/// Decides whether user `n` participates in the threshold update of
/// iteration `t` (asynchronous updates, Section IV-B). Null gate = always.
using UpdateGate = std::function<bool(std::size_t n, int t)>;

/// Stateless deterministic gate: user n updates in iteration t with
/// probability `p` (hash-based, independent across (n, t) pairs).
/// Requires 0 <= p <= 1.
UpdateGate make_bernoulli_gate(double p, std::uint64_t seed = 0);

struct DtuOptions {
  // Defaults give the paper's ~20-iteration convergence profile (Fig. 5/7).
  // The step decays harmonically (eta0/L), so reaching accuracy epsilon
  // costs O(eta0/epsilon) iterations — pick the pair jointly.
  double eta0 = 0.1;            ///< initial step, 0 < eta0 <= 1
  double epsilon = 0.01;        ///< convergence accuracy, 0 < epsilon < 1
  int max_iterations = 100000;  ///< hard guard
  double oscillation_tol = 1e-12;  ///< FP tolerance for gamma_hat_t == gamma_hat_{t-2}
  std::vector<double> initial_thresholds;  ///< empty => all users start at 0
  UpdateGate update_gate;       ///< null => synchronous updates
};

/// One recorded iteration of the algorithm.
struct DtuIterate {
  int t = 0;
  double gamma = 0.0;        ///< true utilization gamma_t seen at iteration t
  double gamma_hat = 0.0;    ///< broadcast estimate gamma_hat_t
  double eta = 0.0;          ///< step size eta_t (after the line 9-14 update)
  double mean_threshold = 0.0;
  /// Population-average Eq.-(1) cost of the thresholds chosen this
  /// iteration, at the true utilization they induce — the cost users
  /// actually pay while the algorithm is still converging (transient
  /// regret analysis).
  double mean_cost = 0.0;
};

struct DtuResult {
  std::vector<DtuIterate> trace;
  std::vector<double> thresholds;  ///< final per-user thresholds
  double final_gamma_hat = 0.0;
  double final_gamma = 0.0;        ///< true utilization of final thresholds
  bool converged = false;          ///< stop criterion met before max_iterations
  int iterations = 0;
};

/// Runs Algorithm 1 to convergence. Requires non-empty users, a valid delay,
/// 0 < eta0 <= 1, 0 < epsilon < 1, and initial_thresholds either empty or of
/// matching size with non-negative entries.
DtuResult run_dtu(std::span<const UserParams> users, const EdgeDelay& delay,
                  UtilizationSource& source, const DtuOptions& options = {});

}  // namespace mec::core

// Population-level best response V(gamma) — Eq. (9).
//
// Given a (finite but large) population of users and a current edge
// utilization gamma, every user plays its Lemma-1 best threshold; the
// resulting aggregate utilization is
//
//   V(gamma) = (1/N) * sum_n  a_n * alpha_n(x*_n(gamma)) / c
//
// which converges to the mean-field expectation E[A*alpha(x*(gamma))/c] as
// N -> infinity (Strong Law of Large Numbers).  Theorem 1 shows V is
// continuous and non-increasing; the MFNE solver exploits this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/parallel/thread_pool.hpp"

namespace mec::core {

/// Per-user output of a best-response sweep.
struct BestResponse {
  std::vector<std::int64_t> thresholds;  ///< x*_n(gamma), one per user
  double utilization;                    ///< V(gamma)
};

/// Computes every user's Lemma-1 threshold at utilization `gamma` and the
/// resulting aggregate utilization. Requires a valid delay, capacity c > 0,
/// non-empty population, and 0 <= gamma <= 1.
BestResponse best_response(std::span<const UserParams> users,
                           const EdgeDelay& delay, double capacity,
                           double gamma);

/// As above, with the per-user sweep (embarrassingly parallel) spread across
/// `pool`.  Per-user contributions land in per-index slots and are reduced
/// serially in user order, so the result is bit-identical to the serial
/// overload for every thread count.
BestResponse best_response(std::span<const UserParams> users,
                           const EdgeDelay& delay, double capacity,
                           double gamma, parallel::ThreadPool& pool);

/// Aggregate utilization induced by an arbitrary (not necessarily optimal)
/// threshold vector: (1/N) * sum a_n * alpha_n(x_n) / c.  This is Algorithm
/// 1's gamma_{t+1} update (Eq. (6)). Sizes must match; thresholds >= 0.
double utilization_of_thresholds(std::span<const UserParams> users,
                                 std::span<const double> thresholds,
                                 double capacity);

/// Parallel overload of the Eq.-(6) map; bit-identical to the serial one
/// (per-index slots, serial in-order reduction).
double utilization_of_thresholds(std::span<const UserParams> users,
                                 std::span<const double> thresholds,
                                 double capacity, parallel::ThreadPool& pool);

/// Average Eq.-(1) cost across the population when user n plays thresholds[n]
/// and the edge delay value is g(gamma). Sizes must match.
double average_cost(std::span<const UserParams> users,
                    std::span<const double> thresholds,
                    const EdgeDelay& delay, double gamma);

}  // namespace mec::core

#include "mec/core/mean_field_integral.hpp"

#include <array>

#include "mec/common/error.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/core/user.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace mec::core {

InverseCdf uniform_inverse_cdf(double lo, double hi) {
  MEC_EXPECTS(lo <= hi);
  return [lo, hi](double u) { return lo + (hi - lo) * u; };
}

InverseCdf constant_inverse_cdf(double value) {
  return [value](double) { return value; };
}

double halton(std::size_t index, std::size_t dimension) {
  static constexpr std::array<std::size_t, 5> kPrimes = {2, 3, 5, 7, 11};
  MEC_EXPECTS(dimension < kPrimes.size());
  MEC_EXPECTS(index >= 1);
  const std::size_t base = kPrimes[dimension];
  double f = 1.0, r = 0.0;
  std::size_t i = index;
  while (i > 0) {
    f /= static_cast<double>(base);
    r += f * static_cast<double>(i % base);
    i /= base;
  }
  return r;
}

namespace {

void check_model(const MeanFieldModel& model) {
  MEC_EXPECTS_MSG(model.arrival && model.service && model.latency &&
                      model.energy_local && model.energy_offload,
                  "all five marginals must be set");
  MEC_EXPECTS(model.weight > 0.0);
  MEC_EXPECTS(model.capacity > 0.0);
  MEC_EXPECTS(model.delay.valid());
}

}  // namespace

double mean_field_best_response(const MeanFieldModel& model, double gamma,
                                std::size_t points) {
  check_model(model);
  MEC_EXPECTS(points >= 1);
  MEC_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  const double g_value = model.delay(gamma);

  double acc = 0.0;
  for (std::size_t i = 1; i <= points; ++i) {
    UserParams u;
    u.arrival_rate = model.arrival(halton(i, 0));
    u.service_rate = model.service(halton(i, 1));
    u.offload_latency = model.latency(halton(i, 2));
    u.energy_local = model.energy_local(halton(i, 3));
    u.energy_offload = model.energy_offload(halton(i, 4));
    u.weight = model.weight;
    if (u.arrival_rate <= 0.0) continue;  // A > 0 a.s.; skip boundary node
    const auto x = static_cast<double>(best_threshold(u, g_value));
    acc += u.arrival_rate *
           queueing::tro_offload_probability(u.intensity(), x);
  }
  return acc / (static_cast<double>(points) * model.capacity);
}

MeanFieldEquilibrium mean_field_equilibrium(const MeanFieldModel& model,
                                            std::size_t points,
                                            double tolerance,
                                            int max_iterations) {
  check_model(model);
  MEC_EXPECTS(tolerance > 0.0);
  MEC_EXPECTS(max_iterations >= 1);
  const double v0 = mean_field_best_response(model, 0.0, points);
  MEC_EXPECTS_MSG(v0 < 1.0, "V(0) >= 1: capacity too small");
  MeanFieldEquilibrium result;
  if (v0 == 0.0) {
    result.converged = true;  // exact: gamma* = 0
    return result;
  }

  // Guarded like solve_mfne: for tolerances near/below one ulp the bracket
  // stops shrinking (0.5*(lo+hi) rounds back to lo or hi) and an unguarded
  // loop never exits.
  double lo = 0.0, hi = 1.0;
  int iters = 0;
  while (hi - lo > tolerance && iters < max_iterations) {
    const double mid = 0.5 * (lo + hi);
    if (mean_field_best_response(model, mid, points) > mid)
      lo = mid;
    else
      hi = mid;
    ++iters;
  }
  result.gamma_star = 0.5 * (lo + hi);
  result.iterations = iters;
  result.converged = hi - lo <= tolerance;
  return result;
}

}  // namespace mec::core

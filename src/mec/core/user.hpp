// Per-user parameters of the heterogeneous MEC model (Section II).
#pragma once

#include "mec/common/error.hpp"

namespace mec::core {

/// One mobile device / user.  All members are the *means* of the underlying
/// stochastic primitives: tasks arrive Poisson(arrival_rate), local service is
/// (by default) exponential(service_rate), each offloaded task pays a wireless
/// latency with mean offload_latency plus the edge processing delay g(gamma),
/// and energies are per-task averages.
struct UserParams {
  double arrival_rate = 1.0;     ///< a_n > 0, tasks per second
  double service_rate = 1.0;     ///< s_n > 0, local tasks per second
  double offload_latency = 0.0;  ///< tau_n >= 0, seconds
  double energy_local = 0.0;     ///< p_{n,L} >= 0, per-task local energy
  double energy_offload = 0.0;   ///< p_{n,E} >= 0, per-task offload energy
  double weight = 1.0;           ///< w_n > 0, energy-vs-delay trade-off

  /// Arrival intensity theta = a/s.
  double intensity() const {
    MEC_EXPECTS(service_rate > 0.0);
    return arrival_rate / service_rate;
  }

  /// Validates the model's positivity/boundedness assumptions.
  void check() const {
    MEC_EXPECTS_MSG(arrival_rate > 0.0, "arrival rate must be positive");
    MEC_EXPECTS_MSG(service_rate > 0.0, "service rate must be positive");
    MEC_EXPECTS(offload_latency >= 0.0);
    MEC_EXPECTS(energy_local >= 0.0);
    MEC_EXPECTS(energy_offload >= 0.0);
    MEC_EXPECTS_MSG(weight > 0.0, "weight must be positive");
  }
};

}  // namespace mec::core

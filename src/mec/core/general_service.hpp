// Best response, cost, and equilibrium when local service is phase-type
// rather than exponential — the analytic companion to the paper's
// "results still hold under general scenarios" simulations (Section IV-B).
//
// Lemma 1's integer-threshold characterization is exponential-specific; here
// the best threshold is found by exact search over integer thresholds using
// the CTMC-solved phase-type queue metrics (the cost remains quasi-convex in
// x in all regimes we probe, and the search window is provably sufficient
// because alpha is non-increasing and the offload price is bounded).
//
// Two operating modes matter in practice:
//   * model-aware: devices pick thresholds with the true service law;
//   * model-mismatched: devices apply the exponential Lemma-1 oracle with
//     only their mean service rate (what the paper's practical DTU does).
// The ablation bench quantifies the cost of the mismatch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/queueing/phase_type.hpp"

namespace mec::core {

/// Eq.-(1) cost of user `u` under threshold `x` when its local service is
/// `shape` rescaled to mean 1/u.service_rate. Requires x >= 0 and
/// edge_delay_value >= 0.
double phase_type_cost(const UserParams& u, const queueing::PhaseType& shape,
                       double x, double edge_delay_value);

/// Cost-minimizing integer threshold under phase-type service, by exact
/// search with an adaptive stopping rule (stops once the cost has risen for
/// `patience` consecutive integers past the incumbent; the cost's tail is
/// eventually increasing because alpha(x) -> its floor and Q(x) grows).
/// Requires max_threshold in [1, 400].
std::int64_t best_threshold_phase_type(const UserParams& u,
                                       const queueing::PhaseType& shape,
                                       double edge_delay_value,
                                       std::int64_t max_threshold = 200,
                                       int patience = 6);

/// Population best-response utilization under phase-type service (the
/// phase-type analogue of Eq. (9)): every user plays its phase-type best
/// threshold at utilization gamma. Requires matching preconditions of
/// best_response().
double phase_type_best_response(std::span<const UserParams> users,
                                const queueing::PhaseType& shape,
                                const EdgeDelay& delay, double capacity,
                                double gamma);

struct PhaseTypeEquilibrium {
  double gamma_star = 0.0;
  std::vector<std::int64_t> thresholds;
  double average_cost = 0.0;
};

/// Fixed point of the phase-type best response (bisection; the map is
/// non-increasing in gamma by the same monotonicity argument as Theorem 1).
PhaseTypeEquilibrium solve_phase_type_equilibrium(
    std::span<const UserParams> users, const queueing::PhaseType& shape,
    const EdgeDelay& delay, double capacity, double tolerance = 1e-6);

}  // namespace mec::core

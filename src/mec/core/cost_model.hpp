// The per-user average cost, Eq. (1) of the paper:
//
//   C(x; gamma) = w * p_L * (1 - alpha(x))
//               + Q(x) / a
//               + (w * p_E + g(gamma) + tau) * alpha(x)
//
// i.e. local energy weighted by the fraction of locally-processed tasks, the
// time-average local backlog per unit arrival (by Little's law this is the
// mean local delay scaled by the local fraction), and the offloading latency,
// edge processing delay and offloading energy weighted by the offloaded
// fraction.  Exact for exponential local service via the closed-form TRO
// queue; the DES path measures the same functional empirically.
#pragma once

#include "mec/core/user.hpp"

namespace mec::core {

/// Decomposition of the Eq. (1) cost, useful for reporting.
struct CostBreakdown {
  double local_energy;    ///< w * p_L * (1 - alpha)
  double queueing;        ///< Q(x) / a
  double offload;         ///< (w * p_E + g + tau) * alpha
  double alpha;           ///< offload probability at this threshold
  double mean_queue;      ///< Q(x)

  double total() const noexcept { return local_energy + queueing + offload; }
};

/// Cost of user `u` under threshold `x` when the edge delay value is
/// `edge_delay_value` (= g(gamma)). Requires x >= 0, edge_delay_value >= 0.
CostBreakdown tro_cost_breakdown(const UserParams& u, double x,
                                 double edge_delay_value);

/// Shorthand for tro_cost_breakdown(...).total().
double tro_cost(const UserParams& u, double x, double edge_delay_value);

/// The "offload price" beta = a * (g + tau + w*(p_E - p_L)) that Lemma 1
/// compares against f(m|theta). May be negative (offloading saves energy).
double offload_price(const UserParams& u, double edge_delay_value);

}  // namespace mec::core

#include "mec/sim/coupling.hpp"

#include <algorithm>

namespace mec::sim {

double GammaReplay::clamped_gamma(double rate, std::size_t cluster) const {
  // Single-cluster bit-compat: caps_[0] == edge_capacity (share 1.0) and
  // cluster_scale stays 1.0 without cluster faults, so this reduces to the
  // pre-cluster `rate / (edge_capacity * scale)` bit-for-bit.
  return std::clamp(
      rate / (caps_[cluster] * walk_.scale * walk_.cluster_scale[cluster]),
      0.0, 1.0);
}

void GammaReplay::consume(
    std::span<const std::span<const OffloadRecord>> logs,
    double* offload_delay_sums, stats::LatencySketch& offload_delays) {
  cursors_.assign(logs.size(), 0);
  for (;;) {
    // K-way merge head: earliest record, lowest shard first at exact ties.
    std::size_t best = logs.size();
    double best_time = 0.0;
    for (std::size_t s = 0; s < logs.size(); ++s) {
      if (cursors_[s] >= logs[s].size()) continue;
      const double t = logs[s][cursors_[s]].time;
      if (best == logs.size() || t < best_time) {
        best = s;
        best_time = t;
      }
    }
    if (best == logs.size()) break;
    const OffloadRecord& r = logs[best][cursors_[best]++];

    // A fault event at the same instant as a task event popped first in the
    // single-queue engine (scheduled earlier => lower sequence number), so
    // environment actions apply up to and including the record's time.
    walk_.advance_to(r.time, /*inclusive=*/true);
    EwmaRate& rate = bank_[r.cluster];
    const double gamma = clamped_gamma(rate.rate_at(r.time), r.cluster);
    double delay_value = (*delay_)(gamma);
    if (r.penalized) delay_value += r.penalty;
    rate.record_event(r.time);

    // Same associativity as the engine's queue.push(now + latency + dv).
    const double delivery = r.time + r.latency + delay_value;
    if (delivery <= t_end_) {
      ++deliveries_;
      if (delivery >= warmup_) flip_trigger_ = true;
    }
    if (r.measured) {
      offload_delay_sums[r.device] += r.latency + delay_value;
      offload_delays.add(r.latency + delay_value);
    }
  }
}

}  // namespace mec::sim

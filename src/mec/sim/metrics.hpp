// Measurement containers produced by the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mec/stats/latency_sketch.hpp"

namespace mec::sim {

/// Steady-state estimates for one device over the measurement window.
struct DeviceStats {
  std::uint64_t arrivals = 0;          ///< tasks arrived in the window
  std::uint64_t offloaded = 0;         ///< of which offloaded
  std::uint64_t local_completed = 0;   ///< local service completions
  double mean_queue_length = 0.0;      ///< time-average local queue length
  double offload_fraction = 0.0;       ///< offloaded / arrivals (0 if none)
  double mean_local_sojourn = 0.0;     ///< mean local task time-in-system
  double mean_offload_delay = 0.0;     ///< mean tau + g(gamma) per offload
  double energy_per_task = 0.0;        ///< mean energy across all arrivals
  double empirical_cost = 0.0;         ///< Eq.-(1) functional from measurements
};

/// One sampled point of the system's trajectory (telemetry; see
/// SimulationOptions::sample_interval).
///
/// Semantics: every field is the state *as of the scheduled sample time*,
/// taken as a left limit.  Samples are physically flushed when the engine
/// reaches the next event, but queue lengths are piecewise constant between
/// events — so the recorded queue state is exactly the state an observer
/// would have seen at `time`, excluding any event at `time` itself — and the
/// utilization EWMA is decayed to exactly `time` before being read.
/// Consequently the timeline is invariant to the sample interval: two runs
/// of the same seed with intervals 1 and 2 agree on every shared instant
/// (tested), and sampling never perturbs the event stream.
struct TimelinePoint {
  double time = 0.0;                 ///< scheduled sample time (absolute)
  double utilization_estimate = 0.0; ///< EWMA (or fixed) gamma decayed to `time`
  double mean_queue_length = 0.0;    ///< mean local queue, left limit at `time`
  /// Offload decisions made in (warmup, time); 0 for samples at or before
  /// the end of warm-up (the measurement counters start only there).
  std::uint64_t offloads_so_far = 0;
  /// Edge capacity scale in effect at `time` (1.0 without faults); the mean
  /// queue length above averages over `active_devices` devices.
  double capacity_scale = 1.0;
  std::uint64_t active_devices = 0;
};

/// Degraded-mode accounting of one run under a FaultSchedule; all zeros /
/// nominal when the run had no schedule.  Structural counters (crashes,
/// restarts, churn) cover the whole run; task-level counters and the
/// time-weighted capacity figures cover only the measurement window,
/// matching every other measured quantity.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t churn_joined = 0;
  std::uint64_t churn_departed = 0;
  std::uint64_t tasks_lost = 0;          ///< queued tasks dropped by crashes
                                         ///< and departures
  std::uint64_t offloads_rejected = 0;   ///< outage reroutes to local
  std::uint64_t offloads_penalized = 0;  ///< outage latency penalties paid
  double min_capacity_scale = 1.0;       ///< lowest scale seen in the window
  double mean_capacity_scale = 1.0;      ///< time-weighted over the window
  double degraded_time = 0.0;  ///< window seconds with scale < 1 or outage
  /// Devices contributing to the population means: the initial population
  /// plus churn users that joined before the horizon end (never-joined
  /// churn slots report all-zero DeviceStats and are excluded).
  std::uint64_t participating_devices = 0;

  bool any() const noexcept {
    return crashes | restarts | churn_joined | churn_departed | tasks_lost |
           offloads_rejected | offloads_penalized ||
           min_capacity_scale != 1.0 || degraded_time > 0.0;
  }
};

/// Whole-system result of one simulation run.
struct SimulationResult {
  std::vector<DeviceStats> devices;
  /// Population-level per-task latency percentiles over the measurement
  /// window (mergeable log-binned sketches, so per-shard partials combine
  /// exactly; empty when no tasks of the kind occurred).
  stats::LatencySketch local_sojourn_percentiles;
  stats::LatencySketch offload_delay_percentiles;
  /// Sampled system trajectory; empty unless sampling was enabled.
  std::vector<TimelinePoint> timeline;
  /// Degraded-mode accounting (all nominal when no FaultSchedule ran).
  FaultStats faults;
  double measured_utilization = 0.0;  ///< offload task rate / (N*c)
  /// Per-cluster measured utilization (offload task rate into cluster k
  /// over its capacity share) and measured offload counts; size = the
  /// run's cluster count (1 for the default topology).
  std::vector<double> cluster_utilization;
  std::vector<std::uint64_t> cluster_offloads;
  double mean_cost = 0.0;             ///< population mean of empirical_cost
  double mean_queue_length = 0.0;     ///< population mean
  double mean_offload_fraction = 0.0; ///< population mean (per-device alpha)
  double horizon = 0.0;               ///< measurement window length
  std::uint64_t total_events = 0;     ///< events processed (incl. warm-up)

  /// Population mean of a DeviceStats field; requires non-empty devices.
  template <typename Getter>
  double device_mean(Getter&& get) const {
    double acc = 0.0;
    for (const auto& d : devices) acc += get(d);
    return acc / static_cast<double>(devices.size());
  }
};

/// One-paragraph human-readable summary (used by the examples).
std::string summarize(const SimulationResult& result);

}  // namespace mec::sim

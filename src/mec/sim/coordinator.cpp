#include "mec/sim/coordinator.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/common/instrument.hpp"
#include "mec/obs/counters.hpp"
#include "mec/obs/stream.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/observer.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::sim::engine {
namespace {

/// Self-describing meta frame for a run's stream log: scenario shape,
/// cadences, gamma mode, and the counter catalogue.  Values here describe
/// the run, so they are identical for every shard count except `shards`
/// itself — and deliberately carry nothing transport-specific, which is
/// what lets CI byte-compare a process-transport stream against the
/// in-process one.  Determinism tests compare window frames, not metadata.
obs::RunLogMeta make_stream_meta(const CoordinatorContext& cc) {
  const SimulationOptions& options = *cc.options;
  obs::RunLogMeta meta;
  meta.emplace_back("n_devices", std::to_string(cc.n_devices));
  meta.emplace_back("n_initial", std::to_string(cc.n_initial));
  meta.emplace_back("capacity", obs::meta_double(cc.capacity));
  meta.emplace_back("clusters", std::to_string(options.topology.clusters));
  meta.emplace_back("seed", std::to_string(options.seed));
  meta.emplace_back("warmup", obs::meta_double(options.warmup));
  meta.emplace_back("horizon", obs::meta_double(options.horizon));
  meta.emplace_back("window", obs::meta_double(options.sample_interval));
  meta.emplace_back("epoch_period", obs::meta_double(options.epoch_period));
  meta.emplace_back("gamma",
                    options.fixed_gamma.has_value()
                        ? "fixed=" + obs::meta_double(*options.fixed_gamma)
                        : std::string("tracked"));
  meta.emplace_back("shards", std::to_string(cc.shard_count));
  meta.emplace_back("faults", cc.with_faults ? "1" : "0");
  std::string catalogue;
  for (std::uint16_t id = 0; id < obs::kCounterCount; ++id) {
    if (!catalogue.empty()) catalogue += ';';
    catalogue += std::to_string(id) + "=" +
                 obs::counter_name(static_cast<obs::Counter>(id));
  }
  meta.emplace_back("counters", catalogue);
  return meta;
}

}  // namespace

SimulationResult coordinator_run(const CoordinatorContext& cc,
                                 parallel::Transport& transport) {
  const SimulationOptions& options = *cc.options;
  const fault::FaultPlan& plan = *cc.plan;
  const bool has_fixed_gamma = options.fixed_gamma.has_value();

  // Streaming telemetry (src/mec/obs/): a StreamingSink folds each sample
  // instant into one window frame at the barrier.  Everything here runs at
  // barrier cadence only — a run without a stream log takes none of these
  // branches inside the legs themselves.
  std::unique_ptr<obs::StreamingSink> stream;
  std::vector<std::uint32_t> thresh_hist;  ///< per-window scratch
  std::vector<obs::CounterValue> counter_scratch;
  if (!options.stream_log.empty()) {
    stream = std::make_unique<obs::StreamingSink>(
        options.stream_log, make_stream_meta(cc),
        options.stream_counters && obs_counters_compiled());
    thresh_hist.assign(obs::kThresholdBins, 0);
  }
  const bool counters_on = stream != nullptr && stream->counters_enabled();

  std::optional<GammaReplay> replay;
  // Tracked-mode per-device offload-delay sums, accumulated by the replay.
  // Kept coordinator-side (device states may live in worker processes); a
  // device's final delay sum is this entry in tracked mode and the rank's
  // DeviceTotals field in fixed-gamma mode — never a mix (the rank-side
  // field provably stays 0.0 in tracked mode).
  std::vector<double> replay_delay;
  if (!has_fixed_gamma) {
    replay.emplace(*cc.delay, options.utilization_ewma_tau,
                   options.initial_gamma, cc.edge_capacity, options.warmup,
                   cc.t_end, cc.n_initial, plan.actions, options.topology);
    replay_delay.assign(cc.n_devices, 0.0);
  }
  // Per-cluster gamma reads, shared by the window frames and the
  // on_cluster_epoch hook.  Quasi-stationary runs replicate the pinned
  // value; tracked runs read the replay's per-cluster EWMA bank.
  std::vector<double> fixed_cluster_gammas;
  if (has_fixed_gamma)
    fixed_cluster_gammas.assign(cc.n_clusters, *options.fixed_gamma);
  const auto cluster_gammas_at = [&](double at) -> std::span<const double> {
    if (has_fixed_gamma) return fixed_cluster_gammas;
    return replay->cluster_gammas(at);
  };
  std::vector<std::uint64_t> cluster_off_scratch;  ///< per-window sums
  stats::LatencySketch local_sojourns;
  stats::LatencySketch offload_delays;
  // Feeds the legs' offload logs — fully drained, they cover exactly the
  // records before the current barrier — through the replay.  Ranks free
  // their logs at the start of the next advance.
  std::vector<std::span<const OffloadRecord>> log_spans;
  std::uint64_t replay_backlog = 0;  ///< records drained since last counters
  const auto drain_logs =
      [&](std::span<const parallel::ShardBarrierView> views) {
        if (has_fixed_gamma) return;
        log_spans.clear();
        for (const parallel::ShardBarrierView& v : views) {
          log_spans.push_back(v.log);
          replay_backlog += v.log.size();
        }
        replay->consume(log_spans, replay_delay.data(), offload_delays);
      };

  // Environment cursor for sample reads in fixed-gamma mode (the replay
  // carries its own in tracked mode).
  fault::EnvWalk sample_walk;
  sample_walk.actions = plan.actions;
  sample_walk.active = cc.n_initial;

  TimelineRecorder recorder;
  // Cursor over the resolved fault plan (time-sorted): actions strictly
  // before a barrier have all been popped by the exclusive legs, so the
  // count is exact — and K-invariant — at every barrier.
  std::size_t fault_cursor = 0;
  // Per-window cumulative sketch snapshots (merged in shard order; the
  // log-binned merge is order-invariant and exact, so the snapshot equals
  // what a single queue would have accumulated so far).
  stats::LatencySketch window_sojourns;
  stats::LatencySketch window_offload_delays;
  std::vector<double> thresh_scratch;  ///< post-epoch broadcast buffer
  std::uint64_t counter_prev_events = 0;
  const ObservationGrid grid(options.sample_interval, options.epoch_period,
                             cc.t_end);
  for (const GridInstant& g : grid.instants()) {
    parallel::BarrierRequest req;
    req.limit = g.time;
    req.inclusive = false;
    req.want_q = g.sample;
    req.want_q2 = g.sample && stream != nullptr;
    req.want_sketches = g.sample && stream != nullptr;
    req.want_queue_stats = counters_on && g.sample;
    const std::span<const parallel::ShardBarrierView> views =
        transport.advance(req);
    drain_logs(views);
    if (g.sample) {
      TimelinePoint p;
      p.time = g.time;
      double scale = 1.0;
      std::uint64_t active = cc.n_devices;
      if (has_fixed_gamma) {
        p.utilization_estimate = *options.fixed_gamma;
        if (cc.with_faults) {
          sample_walk.advance_to(g.time, /*inclusive=*/false);
          scale = sample_walk.scale;
          active = sample_walk.active;
        }
      } else {
        p.utilization_estimate = replay->gamma_at(g.time);
        if (cc.with_faults) {
          scale = replay->capacity_scale();
          active = replay->active_devices();
        }
      }
      const double total_q = transport.total_q();
      const double total_q2 = transport.total_q2();
      if (cc.with_faults) {
        // Dead/retired queues are empty, so the sum already covers exactly
        // the active population.
        p.capacity_scale = scale;
        p.active_devices = active;
        p.mean_queue_length =
            active == 0 ? 0.0 : total_q / static_cast<double>(active);
      } else {
        p.active_devices = cc.n_devices;
        p.mean_queue_length = total_q / static_cast<double>(cc.n_devices);
      }
      std::uint64_t so_far = 0;
      for (const parallel::ShardBarrierView& v : views)
        so_far += v.offloads_in_window;
      p.offloads_so_far = so_far;
      if (options.record_timeline) recorder.on_sample(p);
      if (stream != nullptr) {
        stream->on_sample(p);
        obs::WindowExtras extras;
        extras.queue_second_moment =
            p.active_devices == 0
                ? 0.0
                : total_q2 / static_cast<double>(p.active_devices);
        // Cumulative event total at this barrier: shard task-event pops
        // (order-invariant sum) + fault actions popped (cursor) + replay
        // deliveries (serial) — each term K-invariant by construction.
        std::uint64_t events_now = 0;
        for (const parallel::ShardBarrierView& v : views)
          events_now += v.events;
        if (cc.with_faults) {
          while (fault_cursor < plan.actions.size() &&
                 plan.actions[fault_cursor].time < g.time)
            ++fault_cursor;
          events_now += fault_cursor;
          std::uint64_t lost = 0, rejected = 0, penalized = 0;
          for (const parallel::ShardBarrierView& v : views) {
            lost += v.tasks_lost;
            rejected += v.offloads_rejected;
            penalized += v.offloads_penalized;
          }
          extras.tasks_lost = lost;
          extras.offloads_rejected = rejected;
          extras.offloads_penalized = penalized;
          extras.fault_events_applied = fault_cursor;
        }
        if (!has_fixed_gamma) events_now += replay->deliveries();
        extras.events_so_far = events_now;
        window_sojourns = stats::LatencySketch{};
        for (const parallel::ShardBarrierView& v : views)
          window_sojourns.merge(*v.local_sojourns);
        extras.sojourns = &window_sojourns;
        if (has_fixed_gamma) {
          window_offload_delays = stats::LatencySketch{};
          for (const parallel::ShardBarrierView& v : views)
            window_offload_delays.merge(*v.offload_delays);
          extras.offload_delays = &window_offload_delays;
        } else {
          extras.offload_delays = &offload_delays;
        }
        std::fill(thresh_hist.begin(), thresh_hist.end(), 0u);
        for (std::uint32_t d = 0; d < cc.n_devices; ++d) {
          const double th = cc.threshold_of(d);
          if (th < 0.0) continue;
          const std::size_t bin =
              th >= static_cast<double>(obs::kThresholdBins - 1)
                  ? obs::kThresholdBins - 1
                  : static_cast<std::size_t>(th);
          ++thresh_hist[bin];
        }
        extras.threshold_histogram = thresh_hist;
        cluster_off_scratch.assign(cc.n_clusters, 0);
        for (const parallel::ShardBarrierView& v : views)
          for (std::uint32_t k = 0; k < cc.n_clusters; ++k)
            cluster_off_scratch[k] += v.cluster_offloads[k];
        extras.cluster_gamma = cluster_gammas_at(g.time);
        extras.cluster_offloads = cluster_off_scratch;
        stream->commit_window(extras);
        if (counters_on) {
          counter_scratch.clear();
          const auto add = [&](obs::Counter id, std::uint16_t shard,
                               double value) {
            counter_scratch.push_back(
                {static_cast<std::uint16_t>(id), shard, value});
          };
          double leg_min = views[0].leg_seconds;
          double leg_max = views[0].leg_seconds;
          for (const parallel::ShardBarrierView& v : views) {
            const auto sid = static_cast<std::uint16_t>(v.shard);
            add(obs::Counter::kShardEvents, sid,
                static_cast<double>(v.events));
            add(obs::Counter::kShardQueueDepth, sid, v.queue_depth);
            add(obs::Counter::kShardCalendarGear, sid, v.calendar_gear);
            add(obs::Counter::kShardGearSwitches, sid, v.gear_switches);
            add(obs::Counter::kShardCalendarRetunes, sid,
                v.calendar_retunes);
            add(obs::Counter::kShardLegSeconds, sid, v.leg_seconds);
            leg_min = std::min(leg_min, v.leg_seconds);
            leg_max = std::max(leg_max, v.leg_seconds);
          }
          add(obs::Counter::kBarrierWaitSeconds, obs::kGlobalShard,
              cc.shard_count > 1 ? leg_max - leg_min : 0.0);
          add(obs::Counter::kReplayRecords, obs::kGlobalShard,
              static_cast<double>(replay_backlog));
          replay_backlog = 0;
          if (!has_fixed_gamma)
            add(obs::Counter::kReplayDeliveries, obs::kGlobalShard,
                static_cast<double>(replay->deliveries()));
          if (cc.with_faults)
            add(obs::Counter::kFaultEventsApplied, obs::kGlobalShard,
                static_cast<double>(fault_cursor));
          add(obs::Counter::kEventsPerSecond, obs::kGlobalShard,
              leg_max > 0.0 ? static_cast<double>(events_now -
                                                  counter_prev_events) /
                                  leg_max
                            : 0.0);
          counter_prev_events = events_now;
          if (transport.metered()) {
            for (std::size_t r = 0; r < transport.ranks(); ++r) {
              const parallel::RankStats rs = transport.rank_stats(r);
              const auto rid = static_cast<std::uint16_t>(r);
              add(obs::Counter::kRankBarrierWaitSeconds, rid,
                  rs.barrier_wait_seconds);
              add(obs::Counter::kRankPayloadBytes, rid,
                  static_cast<double>(rs.payload_bytes));
              add(obs::Counter::kTransportFramesSent, rid,
                  static_cast<double>(rs.frames_sent));
              add(obs::Counter::kTransportFramesReceived, rid,
                  static_cast<double>(rs.frames_received));
            }
          }
          stream->append_counters(counter_scratch);
        }
      }
    }
    if (g.epoch) {
      if (options.on_epoch) {
        const double gamma = has_fixed_gamma ? *options.fixed_gamma
                                             : replay->gamma_at(g.time);
        options.on_epoch(g.time, gamma);
      }
      // Fires after on_epoch; epoch instants are barriers, so controller
      // state mutated here is seen identically by every shard count.
      if (options.on_cluster_epoch)
        options.on_cluster_epoch(g.time, cluster_gammas_at(g.time));
      // Epoch callbacks are the only place thresholds change; ranks holding
      // mirrored policy copies get the post-epoch values before their next
      // leg.  Shards always see a frozen policy between barriers either
      // way, so the mirror is exactly as fresh as the live pointers.
      if (transport.wants_thresholds() &&
          (options.on_epoch || options.on_cluster_epoch)) {
        thresh_scratch.resize(cc.n_devices);
        for (std::uint32_t d = 0; d < cc.n_devices; ++d)
          thresh_scratch[d] = cc.threshold_of(d);
        transport.broadcast_thresholds(thresh_scratch);
      }
    }
  }
  parallel::BarrierRequest final_req;
  final_req.limit = cc.t_end;
  final_req.inclusive = true;
  final_req.want_sketches = true;  // run-end percentile merges below
  const std::span<const parallel::ShardBarrierView> final_views =
      transport.advance(final_req);
  drain_logs(final_views);

  // Close the measurement window.  A shard whose own events never crossed
  // the warm-up boundary still needs its devices reset if *any* pop did in
  // the single-queue engine — its own, another shard's, a fault action, or
  // an edge delivery (central in tracked-gamma mode).
  bool flipped = cc.measuring_from_start;
  for (const parallel::ShardBarrierView& v : final_views)
    flipped |= v.flipped;
  if (cc.with_faults) flipped |= plan.flip_trigger;
  if (!has_fixed_gamma) flipped |= replay->delivery_flip_trigger();

  // Everything view-derived is folded *before* finalize(): the final
  // views reference rank-side storage the finalize exchange may replace.
  std::uint64_t events = 0;
  std::uint64_t offloads_in_window = 0;
  std::vector<std::uint64_t> cluster_offloads(cc.n_clusters, 0);
  std::uint64_t tasks_lost = 0;
  std::uint64_t offloads_rejected = 0;
  std::uint64_t offloads_penalized = 0;
  for (const parallel::ShardBarrierView& v : final_views) {
    events += v.events;
    offloads_in_window += v.offloads_in_window;
    for (std::uint32_t k = 0; k < cc.n_clusters; ++k)
      cluster_offloads[k] += v.cluster_offloads[k];
    local_sojourns.merge(*v.local_sojourns);
    if (has_fixed_gamma) offload_delays.merge(*v.offload_delays);
    tasks_lost += v.tasks_lost;
    offloads_rejected += v.offloads_rejected;
    offloads_penalized += v.offloads_penalized;
  }
  if (cc.with_faults)
    events += plan.actions.size();  // every schedule action popped once
  if (!has_fixed_gamma) events += replay->deliveries();

  // Ranks reset never-flipped shards, integrate every device to t_end, and
  // (process mode) ship their DeviceTotals.
  transport.finalize(flipped);

  double scale_integral = options.horizon;
  fault::EnvWindowStats env;
  if (cc.with_faults) {
    env = fault::integrate_environment(plan.actions, options.warmup, cc.t_end,
                                       flipped);
    scale_integral = env.scale_integral;
    // A run so short no event crossed the warm-up boundary (or a fully
    // dark window): treat the whole window as nominal so the utilization
    // denominator stays finite.
    if (scale_integral == 0.0) scale_integral = options.horizon;
  }

  SimulationResult result;
  result.horizon = options.horizon;
  result.total_events = events;
  result.local_sojourn_percentiles = std::move(local_sojourns);
  result.offload_delay_percentiles = std::move(offload_delays);
  result.timeline = recorder.take();
  result.devices.reserve(cc.n_devices);
  const double window = options.horizon;

  double cost_acc = 0.0, q_acc = 0.0, alpha_acc = 0.0;
  std::uint32_t participating = 0;
  // Under faults the denominator is the *time-averaged* available capacity
  // over the window (edge_capacity * mean scale * window); fault-free it
  // reduces to the familiar offloads / (window * N * c).
  double gamma_denom = window * cc.edge_capacity;
  if (cc.with_faults) gamma_denom = cc.edge_capacity * scale_integral;
  const double gamma_measured =
      static_cast<double>(offloads_in_window) / gamma_denom;
  for (std::uint32_t n = 0; n < cc.n_devices; ++n) {
    if (cc.with_faults) {
      // Churn slots that never joined report all-zero stats and must not
      // dilute the population means (their empirical cost is not zero —
      // the Eq.-(1) functional of an idle device is w*p_L).
      if (n >= cc.n_initial + plan.joins) {
        result.devices.emplace_back();
        continue;
      }
    }
    ++participating;
    const parallel::DeviceTotals dev = transport.device_totals(n);
    const core::UserParams& u = cc.users[n];
    const double delay_sum =
        has_fixed_gamma ? dev.offload_delay_sum : replay_delay[n];
    DeviceStats s;
    s.arrivals = dev.arrivals;
    s.offloaded = dev.offloaded;
    s.local_completed = dev.local_completed;
    s.mean_queue_length = dev.queue_integral / window;
    s.offload_fraction =
        dev.arrivals > 0
            ? static_cast<double>(dev.offloaded) /
                  static_cast<double>(dev.arrivals)
            : 0.0;
    s.mean_local_sojourn =
        dev.local_completed > 0
            ? dev.local_sojourn_sum / static_cast<double>(dev.local_completed)
            : 0.0;
    s.mean_offload_delay =
        dev.offloaded > 0
            ? delay_sum / static_cast<double>(dev.offloaded)
            : 0.0;
    s.energy_per_task =
        dev.arrivals > 0
            ? dev.energy_sum / static_cast<double>(dev.arrivals)
            : 0.0;
    // Empirical Eq.-(1) cost: measured alpha, measured mean queue, measured
    // per-offload delay (latency + edge processing).
    s.empirical_cost =
        u.weight * u.energy_local * (1.0 - s.offload_fraction) +
        s.mean_queue_length / u.arrival_rate +
        (u.weight * u.energy_offload + s.mean_offload_delay) *
            s.offload_fraction;
    cost_acc += s.empirical_cost;
    q_acc += s.mean_queue_length;
    alpha_acc += s.offload_fraction;
    result.devices.push_back(s);
  }
  result.measured_utilization = gamma_measured;
  // Per-cluster utilization divides each cluster's offload count by its
  // capacity share of the same denominator; with one cluster share(0) is
  // exactly 1.0, so cluster_utilization[0] == measured_utilization bitwise.
  result.cluster_offloads = std::move(cluster_offloads);
  result.cluster_utilization.reserve(cc.n_clusters);
  for (std::uint32_t k = 0; k < cc.n_clusters; ++k)
    result.cluster_utilization.push_back(
        static_cast<double>(result.cluster_offloads[k]) /
        (gamma_denom * options.topology.share(k)));
  result.mean_cost = cost_acc / static_cast<double>(participating);
  result.mean_queue_length = q_acc / static_cast<double>(participating);
  result.mean_offload_fraction = alpha_acc / static_cast<double>(participating);
  if (cc.with_faults) {
    FaultStats fs;
    fs.crashes = plan.crashes;
    fs.restarts = plan.restarts;
    fs.churn_joined = plan.churn_joined;
    fs.churn_departed = plan.churn_departed;
    fs.tasks_lost = tasks_lost;
    fs.offloads_rejected = offloads_rejected;
    fs.offloads_penalized = offloads_penalized;
    fs.min_capacity_scale = env.min_capacity_scale;
    fs.mean_capacity_scale = scale_integral / window;
    fs.degraded_time = env.degraded_time;
    fs.participating_devices = participating;
    result.faults = fs;
  }
  if (stream != nullptr) {
    obs::RunFooter footer;
    footer.windows = stream->windows();
    footer.total_events = result.total_events;
    footer.measured_utilization = result.measured_utilization;
    footer.mean_cost = result.mean_cost;
    footer.horizon = result.horizon;
    stream->finish(footer);
  }
  return result;
}

}  // namespace mec::sim::engine

#include "mec/sim/cluster_policies.hpp"

#include <algorithm>
#include <sstream>

#include "mec/common/error.hpp"

namespace mec::sim {

PriceBasedPolicy::PriceBasedPolicy(const core::UserParams& user,
                                   double initial_price)
    : service_rate_(user.service_rate),
      base_cost_(user.offload_latency +
                 user.weight * (user.energy_offload - user.energy_local)),
      threshold_(0.0) {
  refresh(initial_price);
}

void PriceBasedPolicy::refresh(double price) {
  // Offload iff w*p_E + tau + price < w*p_L + (q+1)/s, i.e. iff the local
  // queue exceeds x = s*(base + price) - 1.  The max keeps a deeply
  // subsidized edge at "offload everything" instead of a negative
  // threshold.
  threshold_ = std::max(0.0, service_rate_ * (base_cost_ + price) - 1.0);
}

std::string PriceBasedPolicy::describe() const {
  std::ostringstream os;
  os << "price-based TRO(x=" << threshold_ << ")";
  return os.str();
}

MinorityGatedPolicy::MinorityGatedPolicy(double threshold,
                                         const std::uint8_t* active)
    : threshold_(threshold), active_(active) {
  MEC_EXPECTS(threshold >= 0.0);
  MEC_EXPECTS(active != nullptr);
}

std::string MinorityGatedPolicy::describe() const {
  std::ostringstream os;
  os << "minority-gated TRO(x=" << threshold_ << ")";
  return os.str();
}

namespace {

/// Mirrors MecSimulation's churn handling: the policy vector must cover the
/// initial population plus schedule-order joiners.
std::vector<core::UserParams> with_churn(
    std::span<const core::UserParams> users,
    const std::shared_ptr<const fault::FaultSchedule>& faults) {
  std::vector<core::UserParams> all(users.begin(), users.end());
  if (faults && !faults->empty()) {
    const std::vector<core::UserParams> joiners = faults->churn_users();
    all.insert(all.end(), joiners.begin(), joiners.end());
  }
  return all;
}

}  // namespace

PriceBasedResult run_price_based(std::span<const core::UserParams> users,
                                 double capacity,
                                 const core::EdgeDelay& delay,
                                 const PriceBasedOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(options.update_period > 0.0);
  MEC_EXPECTS(options.gamma_target > 0.0 && options.gamma_target <= 1.0);
  MEC_EXPECTS(options.price_step >= 0.0);
  MEC_EXPECTS(options.max_price >= 0.0);
  options.topology.check();

  const std::vector<core::UserParams> all_users =
      with_churn(users, options.faults);
  const std::size_t clusters = options.topology.clusters;

  std::vector<double> prices = options.topology.prices;
  if (prices.empty()) prices.assign(clusters, 0.0);

  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  std::vector<PriceBasedPolicy*> tunable;
  policies.reserve(all_users.size());
  tunable.reserve(all_users.size());
  for (std::size_t n = 0; n < all_users.size(); ++n) {
    auto policy = std::make_unique<PriceBasedPolicy>(
        all_users[n],
        prices[options.topology.route(static_cast<std::uint32_t>(n))]);
    tunable.push_back(policy.get());
    policies.push_back(std::move(policy));
  }

  PriceBasedResult result;

  SimulationOptions so;
  so.warmup = options.warmup;
  so.horizon = options.horizon;
  so.seed = options.seed;
  so.service = options.service;
  so.latency = options.latency;
  so.utilization_ewma_tau = options.utilization_ewma_tau;
  so.initial_gamma = options.initial_gamma;
  so.epoch_period = options.update_period;
  so.topology = options.topology;
  so.faults = options.faults;
  so.shards = options.shards;
  so.sample_interval = options.sample_interval;
  so.stream_log = options.stream_log;
  so.stream_counters = options.stream_counters;
  so.record_timeline = options.record_timeline;
  so.on_cluster_epoch = [&](double /*now*/,
                            std::span<const double> cluster_gammas) {
    // Dual ascent on the per-cluster congestion prices, then one threshold
    // refresh per device — all inside the barrier, so every shard count
    // sees the same thresholds on the next leg.
    for (std::size_t k = 0; k < clusters; ++k)
      prices[k] = std::clamp(
          prices[k] + options.price_step *
                          (cluster_gammas[k] - options.gamma_target),
          0.0, options.max_price);
    for (std::size_t n = 0; n < tunable.size(); ++n)
      tunable[n]->refresh(
          prices[options.topology.route(static_cast<std::uint32_t>(n))]);
    result.price_epochs.push_back(prices);
    result.gamma_epochs.emplace_back(cluster_gammas.begin(),
                                     cluster_gammas.end());
  };

  MecSimulation simulation(users, capacity, delay, std::move(so));
  result.run = simulation.run(policies);
  result.final_prices = std::move(prices);
  return result;
}

MinorityGameRunResult run_minority_game(
    std::span<const core::UserParams> users, double capacity,
    const core::EdgeDelay& delay, const MinorityGameRunOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(options.update_period > 0.0);
  options.topology.check();

  const std::vector<core::UserParams> all_users =
      with_churn(users, options.faults);
  MEC_EXPECTS_MSG(options.thresholds.size() == all_users.size(),
                  "minority-game run needs one threshold per device "
                  "(incl. churn joiners)");
  const std::size_t clusters = options.topology.clusters;

  MinorityGameConfig game_config = options.game;
  game_config.agents = clusters;
  MinorityGame game(game_config);

  // Activation flags live here; the policies hold stable pointers into the
  // vector, and flips happen only in the epoch callback.
  std::vector<std::uint8_t> active(clusters, 1);

  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  policies.reserve(all_users.size());
  for (std::size_t n = 0; n < all_users.size(); ++n) {
    const std::size_t k =
        options.topology.route(static_cast<std::uint32_t>(n));
    policies.push_back(std::make_unique<MinorityGatedPolicy>(
        options.thresholds[n], &active[k]));
  }

  MinorityGameRunResult result;

  SimulationOptions so;
  so.warmup = options.warmup;
  so.horizon = options.horizon;
  so.seed = options.seed;
  so.service = options.service;
  so.latency = options.latency;
  so.utilization_ewma_tau = options.utilization_ewma_tau;
  so.initial_gamma = options.initial_gamma;
  so.epoch_period = options.update_period;
  so.topology = options.topology;
  so.faults = options.faults;
  so.shards = options.shards;
  so.sample_interval = options.sample_interval;
  so.stream_log = options.stream_log;
  so.stream_counters = options.stream_counters;
  so.record_timeline = options.record_timeline;
  so.on_cluster_epoch = [&](double /*now*/,
                            std::span<const double> /*cluster_gammas*/) {
    const std::size_t attendance = game.step();
    const std::vector<std::uint8_t>& actions = game.actions();
    for (std::size_t k = 0; k < clusters; ++k) active[k] = actions[k];
    result.attendance.push_back(attendance);
  };

  MecSimulation simulation(users, capacity, delay, std::move(so));
  result.run = simulation.run(policies);

  if (!result.attendance.empty()) {
    double acc = 0.0;
    for (const std::size_t a : result.attendance)
      acc += static_cast<double>(a);
    result.mean_attendance = acc / static_cast<double>(result.attendance.size());
  }
  return result;
}

}  // namespace mec::sim

// Discrete-event core: a deterministic future-event list.
//
// Events are ordered by (time, insertion sequence) so simultaneous events are
// processed in FIFO order, making every run bit-reproducible for a given
// seed regardless of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace mec::sim {

/// What happened, dispatched by MecSimulation.
enum class EventKind : std::uint8_t {
  kArrival,          ///< a new task arrives at `device`
  kLocalDeparture,   ///< `device` finishes its in-service local task
  kOffloadDelivery,  ///< an offloaded task of `device` completes at the edge
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;   ///< tie-break: earlier-scheduled first
  EventKind kind = EventKind::kArrival;
  std::uint32_t device = 0;
  double payload = 0.0;    ///< kind-specific (e.g. offload start time)
};

/// Min-heap future event list with deterministic tie-breaking.
class EventQueue {
 public:
  /// Schedules an event; `time` must be finite and >= 0.
  void push(double time, EventKind kind, std::uint32_t device,
            double payload = 0.0);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the next event. Requires non-empty queue.
  double next_time() const;

  /// Removes and returns the next event. Requires non-empty queue.
  Event pop();

  /// Total events ever scheduled (diagnostics).
  std::uint64_t scheduled_count() const noexcept { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mec::sim

// Discrete-event core: a deterministic future-event list.
//
// Events are ordered by (time, insertion sequence) so simultaneous events are
// processed in FIFO order, making every run bit-reproducible for a given
// seed regardless of container internals: (time, seq) is a total order, so
// any correct priority queue pops the same sequence.
//
// Internally the queue is a two-gear hybrid tuned for the N = 1e5..1e6
// device regime, where the future-event list outgrows L2 and a flat binary
// or d-ary heap becomes a serial chain of cache misses per pop:
//
//   - Below a size threshold it is a plain implicit 4-ary min-heap over
//     16-byte nodes (seq/device/kind packed into one word with seq in the
//     high bits, so the FIFO tie-break is a single integer compare).
//   - Above the threshold it switches to a calendar queue: events are
//     binned O(1) into fixed-width time buckets.  When a bucket's window
//     arrives it is sorted once and consumed by a bare pointer bump, so the
//     pop path is O(1), branch-predictable, and L1-resident no matter how
//     large the event population grows.  The rare event scheduled *inside*
//     the current window (delay shorter than one bucket width) goes to a
//     tiny side heap that pop() consults with one predictable compare.
//     Bucket width self-tunes from the observed event-time span and
//     re-tunes when the population grows or shrinks by 4x; events beyond
//     the bucket ring's horizon wait in an overflow tier until the ring
//     reaches them.
//
// Buckets partition time and each window is totally ordered by the sorted
// bucket + side heap, so the pop sequence is identical to a single global
// heap — the golden-trace equivalence tests assert this bit-for-bit.
// `reserve()` pre-sizes the heap-gear storage so small-population steady
// state never reallocates; in calendar gear the ring reaches its steady
// footprint after one revolution and is kept across `clear()` for
// workspace reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mec::sim {

/// What happened, dispatched by MecSimulation.  At most four kinds: the
/// packed node layout reserves exactly two bits for the kind.
enum class EventKind : std::uint8_t {
  kArrival,          ///< a new task arrives at `device`
  kLocalDeparture,   ///< `device` finishes its in-service local task
  kOffloadDelivery,  ///< an offloaded task of `device` completes at the edge
  kFault,            ///< a FaultSchedule action fires; `device` holds the
                     ///< action's index into the schedule, not a device id
};

/// Decoded event as handed to the simulation loop (not the storage layout).
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break: earlier-scheduled first
  std::uint32_t device = 0;
  EventKind kind = EventKind::kArrival;
};

/// Min future-event list with deterministic tie-breaking.
class EventQueue {
 public:
  /// Pre-sizes the live heap (small populations then never reallocate).
  void reserve(std::size_t capacity);

  /// Schedules an event; `time` must be finite and >= 0, and `device`
  /// must fit the packed node layout (device < 2^20).
  void push(double time, EventKind kind, std::uint32_t device);

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Drops all pending events and restarts the tie-break sequence at 0,
  /// keeping allocated capacity (workspace reuse across runs).
  void clear() noexcept;

  /// Time of the next event. Requires non-empty queue.
  double next_time() const;

  /// Device of the next event (for prefetching the state it will touch).
  /// Requires non-empty queue.
  std::uint32_t next_device() const;

  /// Removes and returns the next event. Requires non-empty queue.
  Event pop();

  /// Total events ever scheduled (diagnostics).  Also the sequence number
  /// the *next* push will receive — fault-aware callers use it to remember
  /// which pending event is the live one for a device (lazy cancellation).
  std::uint64_t scheduled_count() const noexcept { return next_seq_; }

  /// True while the queue runs in calendar gear (diagnostics/tests).
  bool calendar_gear() const noexcept { return calendar_; }

  /// Current calendar bucket width in simulated seconds; 0 in heap gear.
  /// Exposed so the gear-switch regression tests can place events exactly
  /// on bucket-window edges.
  double calendar_bucket_width() const noexcept {
    return calendar_ ? width_ : 0.0;
  }

  /// Cumulative heap<->calendar gear switches since the last clear().
  /// Telemetry (obs::Counter::kShardGearSwitches); stays 0 in builds with
  /// MEC_OBS_COUNTERS off — the increments live on the rare rebuild paths.
  std::uint64_t gear_switches() const noexcept { return gear_switches_; }

  /// Cumulative calendar-queue retunes (width/ring resizes) since the last
  /// clear().  Telemetry (obs::Counter::kShardCalendarRetunes).
  std::uint64_t calendar_retunes() const noexcept { return retunes_; }

 private:
  /// 16-byte node; `key` holds (seq << 22) | (device << 2) | kind.  seq is
  /// unique per event and occupies the high bits, so comparing keys compares
  /// insertion sequence — device and kind never affect the order.
  struct Node {
    double time;
    std::uint64_t key;
  };

  static constexpr std::uint64_t kKindBits = 2;
  static constexpr std::uint64_t kDeviceBits = 20;
  static constexpr std::uint64_t kSeqShift = kKindBits + kDeviceBits;

  static bool earlier(const Node& a, const Node& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  // --- side heap (implicit 4-ary min-heap over side_) ---
  void side_push(const Node& nd);
  void side_sift_down(std::size_t i, const Node& nd);
  void side_pop_root();
  void side_build();  ///< heapify side_ in O(n)

  /// The earliest pending node (requires size_ > 0): min of the sorted
  /// window cursor and the side-heap root.
  const Node& front() const noexcept;

  // --- calendar gear ---
  std::uint64_t bucket_of(double t) const noexcept;
  void try_enter_calendar();
  void rebuild(std::size_t target_size);  ///< retune width/ring from scratch_
  void exit_calendar();
  void gather_all();  ///< move every stored node into scratch_
  void migrate_overflow();
  void advance();  ///< make the next non-empty bucket the sorted window

  std::vector<Node> side_;    ///< all events (heap gear) or in-window pushes
  std::vector<Node> window_;  ///< current bucket, sorted ascending
  std::size_t window_pos_ = 0;  ///< next unconsumed node in window_

  bool calendar_ = false;
  std::vector<std::vector<Node>> buckets_;  ///< ring of unsorted bins
  std::size_t bucket_mask_ = 0;             ///< buckets_.size() - 1 (pow2)
  std::size_t ring_count_ = 0;              ///< nodes currently in the ring
  std::vector<Node> overflow_;              ///< beyond the ring horizon
  std::uint64_t overflow_min_bucket_ = ~std::uint64_t{0};
  double width_ = 0.0;      ///< bucket width (simulated seconds)
  double inv_width_ = 0.0;  ///< 1 / width_
  std::uint64_t base_ = 0;  ///< next bucket index to drain
  std::size_t tuned_size_ = 0;    ///< size at the last (re)tune
  std::size_t switch_check_ = 0;  ///< size at which to attempt the switch
  std::vector<Node> scratch_;     ///< rebuild staging buffer

  std::size_t size_ = 0;  ///< total stored nodes across all tiers
  std::uint64_t next_seq_ = 0;
  std::uint64_t gear_switches_ = 0;  ///< telemetry; see gear_switches()
  std::uint64_t retunes_ = 0;        ///< telemetry; see calendar_retunes()
};

}  // namespace mec::sim

#include "mec/sim/minority_game.hpp"

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::sim {

MinorityGame::MinorityGame(const MinorityGameConfig& config)
    : memory_(config.memory),
      strategies_(config.strategies),
      invert_(config.invert) {
  MEC_EXPECTS(config.agents >= 1);
  MEC_EXPECTS(config.memory >= 1 && config.memory <= 20);
  MEC_EXPECTS(config.strategies >= 1);

  const std::size_t histories = std::size_t{1} << memory_;
  tables_.resize(config.agents * strategies_ * histories);
  scores_.assign(config.agents * strategies_, 0.0);
  actions_.assign(config.agents, 1);

  // One stream for the whole table block: the layout is fixed, so the
  // draw order — and with it the entire game trajectory — depends only on
  // the config.
  random::Xoshiro256 rng(config.seed);
  for (std::uint8_t& cell : tables_)
    cell = random::bernoulli(rng, 0.5) ? 1 : 0;
  history_ = static_cast<std::size_t>(rng() & (histories - 1));
}

std::size_t MinorityGame::step() {
  const std::size_t histories = std::size_t{1} << memory_;
  std::size_t attendance = 0;
  for (std::size_t a = 0; a < actions_.size(); ++a) {
    // Best virtual score wins; exact ties go to the lowest strategy index
    // (deterministic, no RNG at play time).
    std::size_t best = 0;
    for (std::size_t s = 1; s < strategies_; ++s)
      if (scores_[a * strategies_ + s] > scores_[a * strategies_ + best])
        best = s;
    const std::uint8_t choice =
        tables_[(a * strategies_ + best) * histories + history_];
    actions_[a] = choice;
    attendance += choice;
  }

  // Minority side wins (strictly fewer attendees); an exact tie — only
  // possible with an even agent count — scores side 0 as the winner.  The
  // inverted (majority) variant flips the payoff, not the tie-break.
  std::uint8_t winner = 2 * attendance < actions_.size() ? 1 : 0;
  if (invert_) winner = 1 - winner;

  for (std::size_t a = 0; a < actions_.size(); ++a)
    for (std::size_t s = 0; s < strategies_; ++s) {
      const std::uint8_t predicted =
          tables_[(a * strategies_ + s) * histories + history_];
      scores_[a * strategies_ + s] += predicted == winner ? 1.0 : -1.0;
    }

  history_ = ((history_ << 1) | winner) & (histories - 1);
  ++rounds_;
  return attendance;
}

}  // namespace mec::sim

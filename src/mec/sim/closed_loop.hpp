// Closed-loop operation: Algorithm 1 running *inside* the discrete-event
// simulator.
//
// The iteration-level DTU (mec/core/dtu.hpp) evaluates gamma_t with an
// oracle between iterations.  In a deployed system the two time scales of
// the paper's quasi-stationary argument coexist in real time: tasks flow
// continuously (fast scale) while every `update_period` seconds the edge
// broadcasts its *measured* utilization estimate and devices best-respond
// (slow scale).  This module runs exactly that: one continuous simulation in
// which an epoch callback executes Algorithm 1's estimate/step/halving logic
// against the engine's EWMA utilization and retunes per-device
// MutableTroPolicy thresholds in place — queues are never reset, stragglers
// can skip updates, and convergence happens under genuine measurement noise.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::sim {

struct ClosedLoopOptions {
  double update_period = 5.0;   ///< seconds between broadcast epochs, > 0
  double horizon = 400.0;       ///< total simulated seconds, > 0
  double eta0 = 0.1;            ///< Algorithm 1 step, (0, 1]
  double epsilon = 0.01;        ///< Algorithm 1 accuracy, (0, 1)
  double oscillation_tol = 1e-12;
  std::uint64_t seed = 1;
  core::UpdateGate update_gate;   ///< null => every device updates
  ServiceSampler service;         ///< null => exponential
  LatencySampler latency;         ///< null => exponential
  /// Wire-describable sampler specs forwarded to SimulationOptions;
  /// required (instead of the closures above) for transport=tcp.
  std::optional<SamplerSpec> service_spec;
  std::optional<SamplerSpec> latency_spec;
  double utilization_ewma_tau = 10.0;
  /// Optional fault/churn schedule forwarded to the simulator.  With churn,
  /// joining devices get their own MutableTroPolicy (threshold 0 until the
  /// first post-join broadcast), like any late joiner in Algorithm 1.
  std::shared_ptr<const fault::FaultSchedule> faults;
  /// Algorithm 1 freezes thresholds once |ghat_t - ghat_{t-1}| <= epsilon —
  /// correct in a stationary environment, blind in a faulty one.  With
  /// resume_on_drift, a settled loop whose *measured* utilization strays
  /// more than `drift_margin` from the settled estimate restarts the
  /// step/halving schedule (eta back to eta0), re-converging to the shifted
  /// fixed point.  Off by default: the stationary runs keep Algorithm 1's
  /// exact stopping rule.
  bool resume_on_drift = false;
  double drift_margin = 0.05;
  /// Shard count forwarded to SimulationOptions::shards (0 = explicit
  /// MEC_SHARDS, else autotuned).  Thresholds mutate only at epoch
  /// barriers, so the closed loop is bit-identical for every shard count.
  std::size_t shards = 0;
  /// Transport + worker count forwarded to SimulationOptions.  The loop's
  /// MutableTroPolicy thresholds are TRO by construction, so the process
  /// transport's mirrored-threshold requirement always holds here.
  TransportKind transport = TransportKind::kInProcess;
  std::size_t workers = 0;
  /// host:port per rank, forwarded to SimulationOptions (tcp only).
  std::vector<std::string> worker_addresses;
  /// Edge cluster topology forwarded to the simulator.  Algorithm 1 keeps
  /// broadcasting the scalar aggregate utilization; the per-cluster gamma
  /// trajectories still land in the telemetry stream.
  ClusterTopology topology;
  /// Observation-grid spacing forwarded to the simulator; > 0 records a
  /// timeline and (with stream_log) cuts streamed windows.
  double sample_interval = 0.0;
  /// Streamed-telemetry passthrough (see SimulationOptions): the closed
  /// loop's epoch retunes land between grid instants, so the streamed
  /// gamma trajectory shows each broadcast taking effect.
  std::string stream_log;
  bool stream_counters = true;
  bool record_timeline = true;
};

/// One broadcast epoch of the in-simulator algorithm.
struct ClosedLoopEpoch {
  double time = 0.0;          ///< simulated seconds of the broadcast
  double gamma_measured = 0.0;///< EWMA utilization the edge observed
  double gamma_hat = 0.0;     ///< estimate broadcast this epoch
  double eta = 0.0;           ///< step size after the halving rule
  double mean_threshold = 0.0;
};

struct ClosedLoopResult {
  std::vector<ClosedLoopEpoch> epochs;
  std::vector<double> thresholds;   ///< final per-device thresholds
  double final_gamma_hat = 0.0;
  bool estimate_settled = false;    ///< |step| fell below epsilon in-run
  /// Times the settled loop was re-opened by resume_on_drift (faults).
  std::uint32_t drift_resumes = 0;
  SimulationResult run;             ///< whole-run measurements
};

/// Runs the closed loop. Requires non-empty users, capacity > 0, valid
/// delay, and well-formed options.
ClosedLoopResult run_closed_loop(std::span<const core::UserParams> users,
                                 double capacity, const core::EdgeDelay& delay,
                                 const ClosedLoopOptions& options = {});

}  // namespace mec::sim

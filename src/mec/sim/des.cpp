#include "mec/sim/des.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"
#include "mec/common/instrument.hpp"
#include "mec/common/prefetch.hpp"

namespace mec::sim {

namespace {

/// Heap gear below this many stored events; calendar gear above.  At the
/// threshold the whole heap is ~256 KiB (L2-resident), so the switch
/// happens before heap pops start paying DRAM-latency sift chains.
constexpr std::size_t kSwitchThreshold = 16384;
/// Hysteresis: drop back to the plain heap only below half the threshold.
constexpr std::size_t kExitThreshold = kSwitchThreshold / 2;
/// The ring covers this many multiples of the mean residual event time.
/// Density concentrates near the consumption point (residuals are roughly
/// exponential), so tuning the width from the *mean residual* rather than
/// the full span keeps front buckets small; only the ~e^-8 tail of events
/// beyond the ring lands in the overflow tier.
constexpr double kRingSpanResiduals = 8.0;
/// Ring sizing target: at least this many events per bucket on average,
/// i.e. ring size ~ stored / kMinOccupancy, clamped to the bounds below.
constexpr std::size_t kMinOccupancy = 8;
/// Ring size bounds (power of two).  The cap trades bucket count for
/// occupancy: at 2e6 stored events front-bucket occupancy grows to ~250,
/// still a cheap sort.
constexpr std::size_t kMinBuckets = 1024;
constexpr std::size_t kMaxBuckets = 65536;
/// Sift-down prefetch pays off only once the heap outgrows L1.
constexpr std::size_t kPrefetchMinHeap = 2048;

}  // namespace

void EventQueue::reserve(std::size_t capacity) {
  side_.reserve(std::min(capacity, 2 * kSwitchThreshold));
}

void EventQueue::clear() noexcept {
  side_.clear();
  window_.clear();
  window_pos_ = 0;
  if (ring_count_ > 0)
    for (std::vector<Node>& b : buckets_) b.clear();
  ring_count_ = 0;
  overflow_.clear();
  overflow_min_bucket_ = ~std::uint64_t{0};
  calendar_ = false;
  base_ = 0;
  tuned_size_ = 0;
  switch_check_ = 0;
  size_ = 0;
  next_seq_ = 0;
  gear_switches_ = 0;
  retunes_ = 0;
}

// --- side heap -------------------------------------------------------------

void EventQueue::side_push(const Node& nd) {
  // Sift the hole up from the back; the new node is written exactly once.
  std::size_t i = side_.size();
  side_.push_back(nd);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(nd, side_[parent])) break;
    side_[i] = side_[parent];
    i = parent;
  }
  side_[i] = nd;
}

void EventQueue::side_sift_down(std::size_t i, const Node& nd) {
  const std::size_t n = side_.size();
  const bool deep = n > kPrefetchMinHeap;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    if (deep) {
      // The 16 grandchildren are contiguous; pull their four cache lines
      // one level ahead so the next iteration's loads overlap the compares.
      const std::size_t g = 4 * first + 1;
      if (g < n) {
        MEC_PREFETCH(side_.data() + g);
        MEC_PREFETCH(side_.data() + g + 4);
        MEC_PREFETCH(side_.data() + g + 8);
        MEC_PREFETCH(side_.data() + g + 12);
      }
    }
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c)
      if (earlier(side_[c], side_[best])) best = c;
    if (!earlier(side_[best], nd)) break;
    side_[i] = side_[best];
    i = best;
  }
  side_[i] = nd;
}

void EventQueue::side_pop_root() {
  const Node last = side_.back();
  side_.pop_back();
  if (!side_.empty()) side_sift_down(0, last);
}

void EventQueue::side_build() {
  const std::size_t n = side_.size();
  if (n < 2) return;
  for (std::size_t i = (n - 2) / 4 + 1; i-- > 0;) {
    const Node nd = side_[i];
    side_sift_down(i, nd);
  }
}

const EventQueue::Node& EventQueue::front() const noexcept {
  // The side heap is almost always empty in calendar gear (only delays
  // shorter than one bucket width land there), so this compare is
  // predictable and the common path is a single indexed load.
  if (!side_.empty() && (window_pos_ >= window_.size() ||
                         earlier(side_[0], window_[window_pos_])))
    return side_[0];
  return window_[window_pos_];
}

// --- calendar gear ---------------------------------------------------------

std::uint64_t EventQueue::bucket_of(double t) const noexcept {
  const double d = t * inv_width_;
  // Saturate instead of overflowing the cast; saturated indices land in the
  // overflow tier and are drained through the sorted window, which orders
  // them.
  return d < 9.0e18 ? static_cast<std::uint64_t>(d)
                    : static_cast<std::uint64_t>(9.0e18);
}

void EventQueue::gather_all() {
  scratch_.clear();
  scratch_.reserve(size_);
  scratch_.insert(scratch_.end(), side_.begin(), side_.end());
  side_.clear();
  scratch_.insert(scratch_.end(), window_.begin() + window_pos_,
                  window_.end());
  window_.clear();
  window_pos_ = 0;
  if (ring_count_ > 0)
    for (std::vector<Node>& b : buckets_) {
      scratch_.insert(scratch_.end(), b.begin(), b.end());
      b.clear();
    }
  ring_count_ = 0;
  scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  overflow_min_bucket_ = ~std::uint64_t{0};
}

void EventQueue::try_enter_calendar() {
  gather_all();
  rebuild(size_);
}

void EventQueue::rebuild(std::size_t target_size) {
  // scratch_ holds every stored node (see gather_all); retune the bucket
  // width from the observed time span, rebin everything, and re-establish
  // the window invariant.
#ifdef MEC_OBS_COUNTERS
  const bool was_calendar = calendar_;
#endif
  double tmin = scratch_.front().time;
  double tmax = tmin;
  double tsum = 0.0;
  for (const Node& nd : scratch_) {
    tmin = std::min(tmin, nd.time);
    tmax = std::max(tmax, nd.time);
    tsum += nd.time;
  }
  const double mean_residual =
      tsum / static_cast<double>(scratch_.size()) - tmin;
  if (!(mean_residual > 0.0) || !(mean_residual > tmax * 1e-13)) {
    // Degenerate spread (all events effectively simultaneous): a calendar
    // cannot separate them, so stay a plain heap and defer the next try.
    side_.swap(scratch_);
    scratch_.clear();
    side_build();
    calendar_ = false;
    switch_check_ = 2 * size_;
    return;
  }

  std::size_t nb = kMinBuckets;
  while (nb < target_size / kMinOccupancy && nb < kMaxBuckets) nb <<= 1;
  width_ = kRingSpanResiduals * mean_residual / static_cast<double>(nb);
  inv_width_ = 1.0 / width_;
  if (buckets_.size() != nb) buckets_.resize(nb);
  bucket_mask_ = nb - 1;
  base_ = bucket_of(tmin);
  MEC_OBS_COUNT(was_calendar ? ++retunes_ : ++gear_switches_);
  calendar_ = true;
  tuned_size_ = target_size;
  switch_check_ = 0;

  for (const Node& nd : scratch_) {
    const std::uint64_t idx = bucket_of(nd.time);
    if (idx - base_ < nb) {
      buckets_[idx & bucket_mask_].push_back(nd);
      ++ring_count_;
    } else {
      overflow_.push_back(nd);
      overflow_min_bucket_ = std::min(overflow_min_bucket_, idx);
    }
  }
  scratch_.clear();
  advance();
}

void EventQueue::exit_calendar() {
  MEC_OBS_COUNT(++gear_switches_);
  gather_all();
  side_.swap(scratch_);
  scratch_.clear();
  side_build();
  calendar_ = false;
  switch_check_ = 0;
}

void EventQueue::migrate_overflow() {
  // Move every overflow node the ring can now reach into its bucket.
  const std::uint64_t limit = base_ + buckets_.size();
  std::uint64_t new_min = ~std::uint64_t{0};
  std::size_t keep = 0;
  for (const Node& nd : overflow_) {
    const std::uint64_t idx = bucket_of(nd.time);
    if (idx < limit) {
      buckets_[idx & bucket_mask_].push_back(nd);
      ++ring_count_;
    } else {
      overflow_[keep++] = nd;
      new_min = std::min(new_min, idx);
    }
  }
  overflow_.resize(keep);
  overflow_min_bucket_ = new_min;
}

void EventQueue::advance() {
  MEC_ASSERT(ring_count_ + overflow_.size() > 0);
  for (;;) {
    if (ring_count_ == 0) {
      // Everything pending beyond the window is in overflow: jump the ring
      // to the earliest overflow bucket instead of walking to it.
      base_ = overflow_min_bucket_;
      migrate_overflow();
      continue;
    }
    // Before consuming bucket base_, pull in any overflow nodes that belong
    // to it (their bucket index has entered the ring's reach).
    if (overflow_min_bucket_ <= base_) migrate_overflow();
    std::vector<Node>& b = buckets_[base_ & bucket_mask_];
    ++base_;
    if (!b.empty()) {
      // Swap the bucket in (capacities circulate between the ring and the
      // window, so steady state stays allocation-free) and sort it once;
      // consumption is then a pointer bump per pop.
      ring_count_ -= b.size();
      window_.swap(b);
      b.clear();
      window_pos_ = 0;
      std::sort(window_.begin(), window_.end(),
                [](const Node& x, const Node& y) { return earlier(x, y); });
      return;
    }
  }
}

// --- public interface ------------------------------------------------------

void EventQueue::push(double time, EventKind kind, std::uint32_t device) {
  MEC_EXPECTS(std::isfinite(time));
  MEC_EXPECTS(time >= 0.0);
  MEC_EXPECTS(device < (1u << kDeviceBits));
  const Node nd{time, (next_seq_++ << kSeqShift) |
                          (static_cast<std::uint64_t>(device) << kKindBits) |
                          static_cast<std::uint64_t>(kind)};
  ++size_;
  if (!calendar_) {
    side_push(nd);
    if (size_ >= kSwitchThreshold && size_ >= switch_check_)
      try_enter_calendar();
    return;
  }
  const std::uint64_t idx = bucket_of(time);
  if (idx < base_) {
    side_push(nd);  // inside the current window
  } else if (idx - base_ < buckets_.size()) {
    buckets_[idx & bucket_mask_].push_back(nd);
    ++ring_count_;
    if (side_.empty() && window_pos_ >= window_.size()) advance();
  } else {
    overflow_.push_back(nd);
    overflow_min_bucket_ = std::min(overflow_min_bucket_, idx);
    if (side_.empty() && window_pos_ >= window_.size()) advance();
  }
  if (size_ >= 4 * tuned_size_) {
    gather_all();
    rebuild(size_);
  }
}

double EventQueue::next_time() const {
  MEC_EXPECTS(size_ > 0);
  return front().time;
}

std::uint32_t EventQueue::next_device() const {
  MEC_EXPECTS(size_ > 0);
  return static_cast<std::uint32_t>((front().key >> kKindBits) &
                                    ((1u << kDeviceBits) - 1));
}

Event EventQueue::pop() {
  MEC_EXPECTS(size_ > 0);
  Node top;
  const bool window_has = window_pos_ < window_.size();
  if (!side_.empty() &&
      (!window_has || earlier(side_[0], window_[window_pos_]))) {
    top = side_[0];
    side_pop_root();
  } else {
    top = window_[window_pos_++];
  }
  --size_;
  if (calendar_) {
    if (side_.empty() && window_pos_ >= window_.size() && size_ > 0)
      advance();
    if (size_ * 4 <= tuned_size_) {
      if (size_ <= kExitThreshold) {
        exit_calendar();
      } else {
        gather_all();
        rebuild(size_);
      }
    }
  }
  return Event{top.time, top.key >> kSeqShift,
               static_cast<std::uint32_t>((top.key >> kKindBits) &
                                          ((1u << kDeviceBits) - 1)),
               static_cast<EventKind>(top.key & ((1u << kKindBits) - 1))};
}

}  // namespace mec::sim

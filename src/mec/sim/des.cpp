#include "mec/sim/des.hpp"

#include <cmath>

#include "mec/common/error.hpp"

namespace mec::sim {

void EventQueue::push(double time, EventKind kind, std::uint32_t device,
                      double payload) {
  MEC_EXPECTS(std::isfinite(time));
  MEC_EXPECTS(time >= 0.0);
  heap_.push(Event{time, next_seq_++, kind, device, payload});
}

double EventQueue::next_time() const {
  MEC_EXPECTS(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::pop() {
  MEC_EXPECTS(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace mec::sim

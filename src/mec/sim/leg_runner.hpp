// Per-rank leg execution: the hot event loop and the RankWorker that wraps
// it for the transport layer (see parallel/transport.hpp).
//
// Everything in this header runs *between* barriers and touches only the
// rank's own shards — device states, RNG streams, per-shard queues and
// counters.  The serial barrier work (gamma replay, epoch callbacks,
// stream windows) lives in sim/coordinator.hpp; the two halves communicate
// only through BarrierRequest/ShardBarrierView, which is what lets the
// same code serve the in-process rank and a forked worker process
// unchanged.
//
// This header is internal to mec_simulation.cpp: the templates here are
// instantiated once per (fault mode x decision provider) pair in that TU.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/common/prefetch.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/parallel/shard_executor.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/des.hpp"
#include "mec/sim/device_state.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/policy_dispatch.hpp"

namespace mec::sim::engine {

/// Immutable per-run parameters shared by every shard leg.
template <class Decide>
struct LegContext {
  const core::UserParams* users;
  DeviceState* devices;
  random::Xoshiro256* rngs;
  const Decide* decide;
  const ServiceSampler* service;
  const LatencySampler* latency;
  double warmup;
  double t_end;
  std::uint32_t n_devices;
  std::uint32_t clusters;  ///< topology cluster count (1 = scalar gamma)
  bool has_fixed_gamma;
  double fixed_delay;  ///< g(fixed_gamma), hoisted off the offload path
};

/// Applies one resolved fault action inside a shard leg.  Views contain
/// only outage toggles and *effective* membership actions for this shard's
/// range, so no state checks are needed here — the plan already made them.
template <class Decide>
void apply_shard_fault(parallel::ShardContext& sc,
                       const LegContext<Decide>& lc,
                       const fault::ResolvedAction& a, double now) {
  switch (a.kind) {
    case fault::FaultKind::kOutageBegin:
      sc.outage = true;
      sc.outage_mode = a.outage_mode;
      sc.outage_penalty = a.value;
      break;
    case fault::FaultKind::kOutageEnd:
      sc.outage = false;
      break;
    case fault::FaultKind::kDeviceCrash:
    case fault::FaultKind::kUserDeparture: {
      DeviceState& victim = lc.devices[a.device];
      victim.integrate_to(now);
      if (sc.measuring) sc.tasks_lost += victim.local_queue.size();
      victim.local_queue.clear();
      sc.arrival_seq[a.device - sc.lo] = parallel::ShardContext::kNoEvent;
      sc.departure_seq[a.device - sc.lo] = parallel::ShardContext::kNoEvent;
      break;
    }
    case fault::FaultKind::kDeviceRestart:
      sc.arrival_seq[a.device - sc.lo] = sc.queue.scheduled_count();
      sc.queue.push(now + random::exponential(lc.rngs[a.device],
                                              lc.users[a.device].arrival_rate),
                    EventKind::kArrival, a.device);
      break;
    case fault::FaultKind::kUserArrival:
      // The device's measurement clock starts at its join, not at 0.
      lc.devices[a.device].last_change = now;
      sc.arrival_seq[a.device - sc.lo] = sc.queue.scheduled_count();
      sc.queue.push(now + random::exponential(lc.rngs[a.device],
                                              lc.users[a.device].arrival_rate),
                    EventKind::kArrival, a.device);
      break;
    case fault::FaultKind::kCapacityScale:
      break;  // central-only; never enters a shard view
  }
}

/// One shard leg: drains the shard's queue up to `limit` (exclusive at
/// barriers, inclusive for the final leg to t_end).  This is the hot loop,
/// instantiated per decision provider so the arrival decision inlines, and
/// per fault mode so fault-free runs fold every fault branch away.
template <bool WithFaults, class Decide>
void run_leg(parallel::ShardContext& sc, const LegContext<Decide>& lc,
             double limit, bool inclusive) {
  EventQueue& queue = sc.queue;
  while (!queue.empty()) {
    {
      const double t = queue.next_time();
      if (t > lc.t_end) return;
      if (inclusive ? t > limit : t >= limit) return;
    }
    const Event e = queue.pop();
    if (!queue.empty()) {
      // The next pending event is (usually) the next one processed; start
      // pulling the state it will touch while this event is handled.  A
      // pending kFault's `device` is a view index, so it must not index
      // the device arrays (prefetching a wrong-but-valid slot is harmless;
      // forming an out-of-range pointer is not).
      const std::uint32_t upcoming = queue.next_device();
      if (!WithFaults || upcoming < lc.n_devices) {
        const char* dev_lines =
            reinterpret_cast<const char*>(&lc.devices[upcoming]);
        MEC_PREFETCH(dev_lines);
        MEC_PREFETCH(dev_lines + 64);
        MEC_PREFETCH(&lc.rngs[upcoming]);
        MEC_PREFETCH(&lc.users[upcoming]);
      }
    }
    const double now = e.time;
    if (!sc.measuring && now >= lc.warmup) {
      // First pop at or past the warm-up boundary opens this shard's
      // measurement window.  Resetting only the owned range is equivalent
      // to the single-queue engine's global reset: devices of other shards
      // had no events since the global first-crossing either, and the
      // reset value depends only on `warmup`.
      sc.measuring = true;
      sc.flipped = true;
      for (std::uint32_t d = sc.lo; d < sc.hi; ++d)
        lc.devices[d].reset_measurements(lc.warmup);
    }

    if constexpr (WithFaults) {
      if (e.kind == EventKind::kFault) {
        // No ++sc.events here: outage toggles sit in every shard's view, so
        // fault pops are counted centrally, once per schedule action.
        apply_shard_fault(sc, lc, sc.view[e.device], now);
        continue;
      }
    }
    ++sc.events;

    DeviceState& dev = lc.devices[e.device];
    random::Xoshiro256& rng = lc.rngs[e.device];
    const core::UserParams& u = lc.users[e.device];

    switch (e.kind) {
      case EventKind::kArrival: {
        if constexpr (WithFaults) {
          // A stale arrival chain (pre-crash or pre-departure) is skipped
          // without consuming RNG draws; the live chain — if the device is
          // alive — has a matching sequence number by construction.
          if (e.seq != sc.arrival_seq[e.device - sc.lo]) break;
        }
        dev.integrate_to(now);
        if (sc.measuring) ++dev.arrivals;
        bool offload = (*lc.decide)(e.device, dev.local_queue.size(), rng);
        if constexpr (WithFaults) {
          // Outage check sits *after* the decision so the Bernoulli draw at
          // the boundary state is consumed either way (RNG alignment).
          if (offload && sc.outage &&
              sc.outage_mode == fault::OutageMode::kReject) {
            offload = false;
            if (sc.measuring) ++sc.offloads_rejected;
          }
        }
        if (offload) {
          // Static routing: device d feeds cluster d mod K.  The branch
          // keeps the 1-cluster fast path free of the modulo.
          const std::uint16_t cluster =
              lc.clusters > 1
                  ? static_cast<std::uint16_t>(e.device % lc.clusters)
                  : std::uint16_t{0};
          double penalty = 0.0;
          bool penalized = false;
          if constexpr (WithFaults) {
            if (sc.outage && sc.outage_mode == fault::OutageMode::kPenalty) {
              penalty = sc.outage_penalty;
              penalized = true;
              if (sc.measuring) ++sc.offloads_penalized;
            }
          }
          const double latency = (*lc.latency)(rng, u);
          if (lc.has_fixed_gamma) {
            // Pinned gamma: the edge delay is shard-local, so the delivery
            // event and all offload metrics complete right here.
            double delay_value = lc.fixed_delay;
            if (penalized) delay_value += penalty;
            if (sc.measuring) {
              ++dev.offloaded;
              ++sc.offloads_in_window;
              ++sc.cluster_offloads[cluster];
              dev.offload_delay_sum += latency + delay_value;
              dev.energy_sum += u.energy_offload;
              sc.offload_delays.add(latency + delay_value);
            }
            queue.push(now + latency + delay_value,
                       EventKind::kOffloadDelivery, e.device);
          } else {
            // Tracked gamma: everything g(gamma)-dependent (edge delay,
            // delivery time, delay metrics) is deferred to the central
            // replay; the gamma-free parts stay shard-local.
            sc.log.push_back(OffloadRecord{now, latency, penalty, e.device,
                                           cluster, sc.measuring, penalized});
            if (sc.measuring) {
              ++dev.offloaded;
              ++sc.offloads_in_window;
              ++sc.cluster_offloads[cluster];
              dev.energy_sum += u.energy_offload;
            }
          }
        } else {
          dev.local_queue.push_back(now);
          if (sc.measuring) dev.energy_sum += u.energy_local;
          if (dev.local_queue.size() == 1) {  // idle server: start service
            if constexpr (WithFaults)
              sc.departure_seq[e.device - sc.lo] = queue.scheduled_count();
            queue.push(now + (*lc.service)(rng, u),
                       EventKind::kLocalDeparture, e.device);
          }
        }
        if constexpr (WithFaults)
          sc.arrival_seq[e.device - sc.lo] = queue.scheduled_count();
        queue.push(now + random::exponential(rng, u.arrival_rate),
                   EventKind::kArrival, e.device);
        break;
      }
      case EventKind::kLocalDeparture: {
        if constexpr (WithFaults) {
          if (e.seq != sc.departure_seq[e.device - sc.lo]) break;  // stale
        }
        dev.integrate_to(now);
        MEC_ASSERT(!dev.local_queue.empty());
        const double arrived_at = dev.local_queue.front();
        dev.local_queue.pop_front();
        if (sc.measuring) {
          ++dev.local_completed;
          // Sojourn clipped to the window start for tasks arriving in
          // warm-up: only the portion spent inside the measurement window
          // counts, so a long transient backlog cannot leak into the
          // steady-state mean.
          const double sojourn = now - std::max(arrived_at, lc.warmup);
          dev.local_sojourn_sum += sojourn;
          sc.local_sojourns.add(sojourn);
        }
        if (!dev.local_queue.empty()) {
          if constexpr (WithFaults)
            sc.departure_seq[e.device - sc.lo] = queue.scheduled_count();
          queue.push(now + (*lc.service)(rng, u),
                     EventKind::kLocalDeparture, e.device);
        } else {
          if constexpr (WithFaults)
            sc.departure_seq[e.device - sc.lo] =
                parallel::ShardContext::kNoEvent;
        }
        break;
      }
      case EventKind::kOffloadDelivery:
        // Task completed at the edge; all accounting happened at decision
        // time (fixed-gamma mode only — tracked-gamma deliveries are
        // counted by the replay).
        break;
      case EventKind::kFault:
        // Handled (and `continue`d) before the device references above.
        MEC_ASSERT(WithFaults);
        break;
    }
  }
}

/// Builds a shard's fault view and seeds its queue: view actions first (at
/// equal times the environment change applies before any task event —
/// lower sequence number), then the initial arrivals of the owned range in
/// device order (matching the global RNG-consumption order per device).
template <bool WithFaults>
void init_shard(parallel::ShardContext& sc,
                const std::vector<core::UserParams>& users,
                std::uint32_t n_initial, std::vector<random::Xoshiro256>& rngs,
                std::span<const fault::ResolvedAction> plan_actions) {
  if constexpr (WithFaults) {
    for (const fault::ResolvedAction& a : plan_actions) {
      const bool outage_toggle = a.kind == fault::FaultKind::kOutageBegin ||
                                 a.kind == fault::FaultKind::kOutageEnd;
      const bool owned_membership =
          a.effective && a.device != fault::ResolvedAction::kNoDevice &&
          a.device >= sc.lo && a.device < sc.hi;
      if (outage_toggle || owned_membership) sc.view.push_back(a);
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(sc.view.size()); ++i)
      sc.queue.push(sc.view[i].time, EventKind::kFault, i);
    sc.arrival_seq.assign(sc.hi - sc.lo, parallel::ShardContext::kNoEvent);
    sc.departure_seq.assign(sc.hi - sc.lo, parallel::ShardContext::kNoEvent);
  }
  for (std::uint32_t d = sc.lo; d < sc.hi && d < n_initial; ++d) {
    if constexpr (WithFaults)
      sc.arrival_seq[d - sc.lo] = sc.queue.scheduled_count();
    sc.queue.push(random::exponential(rngs[d], users[d].arrival_rate),
                  EventKind::kArrival, d);
  }
}

/// One rank's executable side: owns the shard slice [shard_lo, shard_hi)
/// of the workspace and serves the RankWorker protocol over it.  The
/// in-process run wraps one LegRunner covering every shard; a process
/// worker builds one per child for its slice (over a TroValueDecide mirror
/// of the coordinator's thresholds, refreshed by set_thresholds at epochs).
template <bool WithFaults, class Decide>
class LegRunner final : public parallel::RankWorker {
 public:
  /// `pool` may be null: a single-shard rank runs serially, and a
  /// multi-shard rank with no caller-provided pool builds its own.
  /// `threshold_mirror` is the buffer a TroValueDecide reads (null for the
  /// in-process rank, whose provider reads the live policy state).
  LegRunner(SimWorkspace::Impl& ws, Decide decide,
            const LegContext<Decide>& lc, std::size_t shard_lo,
            std::size_t shard_hi, parallel::ThreadPool* pool,
            std::vector<double>* threshold_mirror)
      : ws_(&ws),
        decide_(decide),
        lc_(lc),
        shard_lo_(shard_lo),
        shard_hi_(shard_hi),
        pool_(pool),
        mirror_(threshold_mirror) {
    MEC_EXPECTS(shard_lo_ < shard_hi_ && shard_hi_ <= ws_->shards.size());
    lc_.decide = &decide_;
    if (pool_ == nullptr && shard_hi_ - shard_lo_ > 1) {
      owned_pool_ = std::make_unique<parallel::ThreadPool>(std::min(
          shard_hi_ - shard_lo_, parallel::resolve_thread_count(0)));
      pool_ = owned_pool_.get();
    }
    leg_seconds_.assign(shard_hi_ - shard_lo_, 0.0);
  }

  void advance(const parallel::BarrierRequest& req) override {
    // The previous leg's offload log was consumed (or serialized) at the
    // last barrier; freeing it here keeps the in-process views zero-copy.
    for (std::size_t s = shard_lo_; s < shard_hi_; ++s)
      ws_->shards[s].log.clear();
    const auto run_one = [&](std::size_t s) {
      if (req.want_queue_stats) {
        const auto t0 = std::chrono::steady_clock::now();
        run_leg<WithFaults>(ws_->shards[s], lc_, req.limit, req.inclusive);
        leg_seconds_[s - shard_lo_] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
      } else {
        run_leg<WithFaults>(ws_->shards[s], lc_, req.limit, req.inclusive);
      }
    };
    const std::size_t owned = shard_hi_ - shard_lo_;
    if (owned == 1) {
      run_one(shard_lo_);
    } else {
      pool_->parallel_for_each(
          owned, [&](std::size_t i) { run_one(shard_lo_ + i); });
    }
    views_.clear();
    for (std::size_t s = shard_lo_; s < shard_hi_; ++s) {
      const parallel::ShardContext& sc = ws_->shards[s];
      parallel::ShardBarrierView v;
      v.shard = static_cast<std::uint32_t>(s);
      v.log = {sc.log.data(), sc.log.size()};
      v.events = sc.events;
      v.offloads_in_window = sc.offloads_in_window;
      v.tasks_lost = sc.tasks_lost;
      v.offloads_rejected = sc.offloads_rejected;
      v.offloads_penalized = sc.offloads_penalized;
      v.cluster_offloads = sc.cluster_offloads;
      v.flipped = sc.flipped;
      if (req.want_sketches) {
        v.local_sojourns = &sc.local_sojourns;
        v.offload_delays = &sc.offload_delays;
      }
      if (req.want_queue_stats) {
        v.has_queue_stats = true;
        v.queue_depth = static_cast<double>(sc.queue.size());
        v.calendar_gear = sc.queue.calendar_gear() ? 1.0 : 0.0;
        v.gear_switches = static_cast<double>(sc.queue.gear_switches());
        v.calendar_retunes = static_cast<double>(sc.queue.calendar_retunes());
        v.leg_seconds = leg_seconds_[s - shard_lo_];
      }
      views_.push_back(v);
    }
    total_q_ = 0.0;
    total_q2_ = 0.0;
    if (req.want_q) {
      // Same loop shapes as the pre-rank engine: the q^2 accumulation is
      // taken only when a stream needs the second moment.
      if (req.want_q2) {
        for (std::uint32_t d = device_lo(); d < device_hi(); ++d) {
          const double q =
              static_cast<double>(lc_.devices[d].local_queue.size());
          total_q_ += q;
          total_q2_ += q * q;
        }
      } else {
        for (std::uint32_t d = device_lo(); d < device_hi(); ++d)
          total_q_ += static_cast<double>(lc_.devices[d].local_queue.size());
      }
    }
  }

  std::span<const parallel::ShardBarrierView> views() const override {
    return views_;
  }
  double total_q() const override { return total_q_; }
  double total_q2() const override { return total_q2_; }

  void set_thresholds(std::span<const double> values) override {
    if (mirror_ == nullptr) return;  // in-process rank reads the live policy
    MEC_EXPECTS(values.size() == mirror_->size());
    std::copy(values.begin(), values.end(), mirror_->begin());
  }

  void finalize(bool flipped) override {
    if (flipped) {
      for (std::size_t s = shard_lo_; s < shard_hi_; ++s) {
        const parallel::ShardContext& sc = ws_->shards[s];
        if (sc.flipped) continue;
        for (std::uint32_t d = sc.lo; d < sc.hi; ++d)
          lc_.devices[d].reset_measurements(lc_.warmup);
      }
    }
    for (std::uint32_t d = device_lo(); d < device_hi(); ++d)
      lc_.devices[d].integrate_to(lc_.t_end);
  }

  parallel::DeviceTotals device_totals(std::uint32_t device) const override {
    const DeviceState& dev = lc_.devices[device];
    parallel::DeviceTotals t;
    t.arrivals = dev.arrivals;
    t.offloaded = dev.offloaded;
    t.local_completed = dev.local_completed;
    t.queue_integral = dev.queue_integral;
    t.local_sojourn_sum = dev.local_sojourn_sum;
    t.offload_delay_sum = dev.offload_delay_sum;
    t.energy_sum = dev.energy_sum;
    return t;
  }

  std::uint32_t device_lo() const override {
    return ws_->shards[shard_lo_].lo;
  }
  std::uint32_t device_hi() const override {
    return ws_->shards[shard_hi_ - 1].hi;
  }

 private:
  SimWorkspace::Impl* ws_;
  Decide decide_;
  LegContext<Decide> lc_;
  std::size_t shard_lo_;
  std::size_t shard_hi_;
  parallel::ThreadPool* pool_;
  std::unique_ptr<parallel::ThreadPool> owned_pool_;
  std::vector<double>* mirror_;
  std::vector<parallel::ShardBarrierView> views_;
  std::vector<double> leg_seconds_;
  double total_q_ = 0.0;
  double total_q2_ = 0.0;
};

}  // namespace mec::sim::engine

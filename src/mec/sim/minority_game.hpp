// Minority-game server-activation engine (Challet & Zhang 1997; applied to
// MEC server activation by Ranadheera, Maghsudi & Hossain).
//
// N agents repeatedly choose one of two sides; the agents on the *minority*
// side win the round.  Each agent holds S fixed strategies — lookup tables
// from the last m winning sides to a choice — keeps a virtual score per
// strategy (would it have predicted the winner?), and always plays its
// best-scoring strategy.  The emergent behavior reproduced by the tests:
// mean attendance concentrates at N/2 without any central coordination, and
// the attendance variance depends non-monotonically on alpha = 2^m / N
// (strong herding for small memory, random-agent variance for large).
//
// Here each edge cluster is one agent and "side 1" means the cluster stays
// active for the next epoch, so roughly half the clusters serve at any time.
// The game is self-contained and deterministic: strategy tables come from
// one seeded Xoshiro stream at construction, play consumes no randomness
// (ties break toward the lowest strategy index), and the trajectory depends
// only on (agents, memory, strategies, seed, invert).  Stepped at epoch
// barriers it therefore preserves the engine's cross-shard bitwise
// determinism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mec::sim {

struct MinorityGameConfig {
  std::size_t agents = 7;      ///< one per edge cluster; odd avoids ties
  std::size_t memory = 3;      ///< m: history bits per strategy table
  std::size_t strategies = 2;  ///< S: tables per agent
  std::uint64_t seed = 1;      ///< strategy-table seed
  /// Perturbation switch for the differential tests: score the *majority*
  /// side as the winner instead.  The positive feedback destroys the
  /// minority game's self-organization (attendance variance blows up).
  bool invert = false;
};

class MinorityGame {
 public:
  explicit MinorityGame(const MinorityGameConfig& config);

  /// Plays one round: every agent consults its best strategy, the winning
  /// side is scored, and the history shifts.  Returns the attendance (the
  /// number of agents choosing side 1).
  std::size_t step();

  /// Side chosen by each agent in the last step() (1 or 0); all 1 before
  /// the first round (every cluster starts active).
  const std::vector<std::uint8_t>& actions() const noexcept {
    return actions_;
  }

  std::size_t agents() const noexcept { return actions_.size(); }
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  std::size_t memory_;
  std::size_t strategies_;
  bool invert_;
  std::size_t history_ = 0;  ///< last m winning sides, bit-packed
  std::uint64_t rounds_ = 0;
  /// Strategy tables, agent-major: entry [(a*S + s) * 2^m + h] is agent a's
  /// strategy s's choice under history h.
  std::vector<std::uint8_t> tables_;
  std::vector<double> scores_;  ///< virtual score per (agent, strategy)
  std::vector<std::uint8_t> actions_;
};

}  // namespace mec::sim

// The sharded simulation engine: thin composition of the layer headers.
//
//   device model   (device_state.hpp)  per-device queues + accumulators
//   policy dispatch (policy_dispatch.hpp) sealed/virtual decision providers
//   edge coupling  (coupling.hpp)      EWMA gamma + g(gamma) replay
//   fault plan     (fault/fault_plan.hpp) resolved schedule + shard views
//   observers      (observer.hpp)      grid barriers + metrics sinks
//   leg runner     (leg_runner.hpp)    per-rank event loop + RankWorker
//   transport      (parallel/transport.hpp) rank <-> coordinator seam
//   coordinator    (coordinator.hpp)   serial barrier work + result assembly
//
// One run executes as alternating phases: parallel *legs*, where every
// rank advances its owned shards to the next observation-grid barrier,
// and serial *barrier work*, where the coordinator replays the merged
// offload log, records samples, and fires epoch callbacks (the closed
// loop retunes thresholds only here, so shard legs always see a frozen
// policy).  run_sharded only assembles the pieces: it prepares the
// workspace, picks the transport, and hands the rank fleet to
// coordinator_run.  Results are bit-identical for every shard count and
// every transport — including K = 1 in-process, which is the only serial
// path; there is no separate monolithic engine left to diverge from.  The
// golden-trace suite pins this equivalence against the pre-shard engine's
// exact output, and tests/test_transport.cpp pins in-process == process.
//
// This header is internal to mec_simulation.cpp: the templates here are
// instantiated once per (fault mode x decision provider) pair in that TU.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/net/address.hpp"
#include "mec/net/protocol.hpp"
#include "mec/net/tcp_transport.hpp"
#include "mec/parallel/shard_executor.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/sim/coordinator.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/device_state.hpp"
#include "mec/sim/leg_runner.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/policy_dispatch.hpp"

namespace mec::sim {

struct SimWorkspace::Impl {
  std::vector<random::Xoshiro256> rngs;  ///< batched per-device streams
  std::vector<DeviceState> devices;
  std::vector<const double*> threshold_ptrs;  ///< scratch for TroPointerDecide
  std::vector<parallel::ShardContext> shards;
  std::unique_ptr<parallel::ThreadPool> pool;  ///< lazily built when K > 1

  /// Post-split per-device RNG snapshot, keyed by (seed, population size).
  /// Splitting is ~1us per device (xoshiro long_jump), so re-deriving 1e5+
  /// streams dominates the setup of repeated same-seed runs; restoring the
  /// snapshot is a memcpy and bit-identical by construction.
  std::vector<random::Xoshiro256> rng_init;
  std::uint64_t rng_seed = 0;
  bool rng_cached = false;

  /// Sizes the global buffers for an n-device run and resets all run state
  /// while keeping every allocation.
  void prepare(std::size_t n) {
    rngs.resize(n);
    devices.resize(n);
    for (DeviceState& d : devices) d.reset_run();
  }
};

namespace engine {

/// One full simulation run: workspace/shard setup, transport selection, and
/// the coordinator's barrier-stepped loop.
template <bool WithFaults, class Decide>
SimulationResult run_sharded(const std::vector<core::UserParams>& users,
                             std::size_t n_initial_devices, double capacity,
                             const core::EdgeDelay& delay,
                             const SimulationOptions& options,
                             SimWorkspace::Impl& ws, const Decide& decide) {
  const auto n_devices = static_cast<std::uint32_t>(users.size());
  const auto n_initial = static_cast<std::uint32_t>(n_initial_devices);
  const auto n_clusters =
      static_cast<std::uint32_t>(options.topology.clusters);
  // Nominal capacity is anchored to the initial population: churn changes
  // the offered load, not the installed edge hardware.
  const double edge_capacity = static_cast<double>(n_initial) * capacity;
  const double t_end = options.warmup + options.horizon;
  const bool has_fixed_gamma = options.fixed_gamma.has_value();
  const double fixed_delay =
      has_fixed_gamma ? delay(*options.fixed_gamma) : 0.0;

  const std::size_t shard_count = std::min<std::size_t>(
      parallel::resolve_shard_count(options.shards, n_devices), n_devices);

  ws.prepare(users.size());
  if (ws.rng_cached && ws.rng_seed == options.seed &&
      ws.rng_init.size() == n_devices) {
    std::copy(ws.rng_init.begin(), ws.rng_init.end(), ws.rngs.begin());
  } else {
    random::Xoshiro256 master(options.seed);
    for (std::uint32_t n = 0; n < n_devices; ++n) ws.rngs[n] = master.split();
    ws.rng_init = ws.rngs;
    ws.rng_seed = options.seed;
    ws.rng_cached = true;
  }

  fault::FaultPlan plan;
  if constexpr (WithFaults)
    plan = fault::resolve_fault_plan(options.faults->actions(), n_initial,
                                     n_devices, options.warmup, t_end);

  const bool measuring_from_start = options.warmup == 0.0;
  ws.shards.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    parallel::ShardContext& sc = ws.shards[s];
    sc.reset(parallel::shard_bound(n_devices, shard_count, s),
             parallel::shard_bound(n_devices, shard_count, s + 1),
             measuring_from_start);
    sc.cluster_offloads.assign(n_clusters, 0);
    init_shard<WithFaults>(sc, users, n_initial, ws.rngs, plan.actions);
  }

  CoordinatorContext cc;
  cc.users = users.data();
  cc.options = &options;
  cc.delay = &delay;
  cc.plan = &plan;
  cc.threshold_of = [&decide](std::uint32_t d) {
    return decide.threshold_value(d);
  };
  cc.n_devices = n_devices;
  cc.n_initial = n_initial;
  cc.n_clusters = n_clusters;
  cc.capacity = capacity;
  cc.edge_capacity = edge_capacity;
  cc.t_end = t_end;
  cc.with_faults = WithFaults;
  cc.measuring_from_start = measuring_from_start;
  cc.shard_count = shard_count;

  if (options.transport == TransportKind::kProcess) {
    // Worker processes decide over a mirrored threshold vector, refreshed
    // by the post-epoch broadcast, so the decision provider must expose a
    // per-device TRO threshold.  Checked before forking anything.
    std::vector<double> mirror(n_devices);
    for (std::uint32_t d = 0; d < n_devices; ++d) {
      mirror[d] = decide.threshold_value(d);
      if (mirror[d] < 0.0)
        throw RuntimeError(
            "transport=process requires per-device TRO thresholds, but the "
            "policy for device " +
            std::to_string(d) +
            " has none (virtual non-TRO policies cannot cross a process "
            "boundary)");
    }
    // The pool must not cross fork() (its worker threads would not exist in
    // the children); each rank builds its own pool for its slice.
    ws.pool.reset();
    const std::size_t workers = std::min<std::size_t>(
        options.workers == 0 ? 2 : options.workers, shard_count);
    const LegContext<TroValueDecide> wlc{users.data(),     ws.devices.data(),
                                         ws.rngs.data(),   nullptr,
                                         &options.service, &options.latency,
                                         options.warmup,   t_end,
                                         n_devices,        n_clusters,
                                         has_fixed_gamma,  fixed_delay};
    parallel::ProcessTransport::Config cfg;
    cfg.shard_count = shard_count;
    cfg.workers = workers;
    cfg.n_devices = n_devices;
    // The factory runs inside each forked child: the workspace — shards
    // already initialized above — and the mirror are inherited
    // copy-on-write, so nothing is serialized at startup.
    parallel::ProcessTransport transport(
        cfg,
        [&](std::size_t, std::size_t shard_lo,
            std::size_t shard_hi) -> std::unique_ptr<parallel::RankWorker> {
          return std::make_unique<LegRunner<WithFaults, TroValueDecide>>(
              ws, TroValueDecide{mirror.data()}, wlc, shard_lo, shard_hi,
              nullptr, &mirror);
        });
    return coordinator_run(cc, transport);
  }

  if (options.transport == TransportKind::kTcp) {
    // Same contract as transport=process: remote ranks decide over a
    // mirrored threshold vector, so the provider must expose per-device
    // TRO thresholds.  Checked before connecting anywhere.
    std::vector<double> mirror(n_devices);
    for (std::uint32_t d = 0; d < n_devices; ++d) {
      mirror[d] = decide.threshold_value(d);
      if (mirror[d] < 0.0)
        throw RuntimeError(
            "transport=tcp requires per-device TRO thresholds, but the "
            "policy for device " +
            std::to_string(d) +
            " has none (virtual non-TRO policies cannot cross a machine "
            "boundary)");
    }
    std::vector<net::Address> workers;
    workers.reserve(options.worker_addresses.size());
    for (const std::string& spec : options.worker_addresses)
      workers.push_back(net::parse_address(spec));
    net::check_unique_worker_addresses(workers);
    const std::size_t ranks = workers.size();
    if (ranks > shard_count)
      throw RuntimeError("transport=tcp lists " + std::to_string(ranks) +
                         " workers but the run has only " +
                         std::to_string(shard_count) +
                         " shards; drop workers or raise --shards");
    MEC_EXPECTS_MSG(options.service_spec && options.latency_spec,
                    "transport=tcp requires sampler specs (enforced by "
                    "MecSimulation)");
    // Unlike transport=process there is no fork to inherit state through:
    // each rank's slice is serialized explicitly.  The RNG words shipped
    // are the *pre-init* snapshots (rng_init); the worker re-runs
    // init_shard and reproduces the initial-arrival draws bit for bit.
    net::wire::WorkerPopulation base;
    base.ranks = static_cast<std::uint32_t>(ranks);
    base.seed = options.seed;
    base.n_devices = n_devices;
    base.n_initial = n_initial;
    base.n_clusters = n_clusters;
    base.shard_count = static_cast<std::uint32_t>(shard_count);
    base.warmup = options.warmup;
    base.t_end = t_end;
    base.has_fixed_gamma = has_fixed_gamma;
    base.fixed_delay = fixed_delay;
    base.with_faults = WithFaults;
    base.service = *options.service_spec;
    base.latency = *options.latency_spec;
    if constexpr (WithFaults)
      base.actions.assign(plan.actions.begin(), plan.actions.end());
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      net::wire::WorkerPopulation pop = base;
      pop.rank = static_cast<std::uint32_t>(r);
      pop.shard_lo = static_cast<std::uint32_t>(shard_count * r / ranks);
      pop.shard_hi = static_cast<std::uint32_t>(shard_count * (r + 1) / ranks);
      pop.device_lo =
          parallel::shard_bound(n_devices, shard_count, pop.shard_lo);
      pop.device_hi =
          parallel::shard_bound(n_devices, shard_count, pop.shard_hi);
      pop.users.assign(users.begin() + pop.device_lo,
                       users.begin() + pop.device_hi);
      pop.rng_states.reserve(pop.device_hi - pop.device_lo);
      for (std::uint32_t d = pop.device_lo; d < pop.device_hi; ++d)
        pop.rng_states.push_back(ws.rng_init[d].state());
      payloads.push_back(net::wire::encode_population(pop));
    }
    net::TcpTransport::Config cfg;
    cfg.workers = std::move(workers);
    cfg.shard_count = shard_count;
    cfg.n_devices = n_devices;
    net::TcpTransport transport(cfg, payloads, mirror);
    return coordinator_run(cc, transport);
  }

  if (shard_count > 1) {
    const std::size_t lanes =
        std::min(shard_count, parallel::resolve_thread_count(0));
    if (!ws.pool || ws.pool->thread_count() != lanes)
      ws.pool = std::make_unique<parallel::ThreadPool>(lanes);
  }
  const LegContext<Decide> lc{users.data(),     ws.devices.data(),
                              ws.rngs.data(),   &decide,
                              &options.service, &options.latency,
                              options.warmup,   t_end,
                              n_devices,        n_clusters,
                              has_fixed_gamma,  fixed_delay};
  LegRunner<WithFaults, Decide> runner(ws, decide, lc, 0, shard_count,
                                       shard_count > 1 ? ws.pool.get()
                                                       : nullptr,
                                       nullptr);
  parallel::InProcessTransport transport(runner);
  return coordinator_run(cc, transport);
}

}  // namespace engine
}  // namespace mec::sim

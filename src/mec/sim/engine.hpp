// The sharded simulation engine: thin composition of the layer headers.
//
//   device model   (device_state.hpp)  per-device queues + accumulators
//   policy dispatch (policy_dispatch.hpp) sealed/virtual decision providers
//   edge coupling  (coupling.hpp)      EWMA gamma + g(gamma) replay
//   fault plan     (fault/fault_plan.hpp) resolved schedule + shard views
//   observers      (observer.hpp)      grid barriers + metrics sinks
//   shard executor (parallel/shard_executor.hpp) per-shard run state
//
// One run executes as alternating phases: parallel *legs*, where every
// shard drains its own event queue up to the next observation-grid barrier,
// and serial *barrier work*, where the gamma replay catches up on the
// merged offload log, samples are recorded, and epoch callbacks fire (the
// closed loop retunes thresholds only here, so shard legs always see a
// frozen policy).  Results are bit-identical for every shard count —
// including K = 1, which is the only serial path; there is no separate
// monolithic engine left to diverge from.  The golden-trace suite pins
// this equivalence against the pre-shard engine's exact output.
//
// This header is internal to mec_simulation.cpp: the templates here are
// instantiated once per (fault mode x decision provider) pair in that TU.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/common/instrument.hpp"
#include "mec/common/prefetch.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/obs/counters.hpp"
#include "mec/obs/stream.hpp"
#include "mec/parallel/shard_executor.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/des.hpp"
#include "mec/sim/device_state.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/observer.hpp"
#include "mec/sim/policy_dispatch.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::sim {

struct SimWorkspace::Impl {
  std::vector<random::Xoshiro256> rngs;  ///< batched per-device streams
  std::vector<DeviceState> devices;
  std::vector<const double*> threshold_ptrs;  ///< scratch for TroPointerDecide
  std::vector<parallel::ShardContext> shards;
  std::vector<std::span<const OffloadRecord>> log_spans;  ///< replay scratch
  std::unique_ptr<parallel::ThreadPool> pool;  ///< lazily built when K > 1

  /// Post-split per-device RNG snapshot, keyed by (seed, population size).
  /// Splitting is ~1us per device (xoshiro long_jump), so re-deriving 1e5+
  /// streams dominates the setup of repeated same-seed runs; restoring the
  /// snapshot is a memcpy and bit-identical by construction.
  std::vector<random::Xoshiro256> rng_init;
  std::uint64_t rng_seed = 0;
  bool rng_cached = false;

  /// Sizes the global buffers for an n-device run and resets all run state
  /// while keeping every allocation.
  void prepare(std::size_t n) {
    rngs.resize(n);
    devices.resize(n);
    for (DeviceState& d : devices) d.reset_run();
  }
};

namespace engine {

/// Immutable per-run parameters shared by every shard leg.
template <class Decide>
struct LegContext {
  const core::UserParams* users;
  DeviceState* devices;
  random::Xoshiro256* rngs;
  const Decide* decide;
  const ServiceSampler* service;
  const LatencySampler* latency;
  double warmup;
  double t_end;
  std::uint32_t n_devices;
  std::uint32_t clusters;  ///< topology cluster count (1 = scalar gamma)
  bool has_fixed_gamma;
  double fixed_delay;  ///< g(fixed_gamma), hoisted off the offload path
};

/// Applies one resolved fault action inside a shard leg.  Views contain
/// only outage toggles and *effective* membership actions for this shard's
/// range, so no state checks are needed here — the plan already made them.
template <class Decide>
void apply_shard_fault(parallel::ShardContext& sc,
                       const LegContext<Decide>& lc,
                       const fault::ResolvedAction& a, double now) {
  switch (a.kind) {
    case fault::FaultKind::kOutageBegin:
      sc.outage = true;
      sc.outage_mode = a.outage_mode;
      sc.outage_penalty = a.value;
      break;
    case fault::FaultKind::kOutageEnd:
      sc.outage = false;
      break;
    case fault::FaultKind::kDeviceCrash:
    case fault::FaultKind::kUserDeparture: {
      DeviceState& victim = lc.devices[a.device];
      victim.integrate_to(now);
      if (sc.measuring) sc.tasks_lost += victim.local_queue.size();
      victim.local_queue.clear();
      sc.arrival_seq[a.device - sc.lo] = parallel::ShardContext::kNoEvent;
      sc.departure_seq[a.device - sc.lo] = parallel::ShardContext::kNoEvent;
      break;
    }
    case fault::FaultKind::kDeviceRestart:
      sc.arrival_seq[a.device - sc.lo] = sc.queue.scheduled_count();
      sc.queue.push(now + random::exponential(lc.rngs[a.device],
                                              lc.users[a.device].arrival_rate),
                    EventKind::kArrival, a.device);
      break;
    case fault::FaultKind::kUserArrival:
      // The device's measurement clock starts at its join, not at 0.
      lc.devices[a.device].last_change = now;
      sc.arrival_seq[a.device - sc.lo] = sc.queue.scheduled_count();
      sc.queue.push(now + random::exponential(lc.rngs[a.device],
                                              lc.users[a.device].arrival_rate),
                    EventKind::kArrival, a.device);
      break;
    case fault::FaultKind::kCapacityScale:
      break;  // central-only; never enters a shard view
  }
}

/// One shard leg: drains the shard's queue up to `limit` (exclusive at
/// barriers, inclusive for the final leg to t_end).  This is the hot loop,
/// instantiated per decision provider so the arrival decision inlines, and
/// per fault mode so fault-free runs fold every fault branch away.
template <bool WithFaults, class Decide>
void run_leg(parallel::ShardContext& sc, const LegContext<Decide>& lc,
             double limit, bool inclusive) {
  EventQueue& queue = sc.queue;
  while (!queue.empty()) {
    {
      const double t = queue.next_time();
      if (t > lc.t_end) return;
      if (inclusive ? t > limit : t >= limit) return;
    }
    const Event e = queue.pop();
    if (!queue.empty()) {
      // The next pending event is (usually) the next one processed; start
      // pulling the state it will touch while this event is handled.  A
      // pending kFault's `device` is a view index, so it must not index
      // the device arrays (prefetching a wrong-but-valid slot is harmless;
      // forming an out-of-range pointer is not).
      const std::uint32_t upcoming = queue.next_device();
      if (!WithFaults || upcoming < lc.n_devices) {
        const char* dev_lines =
            reinterpret_cast<const char*>(&lc.devices[upcoming]);
        MEC_PREFETCH(dev_lines);
        MEC_PREFETCH(dev_lines + 64);
        MEC_PREFETCH(&lc.rngs[upcoming]);
        MEC_PREFETCH(&lc.users[upcoming]);
      }
    }
    const double now = e.time;
    if (!sc.measuring && now >= lc.warmup) {
      // First pop at or past the warm-up boundary opens this shard's
      // measurement window.  Resetting only the owned range is equivalent
      // to the single-queue engine's global reset: devices of other shards
      // had no events since the global first-crossing either, and the
      // reset value depends only on `warmup`.
      sc.measuring = true;
      sc.flipped = true;
      for (std::uint32_t d = sc.lo; d < sc.hi; ++d)
        lc.devices[d].reset_measurements(lc.warmup);
    }

    if constexpr (WithFaults) {
      if (e.kind == EventKind::kFault) {
        // No ++sc.events here: outage toggles sit in every shard's view, so
        // fault pops are counted centrally, once per schedule action.
        apply_shard_fault(sc, lc, sc.view[e.device], now);
        continue;
      }
    }
    ++sc.events;

    DeviceState& dev = lc.devices[e.device];
    random::Xoshiro256& rng = lc.rngs[e.device];
    const core::UserParams& u = lc.users[e.device];

    switch (e.kind) {
      case EventKind::kArrival: {
        if constexpr (WithFaults) {
          // A stale arrival chain (pre-crash or pre-departure) is skipped
          // without consuming RNG draws; the live chain — if the device is
          // alive — has a matching sequence number by construction.
          if (e.seq != sc.arrival_seq[e.device - sc.lo]) break;
        }
        dev.integrate_to(now);
        if (sc.measuring) ++dev.arrivals;
        bool offload = (*lc.decide)(e.device, dev.local_queue.size(), rng);
        if constexpr (WithFaults) {
          // Outage check sits *after* the decision so the Bernoulli draw at
          // the boundary state is consumed either way (RNG alignment).
          if (offload && sc.outage &&
              sc.outage_mode == fault::OutageMode::kReject) {
            offload = false;
            if (sc.measuring) ++sc.offloads_rejected;
          }
        }
        if (offload) {
          // Static routing: device d feeds cluster d mod K.  The branch
          // keeps the 1-cluster fast path free of the modulo.
          const std::uint16_t cluster =
              lc.clusters > 1
                  ? static_cast<std::uint16_t>(e.device % lc.clusters)
                  : std::uint16_t{0};
          double penalty = 0.0;
          bool penalized = false;
          if constexpr (WithFaults) {
            if (sc.outage && sc.outage_mode == fault::OutageMode::kPenalty) {
              penalty = sc.outage_penalty;
              penalized = true;
              if (sc.measuring) ++sc.offloads_penalized;
            }
          }
          const double latency = (*lc.latency)(rng, u);
          if (lc.has_fixed_gamma) {
            // Pinned gamma: the edge delay is shard-local, so the delivery
            // event and all offload metrics complete right here.
            double delay_value = lc.fixed_delay;
            if (penalized) delay_value += penalty;
            if (sc.measuring) {
              ++dev.offloaded;
              ++sc.offloads_in_window;
              ++sc.cluster_offloads[cluster];
              dev.offload_delay_sum += latency + delay_value;
              dev.energy_sum += u.energy_offload;
              sc.offload_delays.add(latency + delay_value);
            }
            queue.push(now + latency + delay_value,
                       EventKind::kOffloadDelivery, e.device);
          } else {
            // Tracked gamma: everything g(gamma)-dependent (edge delay,
            // delivery time, delay metrics) is deferred to the central
            // replay; the gamma-free parts stay shard-local.
            sc.log.push_back(OffloadRecord{now, latency, penalty, e.device,
                                           cluster, sc.measuring, penalized});
            if (sc.measuring) {
              ++dev.offloaded;
              ++sc.offloads_in_window;
              ++sc.cluster_offloads[cluster];
              dev.energy_sum += u.energy_offload;
            }
          }
        } else {
          dev.local_queue.push_back(now);
          if (sc.measuring) dev.energy_sum += u.energy_local;
          if (dev.local_queue.size() == 1) {  // idle server: start service
            if constexpr (WithFaults)
              sc.departure_seq[e.device - sc.lo] = queue.scheduled_count();
            queue.push(now + (*lc.service)(rng, u),
                       EventKind::kLocalDeparture, e.device);
          }
        }
        if constexpr (WithFaults)
          sc.arrival_seq[e.device - sc.lo] = queue.scheduled_count();
        queue.push(now + random::exponential(rng, u.arrival_rate),
                   EventKind::kArrival, e.device);
        break;
      }
      case EventKind::kLocalDeparture: {
        if constexpr (WithFaults) {
          if (e.seq != sc.departure_seq[e.device - sc.lo]) break;  // stale
        }
        dev.integrate_to(now);
        MEC_ASSERT(!dev.local_queue.empty());
        const double arrived_at = dev.local_queue.front();
        dev.local_queue.pop_front();
        if (sc.measuring) {
          ++dev.local_completed;
          // Sojourn clipped to the window start for tasks arriving in
          // warm-up: only the portion spent inside the measurement window
          // counts, so a long transient backlog cannot leak into the
          // steady-state mean.
          const double sojourn = now - std::max(arrived_at, lc.warmup);
          dev.local_sojourn_sum += sojourn;
          sc.local_sojourns.add(sojourn);
        }
        if (!dev.local_queue.empty()) {
          if constexpr (WithFaults)
            sc.departure_seq[e.device - sc.lo] = queue.scheduled_count();
          queue.push(now + (*lc.service)(rng, u),
                     EventKind::kLocalDeparture, e.device);
        } else {
          if constexpr (WithFaults)
            sc.departure_seq[e.device - sc.lo] =
                parallel::ShardContext::kNoEvent;
        }
        break;
      }
      case EventKind::kOffloadDelivery:
        // Task completed at the edge; all accounting happened at decision
        // time (fixed-gamma mode only — tracked-gamma deliveries are
        // counted by the replay).
        break;
      case EventKind::kFault:
        // Handled (and `continue`d) before the device references above.
        MEC_ASSERT(WithFaults);
        break;
    }
  }
}

/// Builds a shard's fault view and seeds its queue: view actions first (at
/// equal times the environment change applies before any task event —
/// lower sequence number), then the initial arrivals of the owned range in
/// device order (matching the global RNG-consumption order per device).
template <bool WithFaults>
void init_shard(parallel::ShardContext& sc,
                const std::vector<core::UserParams>& users,
                std::uint32_t n_initial, std::vector<random::Xoshiro256>& rngs,
                std::span<const fault::ResolvedAction> plan_actions) {
  if constexpr (WithFaults) {
    for (const fault::ResolvedAction& a : plan_actions) {
      const bool outage_toggle = a.kind == fault::FaultKind::kOutageBegin ||
                                 a.kind == fault::FaultKind::kOutageEnd;
      const bool owned_membership =
          a.effective && a.device != fault::ResolvedAction::kNoDevice &&
          a.device >= sc.lo && a.device < sc.hi;
      if (outage_toggle || owned_membership) sc.view.push_back(a);
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(sc.view.size()); ++i)
      sc.queue.push(sc.view[i].time, EventKind::kFault, i);
    sc.arrival_seq.assign(sc.hi - sc.lo, parallel::ShardContext::kNoEvent);
    sc.departure_seq.assign(sc.hi - sc.lo, parallel::ShardContext::kNoEvent);
  }
  for (std::uint32_t d = sc.lo; d < sc.hi && d < n_initial; ++d) {
    if constexpr (WithFaults)
      sc.arrival_seq[d - sc.lo] = sc.queue.scheduled_count();
    sc.queue.push(random::exponential(rngs[d], users[d].arrival_rate),
                  EventKind::kArrival, d);
  }
}

/// Self-describing meta frame for a run's stream log: scenario shape,
/// cadences, gamma mode, and the counter catalogue.  Values here describe
/// the run, so they are identical for every shard count except `shards`
/// itself; determinism tests compare window frames, not metadata.
inline obs::RunLogMeta make_stream_meta(const SimulationOptions& options,
                                        std::uint32_t n_devices,
                                        std::uint32_t n_initial,
                                        double capacity, bool with_faults,
                                        std::size_t shard_count) {
  obs::RunLogMeta meta;
  meta.emplace_back("n_devices", std::to_string(n_devices));
  meta.emplace_back("n_initial", std::to_string(n_initial));
  meta.emplace_back("capacity", obs::meta_double(capacity));
  meta.emplace_back("clusters", std::to_string(options.topology.clusters));
  meta.emplace_back("seed", std::to_string(options.seed));
  meta.emplace_back("warmup", obs::meta_double(options.warmup));
  meta.emplace_back("horizon", obs::meta_double(options.horizon));
  meta.emplace_back("window", obs::meta_double(options.sample_interval));
  meta.emplace_back("epoch_period", obs::meta_double(options.epoch_period));
  meta.emplace_back("gamma",
                    options.fixed_gamma.has_value()
                        ? "fixed=" + obs::meta_double(*options.fixed_gamma)
                        : std::string("tracked"));
  meta.emplace_back("shards", std::to_string(shard_count));
  meta.emplace_back("faults", with_faults ? "1" : "0");
  std::string catalogue;
  for (std::uint16_t id = 0; id < obs::kCounterCount; ++id) {
    if (!catalogue.empty()) catalogue += ';';
    catalogue += std::to_string(id) + "=" +
                 obs::counter_name(static_cast<obs::Counter>(id));
  }
  meta.emplace_back("counters", catalogue);
  return meta;
}

/// One full simulation run: shard setup, barrier-stepped legs, replay,
/// observation, and the final serial aggregation (which loops devices in
/// index order, so population means are bit-identical for every K).
template <bool WithFaults, class Decide>
SimulationResult run_sharded(const std::vector<core::UserParams>& users,
                             std::size_t n_initial_devices, double capacity,
                             const core::EdgeDelay& delay,
                             const SimulationOptions& options,
                             SimWorkspace::Impl& ws, const Decide& decide) {
  const auto n_devices = static_cast<std::uint32_t>(users.size());
  const auto n_initial = static_cast<std::uint32_t>(n_initial_devices);
  const auto n_clusters =
      static_cast<std::uint32_t>(options.topology.clusters);
  // Nominal capacity is anchored to the initial population: churn changes
  // the offered load, not the installed edge hardware.
  const double edge_capacity = static_cast<double>(n_initial) * capacity;
  const double t_end = options.warmup + options.horizon;
  const bool has_fixed_gamma = options.fixed_gamma.has_value();
  const double fixed_delay =
      has_fixed_gamma ? delay(*options.fixed_gamma) : 0.0;

  const std::size_t shard_count = std::min<std::size_t>(
      parallel::resolve_shard_count(options.shards, n_devices), n_devices);

  ws.prepare(users.size());
  if (ws.rng_cached && ws.rng_seed == options.seed &&
      ws.rng_init.size() == n_devices) {
    std::copy(ws.rng_init.begin(), ws.rng_init.end(), ws.rngs.begin());
  } else {
    random::Xoshiro256 master(options.seed);
    for (std::uint32_t n = 0; n < n_devices; ++n) ws.rngs[n] = master.split();
    ws.rng_init = ws.rngs;
    ws.rng_seed = options.seed;
    ws.rng_cached = true;
  }

  fault::FaultPlan plan;
  if constexpr (WithFaults)
    plan = fault::resolve_fault_plan(options.faults->actions(), n_initial,
                                     n_devices, options.warmup, t_end);

  const bool measuring_from_start = options.warmup == 0.0;
  ws.shards.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    parallel::ShardContext& sc = ws.shards[s];
    sc.reset(parallel::shard_bound(n_devices, shard_count, s),
             parallel::shard_bound(n_devices, shard_count, s + 1),
             measuring_from_start);
    sc.cluster_offloads.assign(n_clusters, 0);
    init_shard<WithFaults>(sc, users, n_initial, ws.rngs, plan.actions);
  }
  if (shard_count > 1) {
    const std::size_t lanes =
        std::min(shard_count, parallel::resolve_thread_count(0));
    if (!ws.pool || ws.pool->thread_count() != lanes)
      ws.pool = std::make_unique<parallel::ThreadPool>(lanes);
  }

  // Streaming telemetry (src/mec/obs/): a StreamingSink folds each sample
  // instant into one window frame at the barrier.  Everything here runs at
  // barrier cadence only — a run without a stream log takes none of these
  // branches inside the legs themselves.
  std::unique_ptr<obs::StreamingSink> stream;
  std::vector<std::uint32_t> thresh_hist;    ///< per-window scratch
  std::vector<double> leg_seconds;           ///< per-shard wall time
  std::vector<obs::CounterValue> counter_scratch;
  if (!options.stream_log.empty()) {
    stream = std::make_unique<obs::StreamingSink>(
        options.stream_log,
        make_stream_meta(options, n_devices, n_initial, capacity, WithFaults,
                         shard_count),
        options.stream_counters && obs_counters_compiled());
    thresh_hist.assign(obs::kThresholdBins, 0);
  }
  const bool counters_on = stream != nullptr && stream->counters_enabled();
  if (counters_on) leg_seconds.assign(shard_count, 0.0);

  const LegContext<Decide> lc{users.data(),   ws.devices.data(),
                              ws.rngs.data(), &decide,
                              &options.service, &options.latency,
                              options.warmup, t_end,
                              n_devices,      n_clusters,
                              has_fixed_gamma, fixed_delay};
  const auto run_one = [&](std::size_t s, double limit, bool inclusive) {
    if (counters_on) {
      const auto t0 = std::chrono::steady_clock::now();
      run_leg<WithFaults>(ws.shards[s], lc, limit, inclusive);
      leg_seconds[s] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } else {
      run_leg<WithFaults>(ws.shards[s], lc, limit, inclusive);
    }
  };
  const auto run_legs = [&](double limit, bool inclusive) {
    if (shard_count == 1) {
      run_one(0, limit, inclusive);
    } else {
      ws.pool->parallel_for_each(shard_count, [&](std::size_t s) {
        run_one(s, limit, inclusive);
      });
    }
  };

  std::optional<GammaReplay> replay;
  if (!has_fixed_gamma)
    replay.emplace(delay, options.utilization_ewma_tau, options.initial_gamma,
                   edge_capacity, options.warmup, t_end, n_initial,
                   plan.actions, options.topology);
  // Per-cluster gamma reads, shared by the window frames and the
  // on_cluster_epoch hook.  Quasi-stationary runs replicate the pinned
  // value; tracked runs read the replay's per-cluster EWMA bank.
  std::vector<double> fixed_cluster_gammas;
  if (has_fixed_gamma)
    fixed_cluster_gammas.assign(n_clusters, *options.fixed_gamma);
  const auto cluster_gammas_at = [&](double at) -> std::span<const double> {
    if (has_fixed_gamma) return fixed_cluster_gammas;
    return replay->cluster_gammas(at);
  };
  std::vector<std::uint64_t> cluster_off_scratch;  ///< per-window sums
  stats::LatencySketch local_sojourns;
  stats::LatencySketch offload_delays;
  // Feeds the leg's offload logs — fully drained, they cover exactly the
  // records before the current barrier — through the replay, then frees
  // them for the next leg.
  std::uint64_t replay_backlog = 0;  ///< records drained since last counters
  const auto drain_logs = [&]() {
    if (has_fixed_gamma) return;
    ws.log_spans.clear();
    for (parallel::ShardContext& sc : ws.shards) {
      ws.log_spans.emplace_back(sc.log.data(), sc.log.size());
      replay_backlog += sc.log.size();
    }
    replay->consume(ws.log_spans, ws.devices.data(), offload_delays);
    for (parallel::ShardContext& sc : ws.shards) sc.log.clear();
  };

  // Environment cursor for sample reads in fixed-gamma mode (the replay
  // carries its own in tracked mode).
  fault::EnvWalk sample_walk;
  sample_walk.actions = plan.actions;
  sample_walk.active = n_initial;

  TimelineRecorder recorder;
  // Cursor over the resolved fault plan (time-sorted): actions strictly
  // before a barrier have all been popped by the exclusive legs, so the
  // count is exact — and K-invariant — at every barrier.
  [[maybe_unused]] std::size_t fault_cursor = 0;
  // Per-window cumulative sketch snapshots (merged in shard order; the
  // log-binned merge is order-invariant and exact, so the snapshot equals
  // what a single queue would have accumulated so far).
  stats::LatencySketch window_sojourns;
  stats::LatencySketch window_offload_delays;
  std::uint64_t counter_prev_events = 0;
  const ObservationGrid grid(options.sample_interval, options.epoch_period,
                             t_end);
  for (const GridInstant& g : grid.instants()) {
    run_legs(g.time, /*inclusive=*/false);
    drain_logs();
    if (g.sample) {
      TimelinePoint p;
      p.time = g.time;
      double scale = 1.0;
      std::uint64_t active = n_devices;
      if (has_fixed_gamma) {
        p.utilization_estimate = *options.fixed_gamma;
        if constexpr (WithFaults) {
          sample_walk.advance_to(g.time, /*inclusive=*/false);
          scale = sample_walk.scale;
          active = sample_walk.active;
        }
      } else {
        p.utilization_estimate = replay->gamma_at(g.time);
        if constexpr (WithFaults) {
          scale = replay->capacity_scale();
          active = replay->active_devices();
        }
      }
      double total_q = 0.0;
      double total_q2 = 0.0;
      if (stream != nullptr) {
        for (const DeviceState& d : ws.devices) {
          const double q = static_cast<double>(d.local_queue.size());
          total_q += q;
          total_q2 += q * q;
        }
      } else {
        for (const DeviceState& d : ws.devices)
          total_q += static_cast<double>(d.local_queue.size());
      }
      if constexpr (WithFaults) {
        // Dead/retired queues are empty, so the sum already covers exactly
        // the active population.
        p.capacity_scale = scale;
        p.active_devices = active;
        p.mean_queue_length =
            active == 0 ? 0.0 : total_q / static_cast<double>(active);
      } else {
        p.active_devices = n_devices;
        p.mean_queue_length = total_q / static_cast<double>(n_devices);
      }
      std::uint64_t so_far = 0;
      for (const parallel::ShardContext& sc : ws.shards)
        so_far += sc.offloads_in_window;
      p.offloads_so_far = so_far;
      if (options.record_timeline) recorder.on_sample(p);
      if (stream != nullptr) {
        stream->on_sample(p);
        obs::WindowExtras extras;
        extras.queue_second_moment =
            p.active_devices == 0
                ? 0.0
                : total_q2 / static_cast<double>(p.active_devices);
        // Cumulative event total at this barrier: shard task-event pops
        // (order-invariant sum) + fault actions popped (cursor) + replay
        // deliveries (serial) — each term K-invariant by construction.
        std::uint64_t events_now = 0;
        for (const parallel::ShardContext& sc : ws.shards)
          events_now += sc.events;
        if constexpr (WithFaults) {
          while (fault_cursor < plan.actions.size() &&
                 plan.actions[fault_cursor].time < g.time)
            ++fault_cursor;
          events_now += fault_cursor;
          std::uint64_t lost = 0, rejected = 0, penalized = 0;
          for (const parallel::ShardContext& sc : ws.shards) {
            lost += sc.tasks_lost;
            rejected += sc.offloads_rejected;
            penalized += sc.offloads_penalized;
          }
          extras.tasks_lost = lost;
          extras.offloads_rejected = rejected;
          extras.offloads_penalized = penalized;
          extras.fault_events_applied = fault_cursor;
        }
        if (!has_fixed_gamma) events_now += replay->deliveries();
        extras.events_so_far = events_now;
        window_sojourns = stats::LatencySketch{};
        for (const parallel::ShardContext& sc : ws.shards)
          window_sojourns.merge(sc.local_sojourns);
        extras.sojourns = &window_sojourns;
        if (has_fixed_gamma) {
          window_offload_delays = stats::LatencySketch{};
          for (const parallel::ShardContext& sc : ws.shards)
            window_offload_delays.merge(sc.offload_delays);
          extras.offload_delays = &window_offload_delays;
        } else {
          extras.offload_delays = &offload_delays;
        }
        std::fill(thresh_hist.begin(), thresh_hist.end(), 0u);
        for (std::uint32_t d = 0; d < n_devices; ++d) {
          const double th = decide.threshold_value(d);
          if (th < 0.0) continue;
          const std::size_t bin =
              th >= static_cast<double>(obs::kThresholdBins - 1)
                  ? obs::kThresholdBins - 1
                  : static_cast<std::size_t>(th);
          ++thresh_hist[bin];
        }
        extras.threshold_histogram = thresh_hist;
        cluster_off_scratch.assign(n_clusters, 0);
        for (const parallel::ShardContext& sc : ws.shards)
          for (std::uint32_t k = 0; k < n_clusters; ++k)
            cluster_off_scratch[k] += sc.cluster_offloads[k];
        extras.cluster_gamma = cluster_gammas_at(g.time);
        extras.cluster_offloads = cluster_off_scratch;
        stream->commit_window(extras);
        if (counters_on) {
          counter_scratch.clear();
          const auto add = [&](obs::Counter id, std::uint16_t shard,
                               double value) {
            counter_scratch.push_back(
                {static_cast<std::uint16_t>(id), shard, value});
          };
          double leg_min = leg_seconds[0], leg_max = leg_seconds[0];
          for (std::size_t s = 0; s < shard_count; ++s) {
            const parallel::ShardContext& sc = ws.shards[s];
            const auto sid = static_cast<std::uint16_t>(s);
            add(obs::Counter::kShardEvents, sid,
                static_cast<double>(sc.events));
            add(obs::Counter::kShardQueueDepth, sid,
                static_cast<double>(sc.queue.size()));
            add(obs::Counter::kShardCalendarGear, sid,
                sc.queue.calendar_gear() ? 1.0 : 0.0);
            add(obs::Counter::kShardGearSwitches, sid,
                static_cast<double>(sc.queue.gear_switches()));
            add(obs::Counter::kShardCalendarRetunes, sid,
                static_cast<double>(sc.queue.calendar_retunes()));
            add(obs::Counter::kShardLegSeconds, sid, leg_seconds[s]);
            leg_min = std::min(leg_min, leg_seconds[s]);
            leg_max = std::max(leg_max, leg_seconds[s]);
          }
          add(obs::Counter::kBarrierWaitSeconds, obs::kGlobalShard,
              shard_count > 1 ? leg_max - leg_min : 0.0);
          add(obs::Counter::kReplayRecords, obs::kGlobalShard,
              static_cast<double>(replay_backlog));
          replay_backlog = 0;
          if (!has_fixed_gamma)
            add(obs::Counter::kReplayDeliveries, obs::kGlobalShard,
                static_cast<double>(replay->deliveries()));
          if constexpr (WithFaults)
            add(obs::Counter::kFaultEventsApplied, obs::kGlobalShard,
                static_cast<double>(fault_cursor));
          add(obs::Counter::kEventsPerSecond, obs::kGlobalShard,
              leg_max > 0.0 ? static_cast<double>(events_now -
                                                  counter_prev_events) /
                                  leg_max
                            : 0.0);
          counter_prev_events = events_now;
          stream->append_counters(counter_scratch);
        }
      }
    }
    if (g.epoch) {
      if (options.on_epoch) {
        const double gamma = has_fixed_gamma ? *options.fixed_gamma
                                             : replay->gamma_at(g.time);
        options.on_epoch(g.time, gamma);
      }
      // Fires after on_epoch; epoch instants are barriers, so controller
      // state mutated here is seen identically by every shard count.
      if (options.on_cluster_epoch)
        options.on_cluster_epoch(g.time, cluster_gammas_at(g.time));
    }
  }
  run_legs(t_end, /*inclusive=*/true);
  drain_logs();

  // Close the measurement window.  A shard whose own events never crossed
  // the warm-up boundary still needs its devices reset if *any* pop did in
  // the single-queue engine — its own, another shard's, a fault action, or
  // an edge delivery (central in tracked-gamma mode).
  bool flipped = measuring_from_start;
  for (const parallel::ShardContext& sc : ws.shards) flipped |= sc.flipped;
  if constexpr (WithFaults) flipped |= plan.flip_trigger;
  if (!has_fixed_gamma) flipped |= replay->delivery_flip_trigger();
  if (flipped) {
    for (const parallel::ShardContext& sc : ws.shards) {
      if (sc.flipped) continue;
      for (std::uint32_t d = sc.lo; d < sc.hi; ++d)
        ws.devices[d].reset_measurements(options.warmup);
    }
  }
  for (DeviceState& d : ws.devices) d.integrate_to(t_end);

  double scale_integral = options.horizon;
  fault::EnvWindowStats env;
  if constexpr (WithFaults) {
    env = fault::integrate_environment(plan.actions, options.warmup, t_end,
                                       flipped);
    scale_integral = env.scale_integral;
    // A run so short no event crossed the warm-up boundary (or a fully
    // dark window): treat the whole window as nominal so the utilization
    // denominator stays finite.
    if (scale_integral == 0.0) scale_integral = options.horizon;
  }

  std::uint64_t events = 0;
  std::uint64_t offloads_in_window = 0;
  std::vector<std::uint64_t> cluster_offloads(n_clusters, 0);
  for (const parallel::ShardContext& sc : ws.shards) {
    events += sc.events;
    offloads_in_window += sc.offloads_in_window;
    for (std::uint32_t k = 0; k < n_clusters; ++k)
      cluster_offloads[k] += sc.cluster_offloads[k];
    local_sojourns.merge(sc.local_sojourns);
    if (has_fixed_gamma) offload_delays.merge(sc.offload_delays);
  }
  if constexpr (WithFaults)
    events += plan.actions.size();  // every schedule action popped once
  if (!has_fixed_gamma) events += replay->deliveries();

  SimulationResult result;
  result.horizon = options.horizon;
  result.total_events = events;
  result.local_sojourn_percentiles = std::move(local_sojourns);
  result.offload_delay_percentiles = std::move(offload_delays);
  result.timeline = recorder.take();
  result.devices.reserve(n_devices);
  const double window = options.horizon;

  double cost_acc = 0.0, q_acc = 0.0, alpha_acc = 0.0;
  std::uint32_t participating = 0;
  // Under faults the denominator is the *time-averaged* available capacity
  // over the window (edge_capacity * mean scale * window); fault-free it
  // reduces to the familiar offloads / (window * N * c).
  double gamma_denom = window * edge_capacity;
  if constexpr (WithFaults) gamma_denom = edge_capacity * scale_integral;
  const double gamma_measured =
      static_cast<double>(offloads_in_window) / gamma_denom;
  for (std::uint32_t n = 0; n < n_devices; ++n) {
    if constexpr (WithFaults) {
      // Churn slots that never joined report all-zero stats and must not
      // dilute the population means (their empirical cost is not zero —
      // the Eq.-(1) functional of an idle device is w*p_L).
      if (n >= n_initial + plan.joins) {
        result.devices.emplace_back();
        continue;
      }
    }
    ++participating;
    const DeviceState& dev = ws.devices[n];
    const core::UserParams& u = users[n];
    DeviceStats s;
    s.arrivals = dev.arrivals;
    s.offloaded = dev.offloaded;
    s.local_completed = dev.local_completed;
    s.mean_queue_length = dev.queue_integral / window;
    s.offload_fraction =
        dev.arrivals > 0
            ? static_cast<double>(dev.offloaded) /
                  static_cast<double>(dev.arrivals)
            : 0.0;
    s.mean_local_sojourn =
        dev.local_completed > 0
            ? dev.local_sojourn_sum / static_cast<double>(dev.local_completed)
            : 0.0;
    s.mean_offload_delay =
        dev.offloaded > 0
            ? dev.offload_delay_sum / static_cast<double>(dev.offloaded)
            : 0.0;
    s.energy_per_task =
        dev.arrivals > 0
            ? dev.energy_sum / static_cast<double>(dev.arrivals)
            : 0.0;
    // Empirical Eq.-(1) cost: measured alpha, measured mean queue, measured
    // per-offload delay (latency + edge processing).
    s.empirical_cost =
        u.weight * u.energy_local * (1.0 - s.offload_fraction) +
        s.mean_queue_length / u.arrival_rate +
        (u.weight * u.energy_offload + s.mean_offload_delay) *
            s.offload_fraction;
    cost_acc += s.empirical_cost;
    q_acc += s.mean_queue_length;
    alpha_acc += s.offload_fraction;
    result.devices.push_back(s);
  }
  result.measured_utilization = gamma_measured;
  // Per-cluster utilization divides each cluster's offload count by its
  // capacity share of the same denominator; with one cluster share(0) is
  // exactly 1.0, so cluster_utilization[0] == measured_utilization bitwise.
  result.cluster_offloads = std::move(cluster_offloads);
  result.cluster_utilization.reserve(n_clusters);
  for (std::uint32_t k = 0; k < n_clusters; ++k)
    result.cluster_utilization.push_back(
        static_cast<double>(result.cluster_offloads[k]) /
        (gamma_denom * options.topology.share(k)));
  result.mean_cost = cost_acc / static_cast<double>(participating);
  result.mean_queue_length = q_acc / static_cast<double>(participating);
  result.mean_offload_fraction = alpha_acc / static_cast<double>(participating);
  if constexpr (WithFaults) {
    FaultStats fs;
    fs.crashes = plan.crashes;
    fs.restarts = plan.restarts;
    fs.churn_joined = plan.churn_joined;
    fs.churn_departed = plan.churn_departed;
    for (const parallel::ShardContext& sc : ws.shards) {
      fs.tasks_lost += sc.tasks_lost;
      fs.offloads_rejected += sc.offloads_rejected;
      fs.offloads_penalized += sc.offloads_penalized;
    }
    fs.min_capacity_scale = env.min_capacity_scale;
    fs.mean_capacity_scale = scale_integral / window;
    fs.degraded_time = env.degraded_time;
    fs.participating_devices = participating;
    result.faults = fs;
  }
  if (stream != nullptr) {
    obs::RunFooter footer;
    footer.windows = stream->windows();
    footer.total_events = result.total_events;
    footer.measured_utilization = result.measured_utilization;
    footer.mean_cost = result.mean_cost;
    footer.horizon = result.horizon;
    stream->finish(footer);
  }
  return result;
}

}  // namespace engine
}  // namespace mec::sim

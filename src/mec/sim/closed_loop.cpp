#include "mec/sim/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mec/common/error.hpp"
#include "mec/core/threshold_oracle.hpp"

namespace mec::sim {

ClosedLoopResult run_closed_loop(std::span<const core::UserParams> users,
                                 double capacity, const core::EdgeDelay& delay,
                                 const ClosedLoopOptions& options) {
  MEC_EXPECTS(!users.empty());
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(delay.valid());
  MEC_EXPECTS(options.update_period > 0.0);
  MEC_EXPECTS(options.horizon > options.update_period);
  MEC_EXPECTS(options.eta0 > 0.0 && options.eta0 <= 1.0);
  MEC_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MEC_EXPECTS(options.drift_margin > 0.0);

  // With churn, joining devices are appended to the population in schedule
  // order (mirroring MecSimulation's constructor) and get their own policy.
  std::vector<core::UserParams> all_users(users.begin(), users.end());
  if (options.faults && !options.faults->empty()) {
    const std::vector<core::UserParams> joiners = options.faults->churn_users();
    all_users.insert(all_users.end(), joiners.begin(), joiners.end());
  }

  // Devices start at threshold 0 (offload everything), as in Algorithm 1.
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  std::vector<MutableTroPolicy*> tunable;
  policies.reserve(all_users.size());
  tunable.reserve(all_users.size());
  for (std::size_t n = 0; n < all_users.size(); ++n) {
    auto policy = std::make_unique<MutableTroPolicy>(0.0);
    tunable.push_back(policy.get());
    policies.push_back(std::move(policy));
  }

  // Algorithm 1 state, updated by the epoch callback.
  struct LoopState {
    double ghat_prev2 = 1.0;  // gamma_hat_{-1}
    double ghat_prev = 0.0;   // gamma_hat_0
    double eta;
    int counter_l = 1;
    int t = 0;
    bool settled = false;
  } state;
  state.eta = options.eta0;

  ClosedLoopResult result;

  SimulationOptions sim_options;
  sim_options.warmup = 0.0;  // the whole run *is* the experiment
  sim_options.horizon = options.horizon;
  sim_options.seed = options.seed;
  sim_options.service = options.service;
  sim_options.latency = options.latency;
  sim_options.service_spec = options.service_spec;
  sim_options.latency_spec = options.latency_spec;
  sim_options.utilization_ewma_tau = options.utilization_ewma_tau;
  sim_options.epoch_period = options.update_period;
  sim_options.faults = options.faults;
  sim_options.shards = options.shards;
  sim_options.transport = options.transport;
  sim_options.workers = options.workers;
  sim_options.worker_addresses = options.worker_addresses;
  sim_options.topology = options.topology;
  sim_options.sample_interval = options.sample_interval;
  sim_options.stream_log = options.stream_log;
  sim_options.stream_counters = options.stream_counters;
  sim_options.record_timeline = options.record_timeline;
  sim_options.on_epoch = [&](double now, double gamma_measured) {
    ++state.t;
    if (state.settled && options.resume_on_drift &&
        std::abs(gamma_measured - state.ghat_prev) > options.drift_margin) {
      // The environment moved under a settled estimate (capacity shock,
      // churn wave): restart the step/halving schedule.  ghat_prev2 gets a
      // far sentinel so the settling test cannot re-fire before two fresh
      // updates (mirroring the cold-start state), and the sentinel is
      // unreachable by ghat so the oscillation rule stays quiet.
      state.settled = false;
      state.eta = options.eta0;
      state.counter_l = 1;
      state.ghat_prev2 = 2.0;
      ++result.drift_resumes;
    } else if (std::abs(state.ghat_prev - state.ghat_prev2) <= options.epsilon) {
      state.settled = true;  // estimate pinned; devices hold thresholds
    }

    double ghat = state.ghat_prev;
    if (!state.settled) {
      double step = 0.0;
      if (gamma_measured > state.ghat_prev)
        step = state.eta;
      else if (gamma_measured < state.ghat_prev)
        step = -state.eta;
      ghat = std::clamp(state.ghat_prev + step, 0.0, 1.0);

      const double g_value = delay(ghat);
      for (std::size_t n = 0; n < all_users.size(); ++n) {
        if (options.update_gate && !options.update_gate(n, state.t)) continue;
        tunable[n]->set_threshold(
            static_cast<double>(core::best_threshold(all_users[n], g_value)));
      }
      if (state.t >= 2 &&
          std::abs(ghat - state.ghat_prev2) <= options.oscillation_tol) {
        ++state.counter_l;
        state.eta = options.eta0 / state.counter_l;
      }
      state.ghat_prev2 = state.ghat_prev;
      state.ghat_prev = ghat;
    }

    double mean_x = 0.0;
    for (const MutableTroPolicy* p : tunable) mean_x += p->threshold();
    mean_x /= static_cast<double>(tunable.size());
    result.epochs.push_back(
        ClosedLoopEpoch{now, gamma_measured, ghat, state.eta, mean_x});
  };

  MecSimulation simulation(users, capacity, delay, std::move(sim_options));
  result.run = simulation.run(policies);

  result.thresholds.reserve(tunable.size());
  for (const MutableTroPolicy* p : tunable)
    result.thresholds.push_back(p->threshold());
  result.final_gamma_hat = state.ghat_prev;
  result.estimate_settled = state.settled;
  return result;
}

}  // namespace mec::sim

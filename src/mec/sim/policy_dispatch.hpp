// Policy-dispatch layer: how the engine asks "offload this arrival?".
//
// The analytic TRO rule is shared verbatim by three interchangeable decision
// providers — a sealed value fast path, a sealed live-pointer fast path for
// the closed loop, and the generic virtual dispatch — instantiated into the
// event loop as a template parameter so the all-TRO case pays no virtual
// call.  Determinism contract: every provider consumes *exactly* the RNG
// draws the equivalent OffloadPolicy::offload() would (one Bernoulli at the
// boundary state, none elsewhere), so all instantiations are bit-identical
// for a given seed, and the decision depends only on (device, queue length,
// device RNG) — never on other devices or the edge state — which is what
// lets shards decide independently between barriers.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>

#include "mec/random/rng.hpp"
#include "mec/sim/policies.hpp"

namespace mec::sim {

/// The TRO decision rule, shared verbatim by the sealed fast paths and
/// (through TroPolicy / MutableTroPolicy) the virtual path: both consume
/// exactly one Bernoulli draw at the boundary state and none elsewhere, so
/// the paths are bit-identical for a given seed.
inline bool tro_offload(double threshold, std::uint64_t queue_length,
                        random::Xoshiro256& rng) {
  const double fl = std::floor(threshold);
  const auto floor_int = static_cast<std::uint64_t>(fl);
  if (queue_length < floor_int) return false;
  if (queue_length == floor_int)
    return !random::bernoulli(rng, threshold - fl);
  return true;
}

/// Fast path for run_tro: fixed thresholds read straight from the caller's
/// array, no policy objects at all.
struct TroValueDecide {
  const double* thresholds;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return tro_offload(thresholds[device], queue_length, rng);
  }
  /// Telemetry hook (barrier-time only): the device's current threshold,
  /// or a negative value when the policy has none.
  double threshold_value(std::uint32_t device) const {
    return thresholds[device];
  }
};

/// Fast path for run(policies) when every policy is TRO-family: live
/// threshold pointers, re-read per decision so epoch-callback retuning of
/// MutableTroPolicy takes effect immediately.
struct TroPointerDecide {
  const double* const* thresholds;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return tro_offload(*thresholds[device], queue_length, rng);
  }
  double threshold_value(std::uint32_t device) const {
    return *thresholds[device];
  }
};

/// Generic path: one virtual call per arrival (DPO, custom policies).
struct VirtualDecide {
  const std::unique_ptr<OffloadPolicy>* policies;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return policies[device]->offload(queue_length, rng);
  }
  double threshold_value(std::uint32_t device) const {
    const double* p = policies[device]->tro_threshold();
    return p != nullptr ? *p : -1.0;
  }
};

}  // namespace mec::sim

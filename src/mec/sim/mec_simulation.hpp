// Full-system discrete-event simulator of the heterogeneous MEC model.
//
// N devices receive Poisson task streams; an admission policy (TRO, DPO, ...)
// routes each arrival to the local FCFS queue or to the edge.  Local service
// times come from a pluggable sampler (exponential by default; resampled
// measured datasets for the practical settings).  Offloaded tasks pay a
// wireless latency sample plus the edge processing delay g(gamma), where
// gamma is either held fixed (quasi-stationary evaluation, mirroring the
// theory) or tracked online with an exponentially-weighted rate estimator.
//
// The simulator is the library's ground truth: tests validate the closed
// forms (Eq. 7-8) against it, and the practical-settings experiments use it
// to measure utilization and cost under non-exponential service.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/random/empirical.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/metrics.hpp"
#include "mec/sim/policies.hpp"

namespace mec::sim {

/// Draws one local service time for a device. Must have mean 1/s_n.
using ServiceSampler =
    std::function<double(random::Xoshiro256&, const core::UserParams&)>;

/// Draws one wireless offload latency for a device. Must have mean tau_n.
using LatencySampler =
    std::function<double(random::Xoshiro256&, const core::UserParams&)>;

/// Exponential(s_n) service — the theoretical model.
ServiceSampler exponential_service();
/// Deterministic 1/s_n service.
ServiceSampler deterministic_service();
/// Resamples `times` rescaled so each device's mean service time is 1/s_n.
ServiceSampler empirical_service(random::EmpiricalDataset times);
/// Erlang-k service with mean 1/s_n (SCV = 1/k). Requires stages >= 1.
ServiceSampler erlang_service(std::size_t stages);
/// Two-phase balanced-means hyperexponential service with mean 1/s_n and
/// the given squared coefficient of variation. Requires scv >= 1.
ServiceSampler hyperexponential_service(double scv);

/// Exponential(mean tau_n) latency.
LatencySampler exponential_latency();
/// Deterministic tau_n latency.
LatencySampler deterministic_latency();
/// Resamples `latencies` rescaled so each device's mean latency is tau_n.
LatencySampler empirical_latency(random::EmpiricalDataset latencies);

/// Wire-describable sampler recipe.  A raw ServiceSampler/LatencySampler is
/// an arbitrary closure and cannot cross a machine boundary; a spec is data,
/// so the TCP transport ships it in the population frame and the worker
/// rebuilds the *same* factory closure — same parameters, same RNG-draw
/// order, hence bit-identical streams.  make_service_sampler /
/// make_latency_sampler map each kind onto the factory of the same name.
struct SamplerSpec {
  enum class Kind : std::uint8_t {
    kExponential = 0,
    kDeterministic = 1,
    /// param = stage count k >= 1 (service only).
    kErlang = 2,
    /// param = SCV >= 1 (service only).
    kHyperExponential = 3,
    /// data = samples to resample (rescaled per device to the target mean).
    kEmpirical = 4,
  };
  Kind kind = Kind::kExponential;
  double param = 0.0;
  std::vector<double> data;

  bool operator==(const SamplerSpec&) const = default;
};

/// Builds the sampler a spec describes; throws mec::RuntimeError on an
/// invalid spec (bad param/data for the kind, or a latency kind the latency
/// factories do not offer).
ServiceSampler make_service_sampler(const SamplerSpec& spec);
LatencySampler make_latency_sampler(const SamplerSpec& spec);

/// How a run's shard legs execute relative to the coordinating process.
/// Either way the coordinator/worker split goes through the same
/// parallel::Transport seam and results are bit-identical — the transport
/// trades nothing but wall-clock and isolation (determinism contract #8,
/// docs/ARCHITECTURE.md).
enum class TransportKind {
  /// Workers are plain objects in this process sharing the workspace
  /// (today's default; zero-copy barrier views).
  kInProcess,
  /// The run forks worker processes, each owning a contiguous slice of the
  /// shards; barrier payloads travel over length-prefixed CRC-checked
  /// socket frames.  Requires a decision provider with per-device TRO
  /// thresholds (threshold_value(n) >= 0 for every device) — virtual
  /// non-TRO policies cannot be mirrored across a process boundary.
  kProcess,
  /// Ranks live in `mec worker` daemons reached over TCP
  /// (SimulationOptions::worker_addresses, one rank per address); the same
  /// wire dialect as kProcess plus a versioned handshake and an explicit
  /// population frame per rank (workers cannot inherit device arrays by
  /// fork).  Requires per-device TRO thresholds like kProcess, and
  /// wire-describable samplers (service_spec/latency_spec — raw sampler
  /// closures cannot cross a machine boundary).
  kTcp,
};

struct SimulationOptions {
  double warmup = 20.0;    ///< discarded transient, in simulated seconds
  double horizon = 200.0;  ///< measurement window length
  std::uint64_t seed = 1;
  ServiceSampler service;  ///< null => exponential_service()
  LatencySampler latency;  ///< null => exponential_latency()
  /// Wire-describable sampler recipes.  Setting a spec (and leaving the
  /// matching raw sampler null) makes the run TCP-shippable: the
  /// constructor materializes the sampler via make_service_sampler /
  /// make_latency_sampler, so results are identical to passing the factory
  /// product directly.  Setting both a spec and its raw sampler is an
  /// error; with neither, the spec defaults to exponential.
  std::optional<SamplerSpec> service_spec;
  std::optional<SamplerSpec> latency_spec;
  /// If set, the edge delay uses this constant utilization (quasi-stationary
  /// evaluation); otherwise an online EWMA estimate with time constant
  /// `utilization_ewma_tau` is used, seeded from `initial_gamma`.
  std::optional<double> fixed_gamma;
  double utilization_ewma_tau = 10.0;
  double initial_gamma = 0.0;
  /// When > 0, the run records a TimelinePoint every `sample_interval`
  /// simulated seconds (from time 0 through warm-up and measurement).
  double sample_interval = 0.0;
  /// When > 0 and on_epoch is set, the engine invokes on_epoch(now, gamma)
  /// every `epoch_period` simulated seconds, where gamma is the engine's
  /// current utilization estimate.  The callback may retune
  /// MutableTroPolicy thresholds — this is how the closed-loop DTU runs
  /// *inside* the simulator (see mec/sim/closed_loop.hpp).
  double epoch_period = 0.0;
  std::function<void(double now, double gamma_estimate)> on_epoch;
  /// Per-cluster epoch hook: invoked at every epoch instant with the
  /// per-cluster utilization estimates (one entry per topology cluster;
  /// the fixed_gamma value replicated per cluster in quasi-stationary
  /// mode).  Controllers mutating policy-visible state (prices, cluster
  /// activation flags) must do so only here — epoch instants are shard
  /// barriers, which is what keeps the new policy families bit-identical
  /// across shard counts.  May be combined with on_epoch (it fires after).
  std::function<void(double now, std::span<const double> cluster_gammas)>
      on_cluster_epoch;
  /// Edge-cluster layout (defaults to one cluster covering the whole
  /// capacity — the scalar-gamma engine, bit-for-bit).  Devices route to
  /// cluster `device % clusters`; cluster k owns capacity
  /// `initial_devices * capacity * share(k)`.
  ClusterTopology topology;
  /// Optional deterministic fault/churn schedule (see mec/fault/).  Fault
  /// actions are injected as first-class events into the future-event list,
  /// so a schedule replays bit-identically for any thread count.  A null or
  /// empty schedule leaves the engine on the fault-free fast path with
  /// bit-identical results to a build without this feature.
  ///
  /// Semantics under faults:
  ///   - Capacity scaling rescales the *denominator* of the utilization
  ///     estimate (the EWMA path); a pinned `fixed_gamma` stays pinned.
  ///   - During an outage window, offload decisions are rerouted to the
  ///     local queue (kReject) or pay extra latency (kPenalty).
  ///   - Crashes drop the device's local queue (counted in
  ///     FaultStats::tasks_lost) and stop its arrivals until a restart.
  ///   - Churn joins append devices after the initial population, in
  ///     schedule order; policy/threshold spans must cover them (see
  ///     total_devices()).  Departures retire an active device for good.
  std::shared_ptr<const fault::FaultSchedule> faults;
  /// Shard count for the run's device partition: an explicit value >= 1
  /// wins; 0 (default) defers to the MEC_SHARDS environment variable, and
  /// with neither set the count is autotuned from the population size and
  /// hardware_concurrency() (parallel::auto_shard_count — K = 1 below
  /// ~10^4 devices).  Either way the count is capped at the population
  /// size.  Results are bit-identical for every shard count — sharding
  /// trades nothing but wall-clock (see parallel/shard_executor.hpp and
  /// docs/ARCHITECTURE.md for the exactness argument).
  std::size_t shards = 0;
  /// Execution transport for the shard legs (see TransportKind).  Results
  /// are bit-identical across transports for any shard/worker split.
  TransportKind transport = TransportKind::kInProcess;
  /// Worker-process count for TransportKind::kProcess: 0 (default) picks 2;
  /// any value is capped at the run's shard count.  Ignored by kInProcess.
  /// Worker rank r owns the contiguous shard slice [K*r/W, K*(r+1)/W).
  std::size_t workers = 0;
  /// Worker daemon addresses ("host:port") for TransportKind::kTcp, one
  /// rank per entry in rank order.  The list must be duplicate-free and no
  /// longer than the run's shard count (every rank needs at least one
  /// shard).  Shard slices follow the same [K*r/W, K*(r+1)/W) rule, so any
  /// placement streams the exact inproc bytes.
  std::vector<std::string> worker_addresses;
  /// When non-empty, the run streams windowed telemetry to this .meclog
  /// path: one fixed-size window record per sample instant, flushed at the
  /// observation-grid barrier (see src/mec/obs/ and docs/OBSERVABILITY.md).
  /// Requires sample_interval > 0.  Window records are bit-identical to
  /// the in-memory timeline for every shard count.
  std::string stream_log;
  /// Emit engine-counter frames (events/s per shard, queue gear switches,
  /// barrier wait, replay backlog, ...) into the stream log.  Counter
  /// frames are wall-clock diagnostics — useful, but not deterministic.
  /// No effect without stream_log, or when the build has the
  /// MEC_OBS_COUNTERS CMake option off.
  bool stream_counters = true;
  /// Record the in-memory SimulationResult::timeline.  Default on; long
  /// streamed runs turn it off so telemetry memory stays O(devices + one
  /// window) instead of O(samples).
  bool record_timeline = true;
};

/// Reusable per-run simulation state (device states, RNG streams, the
/// future-event list).  A default-constructed workspace is empty; the first
/// run sizes it, and reusing it across runs of same-sized populations makes
/// steady-state simulation allocation-free — the replication engine and the
/// DTU's utilization oracle both run thousands of same-shape simulations.
/// Results are bit-identical whether or not a workspace is reused.  A
/// workspace must not be shared between concurrent runs.
class SimWorkspace {
 public:
  SimWorkspace();
  ~SimWorkspace();
  SimWorkspace(SimWorkspace&&) noexcept;
  SimWorkspace& operator=(SimWorkspace&&) noexcept;

  /// Opaque buffer block (defined in mec_simulation.cpp; the event loop
  /// there takes it by reference, which is why it cannot be private).
  struct Impl;

 private:
  friend class MecSimulation;
  std::unique_ptr<Impl> impl_;
};

/// One reusable simulator bound to a population and an edge configuration.
class MecSimulation {
 public:
  /// Copies the population. Requires non-empty users, capacity > 0, valid
  /// delay, warmup >= 0, horizon > 0.  When the options carry a fault
  /// schedule with churn, the joining users are appended to the population
  /// at construction (in schedule order): policy/threshold spans passed to
  /// run()/run_tro() must then have total_devices() entries.  The nominal
  /// edge capacity stays `initial_devices() * capacity` — churn moves load,
  /// not infrastructure.
  MecSimulation(std::span<const core::UserParams> users, double capacity,
                core::EdgeDelay delay, SimulationOptions options = {});

  /// Runs with per-device policies (size must match total_devices()).  When
  /// every policy exposes tro_threshold(), the arrival decision runs on a
  /// sealed non-virtual fast path (bit-identical to the virtual dispatch).
  SimulationResult run(
      std::span<const std::unique_ptr<OffloadPolicy>> policies) const;
  SimulationResult run(std::span<const std::unique_ptr<OffloadPolicy>> policies,
                       SimWorkspace& workspace) const;

  /// Runs the TRO policy with per-device thresholds (x_n >= 0) without
  /// materializing policy objects (always on the fast path).
  SimulationResult run_tro(std::span<const double> thresholds) const;
  SimulationResult run_tro(std::span<const double> thresholds,
                           SimWorkspace& workspace) const;

  /// Runs the DPO policy with per-device offload probabilities.
  SimulationResult run_dpo(std::span<const double> rhos) const;

  /// Initial population plus any churn users from the fault schedule.
  std::size_t population_size() const noexcept { return users_.size(); }
  std::size_t total_devices() const noexcept { return users_.size(); }
  /// The population passed to the constructor (pre-churn).
  std::size_t initial_devices() const noexcept { return n_initial_; }

 private:
  std::vector<core::UserParams> users_;  ///< initial population + churn users
  std::size_t n_initial_ = 0;
  double capacity_;
  core::EdgeDelay delay_;
  SimulationOptions options_;
};

/// Adapts the simulator to Algorithm 1's gamma_t oracle: each call runs one
/// simulation with the supplied thresholds and returns the measured
/// utilization.  Successive calls use decorrelated seeds.
class DesUtilizationSource final : public core::UtilizationSource {
 public:
  DesUtilizationSource(std::span<const core::UserParams> users,
                       double capacity, core::EdgeDelay delay,
                       SimulationOptions options = {});

  double utilization(std::span<const double> thresholds) override;

  /// Result of the most recent run (for cost reporting). Requires at least
  /// one utilization() call.
  const SimulationResult& last_result() const;

 private:
  std::vector<core::UserParams> users_;
  double capacity_;
  core::EdgeDelay delay_;
  SimulationOptions options_;
  SimWorkspace workspace_;  ///< reused across utilization() calls
  std::optional<SimulationResult> last_;
  std::uint64_t call_count_ = 0;
};

}  // namespace mec::sim

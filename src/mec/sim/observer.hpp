// Observer layer: how measurements leave the engine.
//
// The engine never appends to result vectors directly; it fires sampled
// TimelinePoints into a MetricsSink at scheduled grid instants.  The grid
// itself (ObservationGrid) is precomputed from the sample/epoch cadences
// and doubles as the sharded engine's barrier schedule: every grid instant
// is a synchronization point where shard legs stop, the gamma replay
// catches up, and observers read a globally consistent left-limit state.
//
// Determinism contract: grid times are generated with the same repeated
// floating-point accumulation (`next += interval`) the single-queue engine
// used, so sample timestamps — and therefore every downstream value — are
// bit-identical.  Observers see the state *before* any event at the grid
// instant itself (left-limit semantics, see TimelinePoint), and when a
// sample and an epoch share an instant the sample fires first.
#pragma once

#include <vector>

#include "mec/sim/metrics.hpp"

namespace mec::sim {

/// Receives sampled trajectory points as the run crosses grid instants.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_sample(const TimelinePoint& point) = 0;
};

/// Default sink: collects the sampled trajectory for SimulationResult.
class TimelineRecorder final : public MetricsSink {
 public:
  void on_sample(const TimelinePoint& point) override {
    points_.push_back(point);
  }
  std::vector<TimelinePoint> take() noexcept { return std::move(points_); }

 private:
  std::vector<TimelinePoint> points_;
};

/// One synchronization instant of a run; at least one flag is set.
struct GridInstant {
  double time = 0.0;
  bool sample = false;  ///< record a TimelinePoint here
  bool epoch = false;   ///< invoke the on_epoch callback here
};

/// The merged sample/epoch schedule of one run: every grid instant in
/// (0, t_end], in increasing time order, with coinciding sample and epoch
/// points folded into one instant (exact float equality — the same-cadence
/// case; nearly-equal points from incommensurate cadences stay distinct
/// and fire in time order).
class ObservationGrid {
 public:
  ObservationGrid(double sample_interval, double epoch_period, double t_end) {
    std::vector<double> samples = accumulate(sample_interval, t_end);
    std::vector<double> epochs = accumulate(epoch_period, t_end);
    instants_.reserve(samples.size() + epochs.size());
    std::size_t i = 0, j = 0;
    while (i < samples.size() || j < epochs.size()) {
      const bool take_sample =
          i < samples.size() &&
          (j >= epochs.size() || samples[i] <= epochs[j]);
      GridInstant g;
      g.time = take_sample ? samples[i] : epochs[j];
      if (i < samples.size() && samples[i] == g.time) {
        g.sample = true;
        ++i;
      }
      if (j < epochs.size() && epochs[j] == g.time) {
        g.epoch = true;
        ++j;
      }
      instants_.push_back(g);
    }
  }

  const std::vector<GridInstant>& instants() const noexcept {
    return instants_;
  }

 private:
  // The exact accumulation the event loop used (`next += interval` from
  // `interval`): summing k*interval directly would round differently.
  static std::vector<double> accumulate(double interval, double t_end) {
    std::vector<double> times;
    if (interval > 0.0)
      for (double next = interval; next <= t_end; next += interval)
        times.push_back(next);
    return times;
  }

  std::vector<GridInstant> instants_;
};

}  // namespace mec::sim

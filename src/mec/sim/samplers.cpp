// Service- and latency-sampler factories (the pluggable distribution layer
// of SimulationOptions).  Split from the engine so distribution changes
// never touch — or recompile — the event-loop translation units.
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "mec/common/error.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::sim {

ServiceSampler exponential_service() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    return random::exponential(rng, u.service_rate);
  };
}

ServiceSampler deterministic_service() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return 1.0 / u.service_rate;
  };
}

ServiceSampler empirical_service(random::EmpiricalDataset times) {
  MEC_EXPECTS(times.mean() > 0.0);
  const double dataset_mean = times.mean();
  return [times = std::move(times), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return times.resample(rng) / (dataset_mean * u.service_rate);
  };
}

ServiceSampler erlang_service(std::size_t stages) {
  MEC_EXPECTS(stages >= 1);
  return [stages](random::Xoshiro256& rng, const core::UserParams& u) {
    const double stage_rate =
        static_cast<double>(stages) * u.service_rate;
    double total = 0.0;
    for (std::size_t i = 0; i < stages; ++i)
      total += random::exponential(rng, stage_rate);
    return total;
  };
}

ServiceSampler hyperexponential_service(double scv) {
  MEC_EXPECTS(scv >= 1.0);
  // Balanced-means H2 fit (cf. queueing::hyperexponential_from_scv): branch
  // probability p with rates 2p*s and 2(1-p)*s for mean 1/s.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  return [p](random::Xoshiro256& rng, const core::UserParams& u) {
    const bool first = random::bernoulli(rng, p);
    const double rate =
        first ? 2.0 * p * u.service_rate : 2.0 * (1.0 - p) * u.service_rate;
    return random::exponential(rng, rate);
  };
}

LatencySampler exponential_latency() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    if (u.offload_latency <= 0.0) return 0.0;
    return random::exponential(rng, 1.0 / u.offload_latency);
  };
}

LatencySampler deterministic_latency() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return u.offload_latency;
  };
}

LatencySampler empirical_latency(random::EmpiricalDataset latencies) {
  MEC_EXPECTS(latencies.mean() > 0.0);
  const double dataset_mean = latencies.mean();
  return [latencies = std::move(latencies), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return latencies.resample(rng) * (u.offload_latency / dataset_mean);
  };
}

namespace {

random::EmpiricalDataset spec_dataset(const SamplerSpec& spec,
                                      const char* role) {
  if (spec.data.empty())
    throw RuntimeError(std::string("empirical ") + role +
                       " sampler spec has no samples");
  // EmpiricalDataset keeps its samples sorted, so a dataset rebuilt from a
  // shipped spec resamples the exact sequence the coordinator's would.
  return random::EmpiricalDataset(spec.data, "spec");
}

}  // namespace

ServiceSampler make_service_sampler(const SamplerSpec& spec) {
  switch (spec.kind) {
    case SamplerSpec::Kind::kExponential:
      return exponential_service();
    case SamplerSpec::Kind::kDeterministic:
      return deterministic_service();
    case SamplerSpec::Kind::kErlang: {
      const double stages = spec.param;
      if (!(stages >= 1.0) || stages != std::floor(stages))
        throw RuntimeError(
            "erlang service sampler spec needs an integer stage count >= 1");
      return erlang_service(static_cast<std::size_t>(stages));
    }
    case SamplerSpec::Kind::kHyperExponential:
      if (!(spec.param >= 1.0))
        throw RuntimeError(
            "hyperexponential service sampler spec needs SCV >= 1");
      return hyperexponential_service(spec.param);
    case SamplerSpec::Kind::kEmpirical:
      return empirical_service(spec_dataset(spec, "service"));
  }
  throw RuntimeError("unknown service sampler spec kind " +
                     std::to_string(static_cast<int>(spec.kind)));
}

LatencySampler make_latency_sampler(const SamplerSpec& spec) {
  switch (spec.kind) {
    case SamplerSpec::Kind::kExponential:
      return exponential_latency();
    case SamplerSpec::Kind::kDeterministic:
      return deterministic_latency();
    case SamplerSpec::Kind::kEmpirical:
      return empirical_latency(spec_dataset(spec, "latency"));
    case SamplerSpec::Kind::kErlang:
    case SamplerSpec::Kind::kHyperExponential:
      break;
  }
  throw RuntimeError(
      "latency sampler spec supports exponential, deterministic, or "
      "empirical kinds only");
}

}  // namespace mec::sim

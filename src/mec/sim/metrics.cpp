#include "mec/sim/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace mec::sim {

std::string summarize(const SimulationResult& result) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "devices=" << result.devices.size()
     << "  window=" << result.horizon << "s"
     << "  events=" << result.total_events << "\n"
     << "  utilization gamma = " << result.measured_utilization << "\n"
     << "  mean cost (Eq. 1) = " << result.mean_cost << "\n"
     << "  mean local queue  = " << result.mean_queue_length << "\n"
     << "  mean offload frac = " << result.mean_offload_fraction << "\n";
  if (result.local_sojourn_percentiles.count() > 0)
    os << "  local sojourn p50/p95/p99 = "
       << result.local_sojourn_percentiles.p50() << " / "
       << result.local_sojourn_percentiles.p95() << " / "
       << result.local_sojourn_percentiles.p99() << "\n";
  if (result.offload_delay_percentiles.count() > 0)
    os << "  offload delay p50/p95/p99 = "
       << result.offload_delay_percentiles.p50() << " / "
       << result.offload_delay_percentiles.p95() << " / "
       << result.offload_delay_percentiles.p99() << "\n";
  if (result.faults.any()) {
    const FaultStats& f = result.faults;
    os << "  faults: capacity min/mean = " << f.min_capacity_scale << " / "
       << f.mean_capacity_scale << ", degraded " << f.degraded_time << "s\n"
       << "  faults: crashes=" << f.crashes << " restarts=" << f.restarts
       << " joined=" << f.churn_joined << " departed=" << f.churn_departed
       << " tasks_lost=" << f.tasks_lost
       << " offloads rejected/penalized=" << f.offloads_rejected << "/"
       << f.offloads_penalized << "\n";
  }
  return os.str();
}

}  // namespace mec::sim

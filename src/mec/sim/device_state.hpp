// Device-model layer: the per-device mutable simulation state.
//
// This is the bottom layer of the simulation stack (see
// docs/ARCHITECTURE.md): one local FCFS queue of arrival timestamps plus the
// measurement accumulators, with no knowledge of policies, the edge, or
// faults.  Its determinism contract: every field is a pure function of the
// device's own event history, so any partition of the population across
// shards leaves each DeviceState bit-identical as long as each device's
// events replay in time order.
#pragma once

#include <cstdint>

#include "mec/sim/ring_buffer.hpp"

namespace mec::sim {

/// Mutable per-device simulation state, cache-compacted: the local queue's
/// inline ring storage and the measurement accumulators sit in one 128-byte
/// block, so processing an event touches two adjacent cache lines instead of
/// chasing a deque chunk.  The per-device RNG streams are batched in their
/// own contiguous array (SimWorkspace::Impl::rngs) — the arrival hot path
/// reads rng + device state together, and keeping the 32-byte engines packed
/// quarters the footprint the prefetcher has to cover.
struct alignas(64) DeviceState {
  // Exactly two cache lines (128 bytes), 64-byte aligned: line one holds
  // the ring buffer (scalars + 4 inline slots) and the queue integral that
  // every event updates; line two the remaining measurement accumulators.
  RingBuffer local_queue;  ///< arrival times of tasks in system
  // Measurement accumulators (reset at end of warm-up):
  double queue_integral = 0.0;
  double last_change = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t local_completed = 0;
  double local_sojourn_sum = 0.0;
  double offload_delay_sum = 0.0;
  double energy_sum = 0.0;

  void integrate_to(double now) {
    queue_integral +=
        static_cast<double>(local_queue.size()) * (now - last_change);
    last_change = now;
  }
  void reset_measurements(double now) {
    queue_integral = 0.0;
    last_change = now;
    arrivals = offloaded = local_completed = 0;
    local_sojourn_sum = offload_delay_sum = energy_sum = 0.0;
  }
  void reset_run() {
    local_queue.clear();
    reset_measurements(0.0);
  }
};

static_assert(sizeof(DeviceState) == 128,
              "DeviceState must stay exactly two cache lines; rebalance "
              "RingBuffer::kInlineCapacity if fields change");

}  // namespace mec::sim

// Barrier-serial coordinator: the half of the engine that is the same for
// every transport and every decision provider.
//
// The coordinator walks the run's observation grid, asking the transport to
// advance every rank to each barrier, then performs the work that must be
// serial and global: the GammaReplay over the merged offload logs, sample
// recording and stream windows, epoch callbacks (and the threshold
// broadcast that follows them when ranks hold mirrored policy state), and
// the final result assembly over per-device totals.  It never touches a
// DeviceState or an event queue directly — everything it knows about rank
// state arrives through ShardBarrierView and DeviceTotals — which is
// exactly what lets the same function drive the in-process rank and a fleet
// of forked workers to byte-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::sim::engine {

/// Everything coordinator_run needs that is not rank state.  Plain pointers
/// into the caller's run setup (run_sharded owns all of it for the run's
/// duration); `with_faults` is the runtime mirror of the engine's WithFaults
/// template flag — the coordinator is deliberately untemplated, so there is
/// exactly one serial barrier path for every engine instantiation.
struct CoordinatorContext {
  const core::UserParams* users = nullptr;  ///< total_devices() entries
  const SimulationOptions* options = nullptr;
  const core::EdgeDelay* delay = nullptr;
  const fault::FaultPlan* plan = nullptr;
  /// Authoritative per-device threshold read (the coordinator's live
  /// decision provider): feeds the stream's threshold histogram and the
  /// post-epoch broadcast.  Returns < 0 for devices without a TRO
  /// threshold.
  std::function<double(std::uint32_t)> threshold_of;
  std::uint32_t n_devices = 0;
  std::uint32_t n_initial = 0;
  std::uint32_t n_clusters = 1;
  double capacity = 0.0;       ///< per-device nominal edge capacity
  double edge_capacity = 0.0;  ///< n_initial * capacity
  double t_end = 0.0;
  bool with_faults = false;
  bool measuring_from_start = false;
  std::size_t shard_count = 1;
};

/// One full run over an already-initialized rank fleet: grid-stepped
/// barriers, replay, observation, result assembly.  Bit-identical across
/// transports and shard/worker splits (determinism contract #8).
SimulationResult coordinator_run(const CoordinatorContext& cc,
                                 parallel::Transport& transport);

}  // namespace mec::sim::engine

// Runtime admission policies executed by the simulator on every arrival.
//
// The analytic layer (mec/core) reasons about TRO thresholds in closed form;
// this layer is the operational counterpart: given the *current* local queue
// length, decide whether the newly arrived task is offloaded.
#pragma once

#include <memory>
#include <string>

#include "mec/random/rng.hpp"

namespace mec::sim {

/// Per-arrival admission decision. Implementations must be stateless apart
/// from their parameters (the queue and RNG carry all dynamic state).
class OffloadPolicy {
 public:
  virtual ~OffloadPolicy() = default;
  /// True => offload this arrival; false => enqueue locally.
  /// `queue_length` counts tasks in the local system (waiting + in service).
  virtual bool offload(std::uint64_t queue_length,
                       random::Xoshiro256& rng) const = 0;
  virtual std::string describe() const = 0;

  /// TRO-family policies return a pointer to their live threshold; the
  /// simulator then runs a sealed, devirtualized arrival fast path that
  /// re-reads the pointed-to value on every decision (so MutableTroPolicy
  /// retuning is observed immediately) and draws exactly the RNG sequence
  /// offload() would.  The pointer must stay valid for the policy's
  /// lifetime.  Policies whose decision is not a threshold rule return
  /// nullptr and go through the virtual call instead.
  virtual const double* tro_threshold() const noexcept { return nullptr; }
};

/// TRO policy with real threshold x >= 0 (Section II): local below floor(x),
/// randomized at floor(x) with local-probability x - floor(x), offloaded
/// above.
std::unique_ptr<OffloadPolicy> make_tro_policy(double threshold);

/// DPO policy: offload independently with probability rho in [0,1].
std::unique_ptr<OffloadPolicy> make_dpo_policy(double rho);

/// Degenerate policies for tests and baselines.
std::unique_ptr<OffloadPolicy> make_local_only_policy();
std::unique_ptr<OffloadPolicy> make_offload_all_policy();

/// A TRO policy whose threshold can be retuned while a simulation is
/// running — the building block of the closed-loop (DTU-in-the-simulator)
/// operation, where devices update thresholds at broadcast epochs.
class MutableTroPolicy final : public OffloadPolicy {
 public:
  /// Requires threshold >= 0.
  explicit MutableTroPolicy(double threshold);

  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override;
  std::string describe() const override;
  const double* tro_threshold() const noexcept override { return &threshold_; }

  double threshold() const noexcept { return threshold_; }
  /// Requires threshold >= 0.
  void set_threshold(double threshold);

 private:
  double threshold_;
};

}  // namespace mec::sim

// Runtime admission policies executed by the simulator on every arrival.
//
// The analytic layer (mec/core) reasons about TRO thresholds in closed form;
// this layer is the operational counterpart: given the *current* local queue
// length, decide whether the newly arrived task is offloaded.
#pragma once

#include <memory>
#include <string>

#include "mec/random/rng.hpp"

namespace mec::sim {

/// Per-arrival admission decision. Implementations must be stateless apart
/// from their parameters (the queue and RNG carry all dynamic state).
class OffloadPolicy {
 public:
  virtual ~OffloadPolicy() = default;
  /// True => offload this arrival; false => enqueue locally.
  /// `queue_length` counts tasks in the local system (waiting + in service).
  virtual bool offload(std::uint64_t queue_length,
                       random::Xoshiro256& rng) const = 0;
  virtual std::string describe() const = 0;
};

/// TRO policy with real threshold x >= 0 (Section II): local below floor(x),
/// randomized at floor(x) with local-probability x - floor(x), offloaded
/// above.
std::unique_ptr<OffloadPolicy> make_tro_policy(double threshold);

/// DPO policy: offload independently with probability rho in [0,1].
std::unique_ptr<OffloadPolicy> make_dpo_policy(double rho);

/// Degenerate policies for tests and baselines.
std::unique_ptr<OffloadPolicy> make_local_only_policy();
std::unique_ptr<OffloadPolicy> make_offload_all_policy();

/// A TRO policy whose threshold can be retuned while a simulation is
/// running — the building block of the closed-loop (DTU-in-the-simulator)
/// operation, where devices update thresholds at broadcast epochs.
class MutableTroPolicy final : public OffloadPolicy {
 public:
  /// Requires threshold >= 0.
  explicit MutableTroPolicy(double threshold);

  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override;
  std::string describe() const override;

  double threshold() const noexcept { return threshold_; }
  /// Requires threshold >= 0.
  void set_threshold(double threshold);

 private:
  double threshold_;
};

}  // namespace mec::sim

#include "mec/sim/policies.hpp"

#include <cmath>
#include <sstream>

#include "mec/common/error.hpp"

namespace mec::sim {

namespace {

class TroPolicy final : public OffloadPolicy {
 public:
  explicit TroPolicy(double threshold)
      : threshold_(threshold),
        floor_(static_cast<std::uint64_t>(std::floor(threshold))),
        local_prob_(threshold - std::floor(threshold)) {}

  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override {
    if (queue_length < floor_) return false;
    if (queue_length == floor_)
      return !random::bernoulli(rng, local_prob_);
    return true;
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "TRO(x=" << threshold_ << ")";
    return os.str();
  }
  const double* tro_threshold() const noexcept override { return &threshold_; }

 private:
  double threshold_;
  std::uint64_t floor_;
  double local_prob_;
};

class DpoPolicy final : public OffloadPolicy {
 public:
  explicit DpoPolicy(double rho) : rho_(rho) {}
  bool offload(std::uint64_t, random::Xoshiro256& rng) const override {
    return random::bernoulli(rng, rho_);
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "DPO(rho=" << rho_ << ")";
    return os.str();
  }

 private:
  double rho_;
};

class LocalOnlyPolicy final : public OffloadPolicy {
 public:
  bool offload(std::uint64_t, random::Xoshiro256&) const override {
    return false;
  }
  std::string describe() const override { return "local-only"; }
};

class OffloadAllPolicy final : public OffloadPolicy {
 public:
  bool offload(std::uint64_t, random::Xoshiro256&) const override {
    return true;
  }
  std::string describe() const override { return "offload-all"; }
};

}  // namespace

std::unique_ptr<OffloadPolicy> make_tro_policy(double threshold) {
  MEC_EXPECTS(threshold >= 0.0);
  return std::make_unique<TroPolicy>(threshold);
}

std::unique_ptr<OffloadPolicy> make_dpo_policy(double rho) {
  MEC_EXPECTS(rho >= 0.0 && rho <= 1.0);
  return std::make_unique<DpoPolicy>(rho);
}

MutableTroPolicy::MutableTroPolicy(double threshold) : threshold_(threshold) {
  MEC_EXPECTS(threshold >= 0.0);
}

bool MutableTroPolicy::offload(std::uint64_t queue_length,
                               random::Xoshiro256& rng) const {
  const double fl = std::floor(threshold_);
  const auto floor_int = static_cast<std::uint64_t>(fl);
  if (queue_length < floor_int) return false;
  if (queue_length == floor_int)
    return !random::bernoulli(rng, threshold_ - fl);
  return true;
}

std::string MutableTroPolicy::describe() const {
  std::ostringstream os;
  os << "MutableTRO(x=" << threshold_ << ")";
  return os.str();
}

void MutableTroPolicy::set_threshold(double threshold) {
  MEC_EXPECTS(threshold >= 0.0);
  threshold_ = threshold;
}

std::unique_ptr<OffloadPolicy> make_local_only_policy() {
  return std::make_unique<LocalOnlyPolicy>();
}

std::unique_ptr<OffloadPolicy> make_offload_all_policy() {
  return std::make_unique<OffloadAllPolicy>();
}

}  // namespace mec::sim

// Allocation-free-in-steady-state FIFO of task arrival times.
//
// Each simulated device keeps the arrival timestamps of the tasks in its
// local system.  Under a TRO policy with threshold x the queue never exceeds
// floor(x) + 1 tasks, so almost every device fits in the 4-slot inline
// buffer and the simulator touches no allocator and no far-away deque chunk
// on the hot path.  Policies with unbounded queues (local-only, DPO under
// overload) spill to a geometrically grown heap block and stay correct;
// after the first spill the buffer is allocation-free again until the queue
// doubles.  Capacity is always a power of two so the wrap-around is a mask.
#pragma once

#include <cstdint>
#include <memory>

#include "mec/common/error.hpp"

namespace mec::sim {

/// Bounded-in-practice FIFO of doubles with inline small-buffer storage.
class RingBuffer {
 public:
  /// Power of two (wrap-around is a mask).  Sized so a whole DeviceState —
  /// this buffer plus its measurement accumulators — is exactly two cache
  /// lines; longer queues spill to the heap block.
  static constexpr std::uint32_t kInlineCapacity = 4;

  RingBuffer() noexcept = default;
  RingBuffer(RingBuffer&&) noexcept = default;
  RingBuffer& operator=(RingBuffer&&) noexcept = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  bool empty() const noexcept { return count_ == 0; }
  std::uint32_t size() const noexcept { return count_; }
  std::uint32_t capacity() const noexcept { return capacity_; }

  void push_back(double value) {
    if (count_ == capacity_) grow();
    data()[(head_ + count_) & (capacity_ - 1)] = value;
    ++count_;
  }

  /// Oldest element. Requires a non-empty buffer.
  double front() const {
    MEC_ASSERT(count_ > 0);
    return data()[head_];
  }

  /// Drops the oldest element. Requires a non-empty buffer.
  void pop_front() {
    MEC_ASSERT(count_ > 0);
    head_ = (head_ + 1) & (capacity_ - 1);
    --count_;
  }

  /// Empties the buffer, keeping any spilled heap block (workspace reuse).
  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  double* data() noexcept { return heap_ ? heap_.get() : inline_; }
  const double* data() const noexcept { return heap_ ? heap_.get() : inline_; }

  void grow() {
    const std::uint32_t new_capacity = capacity_ * 2;
    auto block = std::make_unique<double[]>(new_capacity);
    const double* old = data();
    for (std::uint32_t i = 0; i < count_; ++i)
      block[i] = old[(head_ + i) & (capacity_ - 1)];
    heap_ = std::move(block);
    capacity_ = new_capacity;
    head_ = 0;
  }

  // Scalars first, inline storage last: DeviceState packs its own hot
  // accumulators right behind this struct, so the fields every event
  // touches share one cache line.
  std::unique_ptr<double[]> heap_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t capacity_ = kInlineCapacity;
  double inline_[kInlineCapacity];
};

}  // namespace mec::sim

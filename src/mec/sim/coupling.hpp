// Edge-coupling layer: the only channel through which devices interact.
//
// In the paper's mean-field model users are coupled *exclusively* through
// the edge utilization gamma (Sec. III): an offload decision depends on the
// device's own queue and threshold, never on gamma, while gamma determines
// only the edge processing delay g(gamma) paid by offloaded tasks.  The
// sharded engine exploits that structure: shards simulate device dynamics
// independently and log each offload as an OffloadRecord; the
// gamma-dependent quantities (EWMA touchpoints, g(gamma) applications,
// delivery completion times, offload-delay metrics) are then reproduced by
// GammaReplay, a serial pass over the merged, time-ordered log.
//
// Determinism contract: EwmaRate's exponential decay is *not* decomposable
// (exp(-a)*exp(-b) != exp(-(a+b)) in floating point), so the replay touches
// the estimator at exactly the same instants, in exactly the same order, as
// the single-queue engine did — a rate read followed by a record_event per
// offload, in global time order, interleaved with a rate read at every
// sample/epoch grid instant (grid reads happen before same-time offloads,
// matching the flush-before-event rule).  Under that replay the K-shard run
// is bit-identical to K = 1 for any K.
//
// With a ClusterTopology the edge is a vector of clusters, each with its
// own capacity share and EwmaRate: records carry the cluster id their
// device routes to, and the replay touches exactly that cluster's
// estimator, still in global time order.  A 1-cluster topology reduces to
// the scalar engine bit-for-bit (share 1.0 multiplies capacities by exactly
// 1.0, and the bank is read directly, never through a weighted average).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/fault/fault_plan.hpp"
#include "mec/sim/device_state.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::sim {

/// Static description of the edge-cluster layout.  The single-cluster
/// default reproduces the scalar-gamma engine bit-for-bit: cluster 0 owns
/// the whole capacity (share 1.0, and x * 1.0 == x in IEEE arithmetic) and
/// every device routes to it.  Routing is a pure function of the device id
/// (device % clusters), so it is identical for every shard count and never
/// consumes RNG.
struct ClusterTopology {
  std::size_t clusters = 1;
  /// Per-cluster capacity shares; empty means an equal split.  When given,
  /// must have `clusters` entries, each > 0, summing to 1.
  std::vector<double> shares;
  /// Optional per-cluster initial prices (price-based policy); empty means
  /// all clusters start at price 0.
  std::vector<double> prices;

  std::size_t route(std::uint32_t device) const noexcept {
    return device % clusters;
  }
  double share(std::size_t cluster) const {
    return shares.empty() ? 1.0 / static_cast<double>(clusters)
                          : shares[cluster];
  }
  void check() const {
    MEC_EXPECTS_MSG(clusters >= 1, "topology needs at least one cluster");
    MEC_EXPECTS_MSG(clusters < 0xFFFF, "cluster count exceeds the id space");
    MEC_EXPECTS_MSG(shares.empty() || shares.size() == clusters,
                    "cluster shares must match the cluster count");
    if (!shares.empty()) {
      double sum = 0.0;
      for (const double s : shares) {
        MEC_EXPECTS_MSG(s > 0.0, "cluster shares must be positive");
        sum += s;
      }
      MEC_EXPECTS_MSG(std::abs(sum - 1.0) <= 1e-9,
                      "cluster shares must sum to 1");
    }
    MEC_EXPECTS_MSG(prices.empty() || prices.size() == clusters,
                    "cluster prices must match the cluster count");
  }
};

/// Exponentially-weighted estimator of the aggregate offload task rate.
class EwmaRate {
 public:
  EwmaRate(double time_constant, double initial_rate)
      : tau_(time_constant), rate_(initial_rate) {
    MEC_EXPECTS(tau_ > 0.0);
    MEC_EXPECTS(initial_rate >= 0.0);
  }

  void record_event(double now) {
    decay_to(now);
    rate_ += 1.0 / tau_;
  }

  double rate_at(double now) {
    decay_to(now);
    return rate_;
  }

 private:
  void decay_to(double now) {
    if (now > last_) {
      rate_ *= std::exp(-(now - last_) / tau_);
      last_ = now;
    }
  }
  double tau_;
  double rate_;
  double last_ = 0.0;
};

/// One offload decision, logged by a shard leg for the central replay.
/// Everything gamma-independent is already resolved (the wireless latency
/// draw, the outage-penalty amount in effect, the measurement-window flag);
/// the replay only adds the g(gamma) edge delay.
struct OffloadRecord {
  double time = 0.0;       ///< arrival/decision instant
  double latency = 0.0;    ///< wireless latency sample (device RNG)
  double penalty = 0.0;    ///< outage latency penalty in effect, else 0
  std::uint32_t device = 0;
  std::uint16_t cluster = 0;  ///< target edge cluster (topology routing)
  bool measured = false;   ///< decision fell inside the measurement window
  bool penalized = false;  ///< a kPenalty outage window was open
};

/// Serial replay of the gamma-coupled quantities over merged shard logs.
/// Lives for one run; consume() is called once per leg (all records
/// produced by that leg), gamma_at() once per sample/epoch grid read, in
/// strict time order.  Each shard's log is time-sorted by construction;
/// ties across shards break by shard index (contiguous partitions put the
/// lower device first, matching the single-queue tie-break; exact
/// cross-shard time ties have probability zero under the model's
/// continuous inter-event distributions).
class GammaReplay {
 public:
  GammaReplay(const core::EdgeDelay& delay, double ewma_tau,
              double initial_gamma, double edge_capacity, double warmup,
              double t_end, std::uint32_t n_initial,
              std::span<const fault::ResolvedAction> plan_actions,
              const ClusterTopology& topology = {})
      : delay_(&delay), warmup_(warmup), t_end_(t_end) {
    caps_.reserve(topology.clusters);
    bank_.reserve(topology.clusters);
    for (std::size_t k = 0; k < topology.clusters; ++k) {
      caps_.push_back(edge_capacity * topology.share(k));
      bank_.emplace_back(ewma_tau, initial_gamma * caps_[k]);
    }
    walk_.actions = plan_actions;
    walk_.active = n_initial;
    walk_.cluster_scale.assign(topology.clusters, 1.0);
  }

  /// Replays every record of `logs` in merged time order: advances the
  /// environment walk, applies g(gamma) (+ the outage penalty), touches the
  /// EWMA, accumulates the measured per-device offload-delay sums and the
  /// delay sketch, and counts edge deliveries landing inside the horizon.
  ///
  /// `offload_delay_sums` is an n_devices array owned by the coordinator,
  /// not the DeviceState field: the replay runs in the coordinator while
  /// device states may live in worker processes, and the two accumulations
  /// never mix — a tracked-gamma run leaves every DeviceState's
  /// offload_delay_sum at 0.0, so the final per-device delay is exactly one
  /// of the two sources.
  void consume(std::span<const std::span<const OffloadRecord>> logs,
               double* offload_delay_sums,
               stats::LatencySketch& offload_delays);

  /// Utilization estimate at a grid instant (left limit: environment
  /// actions at exactly `at` are not yet applied).  Mutates the EWMA decay
  /// state, exactly like the single-queue engine's sample/epoch reads.
  /// Single cluster reads its bank entry directly (never a weighted
  /// average, which would perturb the bits); multiple clusters aggregate
  /// total rate over total effective capacity.
  double gamma_at(double at) {
    walk_.advance_to(at, /*inclusive=*/false);
    if (bank_.size() == 1) return clamped_gamma(bank_[0].rate_at(at), 0);
    double rate = 0.0;
    double cap = 0.0;
    for (std::size_t k = 0; k < bank_.size(); ++k) {
      rate += bank_[k].rate_at(at);
      cap += caps_[k] * walk_.scale * walk_.cluster_scale[k];
    }
    return std::clamp(rate / cap, 0.0, 1.0);
  }

  /// Per-cluster utilization estimates at a grid instant (same left-limit
  /// and decay semantics as gamma_at; the two may be called at the same
  /// instant — decay is idempotent at a fixed time).
  std::span<const double> cluster_gammas(double at) {
    walk_.advance_to(at, /*inclusive=*/false);
    gammas_.resize(bank_.size());
    for (std::size_t k = 0; k < bank_.size(); ++k)
      gammas_[k] = clamped_gamma(bank_[k].rate_at(at), k);
    return gammas_;
  }

  std::size_t clusters() const noexcept { return bank_.size(); }
  double capacity_scale() const noexcept { return walk_.scale; }
  std::uint32_t active_devices() const noexcept { return walk_.active; }
  /// Offload deliveries with completion time <= t_end (they pop as events
  /// in the single-queue engine and count toward total_events).
  std::uint64_t deliveries() const noexcept { return deliveries_; }
  /// True when a delivery lands inside [warmup, t_end]: its pop alone
  /// would have flipped the measurement window open.
  bool delivery_flip_trigger() const noexcept { return flip_trigger_; }

 private:
  double clamped_gamma(double rate, std::size_t cluster) const;

  const core::EdgeDelay* delay_;
  std::vector<EwmaRate> bank_;  ///< one EWMA per cluster
  std::vector<double> caps_;    ///< per-cluster nominal capacity
  fault::EnvWalk walk_;
  double warmup_;
  double t_end_;
  std::uint64_t deliveries_ = 0;
  bool flip_trigger_ = false;
  std::vector<std::size_t> cursors_;  ///< per-shard scratch for the merge
  std::vector<double> gammas_;        ///< cluster_gammas() scratch
};

}  // namespace mec::sim

// Cluster-aware policy families layered on the multi-cluster edge topology:
//
//   price-based offloading  — each cluster posts a congestion price, updated
//       by dual ascent toward a target utilization at epoch barriers
//       (cf. Liu & Liu, price-based distributed offloading).  A device
//       compares its marginal local cost w*p_L + (q+1)/s against the priced
//       offload cost w*p_E + tau + price and offloads when the edge is
//       cheaper — which is exactly a TRO threshold rule with threshold
//       x_n(price) = max(0, s_n*(tau_n + w_n*(p_E - p_L) + price) - 1), so
//       the policy rides the sealed TRO fast path with a price-modulated
//       live threshold.
//
//   minority-game activation — each cluster is an agent of a deterministic
//       minority game (see minority_game.hpp); clusters on the minority
//       side stay active for the next epoch (Ranadheera et al., server
//       activation via minority games).  Devices of an inactive cluster
//       keep everything local; devices of an active one apply their TRO
//       threshold.
//
// Determinism contract (both families): policy-visible state — prices,
// thresholds, activation flags — mutates only inside on_cluster_epoch,
// i.e. at observation-grid barriers where all shards are parked, so runs
// are bit-identical for every shard count.  Decisions consume exactly the
// RNG draws the TRO rule would (price-based always, minority-game only
// while the cluster is active), keeping per-device streams aligned.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/minority_game.hpp"
#include "mec/sim/policy_dispatch.hpp"

namespace mec::sim {

/// TRO-family policy whose threshold is derived from the device parameters
/// and its cluster's current price.  refresh(price) must be called only at
/// epoch barriers (see the determinism contract above).
class PriceBasedPolicy final : public OffloadPolicy {
 public:
  PriceBasedPolicy(const core::UserParams& user, double initial_price);

  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override {
    return tro_offload(threshold_, queue_length, rng);
  }
  std::string describe() const override;
  const double* tro_threshold() const noexcept override { return &threshold_; }

  /// Recomputes the threshold for a new cluster price (epoch barriers only).
  void refresh(double price);
  double threshold() const noexcept { return threshold_; }

 private:
  double service_rate_;
  double base_cost_;  ///< tau + w*(p_E - p_L): priceless offload handicap
  double threshold_;
};

/// Gates a TRO threshold behind the device's cluster activation flag (the
/// pointed-to byte is owned by the minority-game driver and flips only at
/// epoch barriers).  Not a threshold rule — inactive clusters skip the
/// boundary Bernoulli draw — so it dispatches through the virtual path.
class MinorityGatedPolicy final : public OffloadPolicy {
 public:
  MinorityGatedPolicy(double threshold, const std::uint8_t* active);

  bool offload(std::uint64_t queue_length,
               random::Xoshiro256& rng) const override {
    if (*active_ == 0) return false;
    return tro_offload(threshold_, queue_length, rng);
  }
  std::string describe() const override;

 private:
  double threshold_;
  const std::uint8_t* active_;
};

// --- price-based driver ----------------------------------------------------

struct PriceBasedOptions {
  /// Per-cluster utilization target of the dual ascent; the equilibrium
  /// gamma_star of the scenario is the natural choice.
  double gamma_target = 0.5;
  double price_step = 2.0;   ///< ascent step per unit utilization error
  double max_price = 50.0;   ///< clamp ceiling (floor is 0)
  double update_period = 5.0;
  double warmup = 0.0;
  double horizon = 200.0;
  std::uint64_t seed = 1;
  ClusterTopology topology;  ///< initial prices come from topology.prices
  ServiceSampler service;    ///< null => exponential
  LatencySampler latency;    ///< null => exponential
  double utilization_ewma_tau = 10.0;
  double initial_gamma = 0.0;
  std::shared_ptr<const fault::FaultSchedule> faults;
  std::size_t shards = 0;
  double sample_interval = 0.0;
  std::string stream_log;
  bool stream_counters = true;
  bool record_timeline = true;
};

struct PriceBasedResult {
  std::vector<double> final_prices;            ///< one per cluster
  std::vector<std::vector<double>> price_epochs;  ///< per epoch, per cluster
  std::vector<std::vector<double>> gamma_epochs;  ///< observed at each epoch
  SimulationResult run;
};

/// Runs one simulation under the price-based policy family: devices hold
/// price-modulated TRO thresholds, and every cluster's price moves by
/// price_step * (gamma_k - gamma_target) (clamped to [0, max_price]) at
/// each epoch barrier.
PriceBasedResult run_price_based(std::span<const core::UserParams> users,
                                 double capacity,
                                 const core::EdgeDelay& delay,
                                 const PriceBasedOptions& options);

// --- minority-game driver --------------------------------------------------

struct MinorityGameRunOptions {
  MinorityGameConfig game;  ///< agents is overwritten with topology.clusters
  /// Per-device TRO thresholds applied while the device's cluster is
  /// active; must cover the population incl. churn joiners.
  std::vector<double> thresholds;
  double update_period = 5.0;
  double warmup = 0.0;
  double horizon = 200.0;
  std::uint64_t seed = 1;
  ClusterTopology topology;
  ServiceSampler service;
  LatencySampler latency;
  double utilization_ewma_tau = 10.0;
  double initial_gamma = 0.0;
  std::shared_ptr<const fault::FaultSchedule> faults;
  std::size_t shards = 0;
  double sample_interval = 0.0;
  std::string stream_log;
  bool stream_counters = true;
  bool record_timeline = true;
};

struct MinorityGameRunResult {
  std::vector<std::size_t> attendance;  ///< active clusters per epoch
  double mean_attendance = 0.0;
  SimulationResult run;
};

/// Runs one simulation under minority-game server activation: the game is
/// stepped at every epoch barrier and each cluster's activation flag is set
/// to its agent's chosen side.
MinorityGameRunResult run_minority_game(
    std::span<const core::UserParams> users, double capacity,
    const core::EdgeDelay& delay, const MinorityGameRunOptions& options);

}  // namespace mec::sim

#include "mec/sim/mec_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "mec/common/error.hpp"
#include "mec/common/prefetch.hpp"
#include "mec/sim/des.hpp"
#include "mec/sim/ring_buffer.hpp"

namespace mec::sim {

ServiceSampler exponential_service() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    return random::exponential(rng, u.service_rate);
  };
}

ServiceSampler deterministic_service() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return 1.0 / u.service_rate;
  };
}

ServiceSampler empirical_service(random::EmpiricalDataset times) {
  MEC_EXPECTS(times.mean() > 0.0);
  const double dataset_mean = times.mean();
  return [times = std::move(times), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return times.resample(rng) / (dataset_mean * u.service_rate);
  };
}

ServiceSampler erlang_service(std::size_t stages) {
  MEC_EXPECTS(stages >= 1);
  return [stages](random::Xoshiro256& rng, const core::UserParams& u) {
    const double stage_rate =
        static_cast<double>(stages) * u.service_rate;
    double total = 0.0;
    for (std::size_t i = 0; i < stages; ++i)
      total += random::exponential(rng, stage_rate);
    return total;
  };
}

ServiceSampler hyperexponential_service(double scv) {
  MEC_EXPECTS(scv >= 1.0);
  // Balanced-means H2 fit (cf. queueing::hyperexponential_from_scv): branch
  // probability p with rates 2p*s and 2(1-p)*s for mean 1/s.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  return [p](random::Xoshiro256& rng, const core::UserParams& u) {
    const bool first = random::bernoulli(rng, p);
    const double rate =
        first ? 2.0 * p * u.service_rate : 2.0 * (1.0 - p) * u.service_rate;
    return random::exponential(rng, rate);
  };
}

LatencySampler exponential_latency() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    if (u.offload_latency <= 0.0) return 0.0;
    return random::exponential(rng, 1.0 / u.offload_latency);
  };
}

LatencySampler deterministic_latency() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return u.offload_latency;
  };
}

LatencySampler empirical_latency(random::EmpiricalDataset latencies) {
  MEC_EXPECTS(latencies.mean() > 0.0);
  const double dataset_mean = latencies.mean();
  return [latencies = std::move(latencies), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return latencies.resample(rng) * (u.offload_latency / dataset_mean);
  };
}

namespace {

/// Exponentially-weighted estimator of the aggregate offload task rate.
class EwmaRate {
 public:
  EwmaRate(double time_constant, double initial_rate)
      : tau_(time_constant), rate_(initial_rate) {
    MEC_EXPECTS(tau_ > 0.0);
    MEC_EXPECTS(initial_rate >= 0.0);
  }

  void record_event(double now) {
    decay_to(now);
    rate_ += 1.0 / tau_;
  }

  double rate_at(double now) {
    decay_to(now);
    return rate_;
  }

 private:
  void decay_to(double now) {
    if (now > last_) {
      rate_ *= std::exp(-(now - last_) / tau_);
      last_ = now;
    }
  }
  double tau_;
  double rate_;
  double last_ = 0.0;
};

/// Mutable per-device simulation state, cache-compacted: the local queue's
/// inline ring storage and the measurement accumulators sit in one ~152-byte
/// block, so processing an event touches two adjacent cache lines instead of
/// chasing a deque chunk.  The per-device RNG streams are batched in their
/// own contiguous array (SimWorkspace::Impl::rngs) — the arrival hot path
/// reads rng + device state together, and keeping the 32-byte engines packed
/// quarters the footprint the prefetcher has to cover.
struct alignas(64) DeviceState {
  // Exactly two cache lines (128 bytes), 64-byte aligned: line one holds
  // the ring buffer (scalars + 4 inline slots) and the queue integral that
  // every event updates; line two the remaining measurement accumulators.
  RingBuffer local_queue;  ///< arrival times of tasks in system
  // Measurement accumulators (reset at end of warm-up):
  double queue_integral = 0.0;
  double last_change = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t local_completed = 0;
  double local_sojourn_sum = 0.0;
  double offload_delay_sum = 0.0;
  double energy_sum = 0.0;

  void integrate_to(double now) {
    queue_integral +=
        static_cast<double>(local_queue.size()) * (now - last_change);
    last_change = now;
  }
  void reset_measurements(double now) {
    queue_integral = 0.0;
    last_change = now;
    arrivals = offloaded = local_completed = 0;
    local_sojourn_sum = offload_delay_sum = energy_sum = 0.0;
  }
  void reset_run() {
    local_queue.clear();
    reset_measurements(0.0);
  }
};

static_assert(sizeof(DeviceState) == 128,
              "DeviceState must stay exactly two cache lines; rebalance "
              "RingBuffer::kInlineCapacity if fields change");

/// The TRO decision rule, shared verbatim by the sealed fast paths and
/// (through TroPolicy / MutableTroPolicy) the virtual path: both consume
/// exactly one Bernoulli draw at the boundary state and none elsewhere, so
/// the paths are bit-identical for a given seed.
inline bool tro_offload(double threshold, std::uint64_t queue_length,
                        random::Xoshiro256& rng) {
  const double fl = std::floor(threshold);
  const auto floor_int = static_cast<std::uint64_t>(fl);
  if (queue_length < floor_int) return false;
  if (queue_length == floor_int)
    return !random::bernoulli(rng, threshold - fl);
  return true;
}

/// Fast path for run_tro: fixed thresholds read straight from the caller's
/// array, no policy objects at all.
struct TroValueDecide {
  const double* thresholds;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return tro_offload(thresholds[device], queue_length, rng);
  }
};

/// Fast path for run(policies) when every policy is TRO-family: live
/// threshold pointers, re-read per decision so epoch-callback retuning of
/// MutableTroPolicy takes effect immediately.
struct TroPointerDecide {
  const double* const* thresholds;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return tro_offload(*thresholds[device], queue_length, rng);
  }
};

/// Generic path: one virtual call per arrival (DPO, custom policies).
struct VirtualDecide {
  const std::unique_ptr<OffloadPolicy>* policies;
  bool operator()(std::uint32_t device, std::uint64_t queue_length,
                  random::Xoshiro256& rng) const {
    return policies[device]->offload(queue_length, rng);
  }
};

}  // namespace

struct SimWorkspace::Impl {
  std::vector<random::Xoshiro256> rngs;  ///< batched per-device streams
  std::vector<DeviceState> devices;
  std::vector<const double*> threshold_ptrs;  ///< scratch for TroPointerDecide
  EventQueue queue;

  /// Post-split per-device RNG snapshot, keyed by (seed, population size).
  /// Splitting is ~1us per device (xoshiro long_jump), so re-deriving 1e5+
  /// streams dominates the setup of repeated same-seed runs; restoring the
  /// snapshot is a memcpy and bit-identical by construction.
  std::vector<random::Xoshiro256> rng_init;
  std::uint64_t rng_seed = 0;
  bool rng_cached = false;

  /// Sizes the buffers for an n-device run and resets all run state while
  /// keeping every allocation (vectors, ring spill blocks, the heap).
  void prepare(std::size_t n) {
    rngs.resize(n);
    devices.resize(n);
    for (DeviceState& d : devices) d.reset_run();
    queue.clear();
    // One pending arrival per device, at most one in-service departure, plus
    // headroom for in-flight offload deliveries.
    queue.reserve(2 * n + 64);
  }
};

SimWorkspace::SimWorkspace() : impl_(std::make_unique<Impl>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

namespace {

/// Per-run fault state, live only in the WithFaults instantiation of the
/// event loop.  Lazy event cancellation works by remembering the sequence
/// number of each device's one live pending arrival / local-departure event
/// (sequence numbers are unique, so a popped event whose seq does not match
/// is a stale chain from before a crash/restart and is skipped).
struct FaultRuntime {
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
  enum State : std::uint8_t { kNotJoined, kAlive, kDead, kRetired };

  std::span<const fault::FaultAction> actions;
  bool outage = false;
  fault::OutageMode outage_mode = fault::OutageMode::kReject;
  double outage_penalty = 0.0;

  std::vector<State> state;
  std::vector<std::uint64_t> arrival_seq;    ///< live arrival event per device
  std::vector<std::uint64_t> departure_seq;  ///< live departure event
  std::vector<std::uint32_t> active_ids;     ///< departure victim pool
  std::vector<std::uint32_t> active_pos;     ///< device -> index in active_ids
  std::uint32_t next_join = 0;  ///< next churn device slot to activate

  FaultStats stats;
  double scale_integral = 0.0;  ///< ∫ capacity_scale dt over the window
  double env_last = 0.0;        ///< last environment integration instant

  void init(std::uint32_t n_initial, std::uint32_t n_total,
            std::span<const fault::FaultAction> schedule_actions) {
    actions = schedule_actions;
    state.assign(n_total, kNotJoined);
    arrival_seq.assign(n_total, kNoEvent);
    departure_seq.assign(n_total, kNoEvent);
    active_ids.clear();
    active_ids.reserve(n_total);
    active_pos.assign(n_total, 0);
    for (std::uint32_t d = 0; d < n_initial; ++d) {
      state[d] = kAlive;
      active_pos[d] = static_cast<std::uint32_t>(active_ids.size());
      active_ids.push_back(d);
    }
    next_join = n_initial;
  }

  void activate(std::uint32_t device) {
    state[device] = kAlive;
    active_pos[device] = static_cast<std::uint32_t>(active_ids.size());
    active_ids.push_back(device);
  }

  void deactivate(std::uint32_t device, State terminal) {
    state[device] = terminal;
    arrival_seq[device] = kNoEvent;
    departure_seq[device] = kNoEvent;
    const std::uint32_t pos = active_pos[device];
    const std::uint32_t last = active_ids.back();
    active_ids[pos] = last;
    active_pos[last] = pos;
    active_ids.pop_back();
  }
};

/// The event loop, instantiated once per decision provider so the arrival
/// decision inlines (no virtual dispatch on the all-TRO path), and once
/// more per fault mode so fault-free runs pay zero overhead (WithFaults ==
/// false folds every fault branch away and is bit-identical to the
/// pre-fault engine).  Any decision provider must consume exactly the RNG
/// draws the equivalent OffloadPolicy::offload() would, keeping all
/// instantiations bit-identical.
template <bool WithFaults, class Decide>
SimulationResult run_simulation(const std::vector<core::UserParams>& users,
                                std::size_t n_initial, double capacity,
                                const core::EdgeDelay& delay,
                                const SimulationOptions& options,
                                SimWorkspace::Impl& ws, const Decide& decide) {
  const auto n_devices = static_cast<std::uint32_t>(users.size());
  // Nominal capacity is anchored to the initial population: churn changes
  // the offered load, not the installed edge hardware.
  const double edge_capacity = static_cast<double>(n_initial) * capacity;
  const double t_end = options.warmup + options.horizon;

  ws.prepare(users.size());
  std::vector<random::Xoshiro256>& rngs = ws.rngs;
  std::vector<DeviceState>& devices = ws.devices;
  EventQueue& queue = ws.queue;

  if (ws.rng_cached && ws.rng_seed == options.seed &&
      ws.rng_init.size() == n_devices) {
    std::copy(ws.rng_init.begin(), ws.rng_init.end(), rngs.begin());
  } else {
    random::Xoshiro256 master(options.seed);
    for (std::uint32_t n = 0; n < n_devices; ++n) rngs[n] = master.split();
    ws.rng_init = rngs;
    ws.rng_seed = options.seed;
    ws.rng_cached = true;
  }

  FaultRuntime fr;
  double capacity_scale = 1.0;
  if constexpr (WithFaults) {
    fr.init(static_cast<std::uint32_t>(n_initial), n_devices,
            options.faults->actions());
    // Fault actions enter the queue first: at equal times the environment
    // change is applied before any task event, deterministically.
    for (std::uint32_t i = 0; i < fr.actions.size(); ++i)
      queue.push(fr.actions[i].time, EventKind::kFault, i);
  }
  for (std::uint32_t n = 0; n < static_cast<std::uint32_t>(n_initial); ++n) {
    if constexpr (WithFaults) fr.arrival_seq[n] = queue.scheduled_count();
    queue.push(random::exponential(rngs[n], users[n].arrival_rate),
               EventKind::kArrival, n);
  }

  EwmaRate offload_rate(options.utilization_ewma_tau,
                        options.initial_gamma * edge_capacity);
  const auto current_gamma = [&](double now) {
    if (options.fixed_gamma) return *options.fixed_gamma;
    return std::clamp(
        offload_rate.rate_at(now) / (edge_capacity * capacity_scale), 0.0,
        1.0);
  };
  // With a pinned utilization the edge delay is one constant for the whole
  // run; hoisting it off the per-offload path skips a std::function call.
  const bool has_fixed_gamma = options.fixed_gamma.has_value();
  const double fixed_delay =
      has_fixed_gamma ? delay(*options.fixed_gamma) : 0.0;

  bool measuring = options.warmup == 0.0;
  std::uint64_t offloads_in_window = 0;
  std::uint64_t events = 0;
  stats::LatencyPercentiles local_sojourns;
  stats::LatencyPercentiles offload_delays;

  // Accumulates the capacity-scale integral and degraded time up to `at`
  // (measurement window only; the scale is piecewise constant between fault
  // events, so integrating with the current value is exact).
  const auto integrate_env = [&](double at) {
    if constexpr (WithFaults) {
      if (at > fr.env_last) {
        const double dt = at - fr.env_last;
        fr.scale_integral += capacity_scale * dt;
        if (capacity_scale < 1.0 || fr.outage) fr.stats.degraded_time += dt;
        fr.env_last = at;
      }
    }
  };

  std::vector<TimelinePoint> timeline;
  double next_sample = options.sample_interval > 0.0
                           ? options.sample_interval
                           : std::numeric_limits<double>::infinity();
  const auto record_sample = [&](double at) {
    TimelinePoint p;
    p.time = at;
    p.utilization_estimate = current_gamma(at);
    double total_q = 0.0;
    for (const DeviceState& d : devices)
      total_q += static_cast<double>(d.local_queue.size());
    if constexpr (WithFaults) {
      // Dead/retired queues are empty, so the sum already covers exactly
      // the active population; the scale at flush time is the scale at
      // `at` (it changes only at events, and samples flush before them).
      p.capacity_scale = capacity_scale;
      p.active_devices = fr.active_ids.size();
      p.mean_queue_length =
          fr.active_ids.empty()
              ? 0.0
              : total_q / static_cast<double>(fr.active_ids.size());
    } else {
      p.active_devices = n_devices;
      p.mean_queue_length = total_q / static_cast<double>(n_devices);
    }
    p.offloads_so_far = offloads_in_window;
    timeline.push_back(p);
  };

  double next_epoch = options.epoch_period > 0.0
                          ? options.epoch_period
                          : std::numeric_limits<double>::infinity();

  while (!queue.empty() && queue.next_time() <= t_end) {
    const Event e = queue.pop();
    if (!queue.empty()) {
      // The next pending event is (usually) the next one processed; start
      // pulling the state it will touch while this event is handled.  A
      // pending kFault's `device` is a schedule index, so it must not index
      // the device arrays (prefetching a wrong-but-valid slot is harmless;
      // forming an out-of-range pointer is not).
      const std::uint32_t upcoming = queue.next_device();
      if (!WithFaults || upcoming < n_devices) {
        const char* dev_lines =
            reinterpret_cast<const char*>(&devices[upcoming]);
        MEC_PREFETCH(dev_lines);
        MEC_PREFETCH(dev_lines + 64);
        MEC_PREFETCH(&rngs[upcoming]);
        MEC_PREFETCH(&users[upcoming]);
      }
    }
    ++events;
    const double now = e.time;
    while (next_sample <= now && next_sample <= t_end) {
      record_sample(next_sample);
      next_sample += options.sample_interval;
    }
    while (next_epoch <= now && next_epoch <= t_end) {
      options.on_epoch(next_epoch, current_gamma(next_epoch));
      next_epoch += options.epoch_period;
    }

    if (!measuring && now >= options.warmup) {
      measuring = true;
      for (DeviceState& d : devices) d.reset_measurements(options.warmup);
      if constexpr (WithFaults) {
        // Start the environment integrals at the window boundary.  No fault
        // can have fired inside (warmup, now): it would itself have been the
        // first event past the warm-up and triggered this transition.
        fr.env_last = options.warmup;
        fr.stats.min_capacity_scale = capacity_scale;
      }
    }

    if constexpr (WithFaults) {
      if (e.kind == EventKind::kFault) {
        const fault::FaultAction& a = fr.actions[e.device];
        switch (a.kind) {
          case fault::FaultKind::kCapacityScale:
            if (measuring) {
              integrate_env(now);
              fr.stats.min_capacity_scale =
                  std::min(fr.stats.min_capacity_scale, a.value);
            }
            capacity_scale = a.value;
            break;
          case fault::FaultKind::kOutageBegin:
            if (measuring) integrate_env(now);
            fr.outage = true;
            fr.outage_mode = a.outage_mode;
            fr.outage_penalty = a.value;
            break;
          case fault::FaultKind::kOutageEnd:
            if (measuring) integrate_env(now);
            fr.outage = false;
            break;
          case fault::FaultKind::kDeviceCrash:
            if (fr.state[a.device] == FaultRuntime::kAlive) {
              DeviceState& victim = devices[a.device];
              victim.integrate_to(now);
              if (measuring) fr.stats.tasks_lost += victim.local_queue.size();
              victim.local_queue.clear();
              fr.deactivate(a.device, FaultRuntime::kDead);
              ++fr.stats.crashes;
            }
            break;
          case fault::FaultKind::kDeviceRestart:
            if (fr.state[a.device] == FaultRuntime::kDead) {
              fr.activate(a.device);
              ++fr.stats.restarts;
              fr.arrival_seq[a.device] = queue.scheduled_count();
              queue.push(now + random::exponential(
                                   rngs[a.device], users[a.device].arrival_rate),
                         EventKind::kArrival, a.device);
            }
            break;
          case fault::FaultKind::kUserArrival: {
            const std::uint32_t d = fr.next_join++;
            MEC_ASSERT(d < n_devices);
            fr.activate(d);
            ++fr.stats.churn_joined;
            // The device's measurement clock starts at its join, not at 0.
            devices[d].last_change = now;
            fr.arrival_seq[d] = queue.scheduled_count();
            queue.push(now + random::exponential(rngs[d], users[d].arrival_rate),
                       EventKind::kArrival, d);
            break;
          }
          case fault::FaultKind::kUserDeparture:
            if (!fr.active_ids.empty()) {
              const auto active_n = fr.active_ids.size();
              const auto idx = std::min(
                  active_n - 1, static_cast<std::size_t>(
                                    a.value * static_cast<double>(active_n)));
              const std::uint32_t d = fr.active_ids[idx];
              DeviceState& victim = devices[d];
              victim.integrate_to(now);
              if (measuring) fr.stats.tasks_lost += victim.local_queue.size();
              victim.local_queue.clear();
              fr.deactivate(d, FaultRuntime::kRetired);
              ++fr.stats.churn_departed;
            }
            break;
        }
        continue;
      }
    }

    DeviceState& dev = devices[e.device];
    random::Xoshiro256& rng = rngs[e.device];
    const core::UserParams& u = users[e.device];

    switch (e.kind) {
      case EventKind::kArrival: {
        if constexpr (WithFaults) {
          // A stale arrival chain (pre-crash or pre-departure) is skipped
          // without consuming RNG draws; the live chain — if the device is
          // alive — has a matching sequence number by construction.
          if (e.seq != fr.arrival_seq[e.device]) break;
        }
        dev.integrate_to(now);
        if (measuring) ++dev.arrivals;
        bool offload = decide(e.device, dev.local_queue.size(), rng);
        if constexpr (WithFaults) {
          // Outage check sits *after* the decision so the Bernoulli draw at
          // the boundary state is consumed either way (RNG alignment).
          if (offload && fr.outage &&
              fr.outage_mode == fault::OutageMode::kReject) {
            offload = false;
            if (measuring) ++fr.stats.offloads_rejected;
          }
        }
        if (offload) {
          double delay_value =
              has_fixed_gamma ? fixed_delay : delay(current_gamma(now));
          if constexpr (WithFaults) {
            if (fr.outage && fr.outage_mode == fault::OutageMode::kPenalty) {
              delay_value += fr.outage_penalty;
              if (measuring) ++fr.stats.offloads_penalized;
            }
          }
          const double latency = options.latency(rng, u);
          if (!options.fixed_gamma) offload_rate.record_event(now);
          if (measuring) {
            ++dev.offloaded;
            ++offloads_in_window;
            dev.offload_delay_sum += latency + delay_value;
            dev.energy_sum += u.energy_offload;
            offload_delays.add(latency + delay_value);
          }
          queue.push(now + latency + delay_value, EventKind::kOffloadDelivery,
                     e.device);
        } else {
          dev.local_queue.push_back(now);
          if (measuring) dev.energy_sum += u.energy_local;
          if (dev.local_queue.size() == 1) {  // idle server: start service
            if constexpr (WithFaults)
              fr.departure_seq[e.device] = queue.scheduled_count();
            queue.push(now + options.service(rng, u),
                       EventKind::kLocalDeparture, e.device);
          }
        }
        if constexpr (WithFaults)
          fr.arrival_seq[e.device] = queue.scheduled_count();
        queue.push(now + random::exponential(rng, u.arrival_rate),
                   EventKind::kArrival, e.device);
        break;
      }
      case EventKind::kLocalDeparture: {
        if constexpr (WithFaults) {
          if (e.seq != fr.departure_seq[e.device]) break;  // stale chain
        }
        dev.integrate_to(now);
        MEC_ASSERT(!dev.local_queue.empty());
        const double arrived_at = dev.local_queue.front();
        dev.local_queue.pop_front();
        if (measuring) {
          ++dev.local_completed;
          // Sojourn clipped to the window start for tasks arriving in warm-up:
          // only the portion spent inside the measurement window counts, so a
          // long transient backlog cannot leak into the steady-state mean.
          const double sojourn = now - std::max(arrived_at, options.warmup);
          dev.local_sojourn_sum += sojourn;
          local_sojourns.add(sojourn);
        }
        if (!dev.local_queue.empty()) {
          if constexpr (WithFaults)
            fr.departure_seq[e.device] = queue.scheduled_count();
          queue.push(now + options.service(rng, u),
                     EventKind::kLocalDeparture, e.device);
        } else {
          if constexpr (WithFaults)
            fr.departure_seq[e.device] = FaultRuntime::kNoEvent;
        }
        break;
      }
      case EventKind::kOffloadDelivery:
        // Task completed at the edge; all accounting happened at decision
        // time (the delay is known then). Kept as an explicit event so
        // in-flight work is visible to future extensions.
        break;
      case EventKind::kFault:
        // Handled (and `continue`d) before the device references above; a
        // kFault can only reach the switch in the WithFaults instantiation.
        MEC_ASSERT(WithFaults);
        break;
    }
  }

  // Flush trailing samples and epochs (in the same order the event loop
  // fires them), then close the queue-length integrals.  The epoch flush
  // matters for the closed loop: without it, every broadcast epoch falling
  // between the last event <= t_end and t_end — always including an epoch
  // at t_end itself — was silently dropped, losing the final threshold
  // update(s) of Algorithm 1.
  while (next_sample <= t_end) {
    record_sample(next_sample);
    next_sample += options.sample_interval;
  }
  while (next_epoch <= t_end) {
    options.on_epoch(next_epoch, current_gamma(next_epoch));
    next_epoch += options.epoch_period;
  }
  for (DeviceState& d : devices) d.integrate_to(t_end);
  if constexpr (WithFaults) {
    if (measuring) integrate_env(t_end);
    // A run so short no event crossed the warm-up boundary: treat the whole
    // window as nominal so the utilization denominator stays finite.
    if (fr.scale_integral == 0.0) fr.scale_integral = options.horizon;
  }

  SimulationResult result;
  result.horizon = options.horizon;
  result.total_events = events;
  result.local_sojourn_percentiles = local_sojourns;
  result.offload_delay_percentiles = offload_delays;
  result.timeline = std::move(timeline);
  result.devices.reserve(n_devices);
  const double window = options.horizon;

  double cost_acc = 0.0, q_acc = 0.0, alpha_acc = 0.0;
  std::uint32_t participating = 0;
  // Under faults the denominator is the *time-averaged* available capacity
  // over the window (edge_capacity * mean scale * window); fault-free it
  // reduces to the familiar offloads / (window * N * c).
  double gamma_denom = window * edge_capacity;
  if constexpr (WithFaults) gamma_denom = edge_capacity * fr.scale_integral;
  const double gamma_measured =
      static_cast<double>(offloads_in_window) / gamma_denom;
  for (std::uint32_t n = 0; n < n_devices; ++n) {
    if constexpr (WithFaults) {
      // Churn slots that never joined report all-zero stats and must not
      // dilute the population means (their empirical cost is not zero —
      // the Eq.-(1) functional of an idle device is w*p_L).
      if (fr.state[n] == FaultRuntime::kNotJoined) {
        result.devices.emplace_back();
        continue;
      }
    }
    ++participating;
    const DeviceState& dev = devices[n];
    const core::UserParams& u = users[n];
    DeviceStats s;
    s.arrivals = dev.arrivals;
    s.offloaded = dev.offloaded;
    s.local_completed = dev.local_completed;
    s.mean_queue_length = dev.queue_integral / window;
    s.offload_fraction =
        dev.arrivals > 0
            ? static_cast<double>(dev.offloaded) /
                  static_cast<double>(dev.arrivals)
            : 0.0;
    s.mean_local_sojourn =
        dev.local_completed > 0
            ? dev.local_sojourn_sum / static_cast<double>(dev.local_completed)
            : 0.0;
    s.mean_offload_delay =
        dev.offloaded > 0
            ? dev.offload_delay_sum / static_cast<double>(dev.offloaded)
            : 0.0;
    s.energy_per_task =
        dev.arrivals > 0
            ? dev.energy_sum / static_cast<double>(dev.arrivals)
            : 0.0;
    // Empirical Eq.-(1) cost: measured alpha, measured mean queue, measured
    // per-offload delay (latency + edge processing).
    s.empirical_cost =
        u.weight * u.energy_local * (1.0 - s.offload_fraction) +
        s.mean_queue_length / u.arrival_rate +
        (u.weight * u.energy_offload + s.mean_offload_delay) *
            s.offload_fraction;
    cost_acc += s.empirical_cost;
    q_acc += s.mean_queue_length;
    alpha_acc += s.offload_fraction;
    result.devices.push_back(s);
  }
  result.measured_utilization = gamma_measured;
  result.mean_cost = cost_acc / static_cast<double>(participating);
  result.mean_queue_length = q_acc / static_cast<double>(participating);
  result.mean_offload_fraction = alpha_acc / static_cast<double>(participating);
  if constexpr (WithFaults) {
    fr.stats.mean_capacity_scale = fr.scale_integral / window;
    fr.stats.participating_devices = participating;
    result.faults = fr.stats;
  }
  return result;
}

/// Picks the fault-free or fault-aware instantiation of the event loop.
template <class Decide>
SimulationResult dispatch_run(const std::vector<core::UserParams>& users,
                              std::size_t n_initial, double capacity,
                              const core::EdgeDelay& delay,
                              const SimulationOptions& options,
                              SimWorkspace::Impl& ws, const Decide& decide) {
  if (options.faults && !options.faults->empty())
    return run_simulation<true>(users, n_initial, capacity, delay, options, ws,
                                decide);
  return run_simulation<false>(users, n_initial, capacity, delay, options, ws,
                               decide);
}

}  // namespace

MecSimulation::MecSimulation(std::span<const core::UserParams> users,
                             double capacity, core::EdgeDelay delay,
                             SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
  MEC_EXPECTS(options_.warmup >= 0.0);
  MEC_EXPECTS(options_.horizon > 0.0);
  MEC_EXPECTS(options_.utilization_ewma_tau > 0.0);
  MEC_EXPECTS(options_.initial_gamma >= 0.0 && options_.initial_gamma <= 1.0);
  MEC_EXPECTS(options_.sample_interval >= 0.0);
  MEC_EXPECTS(options_.epoch_period >= 0.0);
  MEC_EXPECTS_MSG(options_.epoch_period == 0.0 ||
                      static_cast<bool>(options_.on_epoch),
                  "epoch_period needs an on_epoch callback");
  if (options_.fixed_gamma)
    MEC_EXPECTS(*options_.fixed_gamma >= 0.0 && *options_.fixed_gamma <= 1.0);
  if (!options_.service) options_.service = exponential_service();
  if (!options_.latency) options_.latency = exponential_latency();
  n_initial_ = users_.size();
  if (options_.faults && !options_.faults->empty()) {
    options_.faults->check(n_initial_);
    const std::vector<core::UserParams> joiners = options_.faults->churn_users();
    users_.insert(users_.end(), joiners.begin(), joiners.end());
    MEC_EXPECTS_MSG(users_.size() < (std::size_t{1} << 20),
                    "population incl. churn must fit the packed event layout");
    MEC_EXPECTS_MSG(options_.faults->size() < (std::size_t{1} << 20),
                    "fault schedule must fit the packed event layout");
  }
  for (const auto& u : users_) u.check();
}

SimulationResult MecSimulation::run(
    std::span<const std::unique_ptr<OffloadPolicy>> policies) const {
  SimWorkspace workspace;
  return run(policies, workspace);
}

SimulationResult MecSimulation::run(
    std::span<const std::unique_ptr<OffloadPolicy>> policies,
    SimWorkspace& workspace) const {
  MEC_EXPECTS(policies.size() == users_.size());
  for (const auto& p : policies) MEC_EXPECTS(p != nullptr);

  // Seal the arrival decision when the whole population is TRO-family; any
  // non-threshold policy falls back to per-arrival virtual dispatch.
  std::vector<const double*>& thresholds = workspace.impl_->threshold_ptrs;
  thresholds.clear();
  thresholds.reserve(policies.size());
  for (const auto& p : policies) {
    const double* threshold = p->tro_threshold();
    if (threshold == nullptr) break;
    thresholds.push_back(threshold);
  }
  if (thresholds.size() == policies.size())
    return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                        *workspace.impl_, TroPointerDecide{thresholds.data()});
  return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                      *workspace.impl_, VirtualDecide{policies.data()});
}

SimulationResult MecSimulation::run_tro(
    std::span<const double> thresholds) const {
  SimWorkspace workspace;
  return run_tro(thresholds, workspace);
}

SimulationResult MecSimulation::run_tro(std::span<const double> thresholds,
                                        SimWorkspace& workspace) const {
  MEC_EXPECTS(thresholds.size() == users_.size());
  for (const double x : thresholds) MEC_EXPECTS(x >= 0.0);
  return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                      *workspace.impl_, TroValueDecide{thresholds.data()});
}

SimulationResult MecSimulation::run_dpo(std::span<const double> rhos) const {
  MEC_EXPECTS(rhos.size() == users_.size());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  policies.reserve(rhos.size());
  for (const double rho : rhos) policies.push_back(make_dpo_policy(rho));
  return run(policies);
}

DesUtilizationSource::DesUtilizationSource(
    std::span<const core::UserParams> users, double capacity,
    core::EdgeDelay delay, SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
}

double DesUtilizationSource::utilization(std::span<const double> thresholds) {
  SimulationOptions run_options = options_;
  // Decorrelate successive DTU iterations while staying deterministic.
  run_options.seed = options_.seed + 0x9E3779B97F4A7C15ULL * ++call_count_;
  MecSimulation simulation(users_, capacity_, delay_, std::move(run_options));
  last_ = simulation.run_tro(thresholds, workspace_);
  return last_->measured_utilization;
}

const SimulationResult& DesUtilizationSource::last_result() const {
  MEC_EXPECTS_MSG(last_.has_value(),
                  "last_result() before any utilization() call");
  return *last_;
}

}  // namespace mec::sim

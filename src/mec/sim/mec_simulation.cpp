// Public simulation API: validation, population assembly, and dispatch into
// the layered engine (see engine.hpp).  The event loop itself, the device
// model, the policy fast paths, the edge coupling, and the fault plan all
// live in their own layer headers/TUs — this file only composes them.
#include "mec/sim/mec_simulation.hpp"

#include <utility>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/sim/engine.hpp"

namespace mec::sim {

SimWorkspace::SimWorkspace() : impl_(std::make_unique<Impl>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

namespace {

/// Picks the fault-free or fault-aware instantiation of the engine.
template <class Decide>
SimulationResult dispatch_run(const std::vector<core::UserParams>& users,
                              std::size_t n_initial, double capacity,
                              const core::EdgeDelay& delay,
                              const SimulationOptions& options,
                              SimWorkspace::Impl& ws, const Decide& decide) {
  if (options.faults && !options.faults->empty())
    return engine::run_sharded<true>(users, n_initial, capacity, delay,
                                     options, ws, decide);
  return engine::run_sharded<false>(users, n_initial, capacity, delay, options,
                                    ws, decide);
}

}  // namespace

MecSimulation::MecSimulation(std::span<const core::UserParams> users,
                             double capacity, core::EdgeDelay delay,
                             SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
  MEC_EXPECTS(options_.warmup >= 0.0);
  MEC_EXPECTS(options_.horizon > 0.0);
  MEC_EXPECTS(options_.utilization_ewma_tau > 0.0);
  MEC_EXPECTS(options_.initial_gamma >= 0.0 && options_.initial_gamma <= 1.0);
  MEC_EXPECTS(options_.sample_interval >= 0.0);
  MEC_EXPECTS(options_.epoch_period >= 0.0);
  MEC_EXPECTS_MSG(options_.epoch_period == 0.0 ||
                      static_cast<bool>(options_.on_epoch) ||
                      static_cast<bool>(options_.on_cluster_epoch),
                  "epoch_period needs an on_epoch or on_cluster_epoch "
                  "callback");
  options_.topology.check();
  MEC_EXPECTS_MSG(options_.stream_log.empty() || options_.sample_interval > 0.0,
                  "stream_log needs sample_interval > 0 (windows are cut at "
                  "the observation grid)");
  if (options_.fixed_gamma)
    MEC_EXPECTS(*options_.fixed_gamma >= 0.0 && *options_.fixed_gamma <= 1.0);
  MEC_EXPECTS_MSG(!(options_.service && options_.service_spec),
                  "set SimulationOptions::service or service_spec, not both");
  MEC_EXPECTS_MSG(!(options_.latency && options_.latency_spec),
                  "set SimulationOptions::latency or latency_spec, not both");
  if (!options_.service) {
    if (!options_.service_spec) options_.service_spec.emplace();
    options_.service = make_service_sampler(*options_.service_spec);
  }
  if (!options_.latency) {
    if (!options_.latency_spec) options_.latency_spec.emplace();
    options_.latency = make_latency_sampler(*options_.latency_spec);
  }
  if (options_.transport == TransportKind::kTcp) {
    MEC_EXPECTS_MSG(!options_.worker_addresses.empty(),
                    "transport=tcp needs worker_addresses (one host:port per "
                    "rank)");
    MEC_EXPECTS_MSG(
        options_.service_spec && options_.latency_spec,
        "transport=tcp needs wire-describable samplers: set service_spec/"
        "latency_spec instead of raw service/latency closures (a closure "
        "cannot be shipped to a remote worker)");
  }
  n_initial_ = users_.size();
  if (options_.faults && !options_.faults->empty()) {
    options_.faults->check(n_initial_);
    for (const fault::FaultAction& a : options_.faults->actions())
      MEC_EXPECTS_MSG(a.cluster == fault::FaultAction::kAllClusters ||
                          a.cluster < options_.topology.clusters,
                      "fault action targets a cluster outside the topology");
    const std::vector<core::UserParams> joiners = options_.faults->churn_users();
    users_.insert(users_.end(), joiners.begin(), joiners.end());
    MEC_EXPECTS_MSG(users_.size() < (std::size_t{1} << 20),
                    "population incl. churn must fit the packed event layout");
    MEC_EXPECTS_MSG(options_.faults->size() < (std::size_t{1} << 20),
                    "fault schedule must fit the packed event layout");
  }
  for (const auto& u : users_) u.check();
}

SimulationResult MecSimulation::run(
    std::span<const std::unique_ptr<OffloadPolicy>> policies) const {
  SimWorkspace workspace;
  return run(policies, workspace);
}

SimulationResult MecSimulation::run(
    std::span<const std::unique_ptr<OffloadPolicy>> policies,
    SimWorkspace& workspace) const {
  MEC_EXPECTS(policies.size() == users_.size());
  for (const auto& p : policies) MEC_EXPECTS(p != nullptr);

  // Seal the arrival decision when the whole population is TRO-family; any
  // non-threshold policy falls back to per-arrival virtual dispatch.
  std::vector<const double*>& thresholds = workspace.impl_->threshold_ptrs;
  thresholds.clear();
  thresholds.reserve(policies.size());
  for (const auto& p : policies) {
    const double* threshold = p->tro_threshold();
    if (threshold == nullptr) break;
    thresholds.push_back(threshold);
  }
  if (thresholds.size() == policies.size())
    return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                        *workspace.impl_, TroPointerDecide{thresholds.data()});
  return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                      *workspace.impl_, VirtualDecide{policies.data()});
}

SimulationResult MecSimulation::run_tro(
    std::span<const double> thresholds) const {
  SimWorkspace workspace;
  return run_tro(thresholds, workspace);
}

SimulationResult MecSimulation::run_tro(std::span<const double> thresholds,
                                        SimWorkspace& workspace) const {
  MEC_EXPECTS(thresholds.size() == users_.size());
  for (const double x : thresholds) MEC_EXPECTS(x >= 0.0);
  return dispatch_run(users_, n_initial_, capacity_, delay_, options_,
                      *workspace.impl_, TroValueDecide{thresholds.data()});
}

SimulationResult MecSimulation::run_dpo(std::span<const double> rhos) const {
  MEC_EXPECTS(rhos.size() == users_.size());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  policies.reserve(rhos.size());
  for (const double rho : rhos) policies.push_back(make_dpo_policy(rho));
  return run(policies);
}

DesUtilizationSource::DesUtilizationSource(
    std::span<const core::UserParams> users, double capacity,
    core::EdgeDelay delay, SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
}

double DesUtilizationSource::utilization(std::span<const double> thresholds) {
  SimulationOptions run_options = options_;
  // Decorrelate successive DTU iterations while staying deterministic.
  run_options.seed = options_.seed + 0x9E3779B97F4A7C15ULL * ++call_count_;
  // Successive oracle calls would clobber one stream log; streaming belongs
  // to a directly-configured run, not the DTU's inner loop.
  run_options.stream_log.clear();
  MecSimulation simulation(users_, capacity_, delay_, std::move(run_options));
  last_ = simulation.run_tro(thresholds, workspace_);
  return last_->measured_utilization;
}

const SimulationResult& DesUtilizationSource::last_result() const {
  MEC_EXPECTS_MSG(last_.has_value(),
                  "last_result() before any utilization() call");
  return *last_;
}

}  // namespace mec::sim

#include "mec/sim/mec_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "mec/common/error.hpp"
#include "mec/sim/des.hpp"

namespace mec::sim {

ServiceSampler exponential_service() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    return random::exponential(rng, u.service_rate);
  };
}

ServiceSampler deterministic_service() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return 1.0 / u.service_rate;
  };
}

ServiceSampler empirical_service(random::EmpiricalDataset times) {
  MEC_EXPECTS(times.mean() > 0.0);
  const double dataset_mean = times.mean();
  return [times = std::move(times), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return times.resample(rng) / (dataset_mean * u.service_rate);
  };
}

ServiceSampler erlang_service(std::size_t stages) {
  MEC_EXPECTS(stages >= 1);
  return [stages](random::Xoshiro256& rng, const core::UserParams& u) {
    const double stage_rate =
        static_cast<double>(stages) * u.service_rate;
    double total = 0.0;
    for (std::size_t i = 0; i < stages; ++i)
      total += random::exponential(rng, stage_rate);
    return total;
  };
}

ServiceSampler hyperexponential_service(double scv) {
  MEC_EXPECTS(scv >= 1.0);
  // Balanced-means H2 fit (cf. queueing::hyperexponential_from_scv): branch
  // probability p with rates 2p*s and 2(1-p)*s for mean 1/s.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  return [p](random::Xoshiro256& rng, const core::UserParams& u) {
    const bool first = random::bernoulli(rng, p);
    const double rate =
        first ? 2.0 * p * u.service_rate : 2.0 * (1.0 - p) * u.service_rate;
    return random::exponential(rng, rate);
  };
}

LatencySampler exponential_latency() {
  return [](random::Xoshiro256& rng, const core::UserParams& u) {
    if (u.offload_latency <= 0.0) return 0.0;
    return random::exponential(rng, 1.0 / u.offload_latency);
  };
}

LatencySampler deterministic_latency() {
  return [](random::Xoshiro256&, const core::UserParams& u) {
    return u.offload_latency;
  };
}

LatencySampler empirical_latency(random::EmpiricalDataset latencies) {
  MEC_EXPECTS(latencies.mean() > 0.0);
  const double dataset_mean = latencies.mean();
  return [latencies = std::move(latencies), dataset_mean](
             random::Xoshiro256& rng, const core::UserParams& u) {
    return latencies.resample(rng) * (u.offload_latency / dataset_mean);
  };
}

namespace {

/// Exponentially-weighted estimator of the aggregate offload task rate.
class EwmaRate {
 public:
  EwmaRate(double time_constant, double initial_rate)
      : tau_(time_constant), rate_(initial_rate) {
    MEC_EXPECTS(tau_ > 0.0);
    MEC_EXPECTS(initial_rate >= 0.0);
  }

  void record_event(double now) {
    decay_to(now);
    rate_ += 1.0 / tau_;
  }

  double rate_at(double now) {
    decay_to(now);
    return rate_;
  }

 private:
  void decay_to(double now) {
    if (now > last_) {
      rate_ *= std::exp(-(now - last_) / tau_);
      last_ = now;
    }
  }
  double tau_;
  double rate_;
  double last_ = 0.0;
};

/// Mutable per-device simulation state.
struct DeviceState {
  random::Xoshiro256 rng{0};
  std::deque<double> local_queue;  ///< arrival times of tasks in system
  // Measurement accumulators (reset at end of warm-up):
  double queue_integral = 0.0;
  double last_change = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t local_completed = 0;
  double local_sojourn_sum = 0.0;
  double offload_delay_sum = 0.0;
  double energy_sum = 0.0;

  void integrate_to(double now) {
    queue_integral +=
        static_cast<double>(local_queue.size()) * (now - last_change);
    last_change = now;
  }
  void reset_measurements(double now) {
    queue_integral = 0.0;
    last_change = now;
    arrivals = offloaded = local_completed = 0;
    local_sojourn_sum = offload_delay_sum = energy_sum = 0.0;
  }
};

}  // namespace

MecSimulation::MecSimulation(std::span<const core::UserParams> users,
                             double capacity, core::EdgeDelay delay,
                             SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
  MEC_EXPECTS(options_.warmup >= 0.0);
  MEC_EXPECTS(options_.horizon > 0.0);
  MEC_EXPECTS(options_.utilization_ewma_tau > 0.0);
  MEC_EXPECTS(options_.initial_gamma >= 0.0 && options_.initial_gamma <= 1.0);
  MEC_EXPECTS(options_.sample_interval >= 0.0);
  MEC_EXPECTS(options_.epoch_period >= 0.0);
  MEC_EXPECTS_MSG(options_.epoch_period == 0.0 ||
                      static_cast<bool>(options_.on_epoch),
                  "epoch_period needs an on_epoch callback");
  if (options_.fixed_gamma)
    MEC_EXPECTS(*options_.fixed_gamma >= 0.0 && *options_.fixed_gamma <= 1.0);
  if (!options_.service) options_.service = exponential_service();
  if (!options_.latency) options_.latency = exponential_latency();
  for (const auto& u : users_) u.check();
}

SimulationResult MecSimulation::run(
    std::span<const std::unique_ptr<OffloadPolicy>> policies) const {
  MEC_EXPECTS(policies.size() == users_.size());
  for (const auto& p : policies) MEC_EXPECTS(p != nullptr);

  const auto n_devices = static_cast<std::uint32_t>(users_.size());
  const double edge_capacity = static_cast<double>(n_devices) * capacity_;
  const double t_end = options_.warmup + options_.horizon;

  random::Xoshiro256 master(options_.seed);
  std::vector<DeviceState> devices(n_devices);
  EventQueue queue;
  for (std::uint32_t n = 0; n < n_devices; ++n) {
    devices[n].rng = master.split();
    queue.push(random::exponential(devices[n].rng, users_[n].arrival_rate),
               EventKind::kArrival, n);
  }

  EwmaRate offload_rate(options_.utilization_ewma_tau,
                        options_.initial_gamma * edge_capacity);
  const auto current_gamma = [&](double now) {
    if (options_.fixed_gamma) return *options_.fixed_gamma;
    return std::clamp(offload_rate.rate_at(now) / edge_capacity, 0.0, 1.0);
  };

  bool measuring = options_.warmup == 0.0;
  std::uint64_t offloads_in_window = 0;
  std::uint64_t events = 0;
  stats::LatencyPercentiles local_sojourns;
  stats::LatencyPercentiles offload_delays;

  std::vector<TimelinePoint> timeline;
  double next_sample = options_.sample_interval > 0.0
                           ? options_.sample_interval
                           : std::numeric_limits<double>::infinity();
  const auto record_sample = [&](double at) {
    TimelinePoint p;
    p.time = at;
    p.utilization_estimate = current_gamma(at);
    double total_q = 0.0;
    for (const auto& d : devices)
      total_q += static_cast<double>(d.local_queue.size());
    p.mean_queue_length = total_q / static_cast<double>(n_devices);
    p.offloads_so_far = offloads_in_window;
    timeline.push_back(p);
  };

  double next_epoch = options_.epoch_period > 0.0
                          ? options_.epoch_period
                          : std::numeric_limits<double>::infinity();

  while (!queue.empty() && queue.next_time() <= t_end) {
    const Event e = queue.pop();
    ++events;
    const double now = e.time;
    while (next_sample <= now && next_sample <= t_end) {
      record_sample(next_sample);
      next_sample += options_.sample_interval;
    }
    while (next_epoch <= now && next_epoch <= t_end) {
      options_.on_epoch(next_epoch, current_gamma(next_epoch));
      next_epoch += options_.epoch_period;
    }

    if (!measuring && now >= options_.warmup) {
      measuring = true;
      for (auto& d : devices) d.reset_measurements(options_.warmup);
    }

    DeviceState& dev = devices[e.device];
    const core::UserParams& u = users_[e.device];

    switch (e.kind) {
      case EventKind::kArrival: {
        dev.integrate_to(now);
        if (measuring) ++dev.arrivals;
        const bool offload =
            policies[e.device]->offload(dev.local_queue.size(), dev.rng);
        if (offload) {
          const double gamma = current_gamma(now);
          const double delay_value = delay_(gamma);
          const double latency = options_.latency(dev.rng, u);
          if (!options_.fixed_gamma) offload_rate.record_event(now);
          if (measuring) {
            ++dev.offloaded;
            ++offloads_in_window;
            dev.offload_delay_sum += latency + delay_value;
            dev.energy_sum += u.energy_offload;
            offload_delays.add(latency + delay_value);
          }
          queue.push(now + latency + delay_value, EventKind::kOffloadDelivery,
                     e.device, now);
        } else {
          dev.local_queue.push_back(now);
          if (measuring) dev.energy_sum += u.energy_local;
          if (dev.local_queue.size() == 1)  // idle server: start service
            queue.push(now + options_.service(dev.rng, u),
                       EventKind::kLocalDeparture, e.device);
        }
        queue.push(now + random::exponential(dev.rng, u.arrival_rate),
                   EventKind::kArrival, e.device);
        break;
      }
      case EventKind::kLocalDeparture: {
        dev.integrate_to(now);
        MEC_ASSERT(!dev.local_queue.empty());
        const double arrived_at = dev.local_queue.front();
        dev.local_queue.pop_front();
        if (measuring) {
          ++dev.local_completed;
          // Sojourn clipped to the window start for tasks arriving in warm-up:
          // only the portion spent inside the measurement window counts, so a
          // long transient backlog cannot leak into the steady-state mean.
          const double sojourn = now - std::max(arrived_at, options_.warmup);
          dev.local_sojourn_sum += sojourn;
          local_sojourns.add(sojourn);
        }
        if (!dev.local_queue.empty())
          queue.push(now + options_.service(dev.rng, u),
                     EventKind::kLocalDeparture, e.device);
        break;
      }
      case EventKind::kOffloadDelivery:
        // Task completed at the edge; all accounting happened at decision
        // time (the delay is known then). Kept as an explicit event so
        // in-flight work is visible to future extensions.
        break;
    }
  }

  // Flush trailing samples, then close the queue-length integrals.
  while (next_sample <= t_end) {
    record_sample(next_sample);
    next_sample += options_.sample_interval;
  }
  for (auto& d : devices) d.integrate_to(t_end);

  SimulationResult result;
  result.horizon = options_.horizon;
  result.total_events = events;
  result.local_sojourn_percentiles = local_sojourns;
  result.offload_delay_percentiles = offload_delays;
  result.timeline = std::move(timeline);
  result.devices.reserve(n_devices);
  const double window = options_.horizon;

  double cost_acc = 0.0, q_acc = 0.0, alpha_acc = 0.0;
  const double gamma_measured =
      static_cast<double>(offloads_in_window) / (window * edge_capacity);
  for (std::uint32_t n = 0; n < n_devices; ++n) {
    const DeviceState& dev = devices[n];
    const core::UserParams& u = users_[n];
    DeviceStats s;
    s.arrivals = dev.arrivals;
    s.offloaded = dev.offloaded;
    s.local_completed = dev.local_completed;
    s.mean_queue_length = dev.queue_integral / window;
    s.offload_fraction =
        dev.arrivals > 0
            ? static_cast<double>(dev.offloaded) /
                  static_cast<double>(dev.arrivals)
            : 0.0;
    s.mean_local_sojourn =
        dev.local_completed > 0
            ? dev.local_sojourn_sum / static_cast<double>(dev.local_completed)
            : 0.0;
    s.mean_offload_delay =
        dev.offloaded > 0
            ? dev.offload_delay_sum / static_cast<double>(dev.offloaded)
            : 0.0;
    s.energy_per_task =
        dev.arrivals > 0
            ? dev.energy_sum / static_cast<double>(dev.arrivals)
            : 0.0;
    // Empirical Eq.-(1) cost: measured alpha, measured mean queue, measured
    // per-offload delay (latency + edge processing).
    s.empirical_cost =
        u.weight * u.energy_local * (1.0 - s.offload_fraction) +
        s.mean_queue_length / u.arrival_rate +
        (u.weight * u.energy_offload + s.mean_offload_delay) *
            s.offload_fraction;
    cost_acc += s.empirical_cost;
    q_acc += s.mean_queue_length;
    alpha_acc += s.offload_fraction;
    result.devices.push_back(s);
  }
  result.measured_utilization = gamma_measured;
  result.mean_cost = cost_acc / static_cast<double>(n_devices);
  result.mean_queue_length = q_acc / static_cast<double>(n_devices);
  result.mean_offload_fraction = alpha_acc / static_cast<double>(n_devices);
  return result;
}

SimulationResult MecSimulation::run_tro(
    std::span<const double> thresholds) const {
  MEC_EXPECTS(thresholds.size() == users_.size());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  policies.reserve(thresholds.size());
  for (const double x : thresholds) policies.push_back(make_tro_policy(x));
  return run(policies);
}

SimulationResult MecSimulation::run_dpo(std::span<const double> rhos) const {
  MEC_EXPECTS(rhos.size() == users_.size());
  std::vector<std::unique_ptr<OffloadPolicy>> policies;
  policies.reserve(rhos.size());
  for (const double rho : rhos) policies.push_back(make_dpo_policy(rho));
  return run(policies);
}

DesUtilizationSource::DesUtilizationSource(
    std::span<const core::UserParams> users, double capacity,
    core::EdgeDelay delay, SimulationOptions options)
    : users_(users.begin(), users.end()),
      capacity_(capacity),
      delay_(std::move(delay)),
      options_(std::move(options)) {
  MEC_EXPECTS(!users_.empty());
  MEC_EXPECTS(capacity_ > 0.0);
  MEC_EXPECTS(delay_.valid());
}

double DesUtilizationSource::utilization(std::span<const double> thresholds) {
  SimulationOptions run_options = options_;
  // Decorrelate successive DTU iterations while staying deterministic.
  run_options.seed = options_.seed + 0x9E3779B97F4A7C15ULL * ++call_count_;
  MecSimulation simulation(users_, capacity_, delay_, std::move(run_options));
  last_ = simulation.run_tro(thresholds);
  return last_->measured_utilization;
}

const SimulationResult& DesUtilizationSource::last_result() const {
  MEC_EXPECTS_MSG(last_.has_value(),
                  "last_result() before any utilization() call");
  return *last_;
}

}  // namespace mec::sim

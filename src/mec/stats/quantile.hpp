// Online quantile estimation with the P-square algorithm
// (Jain & Chlamtac, CACM 1985).
//
// The simulator tracks per-task latency percentiles (p50/p95/p99) over
// millions of observations without storing them; P-square keeps five markers
// per tracked quantile and adjusts them with piecewise-parabolic
// interpolation, giving O(1) memory and typically <1% relative error on
// smooth distributions.
#pragma once

#include <array>
#include <cstddef>

namespace mec::stats {

/// Streaming estimator of a single q-quantile.
class P2Quantile {
 public:
  /// Requires 0 < q < 1.
  explicit P2Quantile(double q);

  void add(double value) noexcept;
  std::size_t count() const noexcept { return count_; }

  /// Current estimate. Requires count() >= 1 (exact for count() <= 5).
  double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired positions
  std::array<double, 5> increments_{};
};

/// Convenience bundle of the latency percentiles the library reports.
class LatencyPercentiles {
 public:
  LatencyPercentiles();
  void add(double value) noexcept;
  std::size_t count() const noexcept;
  double p50() const;
  double p95() const;
  double p99() const;

 private:
  P2Quantile p50_, p95_, p99_;
};

}  // namespace mec::stats

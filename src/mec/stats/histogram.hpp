// Fixed-range histogram used for the Fig. 6 dataset plots and DES output
// distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mec::stats {

/// Equal-width histogram over [lo, hi); values outside the range are clamped
/// into the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(const std::vector<double>& values) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total_count() const noexcept { return total_; }
  double bin_left_edge(std::size_t i) const;
  double bin_width() const noexcept { return width_; }
  std::size_t count(std::size_t i) const;
  /// Fraction of all samples in bin i; 0 if empty histogram.
  double mass(std::size_t i) const;
  /// Density estimate: mass(i) / bin_width.
  double density(std::size_t i) const;

 private:
  double lo_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mec::stats

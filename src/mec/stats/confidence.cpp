#include "mec/stats/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mec/common/error.hpp"

namespace mec::stats {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

/// Continued fraction for the regularized incomplete beta (modified Lentz).
double beta_continued_fraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double m2 = 2.0 * static_cast<double>(m);
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Regularized incomplete beta I_x(a, b).
double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0))
    return front * beta_continued_fraction(a, b, x) / a;
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

/// Upper tail P(T_v > t) of the t distribution for t >= 0: computed directly
/// from the incomplete beta so extreme tails keep full relative precision.
double student_t_upper_tail(double t, double v) {
  return 0.5 * incomplete_beta(0.5 * v, 0.5, v / (v + t * t));
}

/// log pdf of the t distribution (Newton derivative).
double student_t_log_pdf(double t, double v) {
  return std::lgamma(0.5 * (v + 1.0)) - std::lgamma(0.5 * v) -
         0.5 * std::log(v * kPi) -
         0.5 * (v + 1.0) * std::log1p(t * t / v);
}

/// Cornish–Fisher expansion of the t quantile in powers of 1/v around the
/// normal quantile z: the dof > 30 branch, and the Newton starting point.
double cornish_fisher_t(double z, double v) {
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
  const double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
  return z + g1 / v + g2 / (v * v) + g3 / (v * v * v);
}

/// Positive t with P(T_v > t) = q, for an upper-tail probability
/// q in (0, 0.5].  Parameterizing by the tail (rather than p = 1 - q) keeps
/// the alpha-spending path exact: per-look levels below 1e-16 would round
/// 1 - q to 1.0.
double t_quantile_from_upper_tail(double q, double v) {
  if (q == 0.5) return 0.0;
  if (v == 1.0) return std::tan(kPi * (0.5 - q));  // Cauchy closed form
  if (v == 2.0) {
    // F(t) = 1/2 + t / (2 sqrt(2 + t^2)) inverts in closed form.
    const double pq = 4.0 * q * (1.0 - q);
    return (1.0 - 2.0 * q) * std::sqrt(2.0 / pq);
  }
  const double z = -normal_quantile(q);  // normal upper-tail quantile
  if (v > 30.0) return cornish_fisher_t(z, v);
  // Safeguarded Newton on the tail from the Cornish–Fisher start: the tail
  // is decreasing in t, so tail(t) > q brackets from below.
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  double t = std::max(cornish_fisher_t(z, v), 1e-8);
  for (int iter = 0; iter < 100; ++iter) {
    const double f = student_t_upper_tail(t, v) - q;
    (f > 0.0 ? lo : hi) = t;
    const double step = f * std::exp(-student_t_log_pdf(t, v));
    double next = t + step;
    if (!(next > lo && next < hi))
      next = std::isinf(hi) ? 2.0 * t : 0.5 * (lo + hi);
    const bool converged =
        std::fabs(next - t) <= 1e-14 * std::max(1.0, std::fabs(t));
    t = next;
    if (converged) break;
  }
  return t;
}

}  // namespace

double normal_quantile(double p) {
  MEC_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the normal CDF via erfc.  exp(x^2/2)
  // overflows past |x| ~ 37.6 (p below ~1e-308), and close to the overflow
  // edge erfc underflows and the step degrades to 0/0 noise — alpha-spending
  // schedules do feed such tail levels.  The rational approximation alone is
  // already ~1e-9 accurate there, so skip the refinement instead of
  // returning inf/NaN.
  const double half_x2 = 0.5 * x * x;
  if (half_x2 < 700.0) {
    const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    const double u =
        e * std::sqrt(2.0 * kPi) * std::exp(half_x2);
    if (std::isfinite(u)) x = x - u / (1.0 + x * u / 2.0);
  }
  return x;
}

double student_t_quantile(double p, std::size_t dof) {
  MEC_EXPECTS(p > 0.0 && p < 1.0);
  MEC_EXPECTS(dof >= 1);
  const auto v = static_cast<double>(dof);
  if (p < 0.5) return -t_quantile_from_upper_tail(p, v);
  return t_quantile_from_upper_tail(1.0 - p, v);
}

ConfidenceInterval mean_confidence_interval(const RunningSummary& summary,
                                            double confidence) {
  MEC_EXPECTS(confidence > 0.0 && confidence < 1.0);
  MEC_EXPECTS(summary.count() >= 2);
  const double tail = 0.5 * (1.0 + confidence);
  const double q = summary.count() < 100
                       ? student_t_quantile(tail, summary.count() - 1)
                       : normal_quantile(tail);
  return ConfidenceInterval{summary.mean(), q * summary.standard_error(),
                            confidence};
}

ConfidenceInterval paired_difference_interval(std::span<const double> a,
                                              std::span<const double> b,
                                              double confidence) {
  MEC_EXPECTS(a.size() == b.size());
  MEC_EXPECTS(a.size() >= 2);
  RunningSummary diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  return mean_confidence_interval(diff, confidence);
}

double alpha_spending_level(double alpha, std::size_t look) {
  MEC_EXPECTS(alpha > 0.0 && alpha < 1.0);
  MEC_EXPECTS(look >= 1);
  // Geometric schedule: sum_k alpha 2^{-k} <= alpha for any number of looks.
  // The exponent cap keeps the level a normal double (2^-512 ~ 7.5e-155);
  // the overspend it admits past look 512 is ~1e-152 and unreachable anyway.
  const auto k = static_cast<double>(std::min<std::size_t>(look, 512));
  return alpha * std::exp2(-k);
}

double spending_adjusted_quantile(double confidence, std::size_t look,
                                  std::size_t dof) {
  MEC_EXPECTS(confidence > 0.0 && confidence < 1.0);
  MEC_EXPECTS(dof >= 1);
  const double level = alpha_spending_level(1.0 - confidence, look);
  // Two-sided: each tail gets level/2.  Evaluate via the lower tail so
  // levels below 1e-16 keep full precision (1 - level/2 would round to 1).
  return -student_t_quantile(0.5 * level, dof);
}

}  // namespace mec::stats

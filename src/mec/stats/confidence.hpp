// Confidence intervals for simulation output analysis.
//
// Table III reports the DPO baseline's mean cost with a 98% confidence
// interval over 5000 repetitions; this module provides the normal and
// Student-t interval machinery (own quantile implementations — no external
// math library).
#pragma once

#include <cstddef>

#include "mec/stats/summary.hpp"

namespace mec::stats {

/// A symmetric two-sided confidence interval: mean +/- half_width.
struct ConfidenceInterval {
  double mean;
  double half_width;
  double confidence;  ///< e.g. 0.98

  double lower() const noexcept { return mean - half_width; }
  double upper() const noexcept { return mean + half_width; }
  bool contains(double v) const noexcept {
    return v >= lower() && v <= upper();
  }
};

/// Standard normal quantile Phi^{-1}(p) (Acklam's rational approximation,
/// |relative error| < 1.2e-9). Requires 0 < p < 1.
double normal_quantile(double p);

/// Student-t quantile with `dof` degrees of freedom (Cornish–Fisher style
/// expansion around the normal quantile; exact enough for dof >= 3, and the
/// library only uses it for interval construction). Requires dof >= 1,
/// 0 < p < 1.
double student_t_quantile(double p, std::size_t dof);

/// Two-sided CI for the mean of i.i.d. replications; uses Student-t for
/// n < 100 and the normal quantile otherwise. Requires n >= 2 and
/// 0 < confidence < 1.
ConfidenceInterval mean_confidence_interval(const RunningSummary& summary,
                                            double confidence);

}  // namespace mec::stats

// Confidence intervals for simulation output analysis.
//
// Table III reports the DPO baseline's mean cost with a 98% confidence
// interval over 5000 repetitions; this module provides the normal and
// Student-t interval machinery (own quantile implementations — no external
// math library), plus the paired-difference and alpha-spending helpers the
// sequential-stopping engine (parallel/sequential.hpp) builds on.
#pragma once

#include <cstddef>
#include <span>

#include "mec/stats/summary.hpp"

namespace mec::stats {

/// A symmetric two-sided confidence interval: mean +/- half_width.
/// A NaN half_width marks an interval that cannot be estimated (R = 1);
/// contains() is then false for every value.
struct ConfidenceInterval {
  double mean;
  double half_width;
  double confidence;  ///< e.g. 0.98

  double lower() const noexcept { return mean - half_width; }
  double upper() const noexcept { return mean + half_width; }
  bool contains(double v) const noexcept {
    return v >= lower() && v <= upper();
  }
};

/// Standard normal quantile Phi^{-1}(p) (Acklam's rational approximation
/// plus one Halley refinement, |relative error| < 1.2e-9; the refinement is
/// skipped at tails extreme enough to overflow exp(x^2/2), where the
/// rational approximation alone is returned). Requires 0 < p < 1.
double normal_quantile(double p);

/// Student-t quantile with `dof` degrees of freedom.  Exact closed forms at
/// dof = 1 (Cauchy) and dof = 2, incomplete-beta CDF inversion (Newton with
/// a bisection safeguard) for dof <= 30, and a Cornish–Fisher expansion
/// around the normal quantile above (where it is accurate to ~1e-5).
/// Relative error < 1e-6 for dof <= 30 at the usual interval levels.
/// Requires dof >= 1, 0 < p < 1.
double student_t_quantile(double p, std::size_t dof);

/// Two-sided CI for the mean of i.i.d. replications; uses Student-t for
/// n < 100 and the normal quantile otherwise. Requires n >= 2 and
/// 0 < confidence < 1.
ConfidenceInterval mean_confidence_interval(const RunningSummary& summary,
                                            double confidence);

/// Paired-t CI on E[a - b] from per-replication pairs evaluated on common
/// random numbers: the interval of the mean of the differences a[i] - b[i].
/// Requires equal sizes >= 2 and 0 < confidence < 1.
ConfidenceInterval paired_difference_interval(std::span<const double> a,
                                              std::span<const double> b,
                                              double confidence);

/// Geometric alpha-spending schedule for repeatedly-inspected tests: look k
/// (1-indexed) of a sequential procedure may spend alpha * 2^{-k}, so the
/// total type-I error over any number of looks is bounded by alpha
/// (sum_k alpha 2^{-k} <= alpha).  Requires 0 < alpha < 1 and look >= 1.
double alpha_spending_level(double alpha, std::size_t look);

/// Student-t quantile at the spending-adjusted per-look level: the quantile
/// for a two-sided interval at overall error rate alpha = 1 - confidence
/// inspected at look k.  Wider than the fixed-sample quantile, so repeated
/// interim analyses keep the family-wise error below alpha.
/// Requires dof >= 1, 0 < confidence < 1, look >= 1.
double spending_adjusted_quantile(double confidence, std::size_t look,
                                  std::size_t dof);

}  // namespace mec::stats

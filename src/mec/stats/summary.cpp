#include "mec/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"

namespace mec::stats {

void RunningSummary::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningSummary::merge(const RunningSummary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningSummary::mean() const {
  MEC_EXPECTS(count_ >= 1);
  return mean_;
}

double RunningSummary::variance() const {
  MEC_EXPECTS(count_ >= 2);
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double RunningSummary::standard_error() const {
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningSummary::min() const {
  MEC_EXPECTS(count_ >= 1);
  return min_;
}

double RunningSummary::max() const {
  MEC_EXPECTS(count_ >= 1);
  return max_;
}

double mean(std::span<const double> values) {
  MEC_EXPECTS(!values.empty());
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  MEC_EXPECTS(values.size() >= 2);
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double time_average(std::span<const double> values,
                    std::span<const double> durations) {
  MEC_EXPECTS(values.size() == durations.size());
  MEC_EXPECTS(!values.empty());
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    MEC_EXPECTS(durations[i] >= 0.0);
    weighted += values[i] * durations[i];
    total += durations[i];
  }
  MEC_EXPECTS_MSG(total > 0.0, "time_average needs positive total duration");
  return weighted / total;
}

}  // namespace mec::stats

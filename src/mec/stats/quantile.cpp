#include "mec/stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"

namespace mec::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  MEC_EXPECTS(q > 0.0 && q < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double value) noexcept {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }

  // Locate the cell containing the observation and update extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 3;
    for (int i = 1; i < 4; ++i) {
      if (value < heights_[i]) {
        k = i - 1;
        break;
      }
    }
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers with the parabolic (P2) formula,
  // falling back to linear interpolation when the parabola would cross a
  // neighbour.
  for (int i = 1; i < 4; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          sign / span *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / (-left_gap));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {  // linear fallback towards the sign direction
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  MEC_EXPECTS(count_ >= 1);
  if (count_ < 5) {
    // Exact small-sample quantile on the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - std::floor(pos);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

LatencyPercentiles::LatencyPercentiles()
    : p50_(0.5), p95_(0.95), p99_(0.99) {}

void LatencyPercentiles::add(double value) noexcept {
  p50_.add(value);
  p95_.add(value);
  p99_.add(value);
}

std::size_t LatencyPercentiles::count() const noexcept { return p50_.count(); }
double LatencyPercentiles::p50() const { return p50_.value(); }
double LatencyPercentiles::p95() const { return p95_.value(); }
double LatencyPercentiles::p99() const { return p99_.value(); }

}  // namespace mec::stats

// Streaming summary statistics (Welford) and batch helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mec::stats {

/// Online mean/variance accumulator (Welford's algorithm); O(1) memory,
/// numerically stable for long simulation runs.
class RunningSummary {
 public:
  void add(double value) noexcept;
  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningSummary& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  /// Requires count() >= 1.
  double mean() const;
  /// Unbiased sample variance. Requires count() >= 2.
  double variance() const;
  /// sqrt(variance). Requires count() >= 2.
  double stddev() const;
  /// stddev / sqrt(n). Requires count() >= 2.
  double standard_error() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch mean. Requires non-empty input.
double mean(std::span<const double> values);

/// Unbiased sample variance. Requires size >= 2.
double variance(std::span<const double> values);

/// Time-weighted average of a piecewise-constant signal: values[i] holds over
/// durations[i]. Requires equal sizes, positive total duration.
double time_average(std::span<const double> values,
                    std::span<const double> durations);

}  // namespace mec::stats

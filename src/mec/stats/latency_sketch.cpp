#include "mec/stats/latency_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"

namespace mec::stats {

std::size_t LatencySketch::bin_of(double value) noexcept {
  if (!(value > 0.0)) return 0;  // non-positive and NaN clamp low
  const double scaled =
      std::floor(std::log2(value) * static_cast<double>(kBinsPerOctave));
  const double idx =
      scaled - static_cast<double>(kMinExp * kBinsPerOctave);
  if (idx <= 0.0) return 0;
  if (idx >= static_cast<double>(kBins - 1)) return kBins - 1;
  return static_cast<std::size_t>(idx);
}

void LatencySketch::add(double value) noexcept {
  if (counts_.empty()) counts_.assign(kBins, 0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  ++counts_[bin_of(value)];
}

void LatencySketch::merge(const LatencySketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  if (counts_.empty()) counts_.assign(kBins, 0);
  for (std::size_t i = 0; i < kBins; ++i) counts_[i] += other.counts_[i];
}

LatencySketch LatencySketch::restore(std::uint64_t count, double min,
                                     double max,
                                     std::span<const std::uint64_t> bins) {
  LatencySketch s;
  if (count == 0) {
    MEC_EXPECTS_MSG(bins.empty(), "empty sketch must carry no bins");
    return s;
  }
  MEC_EXPECTS_MSG(bins.size() == kBins, "sketch bin count mismatch");
  s.count_ = count;
  s.min_ = min;
  s.max_ = max;
  s.counts_.assign(bins.begin(), bins.end());
  return s;
}

double LatencySketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile in the sorted sample, 1-based; ceil so q = 0.5
  // of a 2-sample stream picks the first sample, matching the empirical
  // inverse-CDF convention.
  const double target = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(target));
  if (rank < 1) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // Geometric midpoint of the bin, clamped into the observed range so
      // degenerate streams (all samples equal) are reported exactly.
      const double exponent =
          (static_cast<double>(i) + 0.5) /
              static_cast<double>(kBinsPerOctave) +
          static_cast<double>(kMinExp);
      return std::clamp(std::exp2(exponent), min_, max_);
    }
  }
  return max_;
}

}  // namespace mec::stats

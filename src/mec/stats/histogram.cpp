#include "mec/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"

namespace mec::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  MEC_EXPECTS(lo < hi);
  MEC_EXPECTS(bins >= 1);
}

void Histogram::add(double value) noexcept {
  const double offset = (value - lo_) / width_;
  std::size_t idx = 0;
  if (offset > 0.0)
    idx = std::min(static_cast<std::size_t>(offset), counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) noexcept {
  for (const double v : values) add(v);
}

double Histogram::bin_left_edge(std::size_t i) const {
  MEC_EXPECTS(i < counts_.size());
  return lo_ + static_cast<double>(i) * width_;
}

std::size_t Histogram::count(std::size_t i) const {
  MEC_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::mass(std::size_t i) const {
  MEC_EXPECTS(i < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::density(std::size_t i) const { return mass(i) / width_; }

}  // namespace mec::stats

// Mergeable streaming quantile sketch over positive latencies.
//
// The sharded simulation engine accumulates per-task latency distributions
// independently per shard and merges them at the end of a run, so the
// container must be *exactly* mergeable: merging K partial sketches has to
// give the same object as feeding one sketch the union of the samples, in
// any order.  P-square estimators (stats/quantile.hpp) are order-dependent
// and cannot be combined, so the simulator uses this log-binned histogram
// instead: integer bin counts make add/merge associative, commutative, and
// bit-exact, at the price of a bounded relative quantile error (one bin
// width, ~1.1% with 64 bins per octave).
//
// The exact minimum and maximum are tracked alongside the bins and every
// quantile estimate is clamped into [min, max]; a degenerate stream of
// identical values therefore reports that value exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mec::stats {

/// Log-binned quantile sketch; add/merge in any order give identical state.
class LatencySketch {
 public:
  LatencySketch() = default;

  /// Records one sample.  Values outside the binned range (2^-32 .. 2^32,
  /// and any v <= 0) clamp into the edge bins; the tracked min/max keep the
  /// reported quantiles inside the observed values regardless.
  void add(double value) noexcept;

  /// Folds `other` into this sketch.  Exact: the result is bit-identical to
  /// a single sketch fed both sample streams, in any order.
  void merge(const LatencySketch& other);

  std::uint64_t count() const noexcept { return count_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Quantile estimate for q in [0, 1], clamped to [min, max]; 0 when empty.
  double quantile(double q) const noexcept;

  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }

  /// Number of log-spaced bins; fixed by the binning constants, exposed so
  /// serializers can pin the wire layout.
  static constexpr std::size_t bin_count() noexcept { return kBins; }

  /// Raw bin counts in bin order; empty when no sample was ever added (the
  /// bins are lazily allocated).
  std::span<const std::uint64_t> bin_counts() const noexcept {
    return counts_;
  }

  /// Rebuilds a sketch from serialized state.  `bins` must be empty for
  /// count == 0 and exactly bin_count() entries otherwise; the result is
  /// bit-identical to the sketch the state was read from, so a sketch can
  /// cross a process boundary without perturbing merged quantiles.
  static LatencySketch restore(std::uint64_t count, double min, double max,
                               std::span<const std::uint64_t> bins);

 private:
  static constexpr int kBinsPerOctave = 64;  ///< ~1.09% geometric bin width
  static constexpr int kMinExp = -32;        ///< smallest binned octave
  static constexpr int kMaxExp = 32;         ///< one past the largest octave
  static constexpr std::size_t kBins =
      static_cast<std::size_t>((kMaxExp - kMinExp) * kBinsPerOctave);

  static std::size_t bin_of(double value) noexcept;

  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// Lazily sized to kBins on the first add (empty sketches stay 16 bytes
  /// of vector header; SimulationResult copies are then cheap when latency
  /// tracking never ran).
  std::vector<std::uint64_t> counts_;
};

}  // namespace mec::stats

#include "mec/io/csv.hpp"

#include <filesystem>
#include <iomanip>
#include <system_error>

#include "mec/common/error.hpp"

namespace mec::io {

void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns) {
  MEC_EXPECTS(!columns.empty());
  MEC_EXPECTS(column_names.size() == columns.size());
  const std::size_t rows = columns.front().size();
  for (const auto& col : columns) MEC_EXPECTS(col.size() == rows);

  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open CSV output file: " + path);
  out << std::setprecision(12);
  for (std::size_t c = 0; c < column_names.size(); ++c) {
    if (c) out << ',';
    out << column_names[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ',';
      out << columns[c][r];
    }
    out << '\n';
  }
  if (!out) throw RuntimeError("failed writing CSV output file: " + path);
}

std::string output_path(const std::string& dir, const std::string& filename) {
  if (dir.empty()) return filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw RuntimeError("cannot create output directory " + dir + ": " +
                       ec.message());
  // create_directories reports success-without-error when the path already
  // exists — even as a regular file.  Catch that here with a clear message
  // instead of letting the caller's open fail with a confusing ENOTDIR.
  if (!std::filesystem::is_directory(dir, ec))
    throw RuntimeError("output directory " + dir +
                       " exists but is not a directory");
  return (std::filesystem::path(dir) / filename).string();
}

}  // namespace mec::io

// Terminal line/bar plots for the paper's figures (Figs. 2, 3, 5-8).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mec::io {

/// One named series to draw.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;  ///< same length as x
  char glyph = '*';
};

struct PlotOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders the series into a character grid with axes and min/max tick
/// labels. Requires at least one series with at least one point and matching
/// x/y lengths.
std::string line_plot(std::span<const Series> series,
                      const PlotOptions& options);

/// Horizontal-bar rendering of a normalized histogram (Fig. 6 style):
/// one row per bin, bar length proportional to mass.
std::string bar_chart(std::span<const double> bin_edges,
                      std::span<const double> mass, const PlotOptions& options);

}  // namespace mec::io

// Minimal command-line argument parsing for the CLI tools.
//
// Grammar: <command> [--flag=value | --flag value | --switch] ...
// Values are retrieved typed, with defaults; unknown flags are an error so
// typos never silently fall back to defaults.  A flag given without a value
// (`--switch`) is recorded as the boolean sentinel "true" *and* remembered
// as bare, so value-typed getters (get_path) can reject it instead of
// treating "true" as a filename.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mec::io {

/// Parsed command line: a leading positional command plus named flags.
class Args {
 public:
  /// Parses argv (excluding argv[0]). Throws mec::RuntimeError on malformed
  /// input (flag without name, duplicate flag).
  static Args parse(const std::vector<std::string>& argv);

  const std::string& command() const noexcept { return command_; }

  bool has(const std::string& name) const;

  /// True when the flag was given as a bare switch (`--flag`, no value).
  bool was_bare(const std::string& name) const;

  /// Typed getters; throw mec::RuntimeError when the value does not parse.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Accepts plain integers and exact-integer scientific notation ("1e6");
  /// rejects fractional values and trailing garbage.
  long get_long(const std::string& name, long fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  /// Like get_string, but a bare `--flag` (no value) is an error rather
  /// than the "true" sentinel — use for filenames and other paths.
  std::string get_path(const std::string& name,
                       const std::string& fallback = "") const;

  /// Throws mec::RuntimeError if any provided flag is not in `known`
  /// (catches typos).
  void reject_unknown(const std::set<std::string>& known) const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;  // switches map to "true"
  std::set<std::string> bare_;                // flags given without a value
};

}  // namespace mec::io

// Minimal JSON value builder/serializer for experiment outputs.
//
// The benches and CLI can export results as machine-readable JSON without an
// external dependency.  Build values with the static factories, serialize
// with dump().  Numbers are emitted with enough precision to round-trip
// doubles; non-finite numbers serialize as null (JSON has no NaN/Inf).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mec::io {

/// An immutable JSON value (null, bool, number, string, array, object).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}  // null

  static Json null();
  static Json boolean(bool value);
  static Json number(double value);
  static Json integer(long long value);
  static Json string(std::string value);
  static Json array(std::vector<Json> items);
  static Json object(std::map<std::string, Json> members);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool is_null() const noexcept { return kind_ == Kind::kNull; }

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;

  void write(std::string& out, int indent, int depth) const;
};

/// Escapes a string per RFC 8259 (quotes, backslashes, control characters).
std::string json_escape(const std::string& raw);

}  // namespace mec::io

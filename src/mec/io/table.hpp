// Aligned plain-text tables for reproducing the paper's Tables I-III on
// stdout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mec::io {

/// A simple column-aligned text table with a title and a header row.
class TextTable {
 public:
  explicit TextTable(std::string title);

  /// Sets the header; must be called before add_row. Requires >= 1 column.
  void set_header(std::vector<std::string> header);

  /// Adds a row; size must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);

  /// Renders with box-drawing rules.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mec::io

#include "mec/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace mec::io {

Json Json::null() { return Json(); }

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::integer(long long value) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.integer_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(items);
  return j;
}

Json Json::object(std::map<std::string, Json> members) {
  Json j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(members);
  return j;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", integer_);
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        item.write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        value.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace mec::io

// Minimal CSV writer so every bench can dump its series for external
// plotting alongside the stdout rendering.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace mec::io {

/// Writes named columns of equal length to `path` as RFC-4180-ish CSV
/// (values are numeric; no quoting needed). Throws mec::RuntimeError on I/O
/// failure; requires equal column lengths and names.size() == columns.size().
void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

}  // namespace mec::io

// Minimal CSV writer so every bench can dump its series for external
// plotting alongside the stdout rendering.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace mec::io {

/// Writes named columns of equal length to `path` as RFC-4180-ish CSV
/// (values are numeric; no quoting needed). Throws mec::RuntimeError on I/O
/// failure; requires equal column lengths and names.size() == columns.size().
void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

/// Joins `dir` and `filename`, creating `dir` (and parents) if needed, so
/// bench binaries can route their generated CSVs under an output directory
/// (`results/` by convention — generated artifacts never live in the repo
/// root).  An empty `dir` returns `filename` unchanged.  Throws
/// mec::RuntimeError when the directory cannot be created (unwritable
/// parent) or when `dir` exists but is not a directory.
std::string output_path(const std::string& dir, const std::string& filename);

}  // namespace mec::io

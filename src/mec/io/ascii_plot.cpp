#include "mec/io/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "mec/common/error.hpp"

namespace mec::io {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void cover(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  /// Widened so a degenerate range still maps to the grid.
  void finalize() {
    if (lo > hi) {
      lo = 0.0;
      hi = 1.0;
    }
    if (hi - lo < 1e-12) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
  double norm(double v) const { return (v - lo) / (hi - lo); }
};

std::string format_tick(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat << v;
  return os.str();
}

}  // namespace

std::string line_plot(std::span<const Series> series,
                      const PlotOptions& options) {
  MEC_EXPECTS(!series.empty());
  MEC_EXPECTS(options.width >= 10 && options.height >= 4);
  Range xr, yr;
  for (const auto& s : series) {
    MEC_EXPECTS(!s.x.empty());
    MEC_EXPECTS(s.x.size() == s.y.size());
    for (const double v : s.x) xr.cover(v);
    for (const double v : s.y) yr.cover(v);
  }
  xr.finalize();
  yr.finalize();

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = std::clamp(
          static_cast<int>(std::lround(xr.norm(s.x[i]) * (w - 1))), 0, w - 1);
      const int row = std::clamp(
          static_cast<int>(std::lround((1.0 - yr.norm(s.y[i])) * (h - 1))), 0,
          h - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (const auto& s : series)
    os << "  [" << s.glyph << "] " << s.label << '\n';
  os << format_tick(yr.hi) << '\n';
  for (const auto& row : grid) os << '|' << row << '\n';
  os << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  os << format_tick(yr.lo) << std::string(8, ' ') << options.x_label << ": "
     << format_tick(xr.lo) << " .. " << format_tick(xr.hi);
  if (!options.y_label.empty()) os << "   (y: " << options.y_label << ')';
  os << '\n';
  return os.str();
}

std::string bar_chart(std::span<const double> bin_edges,
                      std::span<const double> mass,
                      const PlotOptions& options) {
  MEC_EXPECTS(!bin_edges.empty());
  MEC_EXPECTS(bin_edges.size() == mass.size());
  const double max_mass = *std::max_element(mass.begin(), mass.end());
  const double scale =
      max_mass > 0.0 ? static_cast<double>(options.width) / max_mass : 0.0;

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (std::size_t i = 0; i < bin_edges.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        std::lround(std::max(0.0, mass[i]) * scale));
    os << std::setw(9) << std::fixed << std::setprecision(3) << bin_edges[i]
       << " | " << std::string(bar_len, '#') << ' ' << std::setprecision(4)
       << mass[i] << '\n';
  }
  if (!options.x_label.empty()) os << "(bins: " << options.x_label << ")\n";
  return os.str();
}

}  // namespace mec::io

#include "mec/io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "mec/common/error.hpp"

namespace mec::io {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  MEC_EXPECTS(!header.empty());
  MEC_EXPECTS_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  MEC_EXPECTS_MSG(!header_.empty(), "set_header before add_row");
  MEC_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  MEC_EXPECTS(!header_.empty());
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&os, &widths](char sep) {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << sep;
      os << '+';
    }
    os << '\n';
  };
  const auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule('-');
  emit(header_);
  rule('=');
  for (const auto& row : rows_) emit(row);
  rule('-');
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace mec::io

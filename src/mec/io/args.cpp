#include "mec/io/args.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "mec/common/error.hpp"

namespace mec::io {

Args Args::parse(const std::vector<std::string>& argv) {
  Args out;
  std::size_t i = 0;
  if (i < argv.size() && argv[i].rfind("--", 0) != 0) {
    out.command_ = argv[i];
    ++i;
  }
  for (; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0)
      throw RuntimeError("unexpected positional argument: " + token);
    std::string name = token.substr(2);
    std::string value = "true";
    bool bare = true;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      bare = false;
    } else if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
      value = argv[++i];
      bare = false;
    }
    if (name.empty()) throw RuntimeError("empty flag name");
    if (out.flags_.contains(name))
      throw RuntimeError("duplicate flag: --" + name);
    out.flags_[name] = value;
    if (bare) out.bare_.insert(name);
  }
  return out;
}

bool Args::has(const std::string& name) const {
  return flags_.contains(name);
}

bool Args::was_bare(const std::string& name) const {
  return bare_.contains(name);
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::string Args::get_path(const std::string& name,
                           const std::string& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (bare_.contains(name))
    throw RuntimeError("flag --" + name +
                       " expects a value (e.g. --" + name + "=FILE)");
  return it->second;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw RuntimeError("flag --" + name + " expects a number, got '" +
                       it->second + "'");
  }
}

long Args::get_long(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    // "1e6"-style scientific notation: accepted when it denotes an exact
    // integer that a long (and a double mantissa) can represent.
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos == it->second.size() && std::isfinite(v) &&
          v == std::floor(v) &&
          v >= static_cast<double>(std::numeric_limits<long>::min()) &&
          v <= 9.2233720368547738e18 /* below LONG_MAX rounding */ &&
          static_cast<double>(static_cast<long>(v)) == v)
        return static_cast<long>(v);
    } catch (const std::exception&) {
    }
    throw RuntimeError("flag --" + name + " expects an integer, got '" +
                       it->second + "'");
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes")
    return true;
  if (it->second == "false" || it->second == "0" || it->second == "no")
    return false;
  throw RuntimeError("flag --" + name + " expects a boolean, got '" +
                     it->second + "'");
}

void Args::reject_unknown(const std::set<std::string>& known) const {
  for (const auto& [name, value] : flags_)
    if (!known.contains(name))
      throw RuntimeError("unknown flag: --" + name);
}

}  // namespace mec::io

#include "mec/population/scenario.hpp"

#include "mec/common/error.hpp"
#include "mec/random/empirical_data.hpp"

namespace mec::population {

void ScenarioConfig::check() const {
  MEC_EXPECTS_MSG(arrival.valid() && service.valid() && latency.valid() &&
                      energy_local.valid() && energy_offload.valid(),
                  "all five heterogeneity distributions must be set");
  MEC_EXPECTS(weight > 0.0);
  MEC_EXPECTS(capacity > 0.0);
  MEC_EXPECTS(delay.valid());
  MEC_EXPECTS(n_users >= 1);
  MEC_EXPECTS_MSG(service.lower_bound() > 0.0 ||
                      service.mean() > 0.0,
                  "service rates must be positive");
  MEC_EXPECTS_MSG(clusters >= 1, "clusters must be at least 1");
  if (!cluster_shares.empty()) {
    MEC_EXPECTS_MSG(cluster_shares.size() == clusters,
                    "cluster_shares must list one share per cluster");
    double total = 0.0;
    for (const double share : cluster_shares) {
      MEC_EXPECTS_MSG(share > 0.0, "cluster shares must be positive");
      total += share;
    }
    MEC_EXPECTS_MSG(total > 1.0 - 1e-9 && total < 1.0 + 1e-9,
                    "cluster shares must sum to 1");
  }
}

std::string to_string(LoadRegime regime) {
  switch (regime) {
    case LoadRegime::kBelowService:
      return "E[A] < E[S]";
    case LoadRegime::kAtService:
      return "E[A] = E[S]";
    case LoadRegime::kAboveService:
      return "E[A] > E[S]";
  }
  throw ContractViolation("unknown LoadRegime");
}

namespace {

ScenarioConfig theoretical_base(LoadRegime regime, std::size_t n_users,
                                double latency_max, std::string name) {
  double a_max = 0.0;
  switch (regime) {
    case LoadRegime::kBelowService:
      a_max = 4.0;  // E[A] = 2 < E[S] = 3
      break;
    case LoadRegime::kAtService:
      a_max = 6.0;  // E[A] = 3 = E[S]
      break;
    case LoadRegime::kAboveService:
      a_max = 8.0;  // E[A] = 4 > E[S]
      break;
  }
  ScenarioConfig cfg;
  cfg.name = name + " (" + to_string(regime) + ")";
  cfg.arrival = random::make_uniform(0.0, a_max);
  cfg.service = random::make_uniform(1.0, 5.0);
  cfg.latency = random::make_uniform(0.0, latency_max);
  cfg.energy_local = random::make_uniform(0.0, 3.0);
  cfg.energy_offload = random::make_uniform(0.0, 1.0);
  cfg.weight = 1.0;
  cfg.capacity = 10.0;
  cfg.delay = core::make_reciprocal_delay(1.1);
  cfg.n_users = n_users;
  return cfg;
}

}  // namespace

ScenarioConfig theoretical_scenario(LoadRegime regime, std::size_t n_users) {
  return theoretical_base(regime, n_users, 1.0, "theoretical");
}

ScenarioConfig theoretical_comparison_scenario(LoadRegime regime,
                                               std::size_t n_users) {
  return theoretical_base(regime, n_users, 5.0, "theoretical-comparison");
}

ScenarioConfig practical_scenario(LoadRegime regime, std::size_t n_users,
                                  double mean_latency) {
  MEC_EXPECTS(mean_latency > 0.0);
  const auto times = random::synthetic_yolo_processing_times();
  const auto rates = random::service_rates_from_times(times);
  const auto latencies =
      random::synthetic_wifi_offload_latencies(random::kDatasetSeed + 1, 1000,
                                               mean_latency);

  ScenarioConfig cfg;
  cfg.name = "practical (" + to_string(regime) + ")";
  switch (regime) {
    case LoadRegime::kBelowService:
      cfg.arrival = random::make_uniform(4.0, 12.0);  // E[A] = 8
      break;
    case LoadRegime::kAtService:
      // E[A] = E[S] = 8.9437 exactly, as in the paper.
      cfg.arrival = random::make_uniform(7.3474, 10.54);
      break;
    case LoadRegime::kAboveService:
      cfg.arrival = random::make_uniform(8.0, 12.0);  // E[A] = 10
      break;
  }
  cfg.service = rates.as_distribution();
  cfg.latency = latencies.as_distribution();
  cfg.energy_local = random::make_uniform(0.0, 3.0);
  cfg.energy_offload = random::make_uniform(0.0, 1.0);
  cfg.weight = 1.0;
  // Calibrated (DESIGN.md §4): with c = 8.5 and E[T] = 0.4 s the three
  // regimes' equilibria land in Table II's 0.43-0.46 band.  Note c < A_max
  // here; the paper's A_max < c assumption is sufficient but not necessary —
  // the solver checks the actual requirement V(0) < 1.
  cfg.capacity = 8.5;
  cfg.delay = core::make_reciprocal_delay(1.1);
  cfg.n_users = n_users;
  return cfg;
}

}  // namespace mec::population

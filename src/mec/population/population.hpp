// Sampling a concrete heterogeneous user population from a ScenarioConfig.
#pragma once

#include <cstdint>
#include <vector>

#include "mec/core/user.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"

namespace mec::population {

/// A sampled population plus the config it came from.
struct Population {
  std::vector<core::UserParams> users;
  ScenarioConfig config;

  std::size_t size() const noexcept { return users.size(); }
  double mean_arrival_rate() const;
  double mean_service_rate() const;
};

/// Draws config.n_users users i.i.d. from the scenario's marginals.
/// Arrival draws of exactly zero (probability-zero boundary of U(0, a_max))
/// are redrawn so every user satisfies the model's A > 0 assumption.
Population sample_population(const ScenarioConfig& config,
                             random::Xoshiro256& rng);

/// Convenience overload seeding a fresh engine.
Population sample_population(const ScenarioConfig& config,
                             std::uint64_t seed = 42);

}  // namespace mec::population

// Scenario configurations: the paper's evaluation setups as reusable presets.
//
// Theoretical settings (Section IV-A): all five heterogeneity coordinates are
// uniform; three arrival regimes E[A] < / = / > E[S].
// Practical settings (Section IV-B): S and T are resampled from measured
// datasets (synthetic stand-ins here; see DESIGN.md §5), A uniform in three
// regimes around the dataset's mean service rate E[S] = 8.9437.
//
// The paper does not report the per-user edge capacity c; the presets use
// calibrated values (DESIGN.md §4) chosen so the equilibrium utilizations
// land in the bands of Tables I and II.  Every field remains overridable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/random/distributions.hpp"

namespace mec::population {

/// Full generative description of a heterogeneous MEC system.
struct ScenarioConfig {
  std::string name;
  random::Distribution arrival;         ///< A
  random::Distribution service;         ///< S
  random::Distribution latency;         ///< T
  random::Distribution energy_local;    ///< P_L
  random::Distribution energy_offload;  ///< P_E
  double weight = 1.0;                  ///< w_n (= 1 in the paper's evaluation)
  /// Optional per-user weight heterogeneity: when set, w_n is sampled from
  /// this distribution (the paper's general model allows 0 < w_n <= w_max)
  /// and the scalar `weight` is ignored.
  random::Distribution weight_dist;
  double capacity = 10.0;               ///< c
  core::EdgeDelay delay;                ///< g(.)
  std::size_t n_users = 10'000;
  /// Edge clusters the capacity is split across (device n feeds cluster
  /// n mod clusters).  1 keeps the classic single-edge model.
  std::size_t clusters = 1;
  /// Optional per-cluster capacity shares; empty means an equal split.
  /// When set, the size must equal `clusters` and the entries must be
  /// positive and sum to 1.
  std::vector<double> cluster_shares;
  /// Raw `fault = <verb> <args...>` lines from the config file, in file
  /// order.  Stored as text (not parsed) so this layer stays independent of
  /// mec/fault/; tools join the lines and hand them to
  /// fault::parse_fault_schedule together with this scenario.
  std::vector<std::string> fault_lines;

  /// Validates model assumptions (distributions set, bounded, capacity > 0).
  void check() const;
};

/// Load regimes used across the paper's tables.
enum class LoadRegime {
  kBelowService,  ///< E[A] <  E[S]
  kAtService,     ///< E[A] == E[S]
  kAboveService,  ///< E[A] >  E[S]
};

/// Human-readable label, e.g. "E[A] < E[S]".
std::string to_string(LoadRegime regime);

/// Section IV-A theoretical settings: A ~ U(0, a_max) with a_max in
/// {4, 6, 8} for the three regimes, S ~ U(1,5), T ~ U(0,1), P_L ~ U(0,3),
/// P_E ~ U(0,1), w = 1, g = 1/(1.1 - gamma), N = 10^4, c = 10.
ScenarioConfig theoretical_scenario(LoadRegime regime,
                                    std::size_t n_users = 10'000);

/// Section IV-C theoretical comparison settings: same as above but
/// T ~ U(0, 5) and N = 10^3.
ScenarioConfig theoretical_comparison_scenario(LoadRegime regime,
                                               std::size_t n_users = 1'000);

/// Section IV-B practical settings: S resampled from the (synthetic)
/// YOLOv3-on-RPi4 service-rate dataset (mean 8.9437), T resampled from the
/// (synthetic) WiFi upload-latency dataset, A ~ U(4,12) / U(7.3474,10.54) /
/// U(8,12), N = 10^3.  `mean_latency` rescales the latency dataset (the raw
/// trace scale is unpublished; see DESIGN.md §5).
ScenarioConfig practical_scenario(LoadRegime regime,
                                  std::size_t n_users = 1'000,
                                  double mean_latency = 0.4);

}  // namespace mec::population

// Text-format scenario definitions.
//
// Lets users describe a heterogeneous MEC system in a small config file and
// run any tool/bench against it without recompiling:
//
//     # my-fleet.mec
//     name      = my-fleet
//     n_users   = 2000
//     capacity  = 10
//     weight    = 1
//     delay     = reciprocal 1.1
//     arrival   = uniform 0 4
//     service   = uniform 1 5
//     latency   = lognormal -1.2 0.5 3.0
//     energy_local   = uniform 0 3
//     energy_offload = uniform 0 1
//
// Distributions:  uniform <lo> <hi> | constant <v> |
//                 exponential <mean> <cap> | normal <mu> <sigma> <lo> <hi> |
//                 lognormal <mu> <sigma> <cap> | gamma <shape> <scale> <cap>
// Delays:         reciprocal <margin> | linear <g0> <slope> |
//                 power <gmax> <p> | constant <v> | erlangc <N> <mu> [<cap>]
// Lines starting with '#' and blank lines are ignored.  Every key above is
// required except name (defaults to the file's stem or "scenario").
#pragma once

#include <string>

#include "mec/population/scenario.hpp"

namespace mec::population {

/// Parses a scenario from config text. Throws mec::RuntimeError with a
/// line-numbered message on any syntax or semantic problem.
ScenarioConfig parse_scenario_text(const std::string& text);

/// Reads and parses a scenario file.
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace mec::population

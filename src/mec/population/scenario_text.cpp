#include "mec/population/scenario_text.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mec/common/error.hpp"

namespace mec::population {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "scenario config line " << line << ": " << message;
  throw RuntimeError(os.str());
}

std::vector<std::string> tokenize(const std::string& value) {
  std::istringstream is(value);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

double to_number(const std::string& token, int line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

/// Parses "<family> <params...>" into a Distribution.
random::Distribution parse_distribution(const std::string& value, int line) {
  const auto tokens = tokenize(value);
  if (tokens.empty()) fail(line, "empty distribution spec");
  const std::string& family = tokens.front();
  const auto need = [&](std::size_t n) {
    if (tokens.size() != n + 1)
      fail(line, family + " expects " + std::to_string(n) + " parameters");
  };
  const auto num = [&](std::size_t i) { return to_number(tokens[i], line); };
  try {
    if (family == "uniform") {
      need(2);
      return random::make_uniform(num(1), num(2));
    }
    if (family == "constant") {
      need(1);
      return random::make_constant(num(1));
    }
    if (family == "exponential") {
      need(2);
      return random::make_truncated_exponential(num(1), num(2));
    }
    if (family == "normal") {
      need(4);
      return random::make_truncated_normal(num(1), num(2), num(3), num(4));
    }
    if (family == "lognormal") {
      need(3);
      return random::make_truncated_lognormal(num(1), num(2), num(3));
    }
    if (family == "gamma") {
      need(3);
      return random::make_truncated_gamma(num(1), num(2), num(3));
    }
  } catch (const ContractViolation& e) {
    fail(line, std::string("invalid ") + family + " parameters: " + e.what());
  }
  fail(line, "unknown distribution family '" + family + "'");
}

core::EdgeDelay parse_delay(const std::string& value, int line) {
  const auto tokens = tokenize(value);
  if (tokens.empty()) fail(line, "empty delay spec");
  const std::string& family = tokens.front();
  const auto num = [&](std::size_t i) {
    if (i >= tokens.size()) fail(line, family + ": missing parameter");
    return to_number(tokens[i], line);
  };
  try {
    if (family == "reciprocal") return core::make_reciprocal_delay(num(1));
    if (family == "linear") return core::make_linear_delay(num(1), num(2));
    if (family == "power") return core::make_power_delay(num(1), num(2));
    if (family == "constant") return core::make_constant_delay(num(1));
    if (family == "erlangc") {
      const auto servers = static_cast<std::size_t>(num(1));
      const double mu = num(2);
      const double cap = tokens.size() > 3 ? num(3) : 0.95;
      return core::make_erlang_c_delay(servers, mu, cap);
    }
  } catch (const ContractViolation& e) {
    fail(line, std::string("invalid ") + family + " parameters: " + e.what());
  }
  fail(line, "unknown delay family '" + family + "'");
}

}  // namespace

ScenarioConfig parse_scenario_text(const std::string& text) {
  ScenarioConfig cfg;
  cfg.name = "scenario";

  std::istringstream is(text);
  std::string raw;
  int line_number = 0;
  bool saw[6] = {false, false, false, false, false, false};
  enum { kArrival, kService, kLatency, kEnergyLocal, kEnergyOffload, kDelay };

  while (std::getline(is, raw)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const auto hash = raw.find('#');
    std::string body = hash == std::string::npos ? raw : raw.substr(0, hash);
    const auto eq = body.find('=');
    if (body.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (eq == std::string::npos)
      fail(line_number, "expected 'key = value'");
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
    };
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    if (key.empty()) fail(line_number, "empty key");
    if (value.empty()) fail(line_number, "empty value for '" + key + "'");

    if (key == "name") {
      cfg.name = value;
    } else if (key == "n_users") {
      const double n = to_number(value, line_number);
      if (n < 1 || n != static_cast<double>(static_cast<std::size_t>(n)))
        fail(line_number, "n_users must be a positive integer");
      cfg.n_users = static_cast<std::size_t>(n);
    } else if (key == "capacity") {
      cfg.capacity = to_number(value, line_number);
    } else if (key == "clusters") {
      const double k = to_number(value, line_number);
      if (k < 1 || k != static_cast<double>(static_cast<std::size_t>(k)))
        fail(line_number, "clusters must be a positive integer");
      cfg.clusters = static_cast<std::size_t>(k);
    } else if (key == "cluster_shares") {
      cfg.cluster_shares.clear();
      for (const std::string& token : tokenize(value))
        cfg.cluster_shares.push_back(to_number(token, line_number));
      if (cfg.cluster_shares.empty())
        fail(line_number, "cluster_shares needs at least one share");
    } else if (key == "weight") {
      cfg.weight = to_number(value, line_number);
    } else if (key == "weight_dist") {
      cfg.weight_dist = parse_distribution(value, line_number);
    } else if (key == "arrival") {
      cfg.arrival = parse_distribution(value, line_number);
      saw[kArrival] = true;
    } else if (key == "service") {
      cfg.service = parse_distribution(value, line_number);
      saw[kService] = true;
    } else if (key == "latency") {
      cfg.latency = parse_distribution(value, line_number);
      saw[kLatency] = true;
    } else if (key == "energy_local") {
      cfg.energy_local = parse_distribution(value, line_number);
      saw[kEnergyLocal] = true;
    } else if (key == "energy_offload") {
      cfg.energy_offload = parse_distribution(value, line_number);
      saw[kEnergyOffload] = true;
    } else if (key == "delay") {
      cfg.delay = parse_delay(value, line_number);
      saw[kDelay] = true;
    } else if (key == "fault") {
      // Fault-schedule lines ride along verbatim; they are validated by
      // fault::parse_fault_schedule when a tool builds the schedule.
      cfg.fault_lines.push_back(value);
    } else {
      fail(line_number, "unknown key '" + key + "'");
    }
  }

  static constexpr const char* kNames[6] = {
      "arrival", "service", "latency", "energy_local", "energy_offload",
      "delay"};
  for (int i = 0; i < 6; ++i)
    if (!saw[i])
      throw RuntimeError(std::string("scenario config: missing required key '") +
                         kNames[i] + "'");
  try {
    cfg.check();
  } catch (const ContractViolation& e) {
    throw RuntimeError(std::string("scenario config invalid: ") + e.what());
  }
  return cfg;
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario_text(buffer.str());
}

}  // namespace mec::population

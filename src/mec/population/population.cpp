#include "mec/population/population.hpp"

#include "mec/common/error.hpp"

namespace mec::population {

double Population::mean_arrival_rate() const {
  MEC_EXPECTS(!users.empty());
  double acc = 0.0;
  for (const auto& u : users) acc += u.arrival_rate;
  return acc / static_cast<double>(users.size());
}

double Population::mean_service_rate() const {
  MEC_EXPECTS(!users.empty());
  double acc = 0.0;
  for (const auto& u : users) acc += u.service_rate;
  return acc / static_cast<double>(users.size());
}

Population sample_population(const ScenarioConfig& config,
                             random::Xoshiro256& rng) {
  config.check();
  Population pop;
  pop.config = config;
  pop.users.reserve(config.n_users);
  for (std::size_t n = 0; n < config.n_users; ++n) {
    core::UserParams u;
    do {
      u.arrival_rate = config.arrival.sample(rng);
    } while (u.arrival_rate <= 0.0);
    do {
      u.service_rate = config.service.sample(rng);
    } while (u.service_rate <= 0.0);
    u.offload_latency = config.latency.sample(rng);
    u.energy_local = config.energy_local.sample(rng);
    u.energy_offload = config.energy_offload.sample(rng);
    if (config.weight_dist.valid()) {
      do {
        u.weight = config.weight_dist.sample(rng);
      } while (u.weight <= 0.0);
    } else {
      u.weight = config.weight;
    }
    u.check();
    pop.users.push_back(u);
  }
  return pop;
}

Population sample_population(const ScenarioConfig& config, std::uint64_t seed) {
  random::Xoshiro256 rng(seed);
  return sample_population(config, rng);
}

}  // namespace mec::population

#include "mec/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "mec/common/error.hpp"

namespace mec::parallel {

std::size_t resolve_thread_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One blocking parallel-for invocation.  Chunks are claimed via a shared
/// cursor; `in_flight` counts workers currently draining (guarded by the
/// pool mutex) so the caller can tell when every claimed chunk has retired.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> cursor{0};
  int in_flight = 0;                  ///< guarded by ThreadPool::mutex_
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(resolve_thread_count(threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t begin = job.cursor.fetch_add(job.grain);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.grain, job.n);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      // Park the cursor past the end so no lane claims further chunks.
      job.cursor.store(job.n);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen);
    });
    if (stop_) return;
    seen = generation_;
    Job& job = *job_;
    ++job.in_flight;
    lock.unlock();
    drain(job);
    lock.lock();
    --job.in_flight;
    if (job.in_flight == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_each(std::size_t n,
                                   const std::function<void(std::size_t)>& fn,
                                   std::size_t grain) {
  MEC_EXPECTS(grain >= 1);
  MEC_EXPECTS(static_cast<bool>(fn));
  if (n == 0) return;
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.n = n;
  job.grain = grain;
  job.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(job);  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.in_flight == 0; });
    job_ = nullptr;  // late-waking workers see no job for this generation
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace mec::parallel

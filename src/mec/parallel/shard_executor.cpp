#include "mec/parallel/shard_executor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <thread>

#include "mec/common/error.hpp"

namespace mec::parallel {

namespace {
/// Below this population a single queue wins: the per-barrier costs
/// (fork/join latency, replay hand-off) outweigh the parallel leg work.
constexpr std::size_t kAutoShardMinDevices = 10000;
/// Minimum devices per shard once sharding is on.
constexpr std::size_t kAutoShardDevicesPerShard = 5000;
/// Diminishing returns past this many shards (barrier is a full join).
constexpr std::size_t kAutoShardMaxShards = 16;
}  // namespace

std::size_t auto_shard_count(std::size_t n_devices,
                             std::size_t hardware_threads) noexcept {
  if (hardware_threads <= 1 || n_devices < kAutoShardMinDevices) return 1;
  const std::size_t by_population = n_devices / kAutoShardDevicesPerShard;
  return std::clamp<std::size_t>(
      std::min(hardware_threads, by_population), 1, kAutoShardMaxShards);
}

std::size_t resolve_shard_count(std::size_t requested,
                                std::size_t n_devices) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MEC_SHARDS")) {
    // Eager validation, same policy as the bench runner's flag parsing: a
    // value that is not a clean in-range integer fails the run immediately
    // instead of being silently replaced by the autotuning heuristic.
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    // strtol quietly skips leading whitespace and accepts a sign; a shard
    // count is a bare decimal, so require the string to start with a digit.
    const bool clean = env[0] >= '0' && env[0] <= '9' && *end == '\0' &&
                       errno == 0;
    if (!clean || parsed < 1 ||
        parsed > static_cast<long>(kMaxEnvShardCount)) {
      throw RuntimeError("MEC_SHARDS=\"" + std::string(env) +
                         "\" is not a valid shard count (expected an "
                         "integer in [1, " +
                         std::to_string(kMaxEnvShardCount) + "])");
    }
    return static_cast<std::size_t>(parsed);
  }
  return auto_shard_count(n_devices, std::thread::hardware_concurrency());
}

void ShardContext::reset(std::uint32_t lo_device, std::uint32_t hi_device,
                         bool measuring_from_start) {
  lo = lo_device;
  hi = hi_device;
  queue.clear();
  // One pending arrival per owned device, at most one in-service departure,
  // plus headroom for in-flight offload deliveries (fixed-gamma mode).
  queue.reserve(2 * static_cast<std::size_t>(hi - lo) + 64);
  log.clear();
  local_sojourns = stats::LatencySketch{};
  offload_delays = stats::LatencySketch{};
  events = 0;
  offloads_in_window = 0;
  cluster_offloads.clear();  // the engine re-sizes it to the topology
  tasks_lost = 0;
  offloads_rejected = 0;
  offloads_penalized = 0;
  measuring = measuring_from_start;
  flipped = measuring_from_start;
  outage = false;
  outage_mode = fault::OutageMode::kReject;
  outage_penalty = 0.0;
  view.clear();
  arrival_seq.clear();
  departure_seq.clear();
}

}  // namespace mec::parallel

#include "mec/parallel/shard_executor.hpp"

#include <cstdlib>

namespace mec::parallel {

std::size_t resolve_shard_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MEC_SHARDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1;
}

void ShardContext::reset(std::uint32_t lo_device, std::uint32_t hi_device,
                         bool measuring_from_start) {
  lo = lo_device;
  hi = hi_device;
  queue.clear();
  // One pending arrival per owned device, at most one in-service departure,
  // plus headroom for in-flight offload deliveries (fixed-gamma mode).
  queue.reserve(2 * static_cast<std::size_t>(hi - lo) + 64);
  log.clear();
  local_sojourns = stats::LatencySketch{};
  offload_delays = stats::LatencySketch{};
  events = 0;
  offloads_in_window = 0;
  tasks_lost = 0;
  offloads_rejected = 0;
  offloads_penalized = 0;
  measuring = measuring_from_start;
  flipped = measuring_from_start;
  outage = false;
  outage_mode = fault::OutageMode::kReject;
  outage_penalty = 0.0;
  view.clear();
  arrival_seq.clear();
  departure_seq.clear();
}

}  // namespace mec::parallel

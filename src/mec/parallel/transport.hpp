// Rank architecture: how the engine's per-rank leg work talks to the
// barrier-serial coordinator.
//
// A *rank* owns a contiguous slice of the run's K shards and advances them
// leg by leg to each observation-grid barrier; the *coordinator* (see
// sim/coordinator.hpp) merges every rank's barrier payload, performs the
// serial coupling work (GammaReplay, epoch callbacks, stream windows), and
// broadcasts the post-barrier coupling state back.  The two sides
// communicate exclusively through the Transport interface below, so the
// same coordinator drives both backends:
//
//   InProcessTransport  one rank, this process, zero-copy views — the
//                       engine's historical path, bit-identical to it;
//   ProcessTransport    W forked worker processes over socketpairs, each
//                       serving its shard slice; payloads travel as
//                       length-prefixed CRC32 frames in the .meclog wire
//                       dialect (obs/wire.hpp + obs::crc32).
//
// Determinism contract (docs/ARCHITECTURE.md #8): everything in a barrier
// payload is either an order-invariant merge (integer counters, latency
// sketches, integer-valued queue sums) or is replayed serially in global
// time order by the coordinator (the offload log), and ranks own ascending
// contiguous shard ranges, so assembling rank payloads in rank order
// reproduces the global shard order exactly.  The transport choice can
// therefore never change a single result byte — pinned by the byte-equality
// tests in tests/test_transport.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mec/sim/coupling.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::parallel {

/// What the coordinator asks every rank to do for one barrier: advance all
/// owned shards to `limit`, then report the listed quantities.  The flags
/// mirror what the pre-rank engine computed at each grid instant, so a rank
/// does no work a single-process run would not have done.
struct BarrierRequest {
  double limit = 0.0;
  bool inclusive = false;        ///< final leg runs events at exactly t_end
  bool want_q = false;           ///< sum of local queue lengths (sample)
  bool want_q2 = false;          ///< also the sum of squares (stream runs)
  bool want_sketches = false;    ///< ship cumulative latency sketches
  bool want_queue_stats = false; ///< per-shard queue diagnostics + leg time
};

/// One shard's barrier-time state as the coordinator consumes it.  In
/// process mode the spans/pointers reference the rank payload decoded for
/// the current barrier; either way they are valid until the next advance().
struct ShardBarrierView {
  std::uint32_t shard = 0;  ///< global shard index
  std::span<const sim::OffloadRecord> log;  ///< this leg's offloads, in time order
  std::uint64_t events = 0;
  std::uint64_t offloads_in_window = 0;
  std::uint64_t tasks_lost = 0;
  std::uint64_t offloads_rejected = 0;
  std::uint64_t offloads_penalized = 0;
  std::span<const std::uint64_t> cluster_offloads;
  bool flipped = false;  ///< this shard's own pop opened the window
  /// Cumulative sketches; null unless BarrierRequest::want_sketches.
  const stats::LatencySketch* local_sojourns = nullptr;
  const stats::LatencySketch* offload_delays = nullptr;
  // Queue diagnostics; populated only under want_queue_stats.
  bool has_queue_stats = false;
  double queue_depth = 0.0;
  double calendar_gear = 0.0;
  double gear_switches = 0.0;
  double calendar_retunes = 0.0;
  double leg_seconds = 0.0;
};

/// Per-device run totals shipped after finalize(); mirrors the DeviceState
/// accumulators the result-building loop reads.
struct DeviceTotals {
  std::uint64_t arrivals = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t local_completed = 0;
  double queue_integral = 0.0;
  double local_sojourn_sum = 0.0;
  double offload_delay_sum = 0.0;
  double energy_sum = 0.0;
};

/// Wall-clock wire diagnostics for one rank (process transport only; the
/// in-process rank has no wire to meter).  Feed the kRank*/kTransport*
/// counters in the stream log.
struct RankStats {
  double barrier_wait_seconds = 0.0;  ///< wait for the last barrier payload
  std::uint64_t payload_bytes = 0;    ///< cumulative payload bytes received
  std::uint64_t frames_sent = 0;      ///< coordinator -> rank
  std::uint64_t frames_received = 0;  ///< rank -> coordinator
};

/// One rank's executable side: advances its owned shards and serves barrier
/// state.  Implemented by sim::engine::LegRunner (templated on fault mode
/// and decision provider); this interface is what the process worker loop
/// and the in-process transport drive.
class RankWorker {
 public:
  virtual ~RankWorker() = default;

  /// Advances every owned shard to the request's limit and rebuilds the
  /// barrier views (and, per the request flags, the queue sums).
  virtual void advance(const BarrierRequest& request) = 0;

  /// Views of the owned shards, ascending global shard order.  Valid until
  /// the next advance().
  virtual std::span<const ShardBarrierView> views() const = 0;

  /// Sum of local queue lengths (and squares) over the owned device range
  /// at the last barrier.  Integer-valued doubles, so partial sums across
  /// ranks recombine exactly.
  virtual double total_q() const = 0;
  virtual double total_q2() const = 0;

  /// Installs the post-epoch thresholds (process workers mirror the
  /// coordinator's policy state; the in-process rank reads it live).
  virtual void set_thresholds(std::span<const double> values) = 0;

  /// Run end: resets measurements of never-flipped shards (when the run's
  /// window opened at all) and integrates every owned device to t_end.
  virtual void finalize(bool flipped) = 0;

  virtual DeviceTotals device_totals(std::uint32_t device) const = 0;

  virtual std::uint32_t device_lo() const = 0;
  virtual std::uint32_t device_hi() const = 0;
};

/// Coordinator-side handle on the rank fleet.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::size_t ranks() const = 0;

  /// Runs one barrier step on every rank and returns the merged views in
  /// global shard order.  Valid until the next advance().
  virtual std::span<const ShardBarrierView> advance(
      const BarrierRequest& request) = 0;

  /// Queue sums of the last want_q advance, rank partials combined in rank
  /// order (exact: the summands are integer-valued).
  virtual double total_q() const = 0;
  virtual double total_q2() const = 0;

  /// Whether epoch-mutated thresholds must be pushed to the ranks (process
  /// workers decide on mirrored copies; the in-process rank does not).
  virtual bool wants_thresholds() const = 0;
  virtual void broadcast_thresholds(std::span<const double> values) = 0;

  virtual void finalize(bool flipped) = 0;
  virtual DeviceTotals device_totals(std::uint32_t device) const = 0;

  /// True when the transport has wire diagnostics worth streaming.
  virtual bool metered() const = 0;
  virtual RankStats rank_stats(std::size_t rank) const = 0;
};

/// Today's shared-memory path: one rank, zero-copy views, no serialization.
/// Every call forwards to the worker, so the engine's historical behavior —
/// and its bytes — are preserved exactly.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(RankWorker& worker) : worker_(&worker) {}

  std::size_t ranks() const override { return 1; }
  std::span<const ShardBarrierView> advance(
      const BarrierRequest& request) override {
    worker_->advance(request);
    return worker_->views();
  }
  double total_q() const override { return worker_->total_q(); }
  double total_q2() const override { return worker_->total_q2(); }
  bool wants_thresholds() const override { return false; }
  void broadcast_thresholds(std::span<const double>) override {}
  void finalize(bool flipped) override { worker_->finalize(flipped); }
  DeviceTotals device_totals(std::uint32_t device) const override {
    return worker_->device_totals(device);
  }
  bool metered() const override { return false; }
  RankStats rank_stats(std::size_t) const override { return {}; }

 private:
  RankWorker* worker_;
};

// --- wire protocol (exposed for the format-pinning tests) ------------------

namespace wire {

/// Transport frame kinds.  Frames reuse the .meclog envelope —
/// u32 kind | u32 payload length | payload | u32 CRC32(payload), all
/// little-endian — with kinds disjoint from obs::FrameKind so a misdirected
/// frame can never masquerade as run-log data.
inline constexpr std::uint32_t kFrameAdvance = 0x10;     ///< BarrierRequest
inline constexpr std::uint32_t kFrameThresholds = 0x11;  ///< f64 per device
inline constexpr std::uint32_t kFrameFinalize = 0x12;    ///< u8 flipped
inline constexpr std::uint32_t kFrameHello = 0x13;       ///< TCP handshake
inline constexpr std::uint32_t kFramePopulation = 0x14;  ///< rank's slice
inline constexpr std::uint32_t kFrameBarrier = 0x20;     ///< barrier payload
inline constexpr std::uint32_t kFrameFinal = 0x21;       ///< device totals
inline constexpr std::uint32_t kFrameHelloAck = 0x22;    ///< handshake echo
inline constexpr std::uint32_t kFrameReady = 0x23;       ///< population built
inline constexpr std::uint32_t kFrameError = 0x2F;       ///< worker failure

/// Human-readable frame-kind label for diagnostics, e.g.
/// "barrier payload (kind 0x20)"; unregistered kinds render as "unknown".
std::string frame_kind_name(std::uint32_t kind);

/// Barrier payloads scale with the leg's offload log, so the cap is far
/// above the run-log's (the length field stays u32 either way).
inline constexpr std::uint32_t kMaxTransportPayload = 1u << 30;

/// Wire sizes pinned by the golden-vector tests.
inline constexpr std::size_t kFrameOverhead = 12;  ///< kind + len + crc
inline constexpr std::size_t kOffloadRecordWireSize = 32;
inline constexpr std::size_t kDeviceTotalsWireSize = 56;

/// Envelope: wraps `payload` into a complete frame.
std::vector<std::uint8_t> encode_frame(std::uint32_t kind,
                                       std::span<const std::uint8_t> payload);

struct DecodedFrame {
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
};

/// Decodes one complete frame from the start of `bytes`; throws
/// mec::RuntimeError on truncation, an oversized length, or CRC mismatch.
/// `consumed`, when given, receives the frame's total size.
DecodedFrame decode_frame(std::span<const std::uint8_t> bytes,
                          std::size_t* consumed = nullptr);

std::vector<std::uint8_t> encode_barrier_request(const BarrierRequest& req);
BarrierRequest decode_barrier_request(std::span<const std::uint8_t> payload);

/// Owning decoded form of one rank's barrier payload; `views()` re-exposes
/// it in the coordinator's ShardBarrierView shape (also how the round-trip
/// property tests re-encode it).
struct RankBarrierData {
  struct Shard {
    std::uint32_t shard = 0;
    std::uint64_t events = 0;
    std::uint64_t offloads_in_window = 0;
    std::uint64_t tasks_lost = 0;
    std::uint64_t offloads_rejected = 0;
    std::uint64_t offloads_penalized = 0;
    std::vector<std::uint64_t> cluster_offloads;
    bool flipped = false;
    std::vector<sim::OffloadRecord> log;
    bool has_sketches = false;
    stats::LatencySketch local_sojourns;
    stats::LatencySketch offload_delays;
    bool has_queue_stats = false;
    double queue_depth = 0.0;
    double calendar_gear = 0.0;
    double gear_switches = 0.0;
    double calendar_retunes = 0.0;
    double leg_seconds = 0.0;
  };
  std::vector<Shard> shards;
  bool has_q = false;
  double total_q = 0.0;
  double total_q2 = 0.0;

  std::vector<ShardBarrierView> views() const;
};

/// Serializes one rank's barrier state (shard views in ascending order plus
/// the optional queue sums).  Sketches/queue stats are written per the
/// views' pointers and flags, so encode(decode(x).views()) == x.
std::vector<std::uint8_t> encode_barrier_payload(
    std::span<const ShardBarrierView> views, bool has_q, double total_q,
    double total_q2);
RankBarrierData decode_barrier_payload(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_thresholds(std::span<const double> values);
std::vector<double> decode_thresholds(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_device_totals(
    std::uint32_t device_lo, std::uint32_t device_hi,
    std::span<const DeviceTotals> totals);
struct FinalTotals {
  std::uint32_t device_lo = 0;
  std::uint32_t device_hi = 0;
  std::vector<DeviceTotals> totals;
};
FinalTotals decode_device_totals(std::span<const std::uint8_t> payload);

// --- deadline-bounded fd framing (shared by process + tcp backends) --------

/// Peer-liveness failure on a framed channel: the fd hit EOF at a frame
/// boundary (kClosed) or the read deadline expired (kTimeout).  Transports
/// catch this to attach rank / peer-address / barrier context; wire-format
/// corruption (CRC, oversize) stays a plain mec::RuntimeError because it is
/// a protocol fault, not a liveness one.
class PeerError final : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kClosed, kTimeout };
  PeerError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Writes one complete frame to `fd`; short writes and EINTR are retried
/// until the whole envelope is on the wire.
void write_frame(int fd, std::uint32_t kind,
                 std::span<const std::uint8_t> payload);

/// Reads one complete frame from `fd` within `timeout_ms` — the poll-deadline
/// loop both backends share.  Partial reads are resumed across polls; the
/// deadline covers the whole frame, not each chunk.  Throws PeerError
/// (kClosed on EOF, kTimeout on deadline) and mec::RuntimeError on CRC
/// mismatch, an oversized length, or a poll/read error.
DecodedFrame read_frame_deadline(int fd, long timeout_ms);

}  // namespace wire

/// Upper bound accepted for MEC_TRANSPORT_TIMEOUT_MS (24 h, in ms).
inline constexpr long kMaxTransportTimeoutMs = 86'400'000;

/// Resolves the per-read transport deadline: MEC_TRANSPORT_TIMEOUT_MS when
/// set, else `fallback_ms`.  A malformed or out-of-range value throws
/// mec::RuntimeError naming the variable and the accepted range
/// [1, 86400000] instead of silently falling back (same contract as
/// MEC_SHARDS in resolve_shard_count).
long resolve_transport_timeout_ms(long fallback_ms = 300000);

// --- process backend -------------------------------------------------------

/// Builds the rank's worker inside the forked child (so the closure and
/// everything it captures — device states, RNG streams, fault views — are
/// inherited copy-on-write, never serialized).
using WorkerFactory = std::function<std::unique_ptr<RankWorker>(
    std::size_t rank, std::size_t shard_lo, std::size_t shard_hi)>;

/// Child-side message loop: serves kAdvance/kThresholds/kFinalize over `fd`
/// until the final totals are shipped.  Honors the MEC_TEST_WORKER_CRASH_* /
/// MEC_TEST_WORKER_STALL_* hooks used by the robustness tests.  Throws
/// mec::RuntimeError on a wire error.
void serve_worker(RankWorker& worker, std::size_t rank, int fd);

/// Coordinator side of the multi-process backend: forks one worker process
/// per rank over a socketpair, assigns rank r the shard slice
/// [K*r/W, K*(r+1)/W) (ascending and contiguous, preserving the global
/// merge order), and detects a worker that dies or stalls mid-run — every
/// payload read is bounded by MEC_TRANSPORT_TIMEOUT_MS (default 300000) and
/// failure raises mec::RuntimeError naming the rank and its last completed
/// barrier instead of hanging.
class ProcessTransport final : public Transport {
 public:
  struct Config {
    std::size_t shard_count = 1;
    std::size_t workers = 1;       ///< already clamped to shard_count
    std::uint32_t n_devices = 0;
  };

  /// Forks the workers; `factory` runs only in the children.
  ProcessTransport(const Config& config, const WorkerFactory& factory);
  ~ProcessTransport() override;
  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  std::size_t ranks() const override { return ranks_.size(); }
  std::span<const ShardBarrierView> advance(
      const BarrierRequest& request) override;
  double total_q() const override { return total_q_; }
  double total_q2() const override { return total_q2_; }
  bool wants_thresholds() const override { return true; }
  void broadcast_thresholds(std::span<const double> values) override;
  void finalize(bool flipped) override;
  DeviceTotals device_totals(std::uint32_t device) const override;
  bool metered() const override { return true; }
  RankStats rank_stats(std::size_t rank) const override;

 private:
  struct Rank {
    int fd = -1;
    long pid = -1;
    std::size_t shard_lo = 0;
    std::size_t shard_hi = 0;
    wire::RankBarrierData data;
    RankStats stats;
    std::uint64_t barriers_done = 0;
    double last_barrier_time = 0.0;
    /// Frame kind the coordinator is currently waiting on (0 = none); a
    /// crash diagnostic names it so a death during the finalize exchange is
    /// distinguishable from a mid-leg one.
    std::uint32_t pending = 0;
    bool reaped = false;
  };

  void send_frame(Rank& rank, std::uint32_t kind,
                  std::span<const std::uint8_t> payload);
  wire::DecodedFrame read_frame(Rank& rank, double barrier_time);
  [[noreturn]] void fail_rank(Rank& rank, double barrier_time,
                              const std::string& what);

  Config config_;
  std::vector<Rank> ranks_;
  std::vector<ShardBarrierView> views_;
  std::vector<DeviceTotals> totals_;
  double total_q_ = 0.0;
  double total_q2_ = 0.0;
  long timeout_ms_ = 300000;
};

}  // namespace mec::parallel

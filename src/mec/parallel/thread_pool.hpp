// Deterministic fork-join parallelism for the embarrassingly-parallel
// layers of the library: independent simulation replications and per-user
// sweeps (best responses, utilization maps).
//
// Design constraints, in order:
//   1. *Bit-identical results regardless of thread count.*  The pool never
//      reduces anything itself; callers write each index's result into its
//      own output slot and merge serially in index order afterwards.  The
//      chunk boundaries handed to workers are fixed ([k*grain, (k+1)*grain)
//      for chunk k) and independent of the thread count — only the
//      chunk->thread assignment is dynamic, and that assignment is
//      observationally irrelevant because no two indices share state.
//   2. Zero overhead in the serial case: a pool constructed with one thread
//      spawns no workers and runs everything inline in the caller.
//   3. The caller participates in the work, so a pool with T threads uses
//      T CPUs (T-1 workers + the caller), and `ThreadPool(1)` is exactly
//      the serial loop.
#pragma once

#include <cstddef>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace mec::parallel {

/// `requested` threads, except 0 selects the hardware concurrency (>= 1).
std::size_t resolve_thread_count(std::size_t requested) noexcept;

/// A fixed-size worker pool executing blocking parallel-for loops.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane);
  /// 0 selects the hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrent lanes (workers + the calling thread).
  std::size_t thread_count() const noexcept { return threads_; }

  /// Calls fn(i) for every i in [0, n) and blocks until all calls return.
  /// Indices are dispatched in fixed chunks of `grain`; fn must not touch
  /// state shared with other indices (write results to per-index slots).
  /// The first exception thrown by fn is rethrown here after the loop
  /// drains.  Not reentrant: fn must not call back into the same pool.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t grain = 1);

 private:
  struct Job;
  void worker_loop();
  static void drain(Job& job);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers on a new job
  std::condition_variable done_cv_;  ///< wakes the caller on completion
  Job* job_ = nullptr;               ///< current job; guarded by mutex_
  std::uint64_t generation_ = 0;     ///< guarded by mutex_
  bool stop_ = false;                ///< guarded by mutex_
};

}  // namespace mec::parallel

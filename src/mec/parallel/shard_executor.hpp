// Shard executor: partitions one simulation run's device population across
// K shards, each with its own future-event list and its slice of the
// per-device RNG streams, synchronized at the run's observation-grid
// barriers (see mec/sim/observer.hpp).
//
// Why this is exact (not just statistically equivalent): device dynamics
// are gamma-independent — an offload decision reads only the device's own
// queue, threshold, and RNG stream — so between barriers each shard can
// process its devices' events with no knowledge of the others.  Everything
// cross-cutting is either replayed serially in global time order (the
// EWMA/g(gamma) coupling, see sim/coupling.hpp), precomputed from the
// fault schedule (membership, see fault/fault_plan.hpp), or an
// order-invariant merge (integer counters, latency sketches).  The result
// is bit-identical for every shard count, including K = 1, which is the
// engine's only code path — there is no separate serial engine to drift
// from.
//
// Shard views of the fault schedule: a shard's event queue carries the
// outage toggles (they gate every device's offloads) plus the resolved,
// effective membership actions targeting its own device range.  Capacity
// scaling and ineffective actions never enter a shard — they are accounted
// centrally off the fault plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mec/fault/fault_plan.hpp"
#include "mec/sim/coupling.hpp"
#include "mec/sim/des.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::parallel {

/// Autotuning heuristic: the shard count for an `n_devices` run on
/// `hardware_threads` cores when nothing was requested.  Pure so the
/// heuristic table is unit-testable:
///   - K = 1 below the measured break-even population (~10^4 devices;
///     barrier overhead dominates the parallel win under it) or on a
///     single-core box;
///   - otherwise min(hardware_threads, n_devices / 5000) clamped to
///     [1, 16] — each shard keeps >= ~5000 devices so its event queue
///     amortizes the per-leg synchronization.
/// Sharding is bit-identical for every K, so the pick trades only
/// wall-clock, never results.
std::size_t auto_shard_count(std::size_t n_devices,
                             std::size_t hardware_threads) noexcept;

/// Largest shard count MEC_SHARDS may request.  Counter frames identify a
/// shard in a u16 with 0xFFFF reserved for global values, and no machine
/// this targets benefits past a few thousand shards.
inline constexpr std::size_t kMaxEnvShardCount = 4096;

/// Shard count for a run: an explicit request wins; 0 defers to the
/// MEC_SHARDS environment variable (so a whole test suite can be forced
/// onto a shard count without touching call sites); with neither set, the
/// auto_shard_count heuristic picks from the population size and
/// std::thread::hardware_concurrency().
///
/// MEC_SHARDS is validated eagerly: a non-numeric or out-of-range value
/// throws mec::RuntimeError naming the variable and the accepted range
/// [1, kMaxEnvShardCount] instead of being silently ignored.
std::size_t resolve_shard_count(std::size_t requested,
                                std::size_t n_devices);

/// Lower bound of shard `s` of `shards` over `n` devices (contiguous
/// partition; shard s owns [bound(s), bound(s+1))).
inline std::uint32_t shard_bound(std::uint32_t n, std::size_t shards,
                                 std::size_t s) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(n) * s /
                                    shards);
}

/// One shard's mutable run state: its event queue, offload log, partial
/// sketches, and integer counters.  Device states and RNG streams stay in
/// the workspace's global arrays (shards touch disjoint ranges; the
/// 128-byte aligned DeviceState rules out false sharing).  All floating
/// aggregates that are *not* integer-valued stay per-device or central —
/// only order-invariant quantities are summed across shards.
struct ShardContext {
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

  std::uint32_t lo = 0;  ///< first owned device
  std::uint32_t hi = 0;  ///< one past the last owned device
  sim::EventQueue queue;
  /// Offloads of the current leg, in time order (EWMA mode only; cleared
  /// after each barrier's replay so memory stays bounded by leg length).
  std::vector<sim::OffloadRecord> log;
  stats::LatencySketch local_sojourns;
  stats::LatencySketch offload_delays;  ///< fixed-gamma mode only
  std::uint64_t events = 0;  ///< task-event pops (fault pops count centrally)
  std::uint64_t offloads_in_window = 0;
  /// Measured offloads per edge cluster (sized by the engine when the run's
  /// topology has clusters; summed across shards at barriers — integer
  /// sums are order-invariant).  Invariant: sums to offloads_in_window.
  std::vector<std::uint64_t> cluster_offloads;
  std::uint64_t tasks_lost = 0;
  std::uint64_t offloads_rejected = 0;
  std::uint64_t offloads_penalized = 0;
  bool measuring = false;
  bool flipped = false;  ///< this shard's own pop opened the window
  // Outage runtime (every shard tracks the global outage toggles).
  bool outage = false;
  fault::OutageMode outage_mode = fault::OutageMode::kReject;
  double outage_penalty = 0.0;
  /// This shard's slice of the fault plan; kFault events carry an index
  /// into this vector.
  std::vector<fault::ResolvedAction> view;
  /// Live event chains for lazy cancellation, indexed by (device - lo).
  /// Sequence numbers are shard-queue-local; only equality with the
  /// remembered value matters, exactly as in the single-queue engine.
  std::vector<std::uint64_t> arrival_seq;
  std::vector<std::uint64_t> departure_seq;

  /// Rebinds the shard to a device range and resets all per-run state,
  /// keeping allocations (queues and logs reach a steady footprint across
  /// workspace-reused runs).
  void reset(std::uint32_t lo_device, std::uint32_t hi_device,
             bool measuring_from_start);
};

}  // namespace mec::parallel

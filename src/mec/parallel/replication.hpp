// Monte-Carlo replication engine: R independent MecSimulation runs, executed
// concurrently on a ThreadPool and aggregated per metric into mean / stddev /
// confidence intervals.
//
// Reproducibility contract: replication r runs with the deterministically
// derived seed
//
//     seed_r = base_seed + 0x9E3779B97F4A7C15 * (r + 1)
//
// (the splitmix64 golden-ratio increment, matching DesUtilizationSource's
// per-call decorrelation idiom), each replication writes its result into its
// own slot, and the slots are merged serially in replication order.  The
// aggregated output is therefore bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/stats/confidence.hpp"
#include "mec/stats/summary.hpp"

namespace mec::parallel {

/// Seed of replication `r` derived from `base_seed` (see file comment).
std::uint64_t replication_seed(std::uint64_t base_seed,
                               std::size_t replication) noexcept;

struct ReplicationOptions {
  std::size_t replications = 8;  ///< R >= 1 independent runs
  std::size_t threads = 0;       ///< 0 selects the hardware concurrency
  double confidence = 0.95;      ///< CI level, in (0, 1)
  bool keep_runs = false;        ///< retain every SimulationResult in `runs`
};

/// One scalar metric across replications: the replication-level samples plus
/// the two-sided Student-t/normal interval (half_width NaN at R=1 — a
/// single run carries no width information).
struct MetricSummary {
  stats::RunningSummary samples;
  stats::ConfidenceInterval ci{0.0, 0.0, 0.0};

  double mean() const { return samples.mean(); }
};

/// Aggregates of the population-level outputs of SimulationResult.
struct ReplicationResult {
  std::size_t replications = 0;
  MetricSummary mean_cost;
  MetricSummary mean_queue_length;
  MetricSummary mean_offload_fraction;
  MetricSummary measured_utilization;
  MetricSummary mean_local_sojourn;  ///< population mean of device sojourns
  MetricSummary mean_offload_delay;  ///< population mean of device delays
  std::uint64_t total_events = 0;    ///< summed across replications
  /// Degraded-mode accounting when the base options carried a FaultSchedule
  /// (all nominal otherwise).  Every replication replays the *same*
  /// environment trajectory, so the structural counters and capacity
  /// figures are copied from replication 0; the simulation-noise counters
  /// (tasks_lost, offloads_rejected/penalized) are summed across
  /// replications.
  sim::FaultStats faults;
  /// Per-replication results, in replication order; empty unless
  /// ReplicationOptions::keep_runs was set.
  std::vector<sim::SimulationResult> runs;
};

/// Runs R independent TRO simulations of the same population/thresholds with
/// decorrelated seeds (see replication_seed) across `options.threads` lanes
/// of `pool` (or an internal pool when null) and merges the results.
/// Requires R >= 1, matching sizes, and base_options without an epoch
/// callback (callbacks would be invoked concurrently across replications).
ReplicationResult run_replications(std::span<const core::UserParams> users,
                                   double capacity,
                                   const core::EdgeDelay& delay,
                                   const sim::SimulationOptions& base_options,
                                   std::span<const double> thresholds,
                                   const ReplicationOptions& options,
                                   ThreadPool* pool = nullptr);

/// Validates a replication configuration: the thresholds span must cover the
/// population (plus churn joiners when the options carry a FaultSchedule)
/// and base_options must not install an epoch callback.  Shared by
/// run_replications and the sequential engine.
void check_replication_config(std::span<const core::UserParams> users,
                              const sim::SimulationOptions& base_options,
                              std::span<const double> thresholds);

/// Runs replications [first, last) — replication r seeded with
/// replication_seed(base_options.seed, r), independent of first/last —
/// across `pool`, writing each result into results[r].
/// Requires first <= last <= results.size().
void run_replication_range(std::span<const core::UserParams> users,
                           double capacity, const core::EdgeDelay& delay,
                           const sim::SimulationOptions& base_options,
                           std::span<const double> thresholds,
                           std::size_t first, std::size_t last,
                           std::span<sim::SimulationResult> results,
                           ThreadPool& pool);

/// Serial in-replication-order merge of per-replication results into the
/// aggregate (the second half of run_replications).  Because the merge only
/// sees the results array, the aggregate over results[0..R) is bit-identical
/// whether the runs were produced in one batch or grown wave by wave, on any
/// thread count.  Requires a non-empty span.
ReplicationResult aggregate_replications(
    std::span<const sim::SimulationResult> results, double confidence);

/// Multi-line human-readable mean +/- half-width table of the aggregates.
std::string summarize(const ReplicationResult& result);

}  // namespace mec::parallel

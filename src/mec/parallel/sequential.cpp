#include "mec/parallel/sequential.hpp"

#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "mec/common/error.hpp"
#include "mec/sim/metrics.hpp"

namespace mec::parallel {

const char* to_string(Metric metric) noexcept {
  switch (metric) {
    case Metric::kMeanCost: return "mean-cost";
    case Metric::kMeanQueueLength: return "queue-length";
    case Metric::kMeanOffloadFraction: return "offload-fraction";
    case Metric::kMeasuredUtilization: return "utilization";
    case Metric::kMeanLocalSojourn: return "local-sojourn";
    case Metric::kMeanOffloadDelay: return "offload-delay";
  }
  return "unknown";
}

Metric parse_metric(const std::string& name) {
  for (const Metric m :
       {Metric::kMeanCost, Metric::kMeanQueueLength,
        Metric::kMeanOffloadFraction, Metric::kMeasuredUtilization,
        Metric::kMeanLocalSojourn, Metric::kMeanOffloadDelay}) {
    if (name == to_string(m)) return m;
  }
  throw RuntimeError(
      "unknown metric '" + name +
      "' (mean-cost|queue-length|offload-fraction|utilization|"
      "local-sojourn|offload-delay)");
}

double metric_value(const sim::SimulationResult& result, Metric metric) {
  switch (metric) {
    case Metric::kMeanCost: return result.mean_cost;
    case Metric::kMeanQueueLength: return result.mean_queue_length;
    case Metric::kMeanOffloadFraction: return result.mean_offload_fraction;
    case Metric::kMeasuredUtilization: return result.measured_utilization;
    case Metric::kMeanLocalSojourn:
      return result.device_mean(
          [](const sim::DeviceStats& d) { return d.mean_local_sojourn; });
    case Metric::kMeanOffloadDelay:
      return result.device_mean(
          [](const sim::DeviceStats& d) { return d.mean_offload_delay; });
  }
  MEC_EXPECTS_MSG(false, "unreachable metric selector");
  return 0.0;
}

const MetricSummary& select_metric(const ReplicationResult& result,
                                   Metric metric) noexcept {
  switch (metric) {
    case Metric::kMeanCost: return result.mean_cost;
    case Metric::kMeanQueueLength: return result.mean_queue_length;
    case Metric::kMeanOffloadFraction: return result.mean_offload_fraction;
    case Metric::kMeasuredUtilization: return result.measured_utilization;
    case Metric::kMeanLocalSojourn: return result.mean_local_sojourn;
    case Metric::kMeanOffloadDelay: return result.mean_offload_delay;
  }
  return result.mean_cost;  // unreachable
}

namespace {

/// True once every enabled width target is satisfied at this look.
bool target_met(const SequentialOptions& options, double mean,
                double half_width) {
  bool met = true;
  if (options.target_half_width > 0.0)
    met = met && half_width <= options.target_half_width;
  if (options.target_relative > 0.0)
    met = met && half_width <= options.target_relative * std::fabs(mean);
  return met;
}

}  // namespace

SequentialResult run_until_confident(std::span<const core::UserParams> users,
                                     double capacity,
                                     const core::EdgeDelay& delay,
                                     const sim::SimulationOptions& base_options,
                                     std::span<const double> thresholds,
                                     const SequentialOptions& options,
                                     ThreadPool* pool) {
  MEC_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MEC_EXPECTS(options.target_half_width >= 0.0);
  MEC_EXPECTS(options.target_relative >= 0.0);
  MEC_EXPECTS_MSG(
      options.target_half_width > 0.0 || options.target_relative > 0.0,
      "run_until_confident needs a target: an absolute or relative CI "
      "half-width");
  MEC_EXPECTS(options.min_replications >= 2);
  MEC_EXPECTS(options.max_replications >= options.min_replications);
  MEC_EXPECTS(options.wave >= 1);
  check_replication_config(users, base_options, thresholds);

  std::optional<ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(options.threads);
    pool = &*own_pool;
  }

  SequentialResult out;
  std::vector<sim::SimulationResult> results;
  results.reserve(options.max_replications);
  std::size_t r_done = 0;
  for (;;) {
    // First wave runs to the minimum; later waves add `wave`, clipped to
    // the budget cap.
    const std::size_t r_next =
        r_done == 0 ? options.min_replications
                    : std::min(options.max_replications, r_done + options.wave);
    results.resize(r_next);
    run_replication_range(users, capacity, delay, base_options, thresholds,
                          r_done, r_next, results, *pool);
    r_done = r_next;
    ++out.waves;

    out.aggregate = aggregate_replications(results, options.confidence);
    const MetricSummary& m = select_metric(out.aggregate, options.metric);
    out.looks.push_back(
        SequentialLook{r_done, m.ci.mean, m.ci.half_width});
    if (target_met(options, m.ci.mean, m.ci.half_width)) {
      out.target_met = true;
      break;
    }
    if (r_done >= options.max_replications) break;
  }
  out.replications = r_done;
  if (options.keep_runs) out.aggregate.runs = std::move(results);
  return out;
}

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kFirstLower: return "first-lower";
    case Verdict::kSecondLower: return "second-lower";
    case Verdict::kUndecided: return "undecided";
  }
  return "unknown";
}

CompareResult compare_sequential(const PairedEvaluator& evaluate,
                                 const CompareOptions& options,
                                 ThreadPool* pool) {
  MEC_EXPECTS(static_cast<bool>(evaluate));
  MEC_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MEC_EXPECTS(options.min_replications >= 2);
  MEC_EXPECTS(options.max_replications >= options.min_replications);
  MEC_EXPECTS(options.wave >= 1);

  std::optional<ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(options.threads);
    pool = &*own_pool;
  }

  CompareResult out;
  out.samples_a.reserve(options.max_replications);
  out.samples_b.reserve(options.max_replications);
  std::size_t r_done = 0;
  for (;;) {
    const std::size_t r_next =
        r_done == 0 ? options.min_replications
                    : std::min(options.max_replications, r_done + options.wave);
    out.samples_a.resize(r_next);
    out.samples_b.resize(r_next);
    pool->parallel_for_each(r_next - r_done, [&](std::size_t i) {
      const std::size_t r = r_done + i;
      const PairedSample s =
          evaluate(r, replication_seed(options.base_seed, r));
      out.samples_a[r] = s.a;
      out.samples_b[r] = s.b;
    });
    r_done = r_next;
    ++out.looks;

    // Paired differences merged serially in replication order: the interval
    // is bit-identical for any thread count and any wave partition.
    stats::RunningSummary diff;
    for (std::size_t r = 0; r < r_done; ++r)
      diff.add(out.samples_a[r] - out.samples_b[r]);
    const double q = stats::spending_adjusted_quantile(
        options.confidence, out.looks, r_done - 1);
    out.difference = stats::ConfidenceInterval{
        diff.mean(), q * diff.standard_error(), options.confidence};
    if (out.difference.upper() < 0.0) {
      out.verdict = Verdict::kFirstLower;
      break;
    }
    if (out.difference.lower() > 0.0) {
      out.verdict = Verdict::kSecondLower;
      break;
    }
    if (r_done >= options.max_replications) break;
  }
  out.replications = r_done;
  stats::RunningSummary a, b;
  for (std::size_t r = 0; r < r_done; ++r) {
    a.add(out.samples_a[r]);
    b.add(out.samples_b[r]);
  }
  out.mean_a = a.mean();
  out.mean_b = b.mean();
  return out;
}

std::string summarize(const SequentialResult& result, Metric metric) {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "sequential %s: %zu replications in %zu wave%s, target %s\n",
                to_string(metric), result.replications, result.waves,
                result.waves == 1 ? "" : "s",
                result.target_met ? "met" : "NOT met (budget exhausted)");
  std::string out = buf;
  for (const SequentialLook& look : result.looks) {
    std::snprintf(buf, sizeof buf, "  look R=%-5zu mean=%.6f +/- %.6f\n",
                  look.replications, look.mean, look.half_width);
    out += buf;
  }
  return out;
}

}  // namespace mec::parallel

#include "mec/parallel/replication.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <utility>

#include "mec/common/error.hpp"
#include "mec/sim/metrics.hpp"

namespace mec::parallel {

std::uint64_t replication_seed(std::uint64_t base_seed,
                               std::size_t replication) noexcept {
  return base_seed +
         0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(replication) + 1);
}

namespace {

void finalize(MetricSummary& metric, double confidence) {
  if (metric.samples.count() >= 2) {
    metric.ci = stats::mean_confidence_interval(metric.samples, confidence);
  } else {
    // A single replication carries no width information: NaN (printed as
    // n/a), never 0 — a degenerate run must not masquerade as a perfectly
    // certain one.
    metric.ci = stats::ConfidenceInterval{
        metric.samples.mean(), std::numeric_limits<double>::quiet_NaN(),
        confidence};
  }
}

}  // namespace

void check_replication_config(std::span<const core::UserParams> users,
                              const sim::SimulationOptions& base_options,
                              std::span<const double> thresholds) {
  // With churn in the fault schedule, the thresholds span must also cover
  // the joining devices (appended after the initial population).
  std::size_t expected_thresholds = users.size();
  if (base_options.faults) expected_thresholds +=
      base_options.faults->churn_arrivals();
  MEC_EXPECTS(expected_thresholds == thresholds.size());
  MEC_EXPECTS_MSG(base_options.epoch_period == 0.0,
                  "replication engines cannot share an on_epoch callback "
                  "across concurrent replications");
}

void run_replication_range(std::span<const core::UserParams> users,
                           double capacity, const core::EdgeDelay& delay,
                           const sim::SimulationOptions& base_options,
                           std::span<const double> thresholds,
                           std::size_t first, std::size_t last,
                           std::span<sim::SimulationResult> results,
                           ThreadPool& pool) {
  MEC_EXPECTS(first <= last && last <= results.size());
  pool.parallel_for_each(last - first, [&](std::size_t i) {
    const std::size_t r = first + i;
    // One workspace per worker thread, reused across replications (and
    // across calls on the same pool): successive same-shape runs are then
    // allocation-free.  Reuse cannot change results — the workspace is
    // fully reset at run start (verified by the equivalence tests).
    thread_local sim::SimWorkspace workspace;
    sim::SimulationOptions run_options = base_options;
    run_options.seed = replication_seed(base_options.seed, r);
    // Concurrent replications must not race on one stream-log path; a
    // caller who wants telemetry streams a single representative run.
    run_options.stream_log.clear();
    const sim::MecSimulation simulation(users, capacity, delay,
                                        std::move(run_options));
    results[r] = simulation.run_tro(thresholds, workspace);
  });
}

ReplicationResult aggregate_replications(
    std::span<const sim::SimulationResult> results, double confidence) {
  MEC_EXPECTS(!results.empty());
  MEC_EXPECTS(confidence > 0.0 && confidence < 1.0);
  // Serial merge in replication order keeps the aggregates independent of
  // the thread count (and of the pool's dynamic chunk assignment).
  ReplicationResult out;
  out.replications = results.size();
  out.faults = results.front().faults;  // same trajectory every replication
  out.faults.tasks_lost = 0;
  out.faults.offloads_rejected = 0;
  out.faults.offloads_penalized = 0;
  for (const sim::SimulationResult& r : results) {
    out.faults.tasks_lost += r.faults.tasks_lost;
    out.faults.offloads_rejected += r.faults.offloads_rejected;
    out.faults.offloads_penalized += r.faults.offloads_penalized;
    out.mean_cost.samples.add(r.mean_cost);
    out.mean_queue_length.samples.add(r.mean_queue_length);
    out.mean_offload_fraction.samples.add(r.mean_offload_fraction);
    out.measured_utilization.samples.add(r.measured_utilization);
    out.mean_local_sojourn.samples.add(r.device_mean(
        [](const sim::DeviceStats& d) { return d.mean_local_sojourn; }));
    out.mean_offload_delay.samples.add(r.device_mean(
        [](const sim::DeviceStats& d) { return d.mean_offload_delay; }));
    out.total_events += r.total_events;
  }
  finalize(out.mean_cost, confidence);
  finalize(out.mean_queue_length, confidence);
  finalize(out.mean_offload_fraction, confidence);
  finalize(out.measured_utilization, confidence);
  finalize(out.mean_local_sojourn, confidence);
  finalize(out.mean_offload_delay, confidence);
  return out;
}

ReplicationResult run_replications(std::span<const core::UserParams> users,
                                   double capacity,
                                   const core::EdgeDelay& delay,
                                   const sim::SimulationOptions& base_options,
                                   std::span<const double> thresholds,
                                   const ReplicationOptions& options,
                                   ThreadPool* pool) {
  MEC_EXPECTS(options.replications >= 1);
  MEC_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  check_replication_config(users, base_options, thresholds);

  const std::size_t r_total = options.replications;
  std::vector<sim::SimulationResult> results(r_total);

  std::optional<ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(options.threads);
    pool = &*own_pool;
  }
  run_replication_range(users, capacity, delay, base_options, thresholds, 0,
                        r_total, results, *pool);

  ReplicationResult out = aggregate_replications(results, options.confidence);
  if (options.keep_runs) out.runs = std::move(results);
  return out;
}

std::string summarize(const ReplicationResult& result) {
  const auto line = [](const char* name, const MetricSummary& m) {
    char buf[160];
    if (std::isnan(m.ci.half_width))
      std::snprintf(buf, sizeof buf,
                    "  %-24s %10.6f +/- n/a  (%.0f%% CI, R=1)\n", name,
                    m.ci.mean, m.ci.confidence * 100.0);
    else
      std::snprintf(buf, sizeof buf, "  %-24s %10.6f +/- %.6f  (%.0f%% CI)\n",
                    name, m.ci.mean, m.ci.half_width,
                    m.ci.confidence * 100.0);
    return std::string(buf);
  };
  std::string out = "replications: " + std::to_string(result.replications) +
                    "  (" + std::to_string(result.total_events) +
                    " events total)\n";
  out += line("mean cost", result.mean_cost);
  out += line("mean queue length", result.mean_queue_length);
  out += line("mean offload fraction", result.mean_offload_fraction);
  out += line("measured utilization", result.measured_utilization);
  out += line("mean local sojourn", result.mean_local_sojourn);
  out += line("mean offload delay", result.mean_offload_delay);
  if (result.faults.any()) {
    char buf[240];
    std::snprintf(buf, sizeof buf,
                  "  faults: capacity min/mean %.3f/%.3f, degraded %.1fs, "
                  "crashes=%llu joined=%llu departed=%llu, across all "
                  "replications: tasks_lost=%llu rejected=%llu "
                  "penalized=%llu\n",
                  result.faults.min_capacity_scale,
                  result.faults.mean_capacity_scale,
                  result.faults.degraded_time,
                  static_cast<unsigned long long>(result.faults.crashes),
                  static_cast<unsigned long long>(result.faults.churn_joined),
                  static_cast<unsigned long long>(result.faults.churn_departed),
                  static_cast<unsigned long long>(result.faults.tasks_lost),
                  static_cast<unsigned long long>(
                      result.faults.offloads_rejected),
                  static_cast<unsigned long long>(
                      result.faults.offloads_penalized));
    out += buf;
  }
  return out;
}

}  // namespace mec::parallel

#include "mec/parallel/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mec/common/error.hpp"
#include "mec/obs/run_log.hpp"
#include "mec/obs/wire.hpp"
#include "mec/parallel/shard_executor.hpp"

namespace mec::parallel {

namespace wire {

using obs::wire::ByteReader;
using obs::wire::ByteWriter;

// The wire layout below spells out every field explicitly; these asserts
// pin the in-memory layouts the format mirrors, so a field added to either
// struct breaks the build here instead of silently skewing the protocol.
static_assert(sizeof(sim::OffloadRecord) == 32 &&
                  offsetof(sim::OffloadRecord, time) == 0 &&
                  offsetof(sim::OffloadRecord, latency) == 8 &&
                  offsetof(sim::OffloadRecord, penalty) == 16 &&
                  offsetof(sim::OffloadRecord, device) == 24 &&
                  offsetof(sim::OffloadRecord, cluster) == 28 &&
                  offsetof(sim::OffloadRecord, measured) == 30 &&
                  offsetof(sim::OffloadRecord, penalized) == 31,
              "OffloadRecord layout drifted; update the wire codec and "
              "kOffloadRecordWireSize together");
static_assert(kOffloadRecordWireSize == 32);
static_assert(sizeof(DeviceTotals) == 56 &&
                  offsetof(DeviceTotals, arrivals) == 0 &&
                  offsetof(DeviceTotals, offloaded) == 8 &&
                  offsetof(DeviceTotals, local_completed) == 16 &&
                  offsetof(DeviceTotals, queue_integral) == 24 &&
                  offsetof(DeviceTotals, local_sojourn_sum) == 32 &&
                  offsetof(DeviceTotals, offload_delay_sum) == 40 &&
                  offsetof(DeviceTotals, energy_sum) == 48,
              "DeviceTotals layout drifted; update the wire codec and "
              "kDeviceTotalsWireSize together");
static_assert(kDeviceTotalsWireSize == 56);

std::string frame_kind_name(std::uint32_t kind) {
  const char* name = "unknown";
  switch (kind) {
    case kFrameAdvance:
      name = "advance request";
      break;
    case kFrameThresholds:
      name = "threshold broadcast";
      break;
    case kFrameFinalize:
      name = "finalize request";
      break;
    case kFrameHello:
      name = "hello";
      break;
    case kFramePopulation:
      name = "population";
      break;
    case kFrameBarrier:
      name = "barrier payload";
      break;
    case kFrameFinal:
      name = "final device totals";
      break;
    case kFrameHelloAck:
      name = "hello ack";
      break;
    case kFrameReady:
      name = "population ready";
      break;
    case kFrameError:
      name = "worker error";
      break;
    default:
      break;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s (kind 0x%02X)", name, kind);
  return buf;
}

std::vector<std::uint8_t> encode_frame(
    std::uint32_t kind, std::span<const std::uint8_t> payload) {
  MEC_EXPECTS_MSG(payload.size() <= kMaxTransportPayload,
                  "transport frame payload exceeds the size cap");
  ByteWriter w(kFrameOverhead + payload.size());
  w.put_u32(kind);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_bytes(payload.data(), payload.size());
  w.put_u32(obs::crc32(payload));
  return w.take();
}

DecodedFrame decode_frame(std::span<const std::uint8_t> bytes,
                          std::size_t* consumed) {
  ByteReader r(bytes);
  if (bytes.size() < kFrameOverhead)
    throw RuntimeError("transport frame truncated");
  DecodedFrame frame;
  frame.kind = r.get_u32();
  const std::uint32_t len = r.get_u32();
  if (len > kMaxTransportPayload)
    throw RuntimeError("transport frame length exceeds the size cap");
  if (bytes.size() < kFrameOverhead + len)
    throw RuntimeError("transport frame truncated");
  frame.payload.assign(bytes.begin() + 8, bytes.begin() + 8 + len);
  ByteReader tail(bytes.subspan(8 + len, 4));
  if (tail.get_u32() != obs::crc32(frame.payload))
    throw RuntimeError("transport frame CRC mismatch");
  if (consumed != nullptr) *consumed = kFrameOverhead + len;
  return frame;
}

std::vector<std::uint8_t> encode_barrier_request(const BarrierRequest& req) {
  ByteWriter w(13);
  w.put_f64(req.limit);
  w.put_u8(req.inclusive ? 1 : 0);
  w.put_u8(req.want_q ? 1 : 0);
  w.put_u8(req.want_q2 ? 1 : 0);
  w.put_u8(req.want_sketches ? 1 : 0);
  w.put_u8(req.want_queue_stats ? 1 : 0);
  return w.take();
}

BarrierRequest decode_barrier_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  BarrierRequest req;
  req.limit = r.get_f64();
  req.inclusive = r.get_u8() != 0;
  req.want_q = r.get_u8() != 0;
  req.want_q2 = r.get_u8() != 0;
  req.want_sketches = r.get_u8() != 0;
  req.want_queue_stats = r.get_u8() != 0;
  return req;
}

namespace {

void encode_sketch(ByteWriter& w, const stats::LatencySketch& sketch) {
  w.put_u64(sketch.count());
  if (sketch.count() == 0) return;
  w.put_f64(sketch.min());
  w.put_f64(sketch.max());
  const auto bins = sketch.bin_counts();
  w.put_u32(static_cast<std::uint32_t>(bins.size()));
  for (const std::uint64_t b : bins) w.put_u64(b);
}

stats::LatencySketch decode_sketch(ByteReader& r,
                                   std::vector<std::uint64_t>& bin_scratch) {
  const std::uint64_t count = r.get_u64();
  if (count == 0) return stats::LatencySketch{};
  const double min = r.get_f64();
  const double max = r.get_f64();
  const std::uint32_t n_bins = r.get_u32();
  if (n_bins != stats::LatencySketch::bin_count())
    throw RuntimeError("transport sketch bin count mismatch");
  bin_scratch.resize(n_bins);
  for (std::uint32_t i = 0; i < n_bins; ++i) bin_scratch[i] = r.get_u64();
  return stats::LatencySketch::restore(count, min, max, bin_scratch);
}

}  // namespace

std::vector<std::uint8_t> encode_barrier_payload(
    std::span<const ShardBarrierView> views, bool has_q, double total_q,
    double total_q2) {
  std::size_t reserve = 16;
  for (const ShardBarrierView& v : views)
    reserve += 128 + v.log.size() * kOffloadRecordWireSize +
               v.cluster_offloads.size() * 8;
  ByteWriter w(reserve);
  w.put_u32(static_cast<std::uint32_t>(views.size()));
  for (const ShardBarrierView& v : views) {
    w.put_u32(v.shard);
    w.put_u64(v.events);
    w.put_u64(v.offloads_in_window);
    w.put_u64(v.tasks_lost);
    w.put_u64(v.offloads_rejected);
    w.put_u64(v.offloads_penalized);
    w.put_u32(static_cast<std::uint32_t>(v.cluster_offloads.size()));
    for (const std::uint64_t c : v.cluster_offloads) w.put_u64(c);
    w.put_u8(v.flipped ? 1 : 0);
    w.put_u32(static_cast<std::uint32_t>(v.log.size()));
    for (const sim::OffloadRecord& rec : v.log) {
      w.put_f64(rec.time);
      w.put_f64(rec.latency);
      w.put_f64(rec.penalty);
      w.put_u32(rec.device);
      w.put_u16(rec.cluster);
      w.put_u8(rec.measured ? 1 : 0);
      w.put_u8(rec.penalized ? 1 : 0);
    }
    const bool has_sketches = v.local_sojourns != nullptr;
    w.put_u8(has_sketches ? 1 : 0);
    if (has_sketches) {
      encode_sketch(w, *v.local_sojourns);
      encode_sketch(w, *v.offload_delays);
    }
    w.put_u8(v.has_queue_stats ? 1 : 0);
    if (v.has_queue_stats) {
      w.put_f64(v.queue_depth);
      w.put_f64(v.calendar_gear);
      w.put_f64(v.gear_switches);
      w.put_f64(v.calendar_retunes);
      w.put_f64(v.leg_seconds);
    }
  }
  w.put_u8(has_q ? 1 : 0);
  if (has_q) {
    w.put_f64(total_q);
    w.put_f64(total_q2);
  }
  return w.take();
}

RankBarrierData decode_barrier_payload(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  RankBarrierData data;
  std::vector<std::uint64_t> bin_scratch;
  const std::uint32_t n_shards = r.get_u32();
  data.shards.resize(n_shards);
  for (RankBarrierData::Shard& s : data.shards) {
    s.shard = r.get_u32();
    s.events = r.get_u64();
    s.offloads_in_window = r.get_u64();
    s.tasks_lost = r.get_u64();
    s.offloads_rejected = r.get_u64();
    s.offloads_penalized = r.get_u64();
    const std::uint32_t n_clusters = r.get_u32();
    s.cluster_offloads.resize(n_clusters);
    for (std::uint32_t k = 0; k < n_clusters; ++k)
      s.cluster_offloads[k] = r.get_u64();
    s.flipped = r.get_u8() != 0;
    const std::uint32_t n_log = r.get_u32();
    s.log.resize(n_log);
    for (sim::OffloadRecord& rec : s.log) {
      rec.time = r.get_f64();
      rec.latency = r.get_f64();
      rec.penalty = r.get_f64();
      rec.device = r.get_u32();
      rec.cluster = r.get_u16();
      rec.measured = r.get_u8() != 0;
      rec.penalized = r.get_u8() != 0;
    }
    s.has_sketches = r.get_u8() != 0;
    if (s.has_sketches) {
      s.local_sojourns = decode_sketch(r, bin_scratch);
      s.offload_delays = decode_sketch(r, bin_scratch);
    }
    s.has_queue_stats = r.get_u8() != 0;
    if (s.has_queue_stats) {
      s.queue_depth = r.get_f64();
      s.calendar_gear = r.get_f64();
      s.gear_switches = r.get_f64();
      s.calendar_retunes = r.get_f64();
      s.leg_seconds = r.get_f64();
    }
  }
  data.has_q = r.get_u8() != 0;
  if (data.has_q) {
    data.total_q = r.get_f64();
    data.total_q2 = r.get_f64();
  }
  if (!r.exhausted())
    throw RuntimeError("transport barrier payload has trailing bytes");
  return data;
}

std::vector<ShardBarrierView> RankBarrierData::views() const {
  std::vector<ShardBarrierView> out;
  out.reserve(shards.size());
  for (const Shard& s : shards) {
    ShardBarrierView v;
    v.shard = s.shard;
    v.log = s.log;
    v.events = s.events;
    v.offloads_in_window = s.offloads_in_window;
    v.tasks_lost = s.tasks_lost;
    v.offloads_rejected = s.offloads_rejected;
    v.offloads_penalized = s.offloads_penalized;
    v.cluster_offloads = s.cluster_offloads;
    v.flipped = s.flipped;
    if (s.has_sketches) {
      v.local_sojourns = &s.local_sojourns;
      v.offload_delays = &s.offload_delays;
    }
    if (s.has_queue_stats) {
      v.has_queue_stats = true;
      v.queue_depth = s.queue_depth;
      v.calendar_gear = s.calendar_gear;
      v.gear_switches = s.gear_switches;
      v.calendar_retunes = s.calendar_retunes;
      v.leg_seconds = s.leg_seconds;
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::uint8_t> encode_thresholds(std::span<const double> values) {
  ByteWriter w(4 + values.size() * 8);
  w.put_u32(static_cast<std::uint32_t>(values.size()));
  for (const double v : values) w.put_f64(v);
  return w.take();
}

std::vector<double> decode_thresholds(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t count = r.get_u32();
  std::vector<double> values(count);
  for (std::uint32_t i = 0; i < count; ++i) values[i] = r.get_f64();
  return values;
}

std::vector<std::uint8_t> encode_device_totals(
    std::uint32_t device_lo, std::uint32_t device_hi,
    std::span<const DeviceTotals> totals) {
  MEC_EXPECTS(device_hi - device_lo == totals.size());
  ByteWriter w(8 + totals.size() * kDeviceTotalsWireSize);
  w.put_u32(device_lo);
  w.put_u32(device_hi);
  for (const DeviceTotals& t : totals) {
    w.put_u64(t.arrivals);
    w.put_u64(t.offloaded);
    w.put_u64(t.local_completed);
    w.put_f64(t.queue_integral);
    w.put_f64(t.local_sojourn_sum);
    w.put_f64(t.offload_delay_sum);
    w.put_f64(t.energy_sum);
  }
  return w.take();
}

FinalTotals decode_device_totals(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  FinalTotals out;
  out.device_lo = r.get_u32();
  out.device_hi = r.get_u32();
  if (out.device_hi < out.device_lo)
    throw RuntimeError("transport final-totals device range is inverted");
  out.totals.resize(out.device_hi - out.device_lo);
  for (DeviceTotals& t : out.totals) {
    t.arrivals = r.get_u64();
    t.offloaded = r.get_u64();
    t.local_completed = r.get_u64();
    t.queue_integral = r.get_f64();
    t.local_sojourn_sum = r.get_f64();
    t.offload_delay_sum = r.get_f64();
    t.energy_sum = r.get_f64();
  }
  if (!r.exhausted())
    throw RuntimeError("transport final-totals payload has trailing bytes");
  return out;
}

}  // namespace wire

// --- fd plumbing -----------------------------------------------------------

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("transport write failed: ") +
                         std::strerror(errno));
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

/// Blocking read of exactly `n` bytes; false on clean EOF at a boundary.
bool read_all(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("transport read failed: ") +
                         std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;
      throw RuntimeError("transport peer closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::uint32_t load_le_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Reads one complete frame, blocking without timeout (worker side).
/// Returns false on clean EOF before a frame starts.
bool read_frame_blocking(int fd, wire::DecodedFrame& out) {
  std::uint8_t header[8];
  if (!read_all(fd, header, sizeof header)) return false;
  out.kind = load_le_u32(header);
  const std::uint32_t len = load_le_u32(header + 4);
  if (len > wire::kMaxTransportPayload)
    throw RuntimeError("transport frame length exceeds the size cap");
  out.payload.resize(len);
  if (len > 0 && !read_all(fd, out.payload.data(), len))
    throw RuntimeError("transport peer closed mid-frame");
  std::uint8_t crc_bytes[4];
  if (!read_all(fd, crc_bytes, sizeof crc_bytes))
    throw RuntimeError("transport peer closed mid-frame");
  if (load_le_u32(crc_bytes) != obs::crc32(out.payload))
    throw RuntimeError("transport frame CRC mismatch");
  return true;
}

long env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return parsed;
}

}  // namespace

long resolve_transport_timeout_ms(long fallback_ms) {
  const char* env = std::getenv("MEC_TRANSPORT_TIMEOUT_MS");
  if (env == nullptr || *env == '\0') return fallback_ms;
  // Same eager-validation contract as MEC_SHARDS (resolve_shard_count): a
  // malformed or out-of-range deadline is a run-killing misconfiguration,
  // not something to paper over with the default.
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(env, &end, 10);
  const bool clean = std::isdigit(static_cast<unsigned char>(*env)) &&
                     end != env && *end == '\0' && errno == 0;
  if (!clean || parsed < 1 || parsed > kMaxTransportTimeoutMs)
    throw RuntimeError("MEC_TRANSPORT_TIMEOUT_MS=\"" + std::string(env) +
                       "\" is not a valid read deadline (expected an integer "
                       "number of milliseconds in [1, " +
                       std::to_string(kMaxTransportTimeoutMs) + "])");
  return parsed;
}

namespace wire {

void write_frame(int fd, std::uint32_t kind,
                 std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = encode_frame(kind, payload);
  write_all(fd, frame.data(), frame.size());
}

DecodedFrame read_frame_deadline(int fd, long timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::uint8_t header[8];
  std::size_t have = 0;
  std::vector<std::uint8_t> body;  // payload + crc once the header is in
  std::size_t body_have = 0;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
      throw PeerError(PeerError::Kind::kTimeout,
                      "transport read deadline expired after " +
                          std::to_string(timeout_ms) + " ms");
    struct pollfd pfd{fd, POLLIN, 0};
    const long wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadline - now)
                             .count();
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait_ms) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("transport poll failed: ") +
                         std::strerror(errno));
    }
    if (ready == 0) continue;  // deadline check at loop head
    if (have < sizeof header) {
      const ssize_t r = ::read(fd, header + have, sizeof header - have);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw RuntimeError(std::string("transport read failed: ") +
                           std::strerror(errno));
      }
      if (r == 0)
        throw PeerError(PeerError::Kind::kClosed,
                        "transport peer closed the channel");
      have += static_cast<std::size_t>(r);
      if (have == sizeof header) {
        const std::uint32_t len = load_le_u32(header + 4);
        if (len > kMaxTransportPayload)
          throw RuntimeError("transport frame length exceeds the size cap");
        body.resize(static_cast<std::size_t>(len) + 4);
      }
      continue;
    }
    const ssize_t r =
        ::read(fd, body.data() + body_have, body.size() - body_have);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("transport read failed: ") +
                         std::strerror(errno));
    }
    if (r == 0)
      throw PeerError(PeerError::Kind::kClosed,
                      "transport peer closed the channel");
    body_have += static_cast<std::size_t>(r);
    if (body_have == body.size()) break;
  }
  DecodedFrame frame;
  frame.kind = load_le_u32(header);
  frame.payload.assign(body.begin(), body.end() - 4);
  if (load_le_u32(body.data() + body.size() - 4) != obs::crc32(frame.payload))
    throw RuntimeError("transport frame CRC mismatch");
  return frame;
}

}  // namespace wire

// --- worker loop -----------------------------------------------------------

void serve_worker(RankWorker& worker, std::size_t rank, int fd) {
  // Robustness-test hooks: crash (hard _exit) or stall (stop heartbeating)
  // at the given barrier number, on the given rank only.
  const long crash_rank = env_long("MEC_TEST_WORKER_CRASH_RANK", -1);
  const long crash_barrier = env_long("MEC_TEST_WORKER_CRASH_BARRIER", 1);
  const long stall_rank = env_long("MEC_TEST_WORKER_STALL_RANK", -1);
  const long stall_barrier = env_long("MEC_TEST_WORKER_STALL_BARRIER", 1);
  long barriers = 0;

  const auto reply = [fd](std::uint32_t kind,
                          std::span<const std::uint8_t> payload) {
    const std::vector<std::uint8_t> frame = wire::encode_frame(kind, payload);
    write_all(fd, frame.data(), frame.size());
  };

  for (;;) {
    wire::DecodedFrame frame;
    if (!read_frame_blocking(fd, frame))
      throw RuntimeError("transport coordinator closed the channel");
    switch (frame.kind) {
      case wire::kFrameAdvance: {
        const BarrierRequest req = wire::decode_barrier_request(frame.payload);
        worker.advance(req);
        ++barriers;
        if (static_cast<long>(rank) == crash_rank && barriers == crash_barrier)
          ::_exit(17);
        if (static_cast<long>(rank) == stall_rank && barriers == stall_barrier)
          for (;;) ::pause();
        reply(wire::kFrameBarrier,
              wire::encode_barrier_payload(worker.views(), req.want_q,
                                           worker.total_q(),
                                           worker.total_q2()));
        break;
      }
      case wire::kFrameThresholds:
        worker.set_thresholds(wire::decode_thresholds(frame.payload));
        break;
      case wire::kFrameFinalize: {
        obs::wire::ByteReader r(frame.payload);
        worker.finalize(r.get_u8() != 0);
        const std::uint32_t lo = worker.device_lo();
        const std::uint32_t hi = worker.device_hi();
        std::vector<DeviceTotals> totals;
        totals.reserve(hi - lo);
        for (std::uint32_t d = lo; d < hi; ++d)
          totals.push_back(worker.device_totals(d));
        reply(wire::kFrameFinal, wire::encode_device_totals(lo, hi, totals));
        return;
      }
      default:
        throw RuntimeError("transport worker received an unknown frame kind " +
                           std::to_string(frame.kind));
    }
  }
}

// --- coordinator side ------------------------------------------------------

ProcessTransport::ProcessTransport(const Config& config,
                                   const WorkerFactory& factory)
    : config_(config) {
  MEC_EXPECTS(config.workers >= 1 && config.workers <= config.shard_count);
  timeout_ms_ = resolve_transport_timeout_ms();
  ranks_.resize(config.workers);
  for (std::size_t r = 0; r < config.workers; ++r) {
    ranks_[r].shard_lo = config.shard_count * r / config.workers;
    ranks_[r].shard_hi = config.shard_count * (r + 1) / config.workers;
  }
  for (std::size_t r = 0; r < config.workers; ++r) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw RuntimeError(std::string("transport socketpair failed: ") +
                         std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw RuntimeError(std::string("transport fork failed: ") +
                         std::strerror(errno));
    }
    if (pid == 0) {
      // Child: keep only this rank's channel, build the worker in place
      // (everything it needs arrived via copy-on-write), serve, and leave
      // through _exit so no parent-owned atexit/stream state runs twice.
      ::close(fds[0]);
      for (std::size_t q = 0; q < r; ++q) ::close(ranks_[q].fd);
      int status = 0;
      try {
        std::unique_ptr<RankWorker> worker =
            factory(r, ranks_[r].shard_lo, ranks_[r].shard_hi);
        serve_worker(*worker, r, fds[1]);
      } catch (const std::exception& e) {
        obs::wire::ByteWriter w;
        const std::string what = e.what();
        w.put_u32(static_cast<std::uint32_t>(what.size()));
        w.put_bytes(what.data(), what.size());
        const std::vector<std::uint8_t> payload = w.take();
        try {
          const auto frame = wire::encode_frame(wire::kFrameError, payload);
          write_all(fds[1], frame.data(), frame.size());
        } catch (...) {
        }
        status = 1;
      }
      ::_exit(status);
    }
    ranks_[r].fd = fds[0];
    ranks_[r].pid = pid;
    ::close(fds[1]);
  }
}

ProcessTransport::~ProcessTransport() {
  for (Rank& rank : ranks_) {
    if (rank.fd >= 0) ::close(rank.fd);
    if (rank.pid > 0 && !rank.reaped) {
      ::kill(static_cast<pid_t>(rank.pid), SIGKILL);
      int status = 0;
      ::waitpid(static_cast<pid_t>(rank.pid), &status, 0);
    }
  }
}

void ProcessTransport::send_frame(Rank& rank, std::uint32_t kind,
                                  std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = wire::encode_frame(kind, payload);
  write_all(rank.fd, frame.data(), frame.size());
  ++rank.stats.frames_sent;
}

void ProcessTransport::fail_rank(Rank& rank, double barrier_time,
                                 const std::string& what) {
  const std::size_t index = static_cast<std::size_t>(&rank - ranks_.data());
  std::string status = "unresponsive, killed";
  if (rank.pid > 0 && !rank.reaped) {
    int wstatus = 0;
    pid_t done = ::waitpid(static_cast<pid_t>(rank.pid), &wstatus, WNOHANG);
    if (done == 0) {
      // Still alive (the stall case): put it down so the run fails cleanly
      // instead of leaking a wedged child.
      ::kill(static_cast<pid_t>(rank.pid), SIGKILL);
      done = ::waitpid(static_cast<pid_t>(rank.pid), &wstatus, 0);
    }
    if (done == rank.pid) {
      rank.reaped = true;
      if (WIFEXITED(wstatus))
        status = "exit status " + std::to_string(WEXITSTATUS(wstatus));
      else if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) != SIGKILL)
        status = "killed by signal " + std::to_string(WTERMSIG(wstatus));
    }
  }
  std::string msg = "transport worker rank " + std::to_string(index) + " (" +
                    status + ") " + what + " before the barrier at t=" +
                    std::to_string(barrier_time) + "; last completed barrier #" +
                    std::to_string(rank.barriers_done) + " (t=" +
                    std::to_string(rank.last_barrier_time) + ")";
  if (rank.pending != 0)
    msg += "; pending frame: " + wire::frame_kind_name(rank.pending);
  throw RuntimeError(msg);
}

wire::DecodedFrame ProcessTransport::read_frame(Rank& rank,
                                                double barrier_time) {
  wire::DecodedFrame frame;
  try {
    frame = wire::read_frame_deadline(rank.fd, timeout_ms_);
  } catch (const wire::PeerError& e) {
    if (e.kind() == wire::PeerError::Kind::kTimeout)
      fail_rank(rank, barrier_time,
                "stopped responding (no payload within " +
                    std::to_string(timeout_ms_) + " ms)");
    fail_rank(rank, barrier_time, "exited unexpectedly");
  }
  ++rank.stats.frames_received;
  rank.stats.payload_bytes += frame.payload.size();
  if (frame.kind == wire::kFrameError) {
    obs::wire::ByteReader r(frame.payload);
    const std::uint32_t n = r.get_u32();
    fail_rank(rank, barrier_time, "failed: " + r.get_string(n));
  }
  return frame;
}

std::span<const ShardBarrierView> ProcessTransport::advance(
    const BarrierRequest& request) {
  const std::vector<std::uint8_t> payload =
      wire::encode_barrier_request(request);
  for (Rank& rank : ranks_)
    send_frame(rank, wire::kFrameAdvance, payload);
  for (Rank& rank : ranks_) {
    rank.pending = wire::kFrameBarrier;
    const auto t0 = std::chrono::steady_clock::now();
    wire::DecodedFrame frame = read_frame(rank, request.limit);
    rank.stats.barrier_wait_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (frame.kind != wire::kFrameBarrier)
      fail_rank(rank, request.limit,
                "sent an unexpected frame kind " + std::to_string(frame.kind));
    rank.data = wire::decode_barrier_payload(frame.payload);
    rank.pending = 0;
    ++rank.barriers_done;
    rank.last_barrier_time = request.limit;
  }
  views_.clear();
  total_q_ = 0.0;
  total_q2_ = 0.0;
  for (Rank& rank : ranks_) {
    for (const ShardBarrierView& v : rank.data.views()) views_.push_back(v);
    if (rank.data.has_q) {
      total_q_ += rank.data.total_q;
      total_q2_ += rank.data.total_q2;
    }
  }
  return views_;
}

void ProcessTransport::broadcast_thresholds(std::span<const double> values) {
  const std::vector<std::uint8_t> payload = wire::encode_thresholds(values);
  for (Rank& rank : ranks_) send_frame(rank, wire::kFrameThresholds, payload);
}

void ProcessTransport::finalize(bool flipped) {
  obs::wire::ByteWriter w(1);
  w.put_u8(flipped ? 1 : 0);
  const std::vector<std::uint8_t> payload = w.take();
  for (Rank& rank : ranks_) send_frame(rank, wire::kFrameFinalize, payload);
  totals_.assign(config_.n_devices, DeviceTotals{});
  const double t_mark = -1.0;  // finalize has no barrier time
  for (Rank& rank : ranks_) {
    rank.pending = wire::kFrameFinal;
    wire::DecodedFrame frame = read_frame(rank, t_mark);
    if (frame.kind != wire::kFrameFinal)
      fail_rank(rank, t_mark,
                "sent an unexpected frame kind " + std::to_string(frame.kind));
    rank.pending = 0;
    wire::FinalTotals fin = wire::decode_device_totals(frame.payload);
    if (fin.device_hi > config_.n_devices)
      throw RuntimeError("transport final totals exceed the device range");
    for (std::uint32_t d = fin.device_lo; d < fin.device_hi; ++d)
      totals_[d] = fin.totals[d - fin.device_lo];
    int status = 0;
    ::waitpid(static_cast<pid_t>(rank.pid), &status, 0);
    rank.reaped = true;
    ::close(rank.fd);
    rank.fd = -1;
  }
}

DeviceTotals ProcessTransport::device_totals(std::uint32_t device) const {
  MEC_EXPECTS(device < totals_.size());
  return totals_[device];
}

RankStats ProcessTransport::rank_stats(std::size_t rank) const {
  MEC_EXPECTS(rank < ranks_.size());
  return ranks_[rank].stats;
}

}  // namespace mec::parallel

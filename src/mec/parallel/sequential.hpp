// Sequential-stopping (run-until-confident) replication engine.
//
// Inverts the fixed-R protocol of replication.hpp: instead of burning a
// preset replication budget and reporting the confidence interval after the
// fact, the caller states the question —
//
//   * run_until_confident: "estimate this metric to a target CI half-width
//     (absolute or relative)" — and the engine grows the replication set in
//     waves until the interval is tight enough (or a budget cap is hit);
//
//   * compare_sequential: "is configuration A cheaper than B here?" — paired
//     per-replication differences on common random numbers, a paired-t
//     interval on the gap, and early elimination once the interval excludes
//     zero.  Repeated interim looks are corrected with a geometric
//     alpha-spending schedule (stats/confidence.hpp) so the overall type-I
//     error rate stays below 1 - confidence no matter how many waves run.
//
// Replayability contract: replication r always runs with
// replication_seed(base_seed, r) — the golden-ratio derivation of
// replication.hpp — so a replication's randomness is independent of where
// the run stops.  A sequential run stopped at R replications is therefore
// bit-identical to run_replications with a fixed R (pinned by
// tests/test_sequential.cpp), and any published result can be reproduced
// without re-running the stopping rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mec/parallel/replication.hpp"

namespace mec::parallel {

/// The population-level scalar metrics a sequential run can target (the
/// aggregates of ReplicationResult).
enum class Metric {
  kMeanCost,
  kMeanQueueLength,
  kMeanOffloadFraction,
  kMeasuredUtilization,
  kMeanLocalSojourn,
  kMeanOffloadDelay,
};

/// CLI spelling of a metric ("mean-cost", "queue-length", ...).
const char* to_string(Metric metric) noexcept;

/// Inverse of to_string; throws RuntimeError on an unknown name.
Metric parse_metric(const std::string& name);

/// The per-replication scalar that aggregate_replications folds into the
/// corresponding MetricSummary.
double metric_value(const sim::SimulationResult& result, Metric metric);

/// The selected metric's summary inside an aggregate.
const MetricSummary& select_metric(const ReplicationResult& result,
                                   Metric metric) noexcept;

struct SequentialOptions {
  Metric metric = Metric::kMeanCost;  ///< the targeted estimate
  double confidence = 0.95;           ///< CI level, in (0, 1)
  /// Stop once the CI half-width is <= target_half_width (absolute) and
  /// <= target_relative * |mean| (relative).  A target of 0 disables that
  /// criterion; at least one must be enabled.
  double target_half_width = 0.0;
  double target_relative = 0.0;
  std::size_t min_replications = 4;    ///< first look happens here (>= 2)
  std::size_t max_replications = 512;  ///< hard budget cap (>= min)
  std::size_t wave = 8;                ///< replications added per wave (>= 1)
  std::size_t threads = 0;             ///< 0 selects hardware concurrency
  bool keep_runs = false;              ///< retain per-replication results
};

/// One interim look of a sequential run, for tracing/reporting.
struct SequentialLook {
  std::size_t replications;
  double mean;
  double half_width;
};

struct SequentialResult {
  /// Aggregate over the replications actually run — bit-identical to
  /// run_replications with this exact count (see file comment).
  ReplicationResult aggregate;
  std::size_t replications = 0;  ///< == aggregate.replications
  std::size_t waves = 0;         ///< waves executed (== interim looks)
  bool target_met = false;       ///< false iff stopped by max_replications
  std::vector<SequentialLook> looks;  ///< one entry per interim look

  const MetricSummary& metric(Metric m) const noexcept {
    return select_metric(aggregate, m);
  }
};

/// Grows the replication set in waves until the selected metric's CI meets
/// the target (or max_replications is reached).  Width-based stopping uses
/// the plain fixed-sample interval at each look (the standard sequential
/// estimation procedure); hypothesis-style questions belong to
/// compare_sequential, which does correct for repeated looks.
/// Requires at least one enabled target, 2 <= min <= max, wave >= 1, and a
/// valid replication configuration (check_replication_config).
SequentialResult run_until_confident(std::span<const core::UserParams> users,
                                     double capacity,
                                     const core::EdgeDelay& delay,
                                     const sim::SimulationOptions& base_options,
                                     std::span<const double> thresholds,
                                     const SequentialOptions& options,
                                     ThreadPool* pool = nullptr);

/// One paired observation: the two arms evaluated on common random numbers.
struct PairedSample {
  double a;
  double b;
};

/// Evaluates both arms for replication `r`.  `seed` is
/// replication_seed(base_seed, r); implementations should drive all their
/// randomness from it so the pair shares common random numbers and the
/// replication is replayable in isolation.  Called concurrently for
/// distinct r — must be thread-safe.
using PairedEvaluator =
    std::function<PairedSample(std::size_t r, std::uint64_t seed)>;

struct CompareOptions {
  double confidence = 0.95;  ///< overall (family-wise) level, in (0, 1)
  std::size_t min_replications = 8;    ///< first look happens here (>= 2)
  std::size_t max_replications = 512;  ///< budget cap (>= min)
  std::size_t wave = 16;               ///< replications added per wave
  std::size_t threads = 0;             ///< 0 selects hardware concurrency
  std::uint64_t base_seed = 0x5eed0000ULL;
};

enum class Verdict {
  kFirstLower,   ///< CI on E[a - b] entirely below 0: arm A is smaller
  kSecondLower,  ///< CI entirely above 0: arm B is smaller
  kUndecided,    ///< budget exhausted with 0 still inside the interval
};

const char* to_string(Verdict verdict) noexcept;

struct CompareResult {
  Verdict verdict = Verdict::kUndecided;
  std::size_t replications = 0;
  std::size_t looks = 0;  ///< interim analyses performed
  /// Spending-adjusted paired-t interval on E[a - b] at the final look.
  stats::ConfidenceInterval difference{0.0, 0.0, 0.0};
  double mean_a = 0.0;
  double mean_b = 0.0;
  /// Per-replication arm values, in replication order (CRN pairs).
  std::vector<double> samples_a;
  std::vector<double> samples_b;

  bool decided() const noexcept { return verdict != Verdict::kUndecided; }
};

/// Paired sequential comparison: evaluates both arms replication by
/// replication (in waves), stops as soon as the spending-adjusted paired-t
/// interval on E[a - b] excludes zero, and reports the verdict plus the
/// replications spent.  With the geometric spending schedule the
/// probability of *any* false elimination under E[a] = E[b] is at most
/// 1 - confidence, for any number of looks.
CompareResult compare_sequential(const PairedEvaluator& evaluate,
                                 const CompareOptions& options,
                                 ThreadPool* pool = nullptr);

/// Human-readable stopping trace ("R=24 mean=2.31 +/- 0.04 ...").
std::string summarize(const SequentialResult& result, Metric metric);

}  // namespace mec::parallel

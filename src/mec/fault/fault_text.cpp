#include "mec/fault/fault_text.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mec/common/error.hpp"

namespace mec::fault {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "fault schedule line " << line << ": " << message;
  throw RuntimeError(os.str());
}

double to_number(const std::string& token, int line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

std::uint32_t to_device(const std::string& token, int line) {
  const double v = to_number(token, line);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v)))
    fail(line, "expected a non-negative device index, got '" + token + "'");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

FaultSchedule parse_fault_schedule(
    const std::string& text,
    const population::ScenarioConfig* churn_scenario) {
  FaultSchedule schedule;
  std::istringstream is(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(is, raw)) {
    ++line_number;
    const auto hash = raw.find('#');
    std::istringstream body(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    std::vector<std::string> tokens;
    std::string token;
    while (body >> token) tokens.push_back(token);
    if (tokens.empty()) continue;

    const std::string& verb = tokens.front();
    const auto need = [&](std::size_t n) {
      if (tokens.size() != n + 1)
        fail(line_number,
             verb + " expects " + std::to_string(n) + " arguments");
    };
    const auto num = [&](std::size_t i) {
      return to_number(tokens[i], line_number);
    };
    try {
      if (verb == "capacity") {
        if (tokens.size() == 3) {
          schedule.add_capacity_scale(num(1), num(2));
        } else if (tokens.size() == 5 && tokens[3] == "cluster") {
          const std::uint32_t c = to_device(tokens[4], line_number);
          if (c >= FaultAction::kAllClusters)
            fail(line_number, "cluster index out of range");
          schedule.add_capacity_scale(num(1), num(2),
                                      static_cast<std::uint16_t>(c));
        } else {
          fail(line_number,
               "capacity expects: <t> <scale> [cluster <k>]");
        }
      } else if (verb == "outage") {
        if (tokens.size() != 4 && tokens.size() != 5)
          fail(line_number, "outage expects: <begin> <end> reject | "
                            "<begin> <end> penalty <seconds>");
        const std::string& mode = tokens[3];
        if (mode == "reject") {
          need(3);
          schedule.add_outage(num(1), num(2), OutageMode::kReject);
        } else if (mode == "penalty") {
          need(4);
          schedule.add_outage(num(1), num(2), OutageMode::kPenalty, num(4));
        } else {
          fail(line_number, "unknown outage mode '" + mode +
                                "' (reject|penalty)");
        }
      } else if (verb == "crash") {
        need(2);
        schedule.add_crash(num(1), to_device(tokens[2], line_number));
      } else if (verb == "restart") {
        need(2);
        schedule.add_restart(num(1), to_device(tokens[2], line_number));
      } else if (verb == "churn") {
        need(5);
        if (churn_scenario == nullptr)
          fail(line_number,
               "churn requires a scenario (its joins draw users from the "
               "scenario distributions)");
        const double seed = num(5);
        if (seed < 0.0)
          fail(line_number, "churn seed must be non-negative");
        schedule.add_poisson_churn(*churn_scenario, /*arrival_rate=*/num(3),
                                   /*departure_rate=*/num(4),
                                   /*t_begin=*/num(1), /*t_end=*/num(2),
                                   static_cast<std::uint64_t>(seed));
      } else {
        fail(line_number, "unknown fault verb '" + verb +
                              "' (capacity|outage|crash|restart|churn)");
      }
    } catch (const ContractViolation& e) {
      fail(line_number, std::string("invalid ") + verb + ": " + e.what());
    }
  }
  return schedule;
}

FaultSchedule load_fault_schedule_file(
    const std::string& path,
    const population::ScenarioConfig* churn_scenario) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open fault schedule file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fault_schedule(buffer.str(), churn_scenario);
}

}  // namespace mec::fault

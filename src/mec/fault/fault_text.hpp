// Text-format fault schedules.
//
// Lets users describe an environment trajectory in a small file (or inline
// `fault =` lines of a scenario config) and replay it against any tool:
//
//     # brownout.fault
//     capacity 150 0.6          # at t=150 s the edge drops to 60%
//     capacity 300 1.0          # full recovery at t=300 s
//     outage 50 60 reject       # offloads fail (run locally) in [50, 60)
//     outage 80 90 penalty 0.5  # offloads pay +0.5 s latency in [80, 90)
//     crash 10 3                # device 3 dies at t=10, queue lost
//     restart 40 3              # ... and comes back empty at t=40
//     churn 0 400 0.5 0.3 7     # joins at 0.5/s, departures at 0.3/s,
//                               # on [0, 400), materialized from seed 7
//
// Lines are `<verb> <args...>`; '#' starts a comment; blank lines are
// ignored.  `churn` draws joining users from a scenario's distributions, so
// parsing a schedule containing churn requires the scenario it will run
// against.
#pragma once

#include <string>

#include "mec/fault/fault_schedule.hpp"
#include "mec/population/scenario.hpp"

namespace mec::fault {

/// Parses a schedule from config text. `churn_scenario` supplies the
/// distributions that churn joins draw from; passing nullptr makes `churn`
/// lines an error.  Throws mec::RuntimeError with a line-numbered message
/// on any syntax or semantic problem.
FaultSchedule parse_fault_schedule(
    const std::string& text,
    const population::ScenarioConfig* churn_scenario = nullptr);

/// Reads and parses a fault-schedule file.
FaultSchedule load_fault_schedule_file(
    const std::string& path,
    const population::ScenarioConfig* churn_scenario = nullptr);

}  // namespace mec::fault

// Deterministic fault-injection and churn schedule for the DES.
//
// A FaultSchedule is a time-sorted list of environment actions — edge
// capacity scaling (brown-outs and recoveries), wireless outage windows,
// per-device crash/restart with queue loss, and user churn (joins drawing
// fresh parameters from the scenario distributions, departures retiring
// devices).  The schedule is *input data*: every stochastic element (churn
// times, joining users' parameters, departure victim selectors) is
// materialized once at build time from its own seed, so a schedule replays
// bit-identically across runs, replications, and thread counts — the
// simulator injects each action as a first-class event into the same
// deterministic future-event list that orders task arrivals and departures
// (see mec/sim/des.hpp: (time, insertion sequence) is a total order).
//
// The fault process is deliberately decoupled from the simulation seed:
// replications explore the simulation noise of one fixed environment
// trajectory, which is the regime studied by the non-stationary mean-field
// offloading literature (re-convergence of the DTU after a known shock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mec/core/user.hpp"
#include "mec/population/scenario.hpp"

namespace mec::fault {

/// What an action does when its time arrives.
enum class FaultKind : std::uint8_t {
  kCapacityScale,   ///< edge capacity becomes `value` x nominal (value > 0)
  kOutageBegin,     ///< wireless outage starts (mode/penalty in the action)
  kOutageEnd,       ///< wireless outage ends
  kDeviceCrash,     ///< `device` dies; its local queue is lost
  kDeviceRestart,   ///< `device` comes back empty and resumes its arrivals
  kUserArrival,     ///< a new user joins with parameters `user`
  kUserDeparture,   ///< an active device (picked by `value`) retires for good
};

/// How offload decisions behave while an outage window is open.
enum class OutageMode : std::uint8_t {
  kReject,   ///< the offload fails; the task is executed locally instead
  kPenalty,  ///< the offload goes through but pays `value` extra latency
};

/// One scheduled environment action.
struct FaultAction {
  /// Sentinel cluster id: the action targets the whole edge (every cluster).
  static constexpr std::uint16_t kAllClusters = 0xFFFF;

  double time = 0.0;
  FaultKind kind = FaultKind::kCapacityScale;
  std::uint32_t device = 0;  ///< crash/restart target (initial-population id)
  /// Capacity scale factor, outage latency penalty, or — for departures —
  /// the victim selector in [0, 1): victim = active[floor(value * active_n)].
  double value = 0.0;
  OutageMode outage_mode = OutageMode::kReject;
  /// kCapacityScale only: a specific cluster's brown-out (its per-cluster
  /// gamma clamp scales, the global capacity accounting does not), or
  /// kAllClusters for the classic whole-edge scale.
  std::uint16_t cluster = kAllClusters;
  core::UserParams user;  ///< parameters of a joining user (kUserArrival)
};

/// A validated, time-sorted fault schedule (actions at equal times keep
/// their insertion order, so construction order is part of the contract).
class FaultSchedule {
 public:
  /// Scales the edge capacity to `scale` x nominal from `time` on.
  /// Requires time >= 0 and scale > 0 (1.0 restores nominal capacity).
  /// With an explicit `cluster` the brown-out hits only that cluster's
  /// effective capacity (per-cluster gamma clamp); the default targets the
  /// whole edge exactly as before.
  void add_capacity_scale(double time, double scale,
                          std::uint16_t cluster = FaultAction::kAllClusters);

  /// Opens an outage window [begin, end). kPenalty adds `penalty` seconds to
  /// every offload's wireless latency; kReject reroutes offloads to the
  /// local queue. Requires 0 <= begin < end and penalty >= 0.
  void add_outage(double begin, double end,
                  OutageMode mode = OutageMode::kReject, double penalty = 0.0);

  /// Crashes `device` (an index into the *initial* population) at `time`:
  /// its local queue is dropped and its arrival stream stops.
  void add_crash(double time, std::uint32_t device);

  /// Restarts a crashed `device` at `time` with an empty queue.
  /// Restarting an alive or retired device is a no-op at run time.
  void add_restart(double time, std::uint32_t device);

  /// A new user joins at `time`. Joined devices are appended to the
  /// population in schedule order (see MecSimulation::total_devices()).
  void add_user_arrival(double time, const core::UserParams& user);

  /// An active device retires at `time`; the victim is
  /// active[floor(selector * active_count)]. Requires selector in [0, 1).
  void add_user_departure(double time, double selector);

  /// Appends a Poisson churn process on [t_begin, t_end): joins at rate
  /// `arrival_rate` (users drawn i.i.d. from the scenario's marginals, as
  /// population::sample_population draws them) and departures at rate
  /// `departure_rate`, all materialized from `seed`.  Rates are per second;
  /// either may be 0.  Requires 0 <= t_begin < t_end and rates >= 0.
  void add_poisson_churn(const population::ScenarioConfig& scenario,
                         double arrival_rate, double departure_rate,
                         double t_begin, double t_end, std::uint64_t seed);

  bool empty() const noexcept { return actions_.empty(); }
  std::size_t size() const noexcept { return actions_.size(); }

  /// All actions, sorted by (time, insertion order).
  std::span<const FaultAction> actions() const noexcept { return actions_; }

  /// Number of kUserArrival actions (devices the simulator appends).
  std::size_t churn_arrivals() const noexcept { return churn_arrivals_; }

  /// Parameters of the joining users, in schedule order — the order their
  /// devices are appended to the population.
  std::vector<core::UserParams> churn_users() const;

  /// Capacity scale in effect immediately *after* `time` (1.0 before the
  /// first kCapacityScale action).
  double capacity_scale_at(double time) const noexcept;

  /// Validates the schedule against a population size: crash/restart
  /// targets must be < n_initial_devices, and outage windows must nest
  /// correctly (every begin closed before the next opens).
  /// Throws mec::ContractViolation on violation.
  void check(std::size_t n_initial_devices) const;

 private:
  void insert(FaultAction action);

  std::vector<FaultAction> actions_;  ///< sorted by (time, insertion order)
  std::size_t churn_arrivals_ = 0;
};

}  // namespace mec::fault

#include "mec/fault/fault_plan.hpp"

#include <algorithm>
#include <limits>

#include "mec/common/error.hpp"

namespace mec::fault {

FaultPlan resolve_fault_plan(std::span<const FaultAction> actions,
                             std::uint32_t n_initial, std::uint32_t n_total,
                             double warmup, double t_end) {
  FaultPlan plan;
  plan.actions.reserve(actions.size());

  // Membership automaton, mirroring the engine's runtime exactly: alive
  // devices live in a swap-remove pool so kUserDeparture's selector indexes
  // the same victim the event loop would have picked.
  enum State : std::uint8_t { kNotJoined, kAlive, kDead, kRetired };
  std::vector<State> state(n_total, kNotJoined);
  std::vector<std::uint32_t> active_ids;
  std::vector<std::uint32_t> active_pos(n_total, 0);
  active_ids.reserve(n_total);
  for (std::uint32_t d = 0; d < n_initial; ++d) {
    state[d] = kAlive;
    active_pos[d] = static_cast<std::uint32_t>(active_ids.size());
    active_ids.push_back(d);
  }
  std::uint32_t next_join = n_initial;

  const auto activate = [&](std::uint32_t device) {
    state[device] = kAlive;
    active_pos[device] = static_cast<std::uint32_t>(active_ids.size());
    active_ids.push_back(device);
  };
  const auto deactivate = [&](std::uint32_t device, State terminal) {
    state[device] = terminal;
    const std::uint32_t pos = active_pos[device];
    const std::uint32_t last = active_ids.back();
    active_ids[pos] = last;
    active_pos[last] = pos;
    active_ids.pop_back();
  };

  for (const FaultAction& a : actions) {
    if (a.time > t_end) break;  // never popped: the run ends first
    ResolvedAction r;
    r.time = a.time;
    r.kind = a.kind;
    r.value = a.value;
    r.outage_mode = a.outage_mode;
    r.cluster = a.cluster;
    switch (a.kind) {
      case FaultKind::kCapacityScale:
      case FaultKind::kOutageBegin:
      case FaultKind::kOutageEnd:
        r.effective = true;
        break;
      case FaultKind::kDeviceCrash:
        r.device = a.device;
        r.effective = state[a.device] == kAlive;
        if (r.effective) {
          deactivate(a.device, kDead);
          ++plan.crashes;
        }
        break;
      case FaultKind::kDeviceRestart:
        r.device = a.device;
        r.effective = state[a.device] == kDead;
        if (r.effective) {
          activate(a.device);
          ++plan.restarts;
        }
        break;
      case FaultKind::kUserArrival: {
        const std::uint32_t d = next_join++;
        MEC_ASSERT(d < n_total);
        r.device = d;
        r.effective = true;
        activate(d);
        ++plan.churn_joined;
        ++plan.joins;
        break;
      }
      case FaultKind::kUserDeparture:
        r.effective = !active_ids.empty();
        if (r.effective) {
          const std::size_t active_n = active_ids.size();
          const std::size_t idx = std::min(
              active_n - 1,
              static_cast<std::size_t>(a.value *
                                       static_cast<double>(active_n)));
          r.device = active_ids[idx];
          deactivate(r.device, kRetired);
          ++plan.churn_departed;
        }
        break;
    }
    r.active_after = static_cast<std::uint32_t>(active_ids.size());
    if (a.time >= warmup) plan.flip_trigger = true;
    plan.actions.push_back(r);
  }
  return plan;
}

EnvWindowStats integrate_environment(std::span<const ResolvedAction> actions,
                                     double warmup, double t_end,
                                     bool measured) {
  EnvWindowStats out;
  if (!measured) return out;  // the window never opened: defaults throughout

  double scale = 1.0;
  bool outage = false;
  double env_last = warmup;
  // Scale in effect when the window opens (after every pre-warmup action;
  // an action at exactly `warmup` lands inside the window instead).
  double scale_at_open = 1.0;
  double min_in_window = std::numeric_limits<double>::infinity();

  for (const ResolvedAction& a : actions) {
    // Cluster-targeted brown-outs affect only that cluster's gamma clamp;
    // the run-wide capacity accounting stays on the global scale, so they
    // behave like membership actions here: no segment break, no scale move.
    const bool global_scale = a.kind == FaultKind::kCapacityScale &&
                              a.cluster == FaultAction::kAllClusters;
    const bool env_kind = global_scale ||
                          a.kind == FaultKind::kOutageBegin ||
                          a.kind == FaultKind::kOutageEnd;
    if (a.time < warmup) {
      if (global_scale) scale = a.value;
      if (a.kind == FaultKind::kOutageBegin) outage = true;
      if (a.kind == FaultKind::kOutageEnd) outage = false;
      scale_at_open = scale;
      continue;
    }
    if (!env_kind) continue;  // membership actions don't break segments
    // Segment up to this action, with the pre-action values (piecewise
    // constant between environment actions, so this is exact).
    if (a.time > env_last) {
      const double dt = a.time - env_last;
      out.scale_integral += scale * dt;
      if (scale < 1.0 || outage) out.degraded_time += dt;
      env_last = a.time;
    }
    if (a.kind == FaultKind::kCapacityScale) {
      scale = a.value;
      min_in_window = std::min(min_in_window, a.value);
    } else {
      outage = a.kind == FaultKind::kOutageBegin;
    }
  }
  if (t_end > env_last) {
    const double dt = t_end - env_last;
    out.scale_integral += scale * dt;
    if (scale < 1.0 || outage) out.degraded_time += dt;
  }
  out.min_capacity_scale = std::min(scale_at_open, min_in_window);
  return out;
}

}  // namespace mec::fault

// Shard-aware resolution of a FaultSchedule: the fault plan.
//
// The runtime effect of every schedule action — whether a crash actually
// kills anyone, which device a kUserDeparture retires, which population
// slot a join occupies, how many devices are active afterwards — depends
// only on the schedule itself: membership changes exclusively at schedule
// actions, so the whole active-set evolution is a pure function of the
// (time-sorted) action list and the horizon.  resolve_fault_plan() runs
// that automaton once, up front, and materializes a ResolvedAction per
// schedule action with every such dependency settled.
//
// The sharded engine is built on this: each shard receives only the
// resolved actions that touch its device range (plus the global outage
// toggles) and can apply them with no cross-shard state, while the
// structural counters, the active-population timeline, and the
// capacity-scale accounting are read straight off the plan — exactly as
// the single-queue engine would have produced them, in the same order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mec/fault/fault_schedule.hpp"

namespace mec::fault {

/// One schedule action with its run-time resolution precomputed.
struct ResolvedAction {
  static constexpr std::uint32_t kNoDevice = ~std::uint32_t{0};

  double time = 0.0;
  FaultKind kind = FaultKind::kCapacityScale;
  /// Resolved target: the crash/restart device, the retired departure
  /// victim, or the population slot a join occupies; kNoDevice for
  /// environment-only actions (capacity scale, outages).
  std::uint32_t device = kNoDevice;
  double value = 0.0;  ///< scale factor, outage penalty, or raw selector
  OutageMode outage_mode = OutageMode::kReject;
  /// kCapacityScale target: one cluster, or kAllClusters for the whole edge.
  std::uint16_t cluster = FaultAction::kAllClusters;
  /// False for no-op actions (crashing a dead device, restarting an alive
  /// one, a departure with nobody active).  Ineffective actions still pop
  /// as events — they count toward total_events — but change nothing.
  bool effective = false;
  /// Active population immediately after this action applies.
  std::uint32_t active_after = 0;
};

/// The resolved schedule for one run: every action with time <= t_end, in
/// schedule order, plus the structural counters the run will report.
struct FaultPlan {
  std::vector<ResolvedAction> actions;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t churn_joined = 0;
  std::uint64_t churn_departed = 0;
  /// Churn slots that join within the horizon; devices with index >=
  /// n_initial + joins never participate.
  std::uint32_t joins = 0;
  /// True when any action fires inside [warmup, t_end] — such a pop would
  /// have flipped the single-queue engine's measurement window open even
  /// if no task event did.
  bool flip_trigger = false;
};

/// Runs the membership automaton over `actions` (time-sorted, as
/// FaultSchedule::actions() returns them) and resolves every action with
/// time <= t_end.  `n_initial` devices start active; joins occupy slots
/// n_initial, n_initial + 1, ... and must fit n_total.
FaultPlan resolve_fault_plan(std::span<const FaultAction> actions,
                             std::uint32_t n_initial, std::uint32_t n_total,
                             double warmup, double t_end);

/// Cursor over a plan's environment values (capacity scale, active count).
/// advance_to() applies actions up to a limit; grid observers advance
/// strictly-before a sample instant (left-limit semantics: an action at
/// exactly the sample time is not yet visible), while the offload replay
/// advances inclusively (a fault event at the same instant as a task event
/// pops first — it was scheduled earlier, so its tie-break sequence wins).
struct EnvWalk {
  std::span<const ResolvedAction> actions;
  std::size_t cursor = 0;
  double scale = 1.0;
  std::uint32_t active = 0;
  /// Per-cluster brown-out factors (size = cluster count when the owner
  /// tracks clusters, else empty).  A cluster-targeted kCapacityScale
  /// updates only its slot; the global `scale` is untouched.
  std::vector<double> cluster_scale;

  void advance_to(double limit, bool inclusive) noexcept {
    while (cursor < actions.size() &&
           (inclusive ? actions[cursor].time <= limit
                      : actions[cursor].time < limit)) {
      const ResolvedAction& a = actions[cursor];
      if (a.kind == FaultKind::kCapacityScale) {
        if (a.cluster == FaultAction::kAllClusters)
          scale = a.value;
        else if (a.cluster < cluster_scale.size())
          cluster_scale[a.cluster] = a.value;
      }
      active = a.active_after;
      ++cursor;
    }
  }
};

/// Capacity-scale accounting over the measurement window, reproducing the
/// single-queue engine's arithmetic exactly: the integral accumulates one
/// segment per environment action inside the window, in chronological
/// order, then a closing segment to t_end.
struct EnvWindowStats {
  double scale_integral = 0.0;
  double degraded_time = 0.0;   ///< window seconds with scale < 1 or outage
  double min_capacity_scale = 1.0;
};

/// Integrates scale/outage state over [warmup, t_end].  `measured` is
/// whether the run's measurement window ever opened; when false the
/// single-queue engine never integrated, so everything stays at its
/// defaults (the caller applies the whole-window fallback).
EnvWindowStats integrate_environment(std::span<const ResolvedAction> actions,
                                     double warmup, double t_end,
                                     bool measured);

}  // namespace mec::fault

#include "mec/fault/fault_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"
#include "mec/random/rng.hpp"

namespace mec::fault {

void FaultSchedule::insert(FaultAction action) {
  MEC_EXPECTS(std::isfinite(action.time));
  MEC_EXPECTS(action.time >= 0.0);
  // Stable by time: equal-time actions keep insertion order, matching the
  // event queue's (time, seq) tie-break once they are scheduled.
  const auto at = std::upper_bound(
      actions_.begin(), actions_.end(), action.time,
      [](double t, const FaultAction& a) { return t < a.time; });
  actions_.insert(at, std::move(action));
}

void FaultSchedule::add_capacity_scale(double time, double scale,
                                       std::uint16_t cluster) {
  MEC_EXPECTS_MSG(scale > 0.0, "capacity scale must be positive");
  FaultAction a;
  a.time = time;
  a.kind = FaultKind::kCapacityScale;
  a.value = scale;
  a.cluster = cluster;
  insert(a);
}

void FaultSchedule::add_outage(double begin, double end, OutageMode mode,
                               double penalty) {
  MEC_EXPECTS_MSG(begin >= 0.0 && begin < end, "outage needs 0 <= begin < end");
  MEC_EXPECTS(penalty >= 0.0);
  FaultAction open;
  open.time = begin;
  open.kind = FaultKind::kOutageBegin;
  open.outage_mode = mode;
  open.value = penalty;
  insert(open);
  FaultAction close;
  close.time = end;
  close.kind = FaultKind::kOutageEnd;
  insert(close);
}

void FaultSchedule::add_crash(double time, std::uint32_t device) {
  FaultAction a;
  a.time = time;
  a.kind = FaultKind::kDeviceCrash;
  a.device = device;
  insert(a);
}

void FaultSchedule::add_restart(double time, std::uint32_t device) {
  FaultAction a;
  a.time = time;
  a.kind = FaultKind::kDeviceRestart;
  a.device = device;
  insert(a);
}

void FaultSchedule::add_user_arrival(double time, const core::UserParams& user) {
  user.check();
  FaultAction a;
  a.time = time;
  a.kind = FaultKind::kUserArrival;
  a.user = user;
  insert(a);
  ++churn_arrivals_;
}

void FaultSchedule::add_user_departure(double time, double selector) {
  MEC_EXPECTS_MSG(selector >= 0.0 && selector < 1.0,
                  "departure selector must be in [0, 1)");
  FaultAction a;
  a.time = time;
  a.kind = FaultKind::kUserDeparture;
  a.value = selector;
  insert(a);
}

void FaultSchedule::add_poisson_churn(
    const population::ScenarioConfig& scenario, double arrival_rate,
    double departure_rate, double t_begin, double t_end, std::uint64_t seed) {
  MEC_EXPECTS_MSG(t_begin >= 0.0 && t_begin < t_end,
                  "churn window needs 0 <= t_begin < t_end");
  MEC_EXPECTS(arrival_rate >= 0.0);
  MEC_EXPECTS(departure_rate >= 0.0);
  scenario.check();
  random::Xoshiro256 rng(seed);
  // Joins: a Poisson(arrival_rate) process whose marks are users drawn
  // exactly as population::sample_population draws them (same field order,
  // same redraw-at-zero rules), so churn users are exchangeable with the
  // initial population.
  if (arrival_rate > 0.0) {
    for (double t = t_begin + random::exponential(rng, arrival_rate);
         t < t_end; t += random::exponential(rng, arrival_rate)) {
      core::UserParams u;
      do {
        u.arrival_rate = scenario.arrival.sample(rng);
      } while (u.arrival_rate <= 0.0);
      do {
        u.service_rate = scenario.service.sample(rng);
      } while (u.service_rate <= 0.0);
      u.offload_latency = scenario.latency.sample(rng);
      u.energy_local = scenario.energy_local.sample(rng);
      u.energy_offload = scenario.energy_offload.sample(rng);
      if (scenario.weight_dist.valid()) {
        do {
          u.weight = scenario.weight_dist.sample(rng);
        } while (u.weight <= 0.0);
      } else {
        u.weight = scenario.weight;
      }
      add_user_arrival(t, u);
    }
  }
  if (departure_rate > 0.0) {
    for (double t = t_begin + random::exponential(rng, departure_rate);
         t < t_end; t += random::exponential(rng, departure_rate)) {
      add_user_departure(t, random::uniform01(rng));
    }
  }
}

std::vector<core::UserParams> FaultSchedule::churn_users() const {
  std::vector<core::UserParams> users;
  users.reserve(churn_arrivals_);
  for (const FaultAction& a : actions_)
    if (a.kind == FaultKind::kUserArrival) users.push_back(a.user);
  return users;
}

double FaultSchedule::capacity_scale_at(double time) const noexcept {
  double scale = 1.0;
  for (const FaultAction& a : actions_) {
    if (a.time > time) break;
    if (a.kind == FaultKind::kCapacityScale &&
        a.cluster == FaultAction::kAllClusters)
      scale = a.value;
  }
  return scale;
}

void FaultSchedule::check(std::size_t n_initial_devices) const {
  bool outage_open = false;
  for (const FaultAction& a : actions_) {
    switch (a.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kDeviceRestart:
        MEC_EXPECTS_MSG(a.device < n_initial_devices,
                        "crash/restart targets an out-of-range device");
        break;
      case FaultKind::kOutageBegin:
        MEC_EXPECTS_MSG(!outage_open, "overlapping outage windows");
        outage_open = true;
        break;
      case FaultKind::kOutageEnd:
        MEC_EXPECTS_MSG(outage_open, "outage end without a begin");
        outage_open = false;
        break;
      default:
        break;
    }
  }
  MEC_EXPECTS_MSG(!outage_open, "unterminated outage window");
}

}  // namespace mec::fault

#include "mec/queueing/erlang.hpp"

#include "mec/common/error.hpp"

namespace mec::queueing {

double erlang_b(std::size_t servers, double erlangs) {
  MEC_EXPECTS(servers >= 1);
  MEC_EXPECTS(erlangs >= 0.0);
  double b = 1.0;
  for (std::size_t n = 1; n <= servers; ++n)
    b = erlangs * b / (static_cast<double>(n) + erlangs * b);
  return b;
}

double erlang_c(std::size_t servers, double erlangs) {
  MEC_EXPECTS(servers >= 1);
  MEC_EXPECTS_MSG(erlangs < static_cast<double>(servers),
                  "Erlang-C requires offered load below server count");
  const double b = erlang_b(servers, erlangs);
  const double rho = erlangs / static_cast<double>(servers);
  return b / (1.0 - rho + rho * b);
}

double mmn_mean_wait(std::size_t servers, double mu, double lambda) {
  MEC_EXPECTS(mu > 0.0);
  MEC_EXPECTS(lambda >= 0.0);
  MEC_EXPECTS_MSG(lambda < static_cast<double>(servers) * mu,
                  "M/M/N requires lambda < N*mu");
  if (lambda == 0.0) return 0.0;
  const double erlangs = lambda / mu;
  const double c = erlang_c(servers, erlangs);
  return c / (static_cast<double>(servers) * mu - lambda);
}

double mmn_mean_sojourn(std::size_t servers, double mu, double lambda) {
  return mmn_mean_wait(servers, mu, lambda) + 1.0 / mu;
}

}  // namespace mec::queueing

#include "mec/queueing/birth_death.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mec/common/error.hpp"

namespace mec::queueing {

std::vector<double> stationary_distribution(std::span<const double> births,
                                            std::span<const double> deaths) {
  MEC_EXPECTS(!births.empty());
  MEC_EXPECTS(births.size() == deaths.size());
  MEC_EXPECTS(std::all_of(births.begin(), births.end(),
                          [](double b) { return b >= 0.0; }));
  MEC_EXPECTS(std::all_of(deaths.begin(), deaths.end(),
                          [](double d) { return d > 0.0; }));

  const std::size_t n_states = births.size() + 1;
  std::vector<double> pi(n_states, 0.0);

  // Unnormalized weights with periodic rescaling for numerical stability.
  pi[0] = 1.0;
  double scale_log = 0.0;  // we only need relative weights, so track none
  (void)scale_log;
  double total = 1.0;
  double w = 1.0;
  for (std::size_t i = 0; i + 1 < n_states; ++i) {
    if (births[i] == 0.0) break;  // states beyond i are unreachable
    w *= births[i] / deaths[i];
    pi[i + 1] = w;
    total += w;
    if (total > 1e300) {  // rescale everything computed so far
      for (std::size_t j = 0; j <= i + 1; ++j) pi[j] /= total;
      w = pi[i + 1];
      total = 0.0;
      for (std::size_t j = 0; j <= i + 1; ++j) total += pi[j];
    }
  }
  for (double& p : pi) p /= total;

  MEC_ENSURES(std::abs(std::accumulate(pi.begin(), pi.end(), 0.0) - 1.0) <
              1e-9);
  return pi;
}

double expectation(std::span<const double> pi, std::span<const double> values) {
  MEC_EXPECTS(pi.size() == values.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * values[i];
  return acc;
}

double mean_state(std::span<const double> pi) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i)
    acc += static_cast<double>(i) * pi[i];
  return acc;
}

}  // namespace mec::queueing

#include "mec/queueing/threshold_queue.hpp"

#include <cmath>

#include "mec/common/error.hpp"

namespace mec::queueing {

namespace {

struct Decomposed {
  long long k;   // floor(x)
  double frac;   // x - floor(x)
};

Decomposed decompose(double theta, double x) {
  MEC_EXPECTS(theta > 0.0);
  MEC_EXPECTS(x >= 0.0);
  MEC_EXPECTS_MSG(x <= 1e6, "threshold beyond supported range");
  const double fl = std::floor(x);
  return {static_cast<long long>(fl), x - fl};
}

/// Accumulated unnormalized chain weights, rescaled to avoid overflow.
/// All members share the same (unknown) scale factor, so any ratio is exact.
struct ChainSums {
  double s0;      // sum_{i=0..k} theta^i
  double s1;      // sum_{i=0..k} i * theta^i
  double w0;      // weight of state 0 (rescaled 1.0)
  double wk;      // weight of state k, theta^k
  double wtop;    // weight of state k+1, frac * theta^{k+1}
};

ChainSums accumulate(double theta, long long k, double frac) {
  ChainSums c{1.0, 0.0, 1.0, 1.0, 0.0};
  double w = 1.0;
  for (long long i = 1; i <= k; ++i) {
    w *= theta;
    c.s0 += w;
    c.s1 += static_cast<double>(i) * w;
    if (c.s0 > 1e280 || c.s1 > 1e280) {
      constexpr double kRescale = 1e-280;
      c.s0 *= kRescale;
      c.s1 *= kRescale;
      c.w0 *= kRescale;
      w *= kRescale;
    }
  }
  c.wk = w;
  c.wtop = frac * w * theta;
  return c;
}

}  // namespace

TroMetrics tro_metrics(double theta, double x) {
  const auto [k, frac] = decompose(theta, x);
  const ChainSums c = accumulate(theta, k, frac);
  const double total = c.s0 + c.wtop;
  TroMetrics m{};
  m.mean_queue_length =
      (c.s1 + static_cast<double>(k + 1) * c.wtop) / total;
  // PASTA: an arrival is offloaded iff it sees state k and loses the coin
  // flip (prob 1-frac), or sees state k+1.
  m.offload_probability = ((1.0 - frac) * c.wk + c.wtop) / total;
  m.p_empty = c.w0 / total;
  MEC_ENSURES(m.offload_probability >= 0.0 && m.offload_probability <= 1.0);
  MEC_ENSURES(m.mean_queue_length >= 0.0);
  return m;
}

double tro_mean_queue_length(double theta, double x) {
  return tro_metrics(theta, x).mean_queue_length;
}

double tro_offload_probability(double theta, double x) {
  return tro_metrics(theta, x).offload_probability;
}

std::vector<double> tro_stationary_distribution(double theta, double x) {
  const auto [k, frac] = decompose(theta, x);
  const std::size_t n = static_cast<std::size_t>(k) + 2;
  std::vector<double> pi(n, 0.0);
  // Build weights with rescaling, then normalize.
  pi[0] = 1.0;
  double total = 1.0;
  double w = 1.0;
  for (std::size_t i = 1; i <= static_cast<std::size_t>(k); ++i) {
    w *= theta;
    pi[i] = w;
    total += w;
    if (total > 1e280) {
      constexpr double kRescale = 1e-280;
      for (std::size_t j = 0; j <= i; ++j) pi[j] *= kRescale;
      w *= kRescale;
      total *= kRescale;
    }
  }
  pi[n - 1] = frac * w * theta;
  total += pi[n - 1];
  for (double& p : pi) p /= total;
  return pi;
}

}  // namespace mec::queueing

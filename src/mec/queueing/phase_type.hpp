// Phase-type service distributions and the TRO threshold queue under them.
//
// Theorem 1's closed forms assume exponential local service.  The paper
// argues by simulation that its conclusions persist for general (measured)
// service times; this module makes that claim *analytic* for the dense class
// of phase-type laws: the TRO local queue with Poisson arrivals and
// phase-type service is a finite CTMC over (queue length, service phase)
// whose stationary distribution we solve exactly (mec/queueing/ctmc.hpp).
//
// Supported constructions: exponential (1 phase), Erlang-k (low variability,
// SCV = 1/k), hyperexponential (high variability, SCV >= 1), and a standard
// two-phase balanced-means fit to a target (mean, SCV).
#pragma once

#include <cstddef>
#include <vector>

#include "mec/queueing/threshold_queue.hpp"

namespace mec::queueing {

/// A phase-type distribution: the absorption time of a transient CTMC with
/// `phases()` states, entered via `initial`, moving between phases at
/// `phase_change[i][j]` and absorbing (completing) from phase i at
/// `completion[i]`.
struct PhaseType {
  std::vector<double> initial;                     ///< entry probabilities
  std::vector<std::vector<double>> phase_change;   ///< off-diagonal rates
  std::vector<double> completion;                  ///< absorption rates

  std::size_t phases() const noexcept { return initial.size(); }

  /// Validates shapes, non-negativity, initial sums to 1, and that every
  /// phase eventually absorbs. Throws ContractViolation otherwise.
  void check() const;

  /// First moment alpha * (-S)^{-1} * 1.
  double mean() const;

  /// Squared coefficient of variation Var/Mean^2 (1 for exponential,
  /// 1/k for Erlang-k, >= 1 for hyperexponential).
  double scv() const;

  /// Same shape, all rates scaled so the mean becomes `new_mean` (> 0).
  PhaseType scaled_to_mean(double new_mean) const;
};

/// Exponential(rate) as a single phase. Requires rate > 0.
PhaseType exponential_phase(double rate);

/// Erlang with `stages` sequential phases and the given overall mean.
/// Requires stages >= 1, mean > 0.
PhaseType erlang_phase(std::size_t stages, double mean);

/// Hyperexponential: phase i with probability probs[i], rate rates[i].
/// Requires matching non-empty sizes, probs summing to 1, rates > 0.
PhaseType hyperexponential_phase(std::vector<double> probs,
                                 std::vector<double> rates);

/// Two-phase balanced-means hyperexponential with the given mean and SCV.
/// Requires mean > 0 and scv >= 1 (use erlang_phase for scv < 1).
PhaseType hyperexponential_from_scv(double mean, double scv);

/// Exact steady-state TRO metrics when local service follows `service`
/// (arbitrary mean) and tasks arrive Poisson(arrival_rate), under real
/// threshold x.  For exponential `service` this agrees with tro_metrics.
/// Requires arrival_rate > 0, valid service, 0 <= x <= 500 (the CTMC has
/// (floor(x)+1) * phases + 1 states).
TroMetrics tro_metrics_phase_type(double arrival_rate,
                                  const PhaseType& service, double x);

}  // namespace mec::queueing

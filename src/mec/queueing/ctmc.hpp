// Dense continuous-time Markov chain stationary solver.
//
// Solves pi * Q = 0, sum(pi) = 1 for an irreducible finite-state CTMC by
// Gaussian elimination with partial pivoting (one balance equation replaced
// by the normalization).  Intended for the moderate state spaces produced by
// the phase-type threshold-queue models (hundreds of states); the dedicated
// birth-death solver remains the fast path for the exponential case.
#pragma once

#include <cstddef>
#include <vector>

namespace mec::queueing {

/// Dense row-major rate-matrix builder with invariant-preserving access.
class GeneratorMatrix {
 public:
  /// Creates an n x n all-zero generator. Requires n >= 1.
  explicit GeneratorMatrix(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Adds a transition `from` -> `to` at `rate` (> 0, from != to), keeping
  /// the row sum at zero by decrementing the diagonal.
  void add_rate(std::size_t from, std::size_t to, double rate);

  double at(std::size_t row, std::size_t col) const;

  /// Verifies every off-diagonal is >= 0 and each row sums to ~0.
  bool is_valid_generator(double tolerance = 1e-9) const;

 private:
  std::size_t n_;
  std::vector<double> q_;  // row-major
  friend std::vector<double> stationary_distribution(const GeneratorMatrix&);
};

/// Stationary distribution of the CTMC with generator `q`.
/// Requires a valid generator whose chain has a single closed communicating
/// class reachable from every state (throws mec::RuntimeError if the linear
/// system is numerically singular).
std::vector<double> stationary_distribution(const GeneratorMatrix& q);

}  // namespace mec::queueing

// Closed-form steady-state analysis of the TRO (Threshold-based Randomized
// Offloading) local queue — Eq. (7)–(8) of the paper.
//
// Under TRO with real threshold x >= 0, a task arriving to a local queue of
// length q joins locally if q < floor(x), joins with probability x - floor(x)
// if q == floor(x), and is offloaded otherwise.  With Poisson(a) arrivals and
// exponential(s) service the queue is a finite birth–death chain on states
// 0..floor(x)+1 with geometric weights theta^i (theta = a/s) and a fractional
// top state.  All quantities here are exact; they are computed by direct
// summation with overflow rescaling, which is numerically stable for every
// theta > 0 including theta == 1 (where the textbook closed forms have 0/0
// cancellation).
#pragma once

#include <vector>

namespace mec::queueing {

/// Steady-state metrics of the TRO local queue.
struct TroMetrics {
  double mean_queue_length;     ///< Q(x): stationary mean number in system
  double offload_probability;   ///< alpha(x): fraction of arrivals offloaded
  double p_empty;               ///< pi_0
};

/// Exact metrics for arrival intensity `theta` = a/s and threshold `x`.
/// Requires theta > 0 and 0 <= x <= 1e6.
TroMetrics tro_metrics(double theta, double x);

/// Q(x) — Eq. (7). Requires theta > 0 and 0 <= x <= 1e6.
double tro_mean_queue_length(double theta, double x);

/// alpha(x) — Eq. (8). Requires theta > 0 and 0 <= x <= 1e6.
double tro_offload_probability(double theta, double x);

/// Full stationary distribution over states 0..floor(x)+1.
/// Requires theta > 0 and 0 <= x <= 1e6.
std::vector<double> tro_stationary_distribution(double theta, double x);

}  // namespace mec::queueing

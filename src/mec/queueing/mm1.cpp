#include "mec/queueing/mm1.hpp"

#include <cmath>

#include "mec/common/error.hpp"

namespace mec::queueing {

Mm1Metrics mm1_metrics(double lambda, double mu) {
  MEC_EXPECTS(mu > 0.0);
  MEC_EXPECTS(lambda >= 0.0);
  MEC_EXPECTS_MSG(lambda < mu, "M/M/1 requires lambda < mu for stability");
  const double rho = lambda / mu;
  Mm1Metrics m{};
  m.utilization = rho;
  m.mean_in_system = rho / (1.0 - rho);
  m.mean_in_queue = rho * rho / (1.0 - rho);
  m.mean_sojourn = 1.0 / (mu - lambda);
  m.mean_wait = rho / (mu - lambda);
  return m;
}

double mm1_state_probability(double lambda, double mu, unsigned n) {
  MEC_EXPECTS(mu > 0.0);
  MEC_EXPECTS(lambda >= 0.0);
  MEC_EXPECTS(lambda < mu);
  const double rho = lambda / mu;
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

}  // namespace mec::queueing

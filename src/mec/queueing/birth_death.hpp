// Generic finite birth–death chain solver.
//
// The TRO local queue, the M/M/1/K queue, and several test fixtures are all
// finite birth–death chains; this module computes their stationary
// distributions directly from the detailed-balance recursion
//   pi_{i+1} = pi_i * birth_i / death_{i+1},
// normalized in a numerically stable way (running rescale to avoid overflow
// when birth/death ratios exceed 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mec::queueing {

/// Stationary distribution of a finite birth–death chain on states
/// 0..births.size() (one more state than birth rates).
///
/// `births[i]` is the transition rate i -> i+1 (must be >= 0),
/// `deaths[i]` is the transition rate i+1 -> i (must be > 0),
/// and the two spans must have equal, non-zero length.
///
/// States unreachable because of an interior zero birth rate get probability
/// zero (the chain restricted to the reachable prefix is solved).
std::vector<double> stationary_distribution(std::span<const double> births,
                                            std::span<const double> deaths);

/// Mean of `values[i]` under distribution `pi`; sizes must match.
double expectation(std::span<const double> pi, std::span<const double> values);

/// Mean state index under `pi` (i.e. average queue length).
double mean_state(std::span<const double> pi);

}  // namespace mec::queueing

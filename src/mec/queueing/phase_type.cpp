#include "mec/queueing/phase_type.hpp"

#include <cmath>
#include <numeric>

#include "mec/common/error.hpp"
#include "mec/queueing/ctmc.hpp"

namespace mec::queueing {

namespace {

/// Solves (-S) * x = rhs for the phase-type sub-generator S (tiny dense
/// system; Gaussian elimination with partial pivoting).
std::vector<double> solve_neg_subgenerator(const PhaseType& pt,
                                           std::vector<double> rhs) {
  const std::size_t m = pt.phases();
  // Build A = -S: diag = sum of outgoing (phase changes + completion),
  // off-diag = -phase_change.
  std::vector<double> a(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double out = pt.completion[i];
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      out += pt.phase_change[i][j];
      a[i * m + j] = -pt.phase_change[i][j];
    }
    a[i * m + i] = out;
  }
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row)
      if (std::abs(a[row * m + col]) > std::abs(a[pivot * m + col]))
        pivot = row;
    MEC_EXPECTS_MSG(std::abs(a[pivot * m + col]) > 1e-13,
                    "phase-type sub-generator is singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < m; ++j)
        std::swap(a[pivot * m + j], a[col * m + j]);
      std::swap(rhs[pivot], rhs[col]);
    }
    for (std::size_t row = col + 1; row < m; ++row) {
      const double f = a[row * m + col] / a[col * m + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) a[row * m + j] -= f * a[col * m + j];
      rhs[row] -= f * rhs[col];
    }
  }
  std::vector<double> x(m);
  for (std::size_t r1 = m; r1 > 0; --r1) {
    const std::size_t row = r1 - 1;
    double acc = rhs[row];
    for (std::size_t j = row + 1; j < m; ++j) acc -= a[row * m + j] * x[j];
    x[row] = acc / a[row * m + row];
  }
  return x;
}

}  // namespace

void PhaseType::check() const {
  const std::size_t m = phases();
  MEC_EXPECTS_MSG(m >= 1, "phase-type needs at least one phase");
  MEC_EXPECTS(completion.size() == m);
  MEC_EXPECTS(phase_change.size() == m);
  for (const auto& row : phase_change) MEC_EXPECTS(row.size() == m);
  double init_sum = 0.0;
  for (const double p : initial) {
    MEC_EXPECTS(p >= 0.0 && p <= 1.0);
    init_sum += p;
  }
  MEC_EXPECTS_MSG(std::abs(init_sum - 1.0) < 1e-9,
                  "phase-type initial distribution must sum to 1");
  for (std::size_t i = 0; i < m; ++i) {
    MEC_EXPECTS(completion[i] >= 0.0);
    double out = completion[i];
    for (std::size_t j = 0; j < m; ++j) {
      MEC_EXPECTS(phase_change[i][j] >= 0.0);
      if (i != j) out += phase_change[i][j];
    }
    MEC_EXPECTS_MSG(out > 0.0, "every phase needs an outgoing rate");
  }
}

double PhaseType::mean() const {
  check();
  const auto u = solve_neg_subgenerator(*this,
                                        std::vector<double>(phases(), 1.0));
  double acc = 0.0;
  for (std::size_t i = 0; i < phases(); ++i) acc += initial[i] * u[i];
  return acc;
}

double PhaseType::scv() const {
  check();
  const auto u1 = solve_neg_subgenerator(*this,
                                         std::vector<double>(phases(), 1.0));
  const auto u2 = solve_neg_subgenerator(*this, u1);
  double m1 = 0.0, half_m2 = 0.0;
  for (std::size_t i = 0; i < phases(); ++i) {
    m1 += initial[i] * u1[i];
    half_m2 += initial[i] * u2[i];
  }
  const double m2 = 2.0 * half_m2;
  return (m2 - m1 * m1) / (m1 * m1);
}

PhaseType PhaseType::scaled_to_mean(double new_mean) const {
  MEC_EXPECTS(new_mean > 0.0);
  const double factor = mean() / new_mean;  // rate multiplier
  PhaseType scaled = *this;
  for (auto& row : scaled.phase_change)
    for (double& r : row) r *= factor;
  for (double& r : scaled.completion) r *= factor;
  return scaled;
}

PhaseType exponential_phase(double rate) {
  MEC_EXPECTS(rate > 0.0);
  PhaseType pt;
  pt.initial = {1.0};
  pt.phase_change = {{0.0}};
  pt.completion = {rate};
  return pt;
}

PhaseType erlang_phase(std::size_t stages, double mean) {
  MEC_EXPECTS(stages >= 1);
  MEC_EXPECTS(mean > 0.0);
  const double stage_rate = static_cast<double>(stages) / mean;
  PhaseType pt;
  pt.initial.assign(stages, 0.0);
  pt.initial[0] = 1.0;
  pt.phase_change.assign(stages, std::vector<double>(stages, 0.0));
  pt.completion.assign(stages, 0.0);
  for (std::size_t i = 0; i + 1 < stages; ++i)
    pt.phase_change[i][i + 1] = stage_rate;
  pt.completion[stages - 1] = stage_rate;
  return pt;
}

PhaseType hyperexponential_phase(std::vector<double> probs,
                                 std::vector<double> rates) {
  MEC_EXPECTS(!probs.empty());
  MEC_EXPECTS(probs.size() == rates.size());
  const std::size_t m = probs.size();
  PhaseType pt;
  pt.initial = std::move(probs);
  pt.phase_change.assign(m, std::vector<double>(m, 0.0));
  pt.completion = std::move(rates);
  pt.check();
  return pt;
}

PhaseType hyperexponential_from_scv(double mean, double scv) {
  MEC_EXPECTS(mean > 0.0);
  MEC_EXPECTS_MSG(scv >= 1.0, "two-phase hyperexponential needs scv >= 1");
  if (scv == 1.0) return exponential_phase(1.0 / mean);
  // Balanced-means H2 fit: p1*mu2 = p2*mu1... standard construction:
  // p = (1 + sqrt((scv-1)/(scv+1)))/2, rates chosen so each branch carries
  // equal probability-weighted mean.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double r1 = 2.0 * p / mean;
  const double r2 = 2.0 * (1.0 - p) / mean;
  return hyperexponential_phase({p, 1.0 - p}, {r1, r2});
}

TroMetrics tro_metrics_phase_type(double arrival_rate,
                                  const PhaseType& service, double x) {
  MEC_EXPECTS(arrival_rate > 0.0);
  service.check();
  MEC_EXPECTS(x >= 0.0);
  MEC_EXPECTS_MSG(x <= 500.0, "phase-type threshold queue limited to x<=500");

  const double fl = std::floor(x);
  const auto k = static_cast<std::size_t>(fl);
  const double frac = x - fl;

  if (x == 0.0) return TroMetrics{0.0, 1.0, 1.0};

  const std::size_t m = service.phases();
  // Top reachable level: k+1 if the randomized state admits (frac > 0),
  // else k.  (An unreachable level would make the chain reducible.)
  const std::size_t top = frac > 0.0 ? k + 1 : k;
  MEC_ASSERT(top >= 1);
  const std::size_t n_states = 1 + top * m;  // empty + (q,phase)
  const auto idx = [m](std::size_t q, std::size_t phase) {
    return 1 + (q - 1) * m + phase;
  };

  GeneratorMatrix gen(n_states);
  // Arrivals out of empty: admitted unless k == 0 (then admitted w.p. frac).
  const double admit_from_empty = (k >= 1) ? 1.0 : frac;
  for (std::size_t j = 0; j < m; ++j)
    if (service.initial[j] > 0.0 && admit_from_empty > 0.0)
      gen.add_rate(0, idx(1, j),
                   arrival_rate * admit_from_empty * service.initial[j]);

  for (std::size_t q = 1; q <= top; ++q) {
    // Admission probability for an arrival seeing queue length q.
    double admit = 0.0;
    if (q < k) admit = 1.0;
    else if (q == k) admit = frac;
    for (std::size_t j = 0; j < m; ++j) {
      if (admit > 0.0 && q < top)
        gen.add_rate(idx(q, j), idx(q + 1, j), arrival_rate * admit);
      // Phase changes of the in-service task.
      for (std::size_t j2 = 0; j2 < m; ++j2)
        if (j2 != j && service.phase_change[j][j2] > 0.0)
          gen.add_rate(idx(q, j), idx(q, j2), service.phase_change[j][j2]);
      // Completion: next head-of-line task (if any) draws a fresh phase.
      if (service.completion[j] > 0.0) {
        if (q == 1) {
          gen.add_rate(idx(q, j), 0, service.completion[j]);
        } else {
          for (std::size_t j2 = 0; j2 < m; ++j2)
            if (service.initial[j2] > 0.0)
              gen.add_rate(idx(q, j), idx(q - 1, j2),
                           service.completion[j] * service.initial[j2]);
        }
      }
    }
  }

  const std::vector<double> pi = stationary_distribution(gen);

  TroMetrics out{};
  out.p_empty = pi[0];
  double mean_q = 0.0;
  std::vector<double> level(top + 1, 0.0);
  level[0] = pi[0];
  for (std::size_t q = 1; q <= top; ++q) {
    double mass = 0.0;
    for (std::size_t j = 0; j < m; ++j) mass += pi[idx(q, j)];
    level[q] = mass;
    mean_q += static_cast<double>(q) * mass;
  }
  out.mean_queue_length = mean_q;
  // PASTA: an arrival is offloaded iff it sees q == k and loses the coin
  // (probability 1 - frac), or sees q == k+1 (only reachable if frac > 0).
  double offload = 0.0;
  if (k <= top) offload += (1.0 - frac) * level[k];
  if (frac > 0.0) offload += level[k + 1];
  out.offload_probability = offload;
  MEC_ENSURES(out.offload_probability >= -1e-12 &&
              out.offload_probability <= 1.0 + 1e-12);
  return out;
}

}  // namespace mec::queueing

// Erlang-B / Erlang-C formulas for multi-server queues.
//
// The paper abstracts the edge cluster as an increasing delay g(gamma); this
// module provides a queueing-theoretic instantiation: an M/M/N cluster whose
// mean waiting time at offered utilization gamma follows Erlang-C.  Used by
// core::make_erlang_c_delay and the edge-delay ablation.
#pragma once

#include <cstddef>

namespace mec::queueing {

/// Erlang-B blocking probability for `servers` servers at offered load
/// `erlangs` (= lambda/mu). Computed with the standard stable recurrence
/// B(0) = 1, B(n) = a*B(n-1) / (n + a*B(n-1)).
/// Requires servers >= 1, erlangs >= 0.
double erlang_b(std::size_t servers, double erlangs);

/// Erlang-C probability of waiting (all servers busy) for an M/M/N queue.
/// Requires servers >= 1 and erlangs < servers (stability).
double erlang_c(std::size_t servers, double erlangs);

/// Mean waiting time in an M/M/N queue with `servers` servers, per-server
/// rate `mu`, and arrival rate `lambda`. Requires stability
/// (lambda < servers*mu).
double mmn_mean_wait(std::size_t servers, double mu, double lambda);

/// Mean sojourn (wait + service) in the same queue.
double mmn_mean_sojourn(std::size_t servers, double mu, double lambda);

}  // namespace mec::queueing

// Classic M/M/1 quantities, used by the DPO baseline (a user offloading each
// task with probability rho leaves an M/M/1 local queue with thinned arrivals)
// and as a sanity anchor for the DES.
#pragma once

namespace mec::queueing {

/// Steady-state M/M/1 metrics for arrival rate `lambda` and service rate `mu`.
struct Mm1Metrics {
  double utilization;      ///< rho = lambda/mu
  double mean_in_system;   ///< L = rho/(1-rho)
  double mean_in_queue;    ///< Lq = rho^2/(1-rho)
  double mean_sojourn;     ///< W = 1/(mu-lambda)
  double mean_wait;        ///< Wq = rho/(mu-lambda)
};

/// Requires 0 <= lambda < mu (stability) and mu > 0.
Mm1Metrics mm1_metrics(double lambda, double mu);

/// P(N = n) for the M/M/1 queue. Requires 0 <= lambda < mu.
double mm1_state_probability(double lambda, double mu, unsigned n);

}  // namespace mec::queueing

#include "mec/queueing/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "mec/common/error.hpp"

namespace mec::queueing {

GeneratorMatrix::GeneratorMatrix(std::size_t n) : n_(n), q_(n * n, 0.0) {
  MEC_EXPECTS(n >= 1);
}

void GeneratorMatrix::add_rate(std::size_t from, std::size_t to, double rate) {
  MEC_EXPECTS(from < n_);
  MEC_EXPECTS(to < n_);
  MEC_EXPECTS(from != to);
  MEC_EXPECTS(rate > 0.0);
  q_[from * n_ + to] += rate;
  q_[from * n_ + from] -= rate;
}

double GeneratorMatrix::at(std::size_t row, std::size_t col) const {
  MEC_EXPECTS(row < n_);
  MEC_EXPECTS(col < n_);
  return q_[row * n_ + col];
}

bool GeneratorMatrix::is_valid_generator(double tolerance) const {
  for (std::size_t i = 0; i < n_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double v = q_[i * n_ + j];
      if (i != j && v < 0.0) return false;
      row_sum += v;
    }
    if (std::abs(row_sum) > tolerance) return false;
  }
  return true;
}

std::vector<double> stationary_distribution(const GeneratorMatrix& q) {
  MEC_EXPECTS_MSG(q.is_valid_generator(), "not a valid CTMC generator");
  const std::size_t n = q.n_;

  // Solve x * Q = 0 with sum(x) = 1  <=>  Q^T x = 0; replace the last
  // equation by the normalization.  Build the (column-major transposed)
  // augmented system A x = b.
  std::vector<double> a(n * n);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = q.q_[j * n + i];  // A = Q^T
  for (std::size_t j = 0; j < n; ++j) a[(n - 1) * n + j] = 1.0;
  b[n - 1] = 1.0;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col]))
        pivot = row;
    if (std::abs(a[pivot * n + col]) < 1e-13)
      throw RuntimeError("CTMC stationary solve: singular system (chain not "
                         "irreducible?)");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(a[pivot * n + j], a[col * n + j]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j)
        a[row * n + j] -= factor * a[col * n + j];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t row_plus1 = n; row_plus1 > 0; --row_plus1) {
    const std::size_t row = row_plus1 - 1;
    double acc = b[row];
    for (std::size_t j = row + 1; j < n; ++j) acc -= a[row * n + j] * x[j];
    x[row] = acc / a[row * n + row];
  }

  // Clean tiny negative round-off and renormalize.
  double total = 0.0;
  for (double& v : x) {
    if (v < 0.0 && v > -1e-9) v = 0.0;
    MEC_ENSURES(v >= 0.0);
    total += v;
  }
  MEC_ENSURES(total > 0.0);
  for (double& v : x) v /= total;
  return x;
}

}  // namespace mec::queueing

// The .meclog run-log format: the on-disk half of the streaming telemetry
// subsystem (see docs/OBSERVABILITY.md for the byte-level spec).
//
// A run log is a self-describing, versioned binary stream:
//
//   header  (24 bytes)   magic "MECLOGv1", format version, histogram width
//   frames  (repeated)   u32 kind | u32 payload length | payload | u32 CRC32
//
// Frame kinds: one key=value metadata frame (scenario, cadences, the counter
// catalogue), one window frame per observation-grid sample instant, an
// optional counter frame right after each window, and a footer frame with
// whole-run totals that marks clean completion.  Every frame is flushed as
// it is written, so a live `mec tail` — or a reader inspecting the remains
// of a crashed run — always sees a valid prefix: the reader stops cleanly at
// a partial trailing frame (kTruncated) and distinguishes it from actual
// byte corruption (kCorrupt, CRC mismatch).
//
// Determinism contract: window payloads contain only quantities that are
// bit-identical for every shard count (TimelinePoint fields, order-invariant
// integer sums, merged LatencySketch quantiles), so the sequence of window
// frames is byte-identical for K = 1, 2, 4, ... — pinned by goldens in
// tests/test_stream_log.cpp.  Counter frames carry wall-clock diagnostics
// and are explicitly *not* deterministic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace mec::obs {

/// CRC-32 (IEEE 802.3, reflected) over `bytes`; the frame checksum.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Family magic (identifies any .meclog, regardless of schema revision);
/// the u32 version field that follows it is what actually gates parsing.
inline constexpr std::array<char, 8> kMagic = {'M', 'E', 'C', 'L',
                                               'O', 'G', 'v', '1'};
/// Schema revision.  v2 added the per-cluster block (cluster count + one
/// gamma/offload pair per edge cluster) to every window frame; v1 logs are
/// rejected by the reader with a clear re-run message rather than
/// misparsed as single-cluster data.
inline constexpr std::uint32_t kFormatVersion = 2;
/// Fixed width of the per-window threshold histogram (bin b counts devices
/// with floor(threshold) == b; the last bin absorbs everything above).
inline constexpr std::size_t kThresholdBins = 64;
/// Sanity cap on frame payloads; anything larger is treated as corruption.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;

enum class FrameKind : std::uint32_t {
  kMeta = 1,     ///< key=value run description + counter catalogue
  kWindow = 2,   ///< one WindowRecord (deterministic)
  kCounters = 3, ///< engine-counter samples (wall-clock diagnostics)
  kFooter = 4,   ///< whole-run totals; presence marks clean completion
};

/// One observation window, folded from a sample grid instant.  The first
/// six fields mirror sim::TimelinePoint bit-for-bit; the rest are
/// cumulative-or-delta rollups that are order-invariant across shards.
struct WindowRecord {
  double time = 0.0;                 ///< sample instant (absolute seconds)
  double gamma = 0.0;                ///< utilization estimate at `time`
  double mean_queue_length = 0.0;    ///< left-limit mean over active devices
  double queue_second_moment = 0.0;  ///< left-limit mean of q^2
  double capacity_scale = 1.0;
  std::uint64_t active_devices = 0;
  std::uint64_t offloads_so_far = 0;  ///< cumulative (== TimelinePoint)
  std::uint64_t offloads_delta = 0;   ///< offload decisions this window
  std::uint64_t events_so_far = 0;    ///< cumulative events incl. deliveries
  std::uint64_t events_delta = 0;
  // Cumulative latency-sketch snapshots (merged across shards; exact).
  std::uint64_t sojourn_count = 0;
  double sojourn_min = 0.0, sojourn_max = 0.0;
  double sojourn_p50 = 0.0, sojourn_p95 = 0.0, sojourn_p99 = 0.0;
  std::uint64_t offload_count = 0;
  double offload_min = 0.0, offload_max = 0.0;
  double offload_p50 = 0.0, offload_p95 = 0.0, offload_p99 = 0.0;
  // Cumulative degraded-mode counters (zero without a FaultSchedule).
  std::uint64_t tasks_lost = 0;
  std::uint64_t offloads_rejected = 0;
  std::uint64_t offloads_penalized = 0;
  std::uint64_t fault_events_applied = 0;
  /// Distribution of floor(threshold) over the population at `time`
  /// (TRO-family runs; all-zero when the policy has no threshold).
  std::array<std::uint32_t, kThresholdBins> threshold_histogram{};
  /// Per-edge-cluster trailer (v2): one utilization estimate and one
  /// cumulative measured offload count per topology cluster, in cluster
  /// order.  Always at least one entry; sizes match.  Invariants mirror the
  /// scalar fields: with one cluster cluster_gamma[0] == gamma, and
  /// sum(cluster_offloads) == offloads_so_far for every window.
  std::vector<double> cluster_gamma = {0.0};
  std::vector<std::uint64_t> cluster_offloads = {0};
};

/// Serialized size of one WindowRecord payload with `clusters` per-cluster
/// entries, in bytes.
std::size_t window_payload_size(std::size_t clusters = 1) noexcept;

/// One sampled engine counter.  `shard` is the owning shard index, or
/// kGlobalShard for run-wide values.
struct CounterValue {
  std::uint16_t id = 0;  ///< obs::Counter (see counters.hpp)
  std::uint16_t shard = 0;
  double value = 0.0;
};
inline constexpr std::uint16_t kGlobalShard = 0xFFFF;

/// Whole-run totals written by the footer frame.
struct RunFooter {
  std::uint64_t windows = 0;
  std::uint64_t total_events = 0;
  double measured_utilization = 0.0;
  double mean_cost = 0.0;
  double horizon = 0.0;
};

/// Ordered key=value run description (insertion order is preserved in the
/// file, so metadata round-trips byte-identically).
using RunLogMeta = std::vector<std::pair<std::string, std::string>>;

// --- payload encode/decode (exposed for tests) -----------------------------

std::vector<std::uint8_t> encode_meta(const RunLogMeta& meta);
std::vector<std::uint8_t> encode_window(const WindowRecord& window);
std::vector<std::uint8_t> encode_counters(std::span<const CounterValue> values);
std::vector<std::uint8_t> encode_footer(const RunFooter& footer);

/// Decoders throw mec::RuntimeError on malformed payloads.
RunLogMeta decode_meta(std::span<const std::uint8_t> payload);
WindowRecord decode_window(std::span<const std::uint8_t> payload);
std::vector<CounterValue> decode_counters(std::span<const std::uint8_t> payload);
RunFooter decode_footer(std::span<const std::uint8_t> payload);

// --- writer ----------------------------------------------------------------

/// Appends frames to a .meclog file, flushing after every frame so a tail
/// viewer (or post-crash reader) always sees a valid prefix.  Throws
/// mec::RuntimeError on I/O failure.  Destroying the writer without
/// finish() leaves a valid but incomplete log (no footer frame).
class RunLogWriter {
 public:
  RunLogWriter(const std::string& path, const RunLogMeta& meta);
  ~RunLogWriter();
  RunLogWriter(const RunLogWriter&) = delete;
  RunLogWriter& operator=(const RunLogWriter&) = delete;

  void append_window(const WindowRecord& window);
  void append_counters(std::span<const CounterValue> values);
  void finish(const RunFooter& footer);

  std::uint64_t windows_written() const noexcept { return windows_; }
  const std::string& path() const noexcept { return path_; }

 private:
  void write_frame(FrameKind kind, std::span<const std::uint8_t> payload);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t windows_ = 0;
  bool finished_ = false;
};

// --- reader ----------------------------------------------------------------

struct Frame {
  FrameKind kind = FrameKind::kMeta;
  std::vector<std::uint8_t> payload;
};

enum class ReadStatus {
  kFrame,      ///< `out` holds the next complete, checksummed frame
  kEndOfData,  ///< clean end: no bytes past the last complete frame
  kTruncated,  ///< a partial frame at the tail (growing file or crash)
  kCorrupt,    ///< CRC mismatch or an impossible frame header
};

/// Incremental frame reader.  After kEndOfData/kTruncated the read position
/// is rewound to the frame boundary, so next() can be retried once the file
/// has grown — this is how `mec tail --follow` works.  Throws
/// mec::RuntimeError when the file cannot be opened or the 24-byte header
/// is missing/foreign.
class RunLogReader {
 public:
  explicit RunLogReader(const std::string& path);
  ~RunLogReader();
  RunLogReader(const RunLogReader&) = delete;
  RunLogReader& operator=(const RunLogReader&) = delete;

  ReadStatus next(Frame& out);

  std::uint32_t version() const noexcept { return version_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint32_t version_ = 0;
};

// --- whole-file scan -------------------------------------------------------

/// Everything a one-shot consumer (tests, `mec tail --check`, CSV export)
/// needs from a log, with partial-file tolerance.
struct LogScan {
  RunLogMeta meta;
  std::vector<WindowRecord> windows;
  std::vector<std::vector<CounterValue>> counters;  ///< one entry per frame
  std::optional<RunFooter> footer;
  bool truncated = false;  ///< a partial frame at the tail was skipped
  bool corrupt = false;    ///< CRC mismatch / malformed frame encountered
  std::string error;       ///< first corruption diagnostic

  bool complete() const noexcept { return footer.has_value() && !corrupt; }
};

/// Decodes one frame into the scan.  On a malformed payload sets
/// corrupt/error (tagging the diagnostic with `index`) and returns false.
bool apply_frame(LogScan& scan, const Frame& frame, std::uint64_t index);

/// Scans the whole file; never throws past the header check (partial and
/// corrupt tails are reported in the flags instead).
LogScan scan_log(const std::string& path);

/// Lossless CSV export of the window frames (doubles printed with 17
/// significant digits, integers verbatim).  The threshold histogram goes to
/// `hist_path` as (window, bin, count) rows when non-empty.
void export_windows_csv(const LogScan& scan, const std::string& csv_path,
                        const std::string& hist_path = "");

}  // namespace mec::obs

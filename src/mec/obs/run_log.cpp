#include "mec/obs/run_log.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "mec/common/error.hpp"
#include "mec/obs/wire.hpp"

namespace mec::obs {
namespace {

// All multi-byte fields are little-endian on disk, independent of the host;
// the scalar codec lives in obs/wire.hpp, shared with the transport layer.
using wire::ByteReader;
using wire::ByteWriter;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

constexpr std::size_t kWindowDoubles = 15;
constexpr std::size_t kWindowU64s = 11;
/// Fixed (cluster-independent) part of a v2 window payload; the per-cluster
/// trailer appends a u32 cluster count plus 16 bytes per cluster.
constexpr std::size_t kWindowFixedSize =
    kWindowDoubles * 8 + kWindowU64s * 8 + kThresholdBins * 4;

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::size_t window_payload_size(std::size_t clusters) noexcept {
  return kWindowFixedSize + 4 + clusters * 16;
}

std::vector<std::uint8_t> encode_meta(const RunLogMeta& meta) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(meta.size()));
  for (const auto& [key, value] : meta) {
    w.put_u32(static_cast<std::uint32_t>(key.size()));
    w.put_bytes(key.data(), key.size());
    w.put_u32(static_cast<std::uint32_t>(value.size()));
    w.put_bytes(value.data(), value.size());
  }
  return w.take();
}

std::vector<std::uint8_t> encode_window(const WindowRecord& window) {
  MEC_EXPECTS_MSG(!window.cluster_gamma.empty() &&
                      window.cluster_gamma.size() ==
                          window.cluster_offloads.size(),
                  "window record needs matching per-cluster vectors");
  ByteWriter w(window_payload_size(window.cluster_gamma.size()));
  w.put_f64(window.time);
  w.put_f64(window.gamma);
  w.put_f64(window.mean_queue_length);
  w.put_f64(window.queue_second_moment);
  w.put_f64(window.capacity_scale);
  w.put_u64(window.active_devices);
  w.put_u64(window.offloads_so_far);
  w.put_u64(window.offloads_delta);
  w.put_u64(window.events_so_far);
  w.put_u64(window.events_delta);
  w.put_u64(window.sojourn_count);
  w.put_f64(window.sojourn_min);
  w.put_f64(window.sojourn_max);
  w.put_f64(window.sojourn_p50);
  w.put_f64(window.sojourn_p95);
  w.put_f64(window.sojourn_p99);
  w.put_u64(window.offload_count);
  w.put_f64(window.offload_min);
  w.put_f64(window.offload_max);
  w.put_f64(window.offload_p50);
  w.put_f64(window.offload_p95);
  w.put_f64(window.offload_p99);
  w.put_u64(window.tasks_lost);
  w.put_u64(window.offloads_rejected);
  w.put_u64(window.offloads_penalized);
  w.put_u64(window.fault_events_applied);
  for (const std::uint32_t bin : window.threshold_histogram) w.put_u32(bin);
  w.put_u32(static_cast<std::uint32_t>(window.cluster_gamma.size()));
  for (std::size_t k = 0; k < window.cluster_gamma.size(); ++k) {
    w.put_f64(window.cluster_gamma[k]);
    w.put_u64(window.cluster_offloads[k]);
  }
  auto bytes = w.take();
  MEC_ASSERT(bytes.size() == window_payload_size(window.cluster_gamma.size()));
  return bytes;
}

std::vector<std::uint8_t> encode_counters(
    std::span<const CounterValue> values) {
  ByteWriter w(4 + values.size() * 12);
  w.put_u32(static_cast<std::uint32_t>(values.size()));
  for (const CounterValue& v : values) {
    w.put_u16(v.id);
    w.put_u16(v.shard);
    w.put_f64(v.value);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_footer(const RunFooter& footer) {
  ByteWriter w(5 * 8);
  w.put_u64(footer.windows);
  w.put_u64(footer.total_events);
  w.put_f64(footer.measured_utilization);
  w.put_f64(footer.mean_cost);
  w.put_f64(footer.horizon);
  return w.take();
}

RunLogMeta decode_meta(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t n = r.get_u32();
  RunLogMeta meta;
  meta.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.get_string(r.get_u32());
    std::string value = r.get_string(r.get_u32());
    meta.emplace_back(std::move(key), std::move(value));
  }
  if (!r.exhausted())
    throw RuntimeError("run-log meta frame has trailing bytes");
  return meta;
}

WindowRecord decode_window(std::span<const std::uint8_t> payload) {
  if (payload.size() < kWindowFixedSize + 4)
    throw RuntimeError("run-log window frame has unexpected size");
  ByteReader r(payload);
  WindowRecord win;
  win.time = r.get_f64();
  win.gamma = r.get_f64();
  win.mean_queue_length = r.get_f64();
  win.queue_second_moment = r.get_f64();
  win.capacity_scale = r.get_f64();
  win.active_devices = r.get_u64();
  win.offloads_so_far = r.get_u64();
  win.offloads_delta = r.get_u64();
  win.events_so_far = r.get_u64();
  win.events_delta = r.get_u64();
  win.sojourn_count = r.get_u64();
  win.sojourn_min = r.get_f64();
  win.sojourn_max = r.get_f64();
  win.sojourn_p50 = r.get_f64();
  win.sojourn_p95 = r.get_f64();
  win.sojourn_p99 = r.get_f64();
  win.offload_count = r.get_u64();
  win.offload_min = r.get_f64();
  win.offload_max = r.get_f64();
  win.offload_p50 = r.get_f64();
  win.offload_p95 = r.get_f64();
  win.offload_p99 = r.get_f64();
  win.tasks_lost = r.get_u64();
  win.offloads_rejected = r.get_u64();
  win.offloads_penalized = r.get_u64();
  win.fault_events_applied = r.get_u64();
  for (std::uint32_t& bin : win.threshold_histogram) bin = r.get_u32();
  const std::uint32_t clusters = r.get_u32();
  if (clusters == 0 || payload.size() != window_payload_size(clusters))
    throw RuntimeError("run-log window frame has unexpected size");
  win.cluster_gamma.resize(clusters);
  win.cluster_offloads.resize(clusters);
  for (std::uint32_t k = 0; k < clusters; ++k) {
    win.cluster_gamma[k] = r.get_f64();
    win.cluster_offloads[k] = r.get_u64();
  }
  return win;
}

std::vector<CounterValue> decode_counters(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t n = r.get_u32();
  std::vector<CounterValue> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CounterValue v;
    v.id = r.get_u16();
    v.shard = r.get_u16();
    v.value = r.get_f64();
    values.push_back(v);
  }
  if (!r.exhausted())
    throw RuntimeError("run-log counter frame has trailing bytes");
  return values;
}

RunFooter decode_footer(std::span<const std::uint8_t> payload) {
  if (payload.size() != 5 * 8)
    throw RuntimeError("run-log footer frame has unexpected size");
  ByteReader r(payload);
  RunFooter footer;
  footer.windows = r.get_u64();
  footer.total_events = r.get_u64();
  footer.measured_utilization = r.get_f64();
  footer.mean_cost = r.get_f64();
  footer.horizon = r.get_f64();
  return footer;
}

// --- writer ----------------------------------------------------------------

RunLogWriter::RunLogWriter(const std::string& path, const RunLogMeta& meta)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    throw RuntimeError("cannot open stream log for writing: " + path + ": " +
                       std::strerror(errno));
  ByteWriter header(24);
  header.put_bytes(kMagic.data(), kMagic.size());
  header.put_u32(kFormatVersion);
  header.put_u32(static_cast<std::uint32_t>(kThresholdBins));
  header.put_u32(0);  // flags (reserved)
  header.put_u32(0);  // reserved
  const auto bytes = header.take();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size())
    throw RuntimeError("failed writing stream log header: " + path_);
  write_frame(FrameKind::kMeta, encode_meta(meta));
}

RunLogWriter::~RunLogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLogWriter::write_frame(FrameKind kind,
                               std::span<const std::uint8_t> payload) {
  MEC_EXPECTS_MSG(!finished_, "stream log already finished");
  MEC_EXPECTS(payload.size() <= kMaxFramePayload);
  ByteWriter prefix(8);
  prefix.put_u32(static_cast<std::uint32_t>(kind));
  prefix.put_u32(static_cast<std::uint32_t>(payload.size()));
  ByteWriter suffix(4);
  suffix.put_u32(crc32(payload));
  const auto head = prefix.take();
  const auto tail = suffix.take();
  const bool ok =
      std::fwrite(head.data(), 1, head.size(), file_) == head.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), file_) ==
           payload.size()) &&
      std::fwrite(tail.data(), 1, tail.size(), file_) == tail.size() &&
      std::fflush(file_) == 0;
  if (!ok) throw RuntimeError("failed writing stream log frame: " + path_);
}

void RunLogWriter::append_window(const WindowRecord& window) {
  write_frame(FrameKind::kWindow, encode_window(window));
  ++windows_;
}

void RunLogWriter::append_counters(std::span<const CounterValue> values) {
  write_frame(FrameKind::kCounters, encode_counters(values));
}

void RunLogWriter::finish(const RunFooter& footer) {
  write_frame(FrameKind::kFooter, encode_footer(footer));
  finished_ = true;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw RuntimeError("failed closing stream log: " + path_);
}

// --- reader ----------------------------------------------------------------

RunLogReader::RunLogReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr)
    throw RuntimeError("cannot open stream log: " + path + ": " +
                       std::strerror(errno));
  std::array<std::uint8_t, 24> header{};
  if (std::fread(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw RuntimeError("not a .meclog file (truncated header): " + path);
  }
  if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw RuntimeError("not a .meclog file (bad magic): " + path);
  }
  version_ = load_u32(header.data() + 8);
  const std::uint32_t bins = load_u32(header.data() + 12);
  if (version_ != kFormatVersion || bins != kThresholdBins) {
    std::fclose(file_);
    file_ = nullptr;
    // A v1 log has the same family magic but no per-cluster block in its
    // window frames; parsing it as v2 would misread every window, so it is
    // rejected here instead of downstream.
    throw RuntimeError("unsupported .meclog schema in " + path + ": found v" +
                       std::to_string(version_) + " with " +
                       std::to_string(bins) + " histogram bins, this build " +
                       "reads v" + std::to_string(kFormatVersion) + " with " +
                       std::to_string(kThresholdBins) +
                       " bins; re-run the simulation to regenerate the log");
  }
}

RunLogReader::~RunLogReader() {
  if (file_ != nullptr) std::fclose(file_);
}

ReadStatus RunLogReader::next(Frame& out) {
  const long start = std::ftell(file_);
  const auto rewind = [&] {
    // Repositioning also clears the sticky EOF flag, so follow-mode callers
    // can retry next() after the file has grown.
    std::fseek(file_, start, SEEK_SET);
  };
  std::array<std::uint8_t, 8> prefix{};
  const std::size_t got = std::fread(prefix.data(), 1, prefix.size(), file_);
  if (got == 0) {
    rewind();
    return ReadStatus::kEndOfData;
  }
  if (got < prefix.size()) {
    rewind();
    return ReadStatus::kTruncated;
  }
  const std::uint32_t kind = load_u32(prefix.data());
  const std::uint32_t length = load_u32(prefix.data() + 4);
  if (kind < static_cast<std::uint32_t>(FrameKind::kMeta) ||
      kind > static_cast<std::uint32_t>(FrameKind::kFooter) ||
      length > kMaxFramePayload) {
    rewind();
    return ReadStatus::kCorrupt;
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0 &&
      std::fread(payload.data(), 1, payload.size(), file_) != payload.size()) {
    rewind();
    return ReadStatus::kTruncated;
  }
  std::array<std::uint8_t, 4> checksum{};
  if (std::fread(checksum.data(), 1, checksum.size(), file_) !=
      checksum.size()) {
    rewind();
    return ReadStatus::kTruncated;
  }
  if (crc32(payload) != load_u32(checksum.data())) {
    rewind();
    return ReadStatus::kCorrupt;
  }
  out.kind = static_cast<FrameKind>(kind);
  out.payload = std::move(payload);
  return ReadStatus::kFrame;
}

// --- whole-file scan -------------------------------------------------------

bool apply_frame(LogScan& scan, const Frame& frame, std::uint64_t index) {
  try {
    switch (frame.kind) {
      case FrameKind::kMeta:
        scan.meta = decode_meta(frame.payload);
        break;
      case FrameKind::kWindow:
        scan.windows.push_back(decode_window(frame.payload));
        break;
      case FrameKind::kCounters:
        scan.counters.push_back(decode_counters(frame.payload));
        break;
      case FrameKind::kFooter:
        scan.footer = decode_footer(frame.payload);
        break;
    }
  } catch (const RuntimeError& e) {
    scan.corrupt = true;
    scan.error = std::string(e.what()) + " (frame index " +
                 std::to_string(index) + ")";
    return false;
  }
  return true;
}

LogScan scan_log(const std::string& path) {
  RunLogReader reader(path);
  LogScan scan;
  Frame frame;
  std::uint64_t index = 0;
  for (;;) {
    const ReadStatus status = reader.next(frame);
    if (status == ReadStatus::kEndOfData) break;
    if (status == ReadStatus::kTruncated) {
      scan.truncated = true;
      break;
    }
    if (status == ReadStatus::kCorrupt) {
      scan.corrupt = true;
      scan.error =
          "corrupt frame (bad header or CRC mismatch) at frame index " +
          std::to_string(index);
      break;
    }
    if (!apply_frame(scan, frame, index)) break;
    ++index;
  }
  return scan;
}

// --- CSV export ------------------------------------------------------------

namespace {

std::string f64_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void export_windows_csv(const LogScan& scan, const std::string& csv_path,
                        const std::string& hist_path) {
  std::ofstream out(csv_path);
  if (!out)
    throw RuntimeError("cannot open CSV output file: " + csv_path);
  // Every window of one log carries the same cluster count (it is a run
  // property), so the per-cluster columns come from the first window.
  const std::size_t clusters =
      scan.windows.empty() ? 0 : scan.windows.front().cluster_gamma.size();
  out << "window,time,gamma,mean_queue_length,queue_second_moment,"
         "capacity_scale,active_devices,offloads_so_far,offloads_delta,"
         "events_so_far,events_delta,sojourn_count,sojourn_min,sojourn_max,"
         "sojourn_p50,sojourn_p95,sojourn_p99,offload_count,offload_min,"
         "offload_max,offload_p50,offload_p95,offload_p99,tasks_lost,"
         "offloads_rejected,offloads_penalized,fault_events_applied";
  for (std::size_t k = 0; k < clusters; ++k)
    out << ",cluster" << k << "_gamma,cluster" << k << "_offloads";
  out << '\n';
  for (std::size_t i = 0; i < scan.windows.size(); ++i) {
    const WindowRecord& w = scan.windows[i];
    out << i << ',' << f64_cell(w.time) << ',' << f64_cell(w.gamma) << ','
        << f64_cell(w.mean_queue_length) << ','
        << f64_cell(w.queue_second_moment) << ','
        << f64_cell(w.capacity_scale) << ',' << w.active_devices << ','
        << w.offloads_so_far << ',' << w.offloads_delta << ','
        << w.events_so_far << ',' << w.events_delta << ',' << w.sojourn_count
        << ',' << f64_cell(w.sojourn_min) << ',' << f64_cell(w.sojourn_max)
        << ',' << f64_cell(w.sojourn_p50) << ',' << f64_cell(w.sojourn_p95)
        << ',' << f64_cell(w.sojourn_p99) << ',' << w.offload_count << ','
        << f64_cell(w.offload_min) << ',' << f64_cell(w.offload_max) << ','
        << f64_cell(w.offload_p50) << ',' << f64_cell(w.offload_p95) << ','
        << f64_cell(w.offload_p99) << ',' << w.tasks_lost << ','
        << w.offloads_rejected << ',' << w.offloads_penalized << ','
        << w.fault_events_applied;
    for (std::size_t k = 0; k < clusters; ++k)
      out << ',' << f64_cell(w.cluster_gamma[k]) << ','
          << w.cluster_offloads[k];
    out << '\n';
  }
  if (!out) throw RuntimeError("failed writing CSV output file: " + csv_path);
  if (hist_path.empty()) return;
  std::ofstream hist(hist_path);
  if (!hist)
    throw RuntimeError("cannot open CSV output file: " + hist_path);
  hist << "window,bin,count\n";
  for (std::size_t i = 0; i < scan.windows.size(); ++i) {
    const auto& bins = scan.windows[i].threshold_histogram;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b] == 0) continue;
      hist << i << ',' << b << ',' << bins[b] << '\n';
    }
  }
  if (!hist)
    throw RuntimeError("failed writing CSV output file: " + hist_path);
}

}  // namespace mec::obs

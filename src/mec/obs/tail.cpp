#include "mec/obs/tail.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/table.hpp"
#include "mec/obs/counters.hpp"
#include "mec/obs/run_log.hpp"

namespace mec::obs {
namespace {

std::string value_cell(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  return io::TextTable::fmt(v, 4);
}

// Meta keys worth a line in the header (in display order).
constexpr const char* kHeaderKeys[] = {"n_devices", "clusters", "seed",
                                       "shards",    "gamma",    "warmup",
                                       "horizon",   "window",   "faults"};

void render(std::ostream& os, const std::string& path, const LogScan& scan,
            bool ansi) {
  if (ansi) os << "\x1b[2J\x1b[H";
  os << "mec tail -- " << path << '\n';
  std::string meta_line;
  for (const char* key : kHeaderKeys) {
    for (const auto& [k, v] : scan.meta) {
      if (k != key) continue;
      if (!meta_line.empty()) meta_line += "  ";
      meta_line += k + "=" + v;
    }
  }
  if (!meta_line.empty()) os << meta_line << '\n';
  os << '\n';

  if (!scan.windows.empty()) {
    // Multi-cluster logs plot one series per cluster; the scalar gamma is
    // identical to the single cluster's series, so it is only drawn alone.
    const std::size_t clusters = scan.windows.front().cluster_gamma.size();
    std::vector<io::Series> series;
    if (clusters <= 1) {
      io::Series& gamma = series.emplace_back();
      gamma.label = "gamma";
      gamma.x.reserve(scan.windows.size());
      gamma.y.reserve(scan.windows.size());
      for (const WindowRecord& w : scan.windows) {
        gamma.x.push_back(w.time);
        gamma.y.push_back(w.gamma);
      }
    } else {
      for (std::size_t k = 0; k < clusters; ++k) {
        io::Series& s = series.emplace_back();
        s.label = "c" + std::to_string(k);
        s.x.reserve(scan.windows.size());
        s.y.reserve(scan.windows.size());
        for (const WindowRecord& w : scan.windows) {
          s.x.push_back(w.time);
          s.y.push_back(k < w.cluster_gamma.size() ? w.cluster_gamma[k] : 0.0);
        }
      }
    }
    io::PlotOptions po;
    po.width = 64;
    po.height = 12;
    po.title = "gamma trajectory (" + std::to_string(scan.windows.size()) +
               " windows" +
               (clusters > 1
                    ? ", " + std::to_string(clusters) + " clusters)"
                    : ")");
    po.x_label = "time";
    po.y_label = "gamma";
    os << io::line_plot(series, po) << '\n';

    const WindowRecord& latest = scan.windows.back();
    std::uint64_t total = 0;
    std::size_t top = 0;
    for (std::size_t b = 0; b < latest.threshold_histogram.size(); ++b) {
      total += latest.threshold_histogram[b];
      if (latest.threshold_histogram[b] > 0) top = b;
    }
    if (total > 0) {
      std::vector<double> edges(top + 1), mass(top + 1);
      for (std::size_t b = 0; b <= top; ++b) {
        edges[b] = static_cast<double>(b);
        mass[b] = static_cast<double>(latest.threshold_histogram[b]) /
                  static_cast<double>(total);
      }
      io::PlotOptions po2;
      po2.width = 48;
      po2.title = "threshold histogram (latest window, t=" +
                  io::TextTable::fmt(latest.time, 2) + ")";
      po2.x_label = "floor(threshold)";
      os << io::bar_chart(edges, mass, po2) << '\n';
    }
  }

  if (!scan.counters.empty()) {
    io::TextTable table("engine counters (latest sample)");
    table.set_header({"counter", "shard", "value"});
    for (const CounterValue& v : scan.counters.back()) {
      table.add_row({counter_name(static_cast<Counter>(v.id)),
                     v.shard == kGlobalShard ? std::string("-")
                                             : std::to_string(v.shard),
                     value_cell(v.value)});
    }
    os << table.to_string() << '\n';
  }

  os << "windows=" << scan.windows.size()
     << " counter_frames=" << scan.counters.size();
  if (scan.footer.has_value())
    os << "  complete (events=" << scan.footer->total_events
       << ", measured gamma=" << io::TextTable::fmt(
              scan.footer->measured_utilization, 4)
       << ")";
  else if (scan.truncated)
    os << "  partial frame at tail (run in flight or killed)";
  else
    os << "  no footer yet";
  if (scan.corrupt) os << "  CORRUPT: " << scan.error;
  os << '\n';
}

int finish(std::ostream& os, const LogScan& scan, const TailOptions& options) {
  if (!options.csv.empty())
    export_windows_csv(scan, options.csv, options.hist_csv);
  if (scan.corrupt) {
    os << "error: " << scan.error << '\n';
    return 1;
  }
  return 0;
}

int run_check(std::ostream& os, const std::string& path,
              const TailOptions& options) {
  const LogScan scan = scan_log(path);
  if (scan.corrupt) {
    os << "FAIL " << path << ": " << scan.error << '\n';
    return 1;
  }
  if (!scan.footer.has_value()) {
    os << "FAIL " << path << ": incomplete log (no footer frame"
       << (scan.truncated ? "; truncated tail" : "") << ")\n";
    return 1;
  }
  if (!options.csv.empty())
    export_windows_csv(scan, options.csv, options.hist_csv);
  os << "OK " << path << ": " << scan.windows.size() << " windows, "
     << scan.counters.size() << " counter frames, "
     << scan.footer->total_events << " events\n";
  return 0;
}

}  // namespace

int run_tail(const std::string& path, const TailOptions& options) {
  std::ostream& os = options.out != nullptr ? *options.out : std::cout;
  try {
    if (options.check) return run_check(os, path, options);
    if (!options.follow) {
      const LogScan scan = scan_log(path);
      render(os, path, scan, /*ansi=*/false);
      return finish(os, scan, options);
    }

    RunLogReader reader(path);
    LogScan scan;
    Frame frame;
    std::uint64_t index = 0;
    std::uint64_t updates = 0;
    for (;;) {
      bool progressed = false;
      for (;;) {
        const ReadStatus status = reader.next(frame);
        if (status == ReadStatus::kFrame) {
          if (!apply_frame(scan, frame, index)) break;
          ++index;
          progressed = true;
          continue;
        }
        if (status == ReadStatus::kCorrupt) {
          scan.corrupt = true;
          scan.error =
              "corrupt frame (bad header or CRC mismatch) at frame index " +
              std::to_string(index);
        }
        // kEndOfData / kTruncated: the tail may still be growing.
        break;
      }
      if (progressed || updates == 0) {
        render(os, path, scan, options.ansi);
        ++updates;
      }
      const bool done = scan.footer.has_value() || scan.corrupt ||
                        (options.max_updates > 0 &&
                         updates >= options.max_updates);
      if (done) return finish(os, scan, options);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.interval_ms));
    }
  } catch (const std::exception& e) {
    os << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace mec::obs

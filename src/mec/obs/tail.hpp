// The `mec tail` viewer: renders a .meclog run-log in the terminal — the
// gamma trajectory, the latest threshold histogram, and the latest engine
// counter table — and can follow a growing log live (the writer flushes
// every frame, so the incremental reader simply retries at the tail).
// Shared by tools/mec_tail and the `mec tail` subcommand.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mec::obs {

struct TailOptions {
  bool follow = false;  ///< keep polling for growth until a footer appears
  bool check = false;   ///< validate-only: OK/FAIL line, exit status
  int interval_ms = 500;       ///< follow-mode poll cadence
  bool ansi = false;           ///< clear-screen repaint (follow on a tty)
  std::string csv;             ///< lossless window CSV export path
  std::string hist_csv;        ///< threshold-histogram CSV export path
  /// Stop after this many repaints (0 = unlimited); lets tests drive
  /// follow mode without a second process running forever.
  std::uint64_t max_updates = 0;
  std::ostream* out = nullptr;  ///< defaults to std::cout
};

/// Runs the viewer; returns the process exit code (0 = ok; 1 = unreadable,
/// corrupt, or --check failed on an incomplete log).  Partial logs from
/// crashed or in-flight runs render normally — only --check treats a
/// missing footer as failure.
int run_tail(const std::string& path, const TailOptions& options);

}  // namespace mec::obs

#include "mec/obs/stream.hpp"

#include <cstdio>

#include "mec/common/error.hpp"

namespace mec::obs {
namespace {

/// Snapshot of a cumulative sketch; all zeros while the sketch is empty
/// (min()/max() of an empty sketch are sentinels, not data).
void snapshot(const stats::LatencySketch* sketch, std::uint64_t& count,
              double& min, double& max, double& p50, double& p95,
              double& p99) {
  if (sketch == nullptr || sketch->count() == 0) {
    count = 0;
    min = max = p50 = p95 = p99 = 0.0;
    return;
  }
  count = sketch->count();
  min = sketch->min();
  max = sketch->max();
  p50 = sketch->p50();
  p95 = sketch->p95();
  p99 = sketch->p99();
}

}  // namespace

StreamingSink::StreamingSink(const std::string& path, const RunLogMeta& meta,
                             bool with_counters)
    : writer_(path, meta), with_counters_(with_counters) {}

void StreamingSink::on_sample(const sim::TimelinePoint& point) {
  staged_point_ = point;
  staged_ = true;
}

void StreamingSink::commit_window(const WindowExtras& extras) {
  MEC_EXPECTS_MSG(staged_, "commit_window without a staged sample");
  MEC_EXPECTS(extras.threshold_histogram.empty() ||
              extras.threshold_histogram.size() == kThresholdBins);
  MEC_EXPECTS(extras.cluster_gamma.size() == extras.cluster_offloads.size());
  staged_ = false;

  WindowRecord win;
  win.time = staged_point_.time;
  win.gamma = staged_point_.utilization_estimate;
  win.mean_queue_length = staged_point_.mean_queue_length;
  win.queue_second_moment = extras.queue_second_moment;
  win.capacity_scale = staged_point_.capacity_scale;
  win.active_devices = staged_point_.active_devices;
  win.offloads_so_far = staged_point_.offloads_so_far;
  win.offloads_delta = staged_point_.offloads_so_far - prev_offloads_;
  win.events_so_far = extras.events_so_far;
  win.events_delta = extras.events_so_far - prev_events_;
  prev_offloads_ = staged_point_.offloads_so_far;
  prev_events_ = extras.events_so_far;

  snapshot(extras.sojourns, win.sojourn_count, win.sojourn_min,
           win.sojourn_max, win.sojourn_p50, win.sojourn_p95, win.sojourn_p99);
  snapshot(extras.offload_delays, win.offload_count, win.offload_min,
           win.offload_max, win.offload_p50, win.offload_p95, win.offload_p99);

  win.tasks_lost = extras.tasks_lost;
  win.offloads_rejected = extras.offloads_rejected;
  win.offloads_penalized = extras.offloads_penalized;
  win.fault_events_applied = extras.fault_events_applied;
  for (std::size_t b = 0; b < extras.threshold_histogram.size(); ++b)
    win.threshold_histogram[b] = extras.threshold_histogram[b];

  if (extras.cluster_gamma.empty()) {
    win.cluster_gamma = {win.gamma};
    win.cluster_offloads = {win.offloads_so_far};
  } else {
    win.cluster_gamma.assign(extras.cluster_gamma.begin(),
                             extras.cluster_gamma.end());
    win.cluster_offloads.assign(extras.cluster_offloads.begin(),
                                extras.cluster_offloads.end());
  }

  writer_.append_window(win);
}

void StreamingSink::append_counters(std::span<const CounterValue> values) {
  if (!with_counters_) return;
  writer_.append_counters(values);
}

void StreamingSink::finish(const RunFooter& footer) { writer_.finish(footer); }

std::string meta_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace mec::obs

// Little-endian byte codec shared by the .meclog run-log frames
// (obs/run_log.cpp) and the transport barrier-payload frames
// (parallel/transport.cpp).  The wire format is a contract: every multi-byte
// field is little-endian on disk and on the pipe, independent of the host,
// and doubles travel as their IEEE-754 bit pattern (bit_cast, never a
// narrowing conversion), so encode/decode round-trips are bit-exact across
// processes and across machines.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mec/common/error.hpp"

namespace mec::obs::wire {

/// Appends little-endian scalars to a growing byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t reserve = 0) { bytes_.reserve(reserve); }

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v & 0xFFu));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads little-endian scalars from a byte span; throws mec::RuntimeError on
/// underflow, so a truncated or corrupt payload can never be misparsed into
/// out-of-range reads.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint16_t get_u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_string(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size())
      throw RuntimeError("run-log payload underflow while decoding");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mec::obs::wire

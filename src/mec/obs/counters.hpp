// Engine-counter catalogue for the streaming telemetry subsystem.
//
// Counters are sampled only at observation-grid barriers and only when a
// stream log is attached, so the event loop itself never pays for them; the
// few counters that live inside hot structures (the two-gear EventQueue's
// gear switches and calendar retunes) are incremented on rare, already-cold
// paths and compile to nothing when the MEC_OBS_COUNTERS CMake option is
// OFF (see common/instrument.hpp).
//
// Counter samples are wall-clock diagnostics: unlike window frames they are
// NOT deterministic across shard counts or machines, and no test compares
// them bitwise.  Ids are stable across versions — append only.
#pragma once

#include <cstdint>

#include "mec/common/instrument.hpp"

namespace mec::obs {

enum class Counter : std::uint16_t {
  kShardEvents = 0,        ///< cumulative events executed (per shard)
  kShardQueueDepth = 1,    ///< future events pending at the barrier (per shard)
  kShardCalendarGear = 2,  ///< 1 when the queue is in calendar gear (per shard)
  kShardGearSwitches = 3,  ///< cumulative heap<->calendar switches (per shard)
  kShardCalendarRetunes = 4,  ///< cumulative calendar resizes (per shard)
  kShardLegSeconds = 5,    ///< wall seconds of the last inter-barrier leg
  kBarrierWaitSeconds = 6, ///< max-min leg seconds across shards (global)
  kReplayRecords = 7,      ///< gamma-replay records merged this window (global)
  kReplayDeliveries = 8,   ///< cumulative edge deliveries replayed (global)
  kFaultEventsApplied = 9, ///< cumulative fault-schedule actions (global)
  kEventsPerSecond = 10,   ///< events/s over the last leg, all shards (global)
  // Process-transport diagnostics (per rank; emitted only when the run uses
  // TransportKind::kProcess — an in-process run has no wire to meter).
  kRankBarrierWaitSeconds = 11,  ///< coordinator wait for the rank's payload
  kRankPayloadBytes = 12,        ///< cumulative payload bytes shipped
  kTransportFramesSent = 13,     ///< frames coordinator -> rank (cumulative)
  kTransportFramesReceived = 14, ///< frames rank -> coordinator (cumulative)
  kCount
};

/// Stable snake_case name for the catalogue (docs, meta frame, tail table).
constexpr const char* counter_name(Counter id) noexcept {
  switch (id) {
    case Counter::kShardEvents: return "shard_events";
    case Counter::kShardQueueDepth: return "shard_queue_depth";
    case Counter::kShardCalendarGear: return "shard_calendar_gear";
    case Counter::kShardGearSwitches: return "shard_gear_switches";
    case Counter::kShardCalendarRetunes: return "shard_calendar_retunes";
    case Counter::kShardLegSeconds: return "shard_leg_seconds";
    case Counter::kBarrierWaitSeconds: return "barrier_wait_seconds";
    case Counter::kReplayRecords: return "replay_records";
    case Counter::kReplayDeliveries: return "replay_deliveries";
    case Counter::kFaultEventsApplied: return "fault_events_applied";
    case Counter::kEventsPerSecond: return "events_per_second";
    case Counter::kRankBarrierWaitSeconds: return "rank_barrier_wait_seconds";
    case Counter::kRankPayloadBytes: return "rank_payload_bytes";
    case Counter::kTransportFramesSent: return "transport_frames_sent";
    case Counter::kTransportFramesReceived: return "transport_frames_received";
    case Counter::kCount: break;
  }
  return "unknown";
}

inline constexpr std::uint16_t kCounterCount =
    static_cast<std::uint16_t>(Counter::kCount);

}  // namespace mec::obs

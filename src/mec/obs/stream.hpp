// Windowed streaming sink: folds each observation-grid instant into one
// fixed-size WindowRecord and flushes it to a .meclog run-log at the
// barrier, so a long-horizon run's telemetry memory is O(devices + one
// window) instead of O(samples).
//
// The sink receives the engine's left-limit TimelinePoint through the
// MetricsSink interface (so it composes with TimelineRecorder — a run can
// stream *and* keep the in-memory timeline, which is exactly what the
// equivalence tests compare), and the barrier-only extras — cumulative
// event totals, merged latency sketches, fault counters, the threshold
// histogram — through commit_window().  Every value folded into a window
// is deterministic across shard counts; see run_log.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "mec/obs/run_log.hpp"
#include "mec/sim/observer.hpp"
#include "mec/stats/latency_sketch.hpp"

namespace mec::obs {

/// Barrier-time inputs that do not travel in the TimelinePoint.  Sketch
/// pointers may be null (no tasks of the kind yet); the histogram span is
/// either empty or exactly kThresholdBins wide.
struct WindowExtras {
  double queue_second_moment = 0.0;  ///< left-limit mean of q^2
  std::uint64_t events_so_far = 0;   ///< cumulative events incl. deliveries
  const stats::LatencySketch* sojourns = nullptr;        ///< cumulative
  const stats::LatencySketch* offload_delays = nullptr;  ///< cumulative
  std::uint64_t tasks_lost = 0;
  std::uint64_t offloads_rejected = 0;
  std::uint64_t offloads_penalized = 0;
  std::uint64_t fault_events_applied = 0;
  std::span<const std::uint32_t> threshold_histogram;
  /// Per-edge-cluster gamma estimates and cumulative measured offload
  /// counts at this barrier (equal, non-zero sizes).  Both empty means a
  /// single-cluster run: the window then carries the staged point's scalar
  /// gamma and offload total as its one-cluster block.
  std::span<const double> cluster_gamma;
  std::span<const std::uint64_t> cluster_offloads;
};

/// MetricsSink that streams windows to disk instead of accumulating them.
/// Protocol per grid sample instant: on_sample(point) stages the point,
/// commit_window(extras) folds and writes the frame.  finish(footer) seals
/// the log; a sink destroyed without finish() leaves a valid footer-less
/// log (what a crashed run looks like).
class StreamingSink final : public sim::MetricsSink {
 public:
  /// Opens `path` and writes the header + meta frame.  `with_counters`
  /// requests counter frames (the engine additionally requires the build
  /// to have MEC_OBS_COUNTERS on).  Throws mec::RuntimeError on I/O error.
  StreamingSink(const std::string& path, const RunLogMeta& meta,
                bool with_counters);

  void on_sample(const sim::TimelinePoint& point) override;

  /// Folds the staged point + extras into a WindowRecord and flushes it.
  /// Requires a staged point (one on_sample per commit).
  void commit_window(const WindowExtras& extras);

  /// Writes one counter frame (no-op unless counters_enabled()).
  void append_counters(std::span<const CounterValue> values);

  void finish(const RunFooter& footer);

  bool counters_enabled() const noexcept { return with_counters_; }
  std::uint64_t windows() const noexcept { return writer_.windows_written(); }
  const std::string& path() const noexcept { return writer_.path(); }

 private:
  RunLogWriter writer_;
  bool with_counters_;
  bool staged_ = false;
  sim::TimelinePoint staged_point_{};
  std::uint64_t prev_offloads_ = 0;
  std::uint64_t prev_events_ = 0;
};

/// Formats a double for the meta frame with full round-trip precision.
std::string meta_double(double value);

}  // namespace mec::obs

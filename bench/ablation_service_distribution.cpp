// Ablation X6: how much does the exponential-service assumption matter?
//
// Theorem 1/2 assume exponential local service; the paper argues by
// simulation that the conclusions persist for general laws.  Using the exact
// phase-type threshold-queue solver, this bench quantifies the claim
// analytically across service variability (SCV from 1/8 to 8):
//   * the equilibrium utilization under model-aware thresholds,
//   * the cost penalty of *model mismatch* — devices applying the
//     exponential Lemma-1 oracle (only their mean rate, as the paper's
//     practical DTU does) when the true service law is not exponential.
#include <cstdio>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/general_service.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 100 : 300;  // CTMC solves are O(n^3)
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, n);
  const auto pop = population::sample_population(cfg, 23);

  const std::vector<std::pair<const char*, queueing::PhaseType>> all_laws = {
      {"Erlang-8  (SCV 0.125)", queueing::erlang_phase(8, 1.0)},
      {"Erlang-4  (SCV 0.25)", queueing::erlang_phase(4, 1.0)},
      {"Erlang-2  (SCV 0.5)", queueing::erlang_phase(2, 1.0)},
      {"exponential (SCV 1)", queueing::exponential_phase(1.0)},
      {"H2 (SCV 2)", queueing::hyperexponential_from_scv(1.0, 2.0)},
      {"H2 (SCV 4)", queueing::hyperexponential_from_scv(1.0, 4.0)},
      {"H2 (SCV 8)", queueing::hyperexponential_from_scv(1.0, 8.0)},
  };
  const std::vector<std::pair<const char*, queueing::PhaseType>> laws =
      ctx.smoke() ? std::vector<std::pair<const char*, queueing::PhaseType>>{
                        all_laws[1], all_laws[3], all_laws[5]}
                  : all_laws;

  std::printf("=== Ablation: service-time distribution (exact phase-type) ===\n");
  std::printf("population: %zu users of %s\n\n", pop.size(),
              cfg.name.c_str());

  // Reference: the exponential-theory equilibrium and its thresholds.
  const core::MfneResult exp_eq =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);

  io::TextTable table("equilibrium vs service variability");
  table.set_header({"service law", "gamma* (aware)", "cost (aware)",
                    "cost (exp-oracle)", "mismatch penalty"});
  for (const auto& [label, shape] : laws) {
    const core::PhaseTypeEquilibrium aware = core::solve_phase_type_equilibrium(
        pop.users, shape, cfg.delay, cfg.capacity, 1e-4);

    // Mismatched: exponential Lemma-1 thresholds, true phase-type queue,
    // at the utilization those thresholds actually induce.
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 25; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double g = cfg.delay(mid);
      double acc = 0.0;
      for (const auto& u : pop.users) {
        const auto x = static_cast<double>(core::best_threshold(u, g));
        acc += u.arrival_rate *
               queueing::tro_metrics_phase_type(
                   u.arrival_rate, shape.scaled_to_mean(1.0 / u.service_rate),
                   x)
                   .offload_probability;
      }
      (acc / (static_cast<double>(pop.size()) * cfg.capacity) > mid ? lo : hi) =
          mid;
    }
    const double gamma_mis = 0.5 * (lo + hi);
    const double g_mis = cfg.delay(gamma_mis);
    double cost_mis = 0.0;
    for (const auto& u : pop.users)
      cost_mis += core::phase_type_cost(
          u, shape, static_cast<double>(core::best_threshold(u, g_mis)),
          g_mis);
    cost_mis /= static_cast<double>(pop.size());

    table.add_row(
        {label, io::TextTable::fmt(aware.gamma_star, 4),
         io::TextTable::fmt(aware.average_cost, 4),
         io::TextTable::fmt(cost_mis, 4),
         io::TextTable::fmt(
             100.0 * (cost_mis - aware.average_cost) / aware.average_cost,
             2) +
             "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "exponential-theory reference: gamma* = %.4f, cost = %.4f\n\n",
      exp_eq.gamma_star,
      core::average_cost(pop.users,
                         std::vector<double>(exp_eq.thresholds.begin(),
                                             exp_eq.thresholds.end()),
                         cfg.delay, exp_eq.gamma_star));
  std::printf(
      "Reading: burstier service (higher SCV) raises queues, pushing more\n"
      "work to the edge and raising gamma*; yet the *mismatch penalty* of\n"
      "running the exponential oracle stays small, which is exactly why the\n"
      "paper's mean-rate-only practical DTU works on real traces.\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_service_distribution",
     "Ablation X6: exact phase-type equilibria vs service-law variability",
     {},
     run});

}  // namespace

// Shared harness for the reproduction benches.
//
// Every experiment that reproduces a paper figure/table (or an ablation) is
// a *registered function*, not a standalone main: it declares its flags as
// typed specs, receives a validated Context, and the runner supplies the
// scaffold every bench used to hand-roll — Args parsing, automatic
// unknown-flag rejection, bare-value-flag rejection, `--out-dir` routing
// through io::output_path, uniform `BENCH {...}` JSON emission, the
// try/catch exit-code wrapper, and `--list` / `--smoke` / `--help`.
//
//   mec_bench --list                 enumerate registered experiments
//   mec_bench <name> [flags]         run one experiment
//   mec_bench <name> --smoke         shrunken deterministic run for CI
//   mec_bench <name> --help          show the experiment's flag table
//
// Common flags (every experiment): --smoke, --out-dir=<dir> (default
// "results"), --out=<file> (append BENCH JSON lines), --help.
//
// Registration happens at static-initialization time from each experiment's
// translation unit:
//
//   namespace {
//   int run(mec::bench::Context& ctx) { ... }
//   const bool kReg = mec::bench::register_experiment(
//       {"fig2_q_alpha", "Fig. 2: Q(x) and alpha(x) vs threshold x",
//        {{"grid-step", mec::bench::FlagKind::kDouble, "0.05", "x grid"}},
//        run});
//   }  // namespace
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mec/io/args.hpp"
#include "mec/io/json.hpp"

namespace mec::bench {

enum class FlagKind { kString, kLong, kDouble, kBool, kPath };

/// One declared flag.  `default_value` is textual (what --help shows and
/// what the typed getters parse when the flag is absent); for kString and
/// kPath an empty default means "unset".
struct FlagSpec {
  std::string name;
  FlagKind kind = FlagKind::kString;
  std::string default_value;
  std::string help;
};

class Context;
using BenchFn = std::function<int(Context&)>;

struct Experiment {
  std::string name;
  std::string summary;  ///< one line, shown by --list
  std::vector<FlagSpec> flags;
  BenchFn fn;
};

/// Validated view of one experiment invocation.  Typed getters check the
/// requested flag against the declared specs (name and kind), so an
/// experiment cannot read a flag it never declared.
class Context {
 public:
  Context(const Experiment& experiment, const io::Args& args);

  const std::string& name() const noexcept { return experiment_.name; }
  /// CI smoke mode: experiments shrink their workload but keep the shape.
  bool smoke() const noexcept { return smoke_; }
  const std::string& out_dir() const noexcept { return out_dir_; }
  /// Routes `filename` under --out-dir (created on demand).
  std::string output_path(const std::string& filename) const;

  bool has(const std::string& flag) const;
  std::string get_string(const std::string& flag) const;
  std::string get_path(const std::string& flag) const;
  long get_long(const std::string& flag) const;
  double get_double(const std::string& flag) const;
  bool get_bool(const std::string& flag) const;

  /// Emits one uniform machine-parsable result line to stdout —
  /// `BENCH {"bench":"<name>", ...fields}` — and appends it to the --out
  /// file when one was given.
  void emit_bench(std::map<std::string, io::Json> fields) const;

 private:
  const FlagSpec& spec(const std::string& flag, FlagKind kind) const;

  const Experiment& experiment_;
  const io::Args& args_;
  bool smoke_ = false;
  std::string out_dir_;
  std::string out_file_;
};

/// Adds an experiment to the global registry; call from a namespace-scope
/// initializer.  Throws mec::RuntimeError on a duplicate name, an empty
/// name, or a declared flag that collides with a common runner flag.
bool register_experiment(Experiment experiment);

/// Registered experiments, sorted by name.
std::vector<const Experiment*> experiments();

/// Looks up one experiment; nullptr when unknown.
const Experiment* find_experiment(const std::string& name);

/// Full flag universe for an experiment: its declared flags plus the
/// runner's common flags.
std::set<std::string> known_flags(const Experiment& experiment);

/// The runner entry point: parses argv, dispatches --list/--help or the
/// named experiment, validates flags (unknown flags and bare value-typed
/// flags exit non-zero), and maps exceptions to exit code 1.
int run_main(int argc, const char* const* argv);

}  // namespace mec::bench

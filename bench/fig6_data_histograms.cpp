// Reproduces Fig. 6: normalized histograms of the measured datasets — (a)
// local processing time of YOLOv3 object detection on a Raspberry Pi 4, and
// (b) WiFi upload (offloading) latency — using the library's synthetic
// stand-ins (see DESIGN.md §5 for the substitution rationale).
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/runner.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/random/empirical_data.hpp"

namespace {

void show(const mec::random::EmpiricalDataset& data, const char* title,
          const std::string& csv_path) {
  using namespace mec;
  const auto [edges, mass] = data.histogram(24);
  io::PlotOptions opt;
  opt.title = title;
  opt.width = 60;
  opt.x_label = "seconds";
  std::printf("%s\n", io::bar_chart(edges, mass, opt).c_str());
  std::printf(
      "  n=%zu  mean=%.4f  sd=%.4f  median=%.4f  p95=%.4f  max=%.4f\n\n",
      data.size(), data.mean(), std::sqrt(data.variance()),
      data.quantile(0.5), data.quantile(0.95), data.max());
  io::write_csv(csv_path, {"bin_left_edge", "mass"}, {edges, mass});
  std::printf("wrote %s (%zu rows)\n\n", csv_path.c_str(), edges.size());
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  std::printf("=== Fig. 6: statistics of the (synthetic) measured data ===\n\n");

  const auto times = random::synthetic_yolo_processing_times();
  show(times, "(a) local processing time (YOLOv3 on RPi 4, synthetic)",
       ctx.output_path("fig6a_processing_time_hist.csv"));

  const auto latencies = random::synthetic_wifi_offload_latencies();
  show(latencies, "(b) offloading latency (WiFi upload, synthetic)",
       ctx.output_path("fig6b_offload_latency_hist.csv"));

  const auto rates = random::service_rates_from_times(times);
  std::printf(
      "derived service-rate dataset: mean = %.4f (paper's E[S] = %.4f)\n",
      rates.mean(), random::kPaperMeanServiceRate);
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig6_data_histograms",
     "Fig. 6: histograms of the (synthetic) measured datasets",
     {},
     run});

}  // namespace

#include "bench/sweep.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "bench/runner.hpp"
#include "mec/baseline/dpo.hpp"
#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/fault/fault_text.hpp"
#include "mec/io/json.hpp"
#include "mec/obs/run_log.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario_text.hpp"
#include "mec/sim/cluster_policies.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::bench {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw RuntimeError("sweep spec line " + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i)
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  return out;
}

double parse_spec_number(const std::string& value, int line, const char* key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos == value.size() && std::isfinite(v)) return v;
  } catch (const std::exception&) {
  }
  fail(line, std::string(key) + " expects a number, got '" + value + "'");
}

std::uint64_t parse_spec_integer(const std::string& value, int line,
                                 const char* key) {
  const double v = parse_spec_number(value, line, key);
  if (v < 0.0 || v != std::floor(v))
    fail(line, std::string(key) + " expects a non-negative integer, got '" +
                   value + "'");
  return static_cast<std::uint64_t>(v);
}

/// Filesystem-safe label characters; everything else becomes '-'.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '_' &&
        c != '-')
      c = '-';
  return s;
}

bool is_preset_scenario(const std::string& token) {
  const std::string head = token.substr(0, token.find(':'));
  return head == "theoretical" || head == "comparison" || head == "practical";
}

population::LoadRegime parse_regime_token(const std::string& name) {
  if (name == "low") return population::LoadRegime::kBelowService;
  if (name == "eq") return population::LoadRegime::kAtService;
  if (name == "high") return population::LoadRegime::kAboveService;
  throw RuntimeError("unknown load regime '" + name + "' (low|eq|high)");
}

/// Syntax check for preset scenario tokens (file tokens are checked when the
/// campaign runs and the file is loaded).
void validate_scenario_token(const std::string& token, int line) {
  if (!is_preset_scenario(token)) return;
  const auto parts = split(token, ':');
  if (parts.size() < 2 || parts.size() > 3)
    fail(line, "scenario preset '" + token +
                   "' wants <preset>:<low|eq|high>[:<n>]");
  try {
    (void)parse_regime_token(parts[1]);
    if (parts.size() == 3 && parse_spec_integer(parts[2], line, "scenario n") ==
                                 0)
      fail(line, "scenario population size must be >= 1");
  } catch (const RuntimeError& e) {
    fail(line, e.what());
  }
}

enum class PolicyKind { kTro, kDpo, kFixed, kPrice, kMinority };

struct PolicyToken {
  PolicyKind kind = PolicyKind::kTro;
  double fixed_threshold = 0.0;  ///< kFixed only
};

PolicyToken parse_policy_token(const std::string& token, int line) {
  if (token == "tro") return {PolicyKind::kTro, 0.0};
  if (token == "dpo") return {PolicyKind::kDpo, 0.0};
  if (token == "price") return {PolicyKind::kPrice, 0.0};
  if (token == "minority") return {PolicyKind::kMinority, 0.0};
  const auto parts = split(token, ':');
  if (parts.size() == 2 && parts[0] == "fixed") {
    const double x = parse_spec_number(parts[1], line, "fixed threshold");
    if (x < 0.0) fail(line, "fixed threshold must be >= 0");
    return {PolicyKind::kFixed, x};
  }
  fail(line, "unknown policy '" + token +
                 "' (tro|dpo|fixed:<x>|price|minority)");
}

population::ScenarioConfig resolve_scenario(const std::string& token) {
  if (!is_preset_scenario(token))
    return population::load_scenario_file(token);
  const auto parts = split(token, ':');
  const auto regime = parse_regime_token(parts[1]);
  const std::size_t n =
      parts.size() == 3 ? static_cast<std::size_t>(std::stoull(parts[2])) : 0;
  if (parts[0] == "theoretical")
    return population::theoretical_scenario(regime, n != 0 ? n : 10'000);
  if (parts[0] == "comparison")
    return population::theoretical_comparison_scenario(regime,
                                                       n != 0 ? n : 1'000);
  return population::practical_scenario(regime, n != 0 ? n : 1'000);
}

std::string scenario_label(const std::string& token) {
  if (is_preset_scenario(token)) return sanitize(token);
  return sanitize(std::filesystem::path(token).stem().string());
}

std::string fault_label(const std::string& token) {
  if (token == "none") return "nofault";
  if (token == "embedded") return "embedded";
  return sanitize(std::filesystem::path(token).stem().string());
}

std::string policy_label(const std::string& token) { return sanitize(token); }

const std::string* find_meta(const obs::RunLogMeta& meta,
                             const std::string& key) {
  for (const auto& [k, v] : meta)
    if (k == key) return &v;
  return nullptr;
}

bool meta_matches_integer(const obs::RunLogMeta& meta, const std::string& key,
                          std::uint64_t expected) {
  const std::string* v = find_meta(meta, key);
  return v != nullptr && *v == std::to_string(expected);
}

bool meta_matches_double(const obs::RunLogMeta& meta, const std::string& key,
                         double expected) {
  const std::string* v = find_meta(meta, key);
  if (v == nullptr) return false;
  try {
    return std::stod(*v) == expected;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

SweepSpec parse_sweep_spec(const std::string& text) {
  SweepSpec spec;
  std::set<std::string> seen_scalars;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  int last_line = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    last_line = lineno;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) fail(lineno, "expected 'key = value'");

    const bool scalar = key == "out-dir" || key == "seed" || key == "warmup" ||
                        key == "horizon" || key == "window" ||
                        key == "replications";
    if (scalar && !seen_scalars.insert(key).second)
      fail(lineno, "duplicate " + key + " (scalar keys appear once)");

    if (key == "out-dir") {
      spec.out_dir = value;
    } else if (key == "seed") {
      spec.seed = parse_spec_integer(value, lineno, "seed");
    } else if (key == "warmup") {
      spec.warmup = parse_spec_number(value, lineno, "warmup");
      if (spec.warmup < 0.0) fail(lineno, "warmup must be >= 0");
    } else if (key == "horizon") {
      spec.horizon = parse_spec_number(value, lineno, "horizon");
      if (spec.horizon <= 0.0) fail(lineno, "horizon must be > 0");
    } else if (key == "window") {
      spec.window = parse_spec_number(value, lineno, "window");
      if (spec.window <= 0.0) fail(lineno, "window must be > 0");
    } else if (key == "replications") {
      spec.replications = static_cast<std::size_t>(
          parse_spec_integer(value, lineno, "replications"));
      if (spec.replications == 0) fail(lineno, "replications must be >= 1");
    } else if (key == "scenario") {
      validate_scenario_token(value, lineno);
      for (const std::string& existing : spec.scenarios)
        if (existing == value) fail(lineno, "duplicate scenario '" + value + "'");
      spec.scenarios.push_back(value);
    } else if (key == "fault") {
      for (const std::string& existing : spec.faults)
        if (existing == value) fail(lineno, "duplicate fault '" + value + "'");
      spec.faults.push_back(value);
    } else if (key == "policy") {
      (void)parse_policy_token(value, lineno);
      for (const std::string& existing : spec.policies)
        if (existing == value) fail(lineno, "duplicate policy '" + value + "'");
      spec.policies.push_back(value);
    } else if (key == "clusters") {
      const auto k = static_cast<std::size_t>(
          parse_spec_integer(value, lineno, "clusters"));
      if (k == 0) fail(lineno, "clusters must be >= 1");
      for (const std::size_t existing : spec.clusters)
        if (existing == k) fail(lineno, "duplicate clusters " + value);
      spec.clusters.push_back(k);
    } else if (key == "shards") {
      const auto k = static_cast<std::size_t>(
          parse_spec_integer(value, lineno, "shards"));
      if (k == 0) fail(lineno, "shards must be >= 1");
      for (const std::size_t existing : spec.shards)
        if (existing == k) fail(lineno, "duplicate shards " + value);
      spec.shards.push_back(k);
    } else {
      fail(lineno, "unknown key '" + key + "'");
    }
  }
  if (spec.scenarios.empty())
    fail(last_line == 0 ? 1 : last_line,
         "a sweep needs at least one 'scenario =' line");
  if (spec.faults.empty()) spec.faults = {"none"};
  if (spec.policies.empty()) spec.policies = {"tro"};
  if (spec.clusters.empty()) spec.clusters = {1};
  if (spec.shards.empty()) spec.shards = {1};
  return spec;
}

SweepSpec load_sweep_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open sweep spec " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_sweep_spec(text.str());
  } catch (const RuntimeError& e) {
    throw RuntimeError(path + ": " + e.what());
  }
}

std::vector<SweepCell> enumerate_cells(const SweepSpec& spec) {
  std::vector<SweepCell> cells;
  std::size_t index = 0;
  const std::vector<std::size_t> clusters =
      spec.clusters.empty() ? std::vector<std::size_t>{1} : spec.clusters;
  for (std::size_t si = 0; si < spec.scenarios.size(); ++si)
    for (std::size_t fi = 0; fi < spec.faults.size(); ++fi)
      for (std::size_t pi = 0; pi < spec.policies.size(); ++pi)
        for (std::size_t ci = 0; ci < clusters.size(); ++ci)
          for (std::size_t ki = 0; ki < spec.shards.size(); ++ki)
            for (std::size_t r = 0; r < spec.replications; ++r) {
              SweepCell cell;
              cell.index = index;
              cell.scenario = spec.scenarios[si];
              cell.fault = spec.faults[fi];
              cell.policy = spec.policies[pi];
              cell.cluster_count = clusters[ci];
              cell.shard_count = spec.shards[ki];
              cell.replication = r;
              // Seeds hang off the cell's *position in the grid*, never off
              // how many cells ran before it, so resuming reproduces exactly
              // the seeds a fresh campaign would use.
              cell.seed = parallel::replication_seed(spec.seed, index);
              cell.label = "s" + std::to_string(si) + "-" +
                           scenario_label(cell.scenario) + "__f" +
                           std::to_string(fi) + "-" + fault_label(cell.fault) +
                           "__p" + std::to_string(pi) + "-" +
                           policy_label(cell.policy) + "__c" +
                           std::to_string(cell.cluster_count) + "__k" +
                           std::to_string(cell.shard_count) + "__r" +
                           std::to_string(r);
              cell.path = spec.out_dir + "/" + cell.label + ".meclog";
              cells.push_back(std::move(cell));
              ++index;
            }
  return cells;
}

bool cell_output_valid(const SweepCell& cell, const SweepSpec& spec) {
  if (!std::filesystem::exists(cell.path)) return false;
  obs::LogScan scan;
  try {
    scan = obs::scan_log(cell.path);
  } catch (const std::exception&) {
    return false;  // unreadable or foreign file: treat as not-yet-run
  }
  return scan.complete() &&
         meta_matches_integer(scan.meta, "seed", cell.seed) &&
         meta_matches_integer(scan.meta, "clusters", cell.cluster_count) &&
         meta_matches_integer(scan.meta, "shards", cell.shard_count) &&
         meta_matches_double(scan.meta, "warmup", spec.warmup) &&
         meta_matches_double(scan.meta, "horizon", spec.horizon) &&
         meta_matches_double(scan.meta, "window", spec.window);
}

namespace {

/// Per-scenario state shared by all of that scenario's cells: the resolved
/// config, the population (sampled once with the campaign seed, so every
/// cell of a scenario sees identical users), and per-policy equilibria.
struct ScenarioEntry {
  population::ScenarioConfig config;
  population::Population pop;
};

struct PolicySolve {
  PolicyToken token;
  double gamma_star = 0.0;     ///< equilibrium utilization (tro/dpo)
  std::vector<double> values;  ///< thresholds (tro/fixed) or rhos (dpo)
  bool quasi_stationary = false;  ///< pin fixed_gamma = gamma_star
};

PolicySolve solve_policy(const ScenarioEntry& sc, const std::string& token) {
  PolicySolve solve;
  solve.token = parse_policy_token(token, 0);
  switch (solve.token.kind) {
    case PolicyKind::kTro: {
      const core::MfneResult r =
          core::solve_mfne(sc.pop.users, sc.config.delay, sc.config.capacity);
      solve.gamma_star = r.gamma_star;
      solve.values.assign(r.thresholds.begin(), r.thresholds.end());
      solve.quasi_stationary = true;
      break;
    }
    case PolicyKind::kDpo: {
      const baseline::DpoEquilibrium eq = baseline::solve_dpo_equilibrium(
          sc.pop.users, sc.config.delay, sc.config.capacity);
      solve.gamma_star = eq.gamma_star;
      solve.values = eq.rhos;
      solve.quasi_stationary = true;
      break;
    }
    case PolicyKind::kFixed:
      solve.values.assign(sc.pop.size(), solve.token.fixed_threshold);
      break;
    case PolicyKind::kPrice: {
      // The MFNE utilization is the dual-ascent target; thresholds are
      // derived live from the prices, so no per-device values here.
      const core::MfneResult r =
          core::solve_mfne(sc.pop.users, sc.config.delay, sc.config.capacity);
      solve.gamma_star = r.gamma_star;
      break;
    }
    case PolicyKind::kMinority: {
      // Active clusters apply the MFNE thresholds; the game gates them.
      const core::MfneResult r =
          core::solve_mfne(sc.pop.users, sc.config.delay, sc.config.capacity);
      solve.gamma_star = r.gamma_star;
      solve.values.assign(r.thresholds.begin(), r.thresholds.end());
      break;
    }
  }
  return solve;
}

std::shared_ptr<const fault::FaultSchedule> resolve_faults(
    const ScenarioEntry& sc, const std::string& token) {
  if (token == "none") return nullptr;
  if (token == "embedded") {
    if (sc.config.fault_lines.empty())
      throw RuntimeError("fault token 'embedded': scenario '" +
                         sc.config.name + "' has no fault = lines");
    std::string text;
    for (const std::string& line : sc.config.fault_lines) {
      text += line;
      text += '\n';
    }
    return std::make_shared<const fault::FaultSchedule>(
        fault::parse_fault_schedule(text, &sc.config));
  }
  return std::make_shared<const fault::FaultSchedule>(
      fault::load_fault_schedule_file(token, &sc.config));
}

/// Topology for one cell: cluster count from the sweep axis; the scenario's
/// shares apply only when they describe exactly that many clusters.
sim::ClusterTopology cell_topology(const SweepCell& cell,
                                   const ScenarioEntry& sc) {
  sim::ClusterTopology topology;
  topology.clusters = cell.cluster_count;
  if (sc.config.cluster_shares.size() == cell.cluster_count)
    topology.shares = sc.config.cluster_shares;
  return topology;
}

void run_cell(const SweepSpec& spec, const SweepCell& cell,
              const ScenarioEntry& sc, const PolicySolve& policy,
              const std::shared_ptr<const fault::FaultSchedule>& faults) {
  const sim::ClusterTopology topology = cell_topology(cell, sc);

  std::vector<double> values = policy.values;
  if (faults && faults->churn_arrivals() > 0) {
    // Churn joiners best-respond to the same equilibrium utilization.
    const double g_star = sc.config.delay(policy.gamma_star);
    for (const core::UserParams& u : faults->churn_users())
      switch (policy.token.kind) {
        case PolicyKind::kTro:
        case PolicyKind::kMinority:
          values.push_back(
              static_cast<double>(core::best_threshold(u, g_star)));
          break;
        case PolicyKind::kDpo:
          values.push_back(baseline::optimal_offload_probability(u, g_star));
          break;
        case PolicyKind::kFixed:
          values.push_back(policy.token.fixed_threshold);
          break;
        case PolicyKind::kPrice:
          break;  // thresholds derive from the live prices
      }
  }

  if (policy.token.kind == PolicyKind::kPrice) {
    sim::PriceBasedOptions po;
    po.gamma_target = policy.gamma_star;
    po.update_period = spec.window;  // epochs ride the sample barriers
    po.warmup = spec.warmup;
    po.horizon = spec.horizon;
    po.seed = cell.seed;
    po.topology = topology;
    po.faults = faults;
    po.shards = cell.shard_count;
    po.sample_interval = spec.window;
    po.stream_log = cell.path;
    po.stream_counters = false;
    po.record_timeline = false;
    (void)sim::run_price_based(sc.pop.users, sc.config.capacity,
                               sc.config.delay, po);
    return;
  }
  if (policy.token.kind == PolicyKind::kMinority) {
    sim::MinorityGameRunOptions mo;
    mo.game.seed = cell.seed;
    mo.thresholds = std::move(values);
    mo.update_period = spec.window;
    mo.warmup = spec.warmup;
    mo.horizon = spec.horizon;
    mo.seed = cell.seed;
    mo.topology = topology;
    mo.faults = faults;
    mo.shards = cell.shard_count;
    mo.sample_interval = spec.window;
    mo.stream_log = cell.path;
    mo.stream_counters = false;
    mo.record_timeline = false;
    (void)sim::run_minority_game(sc.pop.users, sc.config.capacity,
                                 sc.config.delay, mo);
    return;
  }

  sim::SimulationOptions so;
  so.warmup = spec.warmup;
  so.horizon = spec.horizon;
  so.seed = cell.seed;
  so.sample_interval = spec.window;
  so.shards = cell.shard_count;  // explicit: never MEC_SHARDS or autotune
  so.stream_log = cell.path;
  // Counter frames carry wall-clock diagnostics; leaving them out keeps a
  // cell's .meclog byte-identical across reruns and shard counts.
  so.stream_counters = false;
  so.record_timeline = false;
  so.faults = faults;
  so.topology = topology;
  if (policy.quasi_stationary) so.fixed_gamma = policy.gamma_star;

  const sim::MecSimulation sim(sc.pop.users, sc.config.capacity,
                               sc.config.delay, so);
  if (policy.token.kind == PolicyKind::kDpo)
    (void)sim.run_dpo(values);
  else
    (void)sim.run_tro(values);
}

}  // namespace

SweepReport run_sweep(const SweepSpec& spec, const SweepRunOptions& options) {
  SweepReport report;
  const std::vector<SweepCell> cells = enumerate_cells(spec);
  report.total = cells.size();
  if (!options.dry_run) std::filesystem::create_directories(spec.out_dir);

  std::map<std::string, ScenarioEntry> scenarios;
  std::map<std::string, PolicySolve> solves;  // "scenario|policy"
  std::map<std::string, std::shared_ptr<const fault::FaultSchedule>>
      schedules;  // "scenario|fault"

  for (const SweepCell& cell : cells) {
    const bool valid = !options.force && cell_output_valid(cell, spec);
    if (valid || options.dry_run) {
      if (valid) ++report.skipped;
      if (options.on_cell) options.on_cell(cell, false);
      continue;
    }
    auto sc_it = scenarios.find(cell.scenario);
    if (sc_it == scenarios.end()) {
      ScenarioEntry entry;
      entry.config = resolve_scenario(cell.scenario);
      entry.pop = population::sample_population(entry.config, spec.seed);
      sc_it = scenarios.emplace(cell.scenario, std::move(entry)).first;
    }
    const ScenarioEntry& sc = sc_it->second;

    const std::string solve_key = cell.scenario + "|" + cell.policy;
    auto solve_it = solves.find(solve_key);
    if (solve_it == solves.end())
      solve_it = solves.emplace(solve_key, solve_policy(sc, cell.policy)).first;

    const std::string fault_key = cell.scenario + "|" + cell.fault;
    auto fault_it = schedules.find(fault_key);
    if (fault_it == schedules.end())
      fault_it =
          schedules.emplace(fault_key, resolve_faults(sc, cell.fault)).first;

    run_cell(spec, cell, sc, solve_it->second, fault_it->second);
    ++report.executed;
    if (options.on_cell) options.on_cell(cell, true);
  }
  return report;
}

/// Built-in campaign for `mec_bench sweep --smoke`: two shard counts of a
/// tiny population, run fresh and then resumed to prove the skip path.
/// (The experiment registration lives in sweep_experiment.cpp so the
/// static-library TU can be linked without dragging the registry in.)
static constexpr const char* kSmokeSpec =
    "seed = 7\n"
    "warmup = 2\n"
    "horizon = 10\n"
    "window = 5\n"
    "replications = 1\n"
    "scenario = theoretical:eq:64\n"
    "policy = tro\n"
    "shards = 1\n"
    "shards = 2\n";

int run_sweep_experiment(Context& ctx) {
  const std::string spec_path = ctx.get_path("spec");
  SweepSpec spec;
  if (spec_path.empty()) {
    if (!ctx.smoke())
      throw RuntimeError("sweep needs --spec=FILE (or --smoke)");
    spec = parse_sweep_spec(kSmokeSpec);
    spec.out_dir = ctx.output_path("sweep-smoke");
  } else {
    spec = load_sweep_spec_file(spec_path);
  }

  SweepRunOptions opts;
  opts.force = ctx.get_bool("force") || (ctx.smoke() && spec_path.empty());
  opts.dry_run = ctx.get_bool("dry-run");
  std::size_t done = 0;
  const std::size_t total = enumerate_cells(spec).size();
  opts.on_cell = [&](const SweepCell& cell, bool executed) {
    ++done;
    std::printf("[%zu/%zu] %-4s %s\n", done, total, executed ? "run" : "skip",
                cell.label.c_str());
    std::fflush(stdout);
  };

  const SweepReport first = run_sweep(spec, opts);
  ctx.emit_bench({
      {"cells", io::Json::integer(static_cast<long long>(first.total))},
      {"executed", io::Json::integer(static_cast<long long>(first.executed))},
      {"skipped", io::Json::integer(static_cast<long long>(first.skipped))},
      {"out_dir", io::Json::string(spec.out_dir)},
  });

  if (ctx.smoke() && spec_path.empty()) {
    // Resume smoke: a second pass over a completed campaign must run nothing.
    done = 0;
    opts.force = false;
    const SweepReport second = run_sweep(spec, opts);
    if (second.skipped != second.total || second.executed != 0)
      throw RuntimeError("sweep smoke: resume failed to skip " +
                         std::to_string(second.total - second.skipped) +
                         " completed cells");
    std::printf("resume: all %zu cells skipped\n", second.total);
  }
  return 0;
}

}  // namespace mec::bench

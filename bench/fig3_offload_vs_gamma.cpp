// Reproduces Fig. 3: an individual user's offload probability
// alpha(x*(gamma)) as a function of the server utilization gamma.
//
// Because the best-response threshold x*(gamma) is an integer (Lemma 1), the
// per-user curve is a decreasing *step* function — discontinuous in gamma —
// which is exactly the difficulty Theorem 1 overcomes: the population
// average V(gamma) is nevertheless continuous.  The bench prints both the
// single-user staircase and the smooth population average.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;

  // A representative user from the theoretical setting.
  core::UserParams user;
  user.arrival_rate = 3.0;
  user.service_rate = 2.0;
  user.offload_latency = 0.5;
  user.energy_local = 1.5;
  user.energy_offload = 0.5;
  const core::EdgeDelay delay = core::make_reciprocal_delay();

  const std::size_t n = ctx.smoke() ? 500 : 5000;
  const double grid_step = ctx.smoke() ? 0.02 : 0.005;
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, n),
      42);

  std::vector<double> gammas, user_alpha, pop_v;
  std::int64_t prev_threshold = -1;
  std::printf("=== Fig. 3: offload probability vs server utilization ===\n\n");
  std::printf("single user (a=%.1f, s=%.1f): threshold jumps\n",
              user.arrival_rate, user.service_rate);
  for (double gamma = 0.0; gamma <= 1.0 + 1e-12; gamma += grid_step) {
    const double g = delay(std::min(gamma, 1.0));
    const std::int64_t x = core::best_threshold(user, g);
    const double alpha = queueing::tro_offload_probability(
        user.intensity(), static_cast<double>(x));
    gammas.push_back(gamma);
    user_alpha.push_back(alpha);
    pop_v.push_back(core::best_response(pop.users, delay, pop.config.capacity,
                                        std::min(gamma, 1.0))
                        .utilization);
    if (x != prev_threshold) {
      std::printf("  gamma >= %-6.3f  x* = %-3lld  alpha = %.4f\n", gamma,
                  static_cast<long long>(x), alpha);
      prev_threshold = x;
    }
  }

  io::PlotOptions opt;
  opt.title = "single user's alpha(x*(gamma)) — a decreasing step function";
  opt.x_label = "gamma";
  opt.y_label = "offload probability";
  std::printf("\n%s\n",
              io::line_plot(std::vector<io::Series>{
                                {"alpha(x*(gamma))", gammas, user_alpha, '*'}},
                            opt)
                  .c_str());

  opt.title =
      "population best response V(gamma) — continuous despite per-user jumps";
  opt.y_label = "V(gamma)";
  std::printf("%s\n", io::line_plot(std::vector<io::Series>{
                                        {"V(gamma)", gammas, pop_v, 'o'}},
                                    opt)
                          .c_str());

  const std::string csv = ctx.output_path("fig3_offload_vs_gamma.csv");
  io::write_csv(csv, {"gamma", "user_alpha", "population_V"},
                {gammas, user_alpha, pop_v});
  std::printf("wrote %s (%zu rows)\n", csv.c_str(), gammas.size());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig3_offload_vs_gamma",
     "Fig. 3: per-user offload staircase vs continuous V(gamma)",
     {},
     run});

}  // namespace

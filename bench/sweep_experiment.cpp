// Registers the declarative sweep driver as the `sweep` experiment.  Kept
// out of sweep.cpp so mec_bench_core (a static library) carries no
// registration side effects — the linker would silently drop them anyway.
#include "bench/runner.hpp"
#include "bench/sweep.hpp"

namespace {

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"sweep",
     "Run a declarative scenario x fault x policy x shards campaign, resumably",
     {{"spec", mec::bench::FlagKind::kPath, "",
       "sweep spec file (see bench/sweep.hpp)"},
      {"force", mec::bench::FlagKind::kBool, "false",
       "rerun cells with valid outputs"},
      {"dry-run", mec::bench::FlagKind::kBool, "false",
       "classify cells without running"}},
     mec::bench::run_sweep_experiment});

}  // namespace

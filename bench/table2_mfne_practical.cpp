// Reproduces Table II: the unique MFNE under the practical settings — per-
// user service rates resampled from the measured YOLOv3-on-RPi4 dataset
// (E[S] = 8.9437), offloading latencies resampled from the measured WiFi
// dataset, and A ~ U(4,12) / U(7.3474,10.54) / U(8,12).
//
// Paper reference values: gamma* = 0.43 / 0.44 / 0.46.  Note how narrowly
// the three regimes differ: the equilibrium self-stabilizes because a higher
// load raises g(gamma*), which pushes best-response thresholds up and
// offload fractions down.
#include <cstdio>

#include "bench/runner.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/summary.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::uint64_t draws = ctx.smoke() ? 2 : 5;
  const std::size_t n = ctx.smoke() ? 300 : 1000;

  io::TextTable table("TABLE II: MFNE under practical settings");
  table.set_header({"System Setup", "NE (sampled, N=10^3)", "Paper"});

  const struct {
    population::LoadRegime regime;
    const char* paper;
  } rows[] = {
      {population::LoadRegime::kBelowService, "0.43"},
      {population::LoadRegime::kAtService, "0.44"},
      {population::LoadRegime::kAboveService, "0.46"},
  };

  for (const auto& row : rows) {
    const population::ScenarioConfig cfg =
        population::practical_scenario(row.regime, n);
    stats::RunningSummary stars;
    for (std::uint64_t seed = 1; seed <= draws; ++seed) {
      const auto pop = population::sample_population(cfg, seed);
      stars.add(
          core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star);
    }
    table.add_row({population::to_string(row.regime),
                   io::TextTable::fmt(stars.mean(), 2) + " (+/- " +
                       io::TextTable::fmt(stars.stddev(), 3) + ")",
                   row.paper});
  }

  const auto cfg =
      population::practical_scenario(population::LoadRegime::kAtService, n);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Settings: S, T resampled from the measured datasets (E[S]=%.4f,\n"
      "E[T]=%.2f), PL~U(0,3), PE~U(0,1), w=1, g(gamma)=1/(1.1-gamma),\n"
      "c=%.2f (calibrated; unreported in the paper), N=%zu.\n",
      cfg.service.mean(), cfg.latency.mean(), cfg.capacity, cfg.n_users);
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"table2_mfne_practical",
     "Table II: MFNE utilization under the practical settings",
     {},
     run});

}  // namespace

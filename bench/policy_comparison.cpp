// Policy-family comparison on a multi-cluster edge: the paper's TRO/DTU
// threshold policies against the two cluster-aware families layered on the
// vector-gamma coupling (src/mec/sim/cluster_policies.hpp):
//
//   tro       MFNE thresholds, tracked utilization (static equilibrium);
//   dtu       Algorithm 1 running closed-loop inside the simulator;
//   price     per-cluster congestion prices, dual ascent toward the MFNE
//             utilization (Liu & Liu style price-based offloading);
//   minority  minority-game server activation: each cluster is one agent,
//             only minority-side clusters serve each epoch (Ranadheera
//             et al.).
//
// All four arms share one population, one seed, and one K-cluster topology,
// so the table isolates the policy family.  Expected shape: tro and dtu land
// near the MFNE cost; price tracks the same utilization without knowing the
// MFNE thresholds (its prices encode them); minority pays a cost premium for
// running half the clusters dark but keeps attendance near K/2.
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/cluster_policies.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using namespace mec;

struct Arm {
  std::string name;
  double mean_cost = 0.0;
  double gamma = 0.0;
  double offload_fraction = 0.0;
  std::vector<double> cluster_gamma;
  std::string note;
};

std::string cluster_cell(const std::vector<double>& gammas) {
  std::string out;
  for (const double g : gammas) {
    if (!out.empty()) out += " ";
    out += io::TextTable::fmt(g, 3);
  }
  return out;
}

int run(mec::bench::Context& ctx) {
  const bool smoke = ctx.smoke();
  const long n_flag = ctx.get_long("n");
  const std::size_t n_users =
      static_cast<std::size_t>(n_flag > 0 ? n_flag : (smoke ? 96 : 400));
  const double horizon_flag = ctx.get_double("horizon");
  const double horizon = horizon_flag > 0.0 ? horizon_flag
                                            : (smoke ? 30.0 : 150.0);
  const auto clusters =
      static_cast<std::size_t>(std::max(1L, ctx.get_long("clusters")));
  const auto seed = static_cast<std::uint64_t>(ctx.get_long("seed"));
  const auto shards = static_cast<std::size_t>(ctx.get_long("shards"));
  const double update_period = ctx.get_double("update-period");
  MEC_EXPECTS_MSG(update_period > 0.0, "--update-period must be > 0");
  const double warmup = smoke ? 2.0 : 10.0;

  const population::ScenarioConfig cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, n_users);
  const population::Population pop = population::sample_population(cfg, seed);
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  const std::vector<double> xs(mfne.thresholds.begin(),
                               mfne.thresholds.end());

  sim::ClusterTopology topology;
  topology.clusters = clusters;

  std::vector<Arm> arms;

  {
    sim::SimulationOptions so;
    so.warmup = warmup;
    so.horizon = horizon;
    so.seed = seed;
    so.shards = shards;
    so.topology = topology;
    const sim::MecSimulation sim(pop.users, cfg.capacity, cfg.delay, so);
    const sim::SimulationResult r = sim.run_tro(xs);
    arms.push_back({"tro", r.mean_cost, r.measured_utilization,
                    r.mean_offload_fraction, r.cluster_utilization,
                    "MFNE thresholds, static"});
  }
  {
    sim::ClosedLoopOptions co;
    co.update_period = update_period;
    co.horizon = horizon;
    co.seed = seed;
    co.shards = shards;
    co.topology = topology;
    const sim::ClosedLoopResult r =
        sim::run_closed_loop(pop.users, cfg.capacity, cfg.delay, co);
    arms.push_back({"dtu", r.run.mean_cost, r.run.measured_utilization,
                    r.run.mean_offload_fraction, r.run.cluster_utilization,
                    r.estimate_settled ? "Algorithm 1, settled"
                                       : "Algorithm 1, not settled"});
  }
  {
    sim::PriceBasedOptions po;
    po.gamma_target = mfne.gamma_star;
    po.update_period = update_period;
    po.warmup = warmup;
    po.horizon = horizon;
    po.seed = seed;
    po.topology = topology;
    po.shards = shards;
    po.record_timeline = false;
    const sim::PriceBasedResult r =
        sim::run_price_based(pop.users, cfg.capacity, cfg.delay, po);
    std::string note = "final prices:";
    for (const double p : r.final_prices)
      note += " " + io::TextTable::fmt(p, 2);
    arms.push_back({"price", r.run.mean_cost, r.run.measured_utilization,
                    r.run.mean_offload_fraction, r.run.cluster_utilization,
                    note});
  }
  {
    sim::MinorityGameRunOptions mo;
    mo.game.seed = seed;
    mo.thresholds = xs;
    mo.update_period = update_period;
    mo.warmup = warmup;
    mo.horizon = horizon;
    mo.seed = seed;
    mo.topology = topology;
    mo.shards = shards;
    mo.record_timeline = false;
    const sim::MinorityGameRunResult r =
        sim::run_minority_game(pop.users, cfg.capacity, cfg.delay, mo);
    arms.push_back({"minority", r.run.mean_cost, r.run.measured_utilization,
                    r.run.mean_offload_fraction, r.run.cluster_utilization,
                    "mean attendance " +
                        io::TextTable::fmt(r.mean_attendance, 2) + "/" +
                        std::to_string(clusters)});
  }

  io::TextTable table("policy families on " + cfg.name + ", " +
                      std::to_string(clusters) + " clusters (gamma* = " +
                      io::TextTable::fmt(mfne.gamma_star, 4) + ")");
  table.set_header({"policy", "mean cost", "gamma", "offload frac",
                    "per-cluster gamma", "notes"});
  for (const Arm& arm : arms)
    table.add_row({arm.name, io::TextTable::fmt(arm.mean_cost, 4),
                   io::TextTable::fmt(arm.gamma, 4),
                   io::TextTable::fmt(arm.offload_fraction, 4),
                   cluster_cell(arm.cluster_gamma), arm.note});
  std::printf("%s\n", table.to_string().c_str());

  for (const Arm& arm : arms)
    if (!std::isfinite(arm.mean_cost) || arm.mean_cost <= 0.0)
      throw std::runtime_error("policy_comparison: arm '" + arm.name +
                               "' produced a degenerate mean cost");

  if (ctx.has("csv")) {
    std::vector<double> idx, cost, gamma, frac;
    for (std::size_t i = 0; i < arms.size(); ++i) {
      idx.push_back(static_cast<double>(i));
      cost.push_back(arms[i].mean_cost);
      gamma.push_back(arms[i].gamma);
      frac.push_back(arms[i].offload_fraction);
    }
    const std::string path = ctx.output_path(ctx.get_path("csv"));
    io::write_csv(path, {"arm", "mean_cost", "gamma", "offload_fraction"},
                  {idx, cost, gamma, frac});
    std::printf("arm metrics written to %s\n", path.c_str());
  }

  ctx.emit_bench({
      {"clusters", io::Json::integer(static_cast<long long>(clusters))},
      {"gamma_star", io::Json::number(mfne.gamma_star)},
      {"tro_cost", io::Json::number(arms[0].mean_cost)},
      {"dtu_cost", io::Json::number(arms[1].mean_cost)},
      {"price_cost", io::Json::number(arms[2].mean_cost)},
      {"minority_cost", io::Json::number(arms[3].mean_cost)},
  });
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"policy_comparison",
     "TRO/DTU vs price-based & minority-game policies on a K-cluster edge",
     {{"n", mec::bench::FlagKind::kLong, "0",
       "population size (0 = 96 smoke / 400 full)"},
      {"clusters", mec::bench::FlagKind::kLong, "2", "edge cluster count"},
      {"horizon", mec::bench::FlagKind::kDouble, "0",
       "simulated seconds (0 = 30 smoke / 150 full)"},
      {"seed", mec::bench::FlagKind::kLong, "42", "population + engine seed"},
      {"shards", mec::bench::FlagKind::kLong, "1", "event-queue shards"},
      {"update-period", mec::bench::FlagKind::kDouble, "5",
       "epoch spacing for dtu/price/minority, seconds"},
      {"csv", mec::bench::FlagKind::kPath, "", "per-arm metrics CSV"}},
     run});

}  // namespace

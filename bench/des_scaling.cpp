// Raw DES event-throughput benchmark across population sizes.
//
// For each N the harness runs one TRO simulation sized so every case
// processes a few million events, and reports events/sec as a `BENCH {...}`
// JSON line (one per case, machine-parsable; see EXPERIMENTS.md).  The
// horizon shrinks as N grows so total work stays roughly constant: the
// numbers isolate per-event cost, which is what the 10^6-device scaling
// story depends on.
//
// Modes:
//   des_scaling              N in {1e3, 1e4, 1e5}
//   des_scaling --full       adds the N = 1e6 case
//   des_scaling --smoke      N = 1e4 only, gated against the checked-in
//                            events/sec floor (bench/des_scaling_baseline.json,
//                            a generous machine-independent lower bound);
//                            exits non-zero below the floor.
//   des_scaling --out=F      appends the BENCH JSON lines to file F as well
//   des_scaling --baseline=F overrides the baseline file path (smoke mode)
//   des_scaling --shards=K   forces K shards for the N sweep; without it the
//                            sweep runs serial (K = 1 — the point is
//                            per-event cost, so the engine's shard autotune
//                            must not kick in on big boxes) and then re-runs
//                            the largest N at K in {2, 4} to report the
//                            sharded speedup (bit-identical results by
//                            construction; the harness asserts the event
//                            counts match)
//   des_scaling --stream-log=F  after the timed sweep, replays the largest
//                            case once with windowed telemetry streamed to
//                            F (untimed, so the BENCH numbers stay pure)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/io/args.hpp"
#include "mec/io/json.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

std::vector<mec::core::UserParams> make_users(std::size_t n) {
  std::vector<mec::core::UserParams> users;
  users.reserve(n);
  mec::random::Xoshiro256 rng(2024);
  for (std::size_t i = 0; i < n; ++i) {
    mec::core::UserParams u;
    u.arrival_rate = mec::random::uniform(rng, 0.5, 2.0);
    u.service_rate = mec::random::uniform(rng, 2.0, 4.0);
    u.offload_latency = mec::random::uniform(rng, 0.1, 0.5);
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
    users.push_back(u);
  }
  return users;
}

struct CaseResult {
  std::size_t n = 0;
  std::size_t shards = 1;
  double horizon = 0.0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

CaseResult run_case(std::size_t n, int repetitions, std::size_t shards,
                    const std::string& stream_log = "") {
  const auto users = make_users(n);
  // Keep total events roughly constant (~3-4M) across N so each case
  // measures per-event cost, not run length.
  const double horizon =
      std::max(2.0, 1.0e6 / static_cast<double>(n));
  mec::sim::SimulationOptions options;
  options.warmup = 0.0;
  options.horizon = horizon;
  options.seed = 7;
  options.fixed_gamma = 0.2;
  options.shards = shards;
  if (!stream_log.empty()) {
    options.stream_log = stream_log;
    options.sample_interval = horizon / 50.0;
    options.record_timeline = false;
  }
  const mec::sim::MecSimulation sim(users, 10.0,
                                    mec::core::make_reciprocal_delay(),
                                    options);
  const std::vector<double> thresholds(n, 2.0);
  // Reuse one workspace across repetitions, as the replication engine and
  // the DTU's utilization oracle do: steady state is then allocation-free
  // and repeated same-seed runs restore the per-device RNG streams from the
  // workspace snapshot instead of re-splitting them.
  mec::sim::SimWorkspace workspace;

  CaseResult best;
  best.n = n;
  best.shards = shards == 0 ? 1 : shards;
  best.horizon = horizon;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const mec::sim::SimulationResult r = sim.run_tro(thresholds, workspace);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rate = static_cast<double>(r.total_events) / seconds;
    if (rate > best.events_per_sec) {
      best.events = r.total_events;
      best.seconds = seconds;
      best.events_per_sec = rate;
    }
  }
  return best;
}

std::string bench_line(const CaseResult& c) {
  const mec::io::Json json = mec::io::Json::object({
      {"name", mec::io::Json::string("des_scaling")},
      {"n", mec::io::Json::integer(static_cast<long long>(c.n))},
      {"shards", mec::io::Json::integer(static_cast<long long>(c.shards))},
      {"horizon", mec::io::Json::number(c.horizon)},
      {"events", mec::io::Json::integer(static_cast<long long>(c.events))},
      {"seconds", mec::io::Json::number(c.seconds)},
      {"events_per_sec", mec::io::Json::number(c.events_per_sec)},
  });
  return "BENCH " + json.dump();
}

/// Reads `"events_per_sec_floor": <number>` from the baseline JSON file.
/// The file is a single flat object, so a key scan is sufficient — the io
/// layer is deliberately write-only JSON.
double read_floor(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "des_scaling: cannot open baseline file " << path << "\n";
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"events_per_sec_floor\"";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::cerr << "des_scaling: no events_per_sec_floor in " << path << "\n";
    std::exit(2);
  }
  const std::size_t colon = text.find(':', at + key.size());
  if (colon == std::string::npos) {
    std::cerr << "des_scaling: malformed baseline " << path << "\n";
    std::exit(2);
  }
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const mec::io::Args args =
      mec::io::Args::parse(std::vector<std::string>(argv + 1, argv + argc));
  args.reject_unknown(
      {"smoke", "full", "out", "baseline", "reps", "shards", "stream-log"});
  const bool smoke = args.get_bool("smoke", false);
  const bool full = args.get_bool("full", false);
  const int reps = static_cast<int>(args.get_long("reps", 2));
  const std::string out_path = args.get_string("out", "");
  // Shard count for the N sweep.  Without --shards the sweep pins K = 1
  // rather than passing 0 to the engine: 0 now means "autotune", and a
  // big box silently sharding the base sweep would change what the bench
  // measures (serial per-event cost) and poison the speedup column.
  const auto shards =
      static_cast<std::size_t>(args.get_long("shards", 1));

  std::vector<std::size_t> sizes;
  if (smoke) {
    sizes = {10000};
  } else {
    sizes = {1000, 10000, 100000};
    if (full) sizes.push_back(1000000);
  }

  std::ofstream out;
  if (!out_path.empty()) out.open(out_path, std::ios::app);

  std::vector<CaseResult> results;
  for (const std::size_t n : sizes) {
    const CaseResult c = run_case(n, reps, shards);
    results.push_back(c);
    const std::string line = bench_line(c);
    std::cout << line << "\n" << std::flush;
    if (out) out << line << "\n";
  }

  if (!smoke && !args.has("shards")) {
    // Shard-count axis: the same largest-N run partitioned over K event
    // queues.  Results are bit-identical for every K (asserted here on the
    // event count), so the speedup column is a pure wall-clock comparison.
    const CaseResult& base = results.back();
    for (const std::size_t k : {2u, 4u}) {
      const CaseResult c = run_case(base.n, reps, k);
      const std::string line = bench_line(c);
      std::cout << line << "\n" << std::flush;
      if (out) out << line << "\n";
      if (c.events != base.events) {
        std::cerr << "des_scaling: sharded run diverged (" << c.events
                  << " events at K=" << k << " vs " << base.events << ")\n";
        return 1;
      }
      std::printf("shards=%zu speedup over 1: %.2fx (%.3fs -> %.3fs)\n", k,
                  base.seconds / c.seconds, base.seconds, c.seconds);
    }
  }

  if (args.has("stream-log")) {
    // One untimed replay of the largest case with telemetry on: produces a
    // viewable/CI-checkable artifact without touching the BENCH numbers.
    const CaseResult& base = results.back();
    run_case(base.n, 1, shards, args.get_string("stream-log", ""));
    std::printf("telemetry stream written to %s\n",
                args.get_string("stream-log", "").c_str());
  }

  if (smoke) {
    const std::string baseline =
        args.get_string("baseline", "des_scaling_baseline.json");
    const double floor = read_floor(baseline);
    const double measured = results.front().events_per_sec;
    std::printf("smoke: %.3g events/s vs floor %.3g\n", measured, floor);
    if (measured < floor) {
      std::cerr << "des_scaling --smoke: events/sec regressed below the "
                   "baseline floor ("
                << measured << " < " << floor << ")\n";
      return 1;
    }
  }
  return 0;
}

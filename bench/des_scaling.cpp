// Raw DES event-throughput benchmark across population sizes.
//
// For each N the harness runs one TRO simulation sized so every case
// processes a few million events, and reports events/sec as a `BENCH {...}`
// JSON line (one per case, machine-parsable; see EXPERIMENTS.md).  The
// horizon shrinks as N grows so total work stays roughly constant: the
// numbers isolate per-event cost, which is what the 10^6-device scaling
// story depends on.
//
// Modes:
//   des_scaling              N in {1e3, 1e4, 1e5}
//   des_scaling --full       adds the N = 1e6 case
//   des_scaling --smoke      N = 1e4 only, gated against the checked-in
//                            events/sec floor (bench/des_scaling_baseline.json,
//                            a generous machine-independent lower bound);
//                            exits non-zero below the floor.
//   des_scaling --out=F      appends the BENCH JSON lines to file F as well
//   des_scaling --baseline=F overrides the baseline file path (smoke mode)
//   des_scaling --shards=K   forces K shards for the N sweep; without it the
//                            sweep runs serial (K = 1 — the point is
//                            per-event cost, so the engine's shard autotune
//                            must not kick in on big boxes) and then re-runs
//                            the largest N at K in {2, 4} to report the
//                            sharded speedup (bit-identical results by
//                            construction; the harness asserts the event
//                            counts match)
//   des_scaling --stream-log=F  after the timed sweep, replays the largest
//                            case once with windowed telemetry streamed to
//                            F (untimed, so the BENCH numbers stay pure)
//   des_scaling --transport=process --workers=W  runs the sweep through the
//                            forked-worker rank backend instead of in
//                            process: same results byte for byte, so the
//                            events/sec delta *is* the wire overhead
//                            (skips the in-process speedup column)
//   des_scaling --transport=tcp --workers=host:port,...  same sweep through
//                            `mec worker` daemons (one rank per address):
//                            the delta vs process isolates the TCP stack
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/io/json.hpp"
#include "mec/net/address.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

std::vector<mec::core::UserParams> make_users(std::size_t n) {
  std::vector<mec::core::UserParams> users;
  users.reserve(n);
  mec::random::Xoshiro256 rng(2024);
  for (std::size_t i = 0; i < n; ++i) {
    mec::core::UserParams u;
    u.arrival_rate = mec::random::uniform(rng, 0.5, 2.0);
    u.service_rate = mec::random::uniform(rng, 2.0, 4.0);
    u.offload_latency = mec::random::uniform(rng, 0.1, 0.5);
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
    users.push_back(u);
  }
  return users;
}

struct CaseResult {
  std::size_t n = 0;
  std::size_t shards = 1;
  std::string transport = "inproc";
  double horizon = 0.0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

CaseResult run_case(std::size_t n, int repetitions, std::size_t shards,
                    mec::sim::TransportKind transport =
                        mec::sim::TransportKind::kInProcess,
                    std::size_t workers = 0,
                    const std::vector<std::string>& worker_addresses = {},
                    const std::string& stream_log = "") {
  const auto users = make_users(n);
  // Keep total events roughly constant (~3-4M) across N so each case
  // measures per-event cost, not run length.
  const double horizon =
      std::max(2.0, 1.0e6 / static_cast<double>(n));
  mec::sim::SimulationOptions options;
  options.warmup = 0.0;
  options.horizon = horizon;
  options.seed = 7;
  options.fixed_gamma = 0.2;
  options.shards = shards;
  options.transport = transport;
  options.workers = workers;
  options.worker_addresses = worker_addresses;
  if (!stream_log.empty()) {
    options.stream_log = stream_log;
    options.sample_interval = horizon / 50.0;
    options.record_timeline = false;
  }
  const mec::sim::MecSimulation sim(users, 10.0,
                                    mec::core::make_reciprocal_delay(),
                                    options);
  const std::vector<double> thresholds(n, 2.0);
  // Reuse one workspace across repetitions, as the replication engine and
  // the DTU's utilization oracle do: steady state is then allocation-free
  // and repeated same-seed runs restore the per-device RNG streams from the
  // workspace snapshot instead of re-splitting them.
  mec::sim::SimWorkspace workspace;

  CaseResult best;
  best.n = n;
  best.shards = shards == 0 ? 1 : shards;
  if (transport == mec::sim::TransportKind::kProcess)
    best.transport = "process";
  else if (transport == mec::sim::TransportKind::kTcp)
    best.transport = "tcp";
  best.horizon = horizon;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const mec::sim::SimulationResult r = sim.run_tro(thresholds, workspace);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rate = static_cast<double>(r.total_events) / seconds;
    if (rate > best.events_per_sec) {
      best.events = r.total_events;
      best.seconds = seconds;
      best.events_per_sec = rate;
    }
  }
  return best;
}

void emit_case(mec::bench::Context& ctx, const CaseResult& c) {
  ctx.emit_bench({
      {"n", mec::io::Json::integer(static_cast<long long>(c.n))},
      {"shards", mec::io::Json::integer(static_cast<long long>(c.shards))},
      {"transport", mec::io::Json::string(c.transport)},
      {"horizon", mec::io::Json::number(c.horizon)},
      {"events", mec::io::Json::integer(static_cast<long long>(c.events))},
      {"seconds", mec::io::Json::number(c.seconds)},
      {"events_per_sec", mec::io::Json::number(c.events_per_sec)},
  });
}

/// Reads `"events_per_sec_floor": <number>` from the baseline JSON file.
/// The file is a single flat object, so a key scan is sufficient — the io
/// layer is deliberately write-only JSON.
double read_floor(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("des_scaling: cannot open baseline file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"events_per_sec_floor\"";
  const std::size_t at = text.find(key);
  if (at == std::string::npos)
    throw std::runtime_error("des_scaling: no events_per_sec_floor in " +
                             path);
  const std::size_t colon = text.find(':', at + key.size());
  if (colon == std::string::npos)
    throw std::runtime_error("des_scaling: malformed baseline " + path);
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

int run(mec::bench::Context& ctx) {
  const bool smoke = ctx.smoke();
  const bool full = ctx.get_bool("full");
  const int reps = static_cast<int>(ctx.get_long("reps"));
  // Shard count for the N sweep.  Without --shards the sweep pins K = 1
  // rather than passing 0 to the engine: 0 now means "autotune", and a
  // big box silently sharding the base sweep would change what the bench
  // measures (serial per-event cost) and poison the speedup column.
  const auto shards = static_cast<std::size_t>(ctx.get_long("shards"));
  // Transport axis: the same sweep through the forked-worker backend puts a
  // number on the wire overhead (results stay bit-identical; only the
  // events/sec column moves).
  const std::string transport_name = ctx.get_string("transport");
  mec::sim::TransportKind transport = mec::sim::TransportKind::kInProcess;
  if (transport_name == "process")
    transport = mec::sim::TransportKind::kProcess;
  else if (transport_name == "tcp")
    transport = mec::sim::TransportKind::kTcp;
  else if (!transport_name.empty() && transport_name != "inproc")
    throw std::runtime_error("des_scaling: unknown --transport '" +
                             transport_name + "' (inproc|process|tcp)");
  // --workers is dual-grammar: a count for process, a host:port list for
  // tcp.  Both parses are strict — a typo dies here, not mid-sweep.
  const std::string workers_flag = ctx.get_string("workers");
  std::size_t workers = 0;
  std::vector<std::string> worker_addresses;
  if (transport == mec::sim::TransportKind::kTcp) {
    if (workers_flag.empty() || workers_flag == "0")
      throw std::runtime_error(
          "des_scaling: --transport=tcp needs "
          "--workers=<host:port,host:port,...> (one mec worker daemon per "
          "rank)");
    for (const mec::net::Address& a :
         mec::net::parse_worker_list(workers_flag))
      worker_addresses.push_back(a.str());
  } else if (!workers_flag.empty()) {
    char* end = nullptr;
    const long value = std::strtol(workers_flag.c_str(), &end, 10);
    if (end == workers_flag.c_str() || *end != '\0' || value < 0)
      throw std::runtime_error("des_scaling: --workers='" + workers_flag +
                               "' is not a worker-process count (host:port "
                               "lists apply to --transport=tcp only)");
    workers = static_cast<std::size_t>(value);
  }

  std::vector<std::size_t> sizes;
  if (smoke) {
    sizes = {10000};
  } else {
    sizes = {1000, 10000, 100000};
    if (full) sizes.push_back(1000000);
  }

  std::vector<CaseResult> results;
  for (const std::size_t n : sizes) {
    const CaseResult c =
        run_case(n, reps, shards, transport, workers, worker_addresses);
    results.push_back(c);
    emit_case(ctx, c);
  }

  if (!smoke && !ctx.has("shards") &&
      transport == mec::sim::TransportKind::kInProcess) {
    // Shard-count axis: the same largest-N run partitioned over K event
    // queues.  Results are bit-identical for every K (asserted here on the
    // event count), so the speedup column is a pure wall-clock comparison.
    const CaseResult& base = results.back();
    for (const std::size_t k : {2u, 4u}) {
      const CaseResult c = run_case(base.n, reps, k);
      emit_case(ctx, c);
      if (c.events != base.events)
        throw std::runtime_error(
            "des_scaling: sharded run diverged (" +
            std::to_string(c.events) + " events at K=" + std::to_string(k) +
            " vs " + std::to_string(base.events) + ")");
      std::printf("shards=%zu speedup over 1: %.2fx (%.3fs -> %.3fs)\n", k,
                  base.seconds / c.seconds, base.seconds, c.seconds);
    }
  }

  const std::string stream_log = ctx.get_path("stream-log");
  if (!stream_log.empty()) {
    // One untimed replay of the largest case with telemetry on: produces a
    // viewable/CI-checkable artifact without touching the BENCH numbers.
    run_case(results.back().n, 1, shards, transport, workers,
             worker_addresses, stream_log);
    std::printf("telemetry stream written to %s\n", stream_log.c_str());
  }

  if (smoke) {
    const double floor = read_floor(ctx.get_path("baseline"));
    const double measured = results.front().events_per_sec;
    std::printf("smoke: %.3g events/s vs floor %.3g\n", measured, floor);
    if (measured < floor)
      throw std::runtime_error(
          "des_scaling --smoke: events/sec regressed below the baseline "
          "floor (" +
          std::to_string(measured) + " < " + std::to_string(floor) + ")");
  }
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"des_scaling",
     "DES event-throughput across population sizes (BENCH JSON lines)",
     {{"full", mec::bench::FlagKind::kBool, "false", "add the N = 1e6 case"},
      {"reps", mec::bench::FlagKind::kLong, "2",
       "timed repetitions per case (best kept)"},
      {"shards", mec::bench::FlagKind::kLong, "1",
       "force K shards for the sweep (skips the speedup column)"},
      {"transport", mec::bench::FlagKind::kString, "inproc",
       "rank backend: inproc, process (forked workers), or tcp (mec worker "
       "daemons)"},
      {"workers", mec::bench::FlagKind::kString, "0",
       "worker-process count for --transport=process (0 = default 2), or a "
       "host:port,... daemon list for --transport=tcp"},
      {"baseline", mec::bench::FlagKind::kPath, "des_scaling_baseline.json",
       "events/sec floor file for --smoke"},
      {"stream-log", mec::bench::FlagKind::kPath, "",
       "untimed replay of the largest case streamed to this .meclog"}},
     run});

}  // namespace

// Reproduces Fig. 5 (a-c): convergence of the DTU Algorithm under the three
// theoretical settings — the true utilization gamma_t and the broadcast
// estimate gamma_hat_t per iteration, converging to the MFNE within ~20
// iterations — plus the Fig. 4 illustration of the estimate's bisection
// dynamics from both sides of gamma*.
//
// Each regime additionally cross-checks the converged thresholds in the
// discrete-event simulator over --replications independent runs spread over
// --threads workers; the aggregated mean +/- CI is bit-identical for any
// thread count (see mec/parallel/replication.hpp).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

void run_regime(mec::bench::Context& ctx, mec::population::LoadRegime regime,
                char tag, double paper_star,
                const mec::parallel::ReplicationOptions& ro,
                mec::parallel::ThreadPool& pool,
                const std::string& stream_log = "") {
  using namespace mec;
  const population::ScenarioConfig cfg = population::theoretical_scenario(
      regime, ctx.smoke() ? 1000 : 10000);
  const auto pop = population::sample_population(cfg, 7);

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  core::AnalyticUtilization source(pop.users, cfg.capacity);
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, {});

  std::printf("--- Fig. 5%c: %s ---\n", tag,
              population::to_string(regime).c_str());
  std::printf("MFNE gamma* = %.4f (paper: %.2f);  DTU converged in %d "
              "iterations to gamma_hat = %.4f\n",
              mfne.gamma_star, paper_star, dtu.iterations,
              dtu.final_gamma_hat);

  std::vector<double> t, gamma, gamma_hat, star;
  for (const core::DtuIterate& it : dtu.trace) {
    t.push_back(it.t);
    gamma.push_back(it.gamma);
    gamma_hat.push_back(it.gamma_hat);
    star.push_back(mfne.gamma_star);
  }

  io::PlotOptions opt;
  opt.title = "gamma_t (o), gamma_hat_t (*), gamma* (-)";
  opt.x_label = "iteration t";
  opt.y_label = "utilization";
  std::printf("%s\n",
              io::line_plot(
                  std::vector<io::Series>{{"gamma_t", t, gamma, 'o'},
                                          {"gamma_hat_t", t, gamma_hat, '*'},
                                          {"gamma*", t, star, '-'}},
                  opt)
                  .c_str());

  std::printf("  t   gamma_t   gamma_hat_t   eta_t\n");
  for (const core::DtuIterate& it : dtu.trace)
    std::printf("  %-3d %-9.4f %-13.4f %-8.4f\n", it.t, it.gamma,
                it.gamma_hat, it.eta);
  std::printf("\n");

  const std::string csv =
      ctx.output_path(std::string("fig5") + tag + "_dtu_theoretical.csv");
  io::write_csv(csv, {"t", "gamma", "gamma_hat", "gamma_star"},
                {t, gamma, gamma_hat, star});
  std::printf("wrote %s (%zu rows)\n", csv.c_str(), t.size());

  // Replicated DES validation of the converged thresholds: the measured
  // utilization should straddle the analytic gamma*.
  sim::SimulationOptions so;
  so.fixed_gamma = mfne.gamma_star;
  so.horizon = ctx.smoke() ? 20.0 : 60.0;
  so.warmup = ctx.smoke() ? 4.0 : 10.0;
  so.seed = 42;
  const parallel::ReplicationResult des = parallel::run_replications(
      pop.users, cfg.capacity, cfg.delay, so, dtu.thresholds, ro, &pool);
  std::printf("DES check (%zu replications): measured gamma = %.4f +/- %.4f "
              "(analytic %.4f), mean cost = %.3f +/- %.3f\n\n",
              des.replications, des.measured_utilization.mean(),
              des.measured_utilization.ci.half_width, mfne.gamma_star,
              des.mean_cost.mean(), des.mean_cost.ci.half_width);

  if (!stream_log.empty()) {
    // Replications cannot share one log, so stream a single representative
    // run of the converged thresholds (same options, base seed).
    sim::SimulationOptions streamed = so;
    streamed.stream_log = stream_log;
    streamed.sample_interval = 1.0;
    streamed.record_timeline = false;
    sim::MecSimulation des_one(pop.users, cfg.capacity, cfg.delay, streamed);
    (void)des_one.run_tro(dtu.thresholds);
    std::printf("telemetry stream written to %s\n\n", stream_log.c_str());
  }
}

void fig4_bisection_illustration() {
  // Fig. 4: gamma_hat approaches gamma* from below (start 0 is built in) and
  // from above (start with huge thresholds => gamma_1 ~ 0, but we seed the
  // estimate's first move upward by an all-offload start).
  using namespace mec;
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, 2000);
  const auto pop = population::sample_population(cfg, 13);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  core::AnalyticUtilization source(pop.users, cfg.capacity);

  std::printf("--- Fig. 4: bisection dynamics of gamma_hat_t ---\n");
  std::printf("gamma* = %.4f\n", star);
  for (const bool start_low_thresholds : {true, false}) {
    core::DtuOptions opt;
    opt.eta0 = 0.15;
    if (!start_low_thresholds)
      opt.initial_thresholds.assign(pop.users.size(), 30.0);
    const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
    std::printf("start=%s thresholds: gamma_hat path:",
                start_low_thresholds ? "all-offload" : "all-local");
    for (std::size_t i = 0; i < r.trace.size() && i < 14; ++i)
      std::printf(" %.3f", r.trace[i].gamma_hat);
    std::printf(" ... -> %.4f\n", r.final_gamma_hat);
  }
  std::printf("\n");
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  parallel::ReplicationOptions ro;
  ro.replications =
      static_cast<std::size_t>(ctx.get_long("replications"));
  if (ctx.smoke() && !ctx.has("replications")) ro.replications = 2;
  ro.threads = static_cast<std::size_t>(ctx.get_long("threads"));
  ro.confidence = ctx.get_double("confidence");
  parallel::ThreadPool pool(ro.threads);

  std::printf("=== Fig. 5: DTU convergence, theoretical settings ===\n\n");
  run_regime(ctx, population::LoadRegime::kBelowService, 'a', 0.13, ro, pool);
  // The at-service regime is the representative streamed run.
  run_regime(ctx, population::LoadRegime::kAtService, 'b', 0.21, ro, pool,
             ctx.get_path("stream-log"));
  run_regime(ctx, population::LoadRegime::kAboveService, 'c', 0.28, ro, pool);
  fig4_bisection_illustration();
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig5_dtu_theoretical",
     "Fig. 5: DTU convergence under the theoretical settings + DES check",
     {{"replications", mec::bench::FlagKind::kLong, "4",
       "independent DES replications"},
      {"threads", mec::bench::FlagKind::kLong, "0",
       "worker threads (0 = hardware)"},
      {"confidence", mec::bench::FlagKind::kDouble, "0.95", "CI level"},
      {"stream-log", mec::bench::FlagKind::kPath, "",
       "stream the Fig. 5b representative run to this .meclog"}},
     run});

}  // namespace

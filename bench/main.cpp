// Entry point of the unified bench binary; see runner.hpp for the registry.
#include "bench/runner.hpp"

int main(int argc, char** argv) { return mec::bench::run_main(argc, argv); }

// Declarative sweep campaigns for the bench runner.
//
// A sweep spec is a small line-oriented text file (same `key = value` style
// as the `.mec` scenario and `.fault` schedule formats) describing a grid
// over scenario x fault schedule x policy x shard count x replication:
//
//     # campaign.sweep
//     out-dir      = results/campaign
//     seed         = 42
//     warmup       = 20
//     horizon      = 200
//     window       = 5            # .meclog sample interval, seconds
//     replications = 2
//     scenario = theoretical:eq:2000     # axis keys repeat to add values
//     scenario = practical:high:500
//     fault    = none
//     fault    = scenarios/brownout.fault
//     policy   = tro                     # tro | dpo | fixed:<x>
//     policy   = price                   # ... | price | minority
//     clusters = 1
//     clusters = 2
//     shards   = 1
//     shards   = 4
//
// Scenario tokens are `theoretical|comparison|practical:<low|eq|high>[:<n>]`
// presets or a path to a `.mec` config file.  Fault tokens are `none`, a
// path to a `.fault` file, or `embedded` (the scenario's own `fault =`
// lines).  The `clusters` axis splits the edge capacity across that many
// clusters (device n mod K routing; the scenario's `cluster_shares` apply
// when their count matches).  '#' starts a comment; blank lines are
// ignored; every `scenario` line is required to exist (the other axes
// default to none/tro/1/1).
//
// Execution is *resumable*: each cell streams one `.meclog` run log, and a
// cell whose output already exists, is complete (footer frame present, no
// corruption), and matches the cell's seed/horizon/shards is skipped.  Cell
// seeds are derived from the campaign seed with the golden-ratio
// replication_seed scheme and the cell's position in the deterministic
// enumeration order — never from how many cells ran before it — so an
// interrupted campaign resumed later is byte-identical to one run fresh.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mec::bench {

/// Parsed sweep campaign description.
struct SweepSpec {
  std::string out_dir = "results/sweep";
  std::uint64_t seed = 1;
  double warmup = 20.0;
  double horizon = 200.0;
  double window = 5.0;  ///< .meclog sample interval (must be > 0)
  std::size_t replications = 1;
  std::vector<std::string> scenarios;  ///< required, at least one token
  std::vector<std::string> faults;     ///< defaults to {"none"}
  std::vector<std::string> policies;   ///< defaults to {"tro"}
  std::vector<std::size_t> clusters;   ///< defaults to {1}
  std::vector<std::size_t> shards;     ///< defaults to {1}
};

/// Parses a sweep spec from config text. Throws mec::RuntimeError with a
/// line-numbered message on any syntax or semantic problem.
SweepSpec parse_sweep_spec(const std::string& text);

/// Reads and parses a sweep spec file.
SweepSpec load_sweep_spec_file(const std::string& path);

/// One grid cell of a campaign.
struct SweepCell {
  std::size_t index = 0;  ///< position in enumeration order (seed input)
  std::string scenario;   ///< scenario token, verbatim from the spec
  std::string fault;      ///< fault token
  std::string policy;     ///< policy token
  std::size_t cluster_count = 1;
  std::size_t shard_count = 1;
  std::size_t replication = 0;
  std::uint64_t seed = 0;  ///< replication_seed(spec.seed, index)
  std::string label;  ///< filesystem-safe stem, e.g. s0-..__p0-tro__c1__k1__r0
  std::string path;   ///< <out-dir>/<label>.meclog
};

/// Deterministic lexicographic enumeration of the grid: scenario is the
/// outermost axis, then fault, policy, clusters, shards, replication.
std::vector<SweepCell> enumerate_cells(const SweepSpec& spec);

/// True when the cell's output file holds a complete run log (footer frame,
/// no corruption) whose seed / warmup / horizon / window / shards / clusters
/// metadata all match the cell — the resume-skip test.
bool cell_output_valid(const SweepCell& cell, const SweepSpec& spec);

struct SweepRunOptions {
  bool force = false;    ///< rerun every cell even when its output is valid
  bool dry_run = false;  ///< enumerate and classify only; run nothing
  /// Invoked per cell after it is classified (and, unless dry_run, after it
  /// ran). `executed` is false for resume-skipped cells.
  std::function<void(const SweepCell&, bool executed)> on_cell;
};

struct SweepReport {
  std::size_t total = 0;
  std::size_t executed = 0;
  std::size_t skipped = 0;  ///< valid outputs left untouched (resume)
};

/// Runs (or resumes) a campaign. Policy equilibria are solved once per
/// scenario and reused across that scenario's cells. Throws
/// mec::RuntimeError on unresolvable tokens or I/O failure.
SweepReport run_sweep(const SweepSpec& spec,
                      const SweepRunOptions& options = {});

class Context;

/// Body of the `sweep` experiment (`mec_bench sweep --spec=FILE ...`).  The
/// registration itself lives in sweep_experiment.cpp, a TU compiled into the
/// mec_bench binary: registrations in a static library would be dropped by
/// the linker, and tests want this layer without the registry side effect.
int run_sweep_experiment(Context& ctx);

}  // namespace mec::bench

// Reproduces Table I: the unique MFNE under the theoretical settings,
// computed two independent ways:
//   (1) Monte Carlo on a sampled population of N = 10^4 users (the paper's
//       method), averaged over several independent draws;
//   (2) the population-free quasi-Monte-Carlo mean-field integral.
//
// Paper reference values: gamma* = 0.13 / 0.21 / 0.28 for
// E[A] < / = / > E[S].
#include <cstdio>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/mean_field_integral.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/summary.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 1000 : 10'000;
  const std::uint64_t draws = ctx.smoke() ? 2 : 5;
  const std::size_t qmc_nodes = ctx.smoke() ? (1 << 12) : (1 << 15);

  io::TextTable table("TABLE I: MFNE under theoretical settings");
  table.set_header({"System Setup", "NE (sampled, N=10^4)", "NE (mean-field QMC)",
                    "Paper"});

  const struct {
    population::LoadRegime regime;
    double a_max;
    const char* paper;
  } rows[] = {
      {population::LoadRegime::kBelowService, 4.0, "0.13"},
      {population::LoadRegime::kAtService, 6.0, "0.21"},
      {population::LoadRegime::kAboveService, 8.0, "0.28"},
  };

  for (const auto& row : rows) {
    const population::ScenarioConfig cfg =
        population::theoretical_scenario(row.regime, n);

    // (1) Sampled populations, independent draws.
    stats::RunningSummary stars;
    for (std::uint64_t seed = 1; seed <= draws; ++seed) {
      const auto pop = population::sample_population(cfg, seed);
      stars.add(
          core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star);
    }

    // (2) Mean-field integral.
    core::MeanFieldModel model;
    model.arrival = core::uniform_inverse_cdf(0.0, row.a_max);
    model.service = core::uniform_inverse_cdf(1.0, 5.0);
    model.latency = core::uniform_inverse_cdf(0.0, 1.0);
    model.energy_local = core::uniform_inverse_cdf(0.0, 3.0);
    model.energy_offload = core::uniform_inverse_cdf(0.0, 1.0);
    model.weight = cfg.weight;
    model.capacity = cfg.capacity;
    model.delay = cfg.delay;
    const double qmc =
        core::mean_field_equilibrium(model, qmc_nodes).gamma_star;

    table.add_row({population::to_string(row.regime),
                   io::TextTable::fmt(stars.mean(), 2) + " (+/- " +
                       io::TextTable::fmt(stars.stddev(), 3) + ")",
                   io::TextTable::fmt(qmc, 2), row.paper});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Settings: S~U(1,5), T~U(0,1), PL~U(0,3), PE~U(0,1), w=1,\n"
      "g(gamma)=1/(1.1-gamma), c=%.0f (calibrated; unreported in the paper).\n",
      10.0);
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"table1_mfne_theoretical",
     "Table I: MFNE utilization under the theoretical settings",
     {},
     run});

}  // namespace

// Reproduces Fig. 7 (a-c): convergence of the DTU Algorithm under the
// practical settings — measured (synthetic) service-rate and latency
// datasets and *asynchronous* threshold updates (each user updates with
// probability 0.8 per iteration), converging to the Table-II equilibria
// within ~20 iterations.
//
// A final column cross-checks the converged thresholds in the discrete-event
// simulator with the *empirical* (non-exponential) service distribution.
#include <cstdio>
#include <string>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

void run_regime(mec::population::LoadRegime regime, char tag,
                double paper_star) {
  using namespace mec;
  const population::ScenarioConfig cfg = population::practical_scenario(regime);
  const auto pop = population::sample_population(cfg, 21);

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);

  core::AnalyticUtilization source(pop.users, cfg.capacity);
  core::DtuOptions opt;
  opt.update_gate = core::make_bernoulli_gate(0.8, /*seed=*/3);  // async
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);

  std::printf("--- Fig. 7%c: %s ---\n", tag,
              population::to_string(regime).c_str());
  std::printf("MFNE gamma* = %.4f (paper: %.2f);  async DTU converged in %d "
              "iterations to gamma_hat = %.4f\n",
              mfne.gamma_star, paper_star, dtu.iterations,
              dtu.final_gamma_hat);

  std::vector<double> t, gamma, gamma_hat, star;
  for (const core::DtuIterate& it : dtu.trace) {
    t.push_back(it.t);
    gamma.push_back(it.gamma);
    gamma_hat.push_back(it.gamma_hat);
    star.push_back(mfne.gamma_star);
  }
  io::PlotOptions popt;
  popt.title = "gamma_t (o), gamma_hat_t (*), gamma* (-)";
  popt.x_label = "iteration t";
  popt.y_label = "utilization";
  std::printf("%s\n",
              io::line_plot(
                  std::vector<io::Series>{{"gamma_t", t, gamma, 'o'},
                                          {"gamma_hat_t", t, gamma_hat, '*'},
                                          {"gamma*", t, star, '-'}},
                  popt)
                  .c_str());

  // DES validation with the non-exponential measured service distribution.
  sim::SimulationOptions so;
  so.service = sim::empirical_service(random::synthetic_yolo_processing_times());
  so.latency = sim::empirical_latency(random::synthetic_wifi_offload_latencies());
  so.fixed_gamma = mfne.gamma_star;
  so.horizon = 150.0;
  so.warmup = 15.0;
  sim::MecSimulation sim(pop.users, cfg.capacity, cfg.delay, so);
  const sim::SimulationResult r = sim.run_tro(dtu.thresholds);
  std::printf(
      "DES check (empirical service/latency): measured gamma = %.4f, "
      "mean cost = %.3f\n\n",
      r.measured_utilization, r.mean_cost);

  io::write_csv(std::string("fig7") + tag + "_dtu_practical.csv",
                {"t", "gamma", "gamma_hat", "gamma_star"},
                {t, gamma, gamma_hat, star});
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 7: DTU convergence, practical settings (async p=0.8) ===\n\n");
  run_regime(mec::population::LoadRegime::kBelowService, 'a', 0.43);
  run_regime(mec::population::LoadRegime::kAtService, 'b', 0.44);
  run_regime(mec::population::LoadRegime::kAboveService, 'c', 0.46);
  return 0;
}

// Reproduces Fig. 7 (a-c): convergence of the DTU Algorithm under the
// practical settings — measured (synthetic) service-rate and latency
// datasets and *asynchronous* threshold updates (each user updates with
// probability 0.8 per iteration), converging to the Table-II equilibria
// within ~20 iterations.
//
// A final block cross-checks the converged thresholds in the discrete-event
// simulator with the *empirical* (non-exponential) service distribution,
// over --replications independent runs spread over --threads workers; the
// aggregated mean +/- CI is bit-identical for any thread count (see
// mec/parallel/replication.hpp).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

void run_regime(mec::bench::Context& ctx, mec::population::LoadRegime regime,
                char tag, double paper_star,
                const mec::parallel::ReplicationOptions& ro,
                mec::parallel::ThreadPool& pool,
                const std::string& stream_log = "") {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 200 : 1000;
  const population::ScenarioConfig cfg =
      population::practical_scenario(regime, n);
  const auto pop = population::sample_population(cfg, 21);

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);

  core::AnalyticUtilization source(pop.users, cfg.capacity);
  core::DtuOptions opt;
  opt.update_gate = core::make_bernoulli_gate(0.8, /*seed=*/3);  // async
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);

  std::printf("--- Fig. 7%c: %s ---\n", tag,
              population::to_string(regime).c_str());
  std::printf("MFNE gamma* = %.4f (paper: %.2f);  async DTU converged in %d "
              "iterations to gamma_hat = %.4f\n",
              mfne.gamma_star, paper_star, dtu.iterations,
              dtu.final_gamma_hat);

  std::vector<double> t, gamma, gamma_hat, star;
  for (const core::DtuIterate& it : dtu.trace) {
    t.push_back(it.t);
    gamma.push_back(it.gamma);
    gamma_hat.push_back(it.gamma_hat);
    star.push_back(mfne.gamma_star);
  }
  io::PlotOptions popt;
  popt.title = "gamma_t (o), gamma_hat_t (*), gamma* (-)";
  popt.x_label = "iteration t";
  popt.y_label = "utilization";
  std::printf("%s\n",
              io::line_plot(
                  std::vector<io::Series>{{"gamma_t", t, gamma, 'o'},
                                          {"gamma_hat_t", t, gamma_hat, '*'},
                                          {"gamma*", t, star, '-'}},
                  popt)
                  .c_str());

  // Replicated DES validation with the non-exponential measured service
  // distribution; replication r runs with seed_r = seed + golden * (r+1).
  sim::SimulationOptions so;
  so.service = sim::empirical_service(random::synthetic_yolo_processing_times());
  so.latency = sim::empirical_latency(random::synthetic_wifi_offload_latencies());
  so.fixed_gamma = mfne.gamma_star;
  so.horizon = ctx.smoke() ? 40.0 : 150.0;
  so.warmup = ctx.smoke() ? 5.0 : 15.0;
  so.seed = 42;
  const parallel::ReplicationResult r = parallel::run_replications(
      pop.users, cfg.capacity, cfg.delay, so, dtu.thresholds, ro, &pool);
  std::printf(
      "DES check (empirical service/latency, %zu replications): "
      "measured gamma = %.4f +/- %.4f, mean cost = %.3f +/- %.3f\n\n",
      r.replications, r.measured_utilization.mean(),
      r.measured_utilization.ci.half_width, r.mean_cost.mean(),
      r.mean_cost.ci.half_width);

  const std::string csv =
      ctx.output_path(std::string("fig7") + tag + "_dtu_practical.csv");
  io::write_csv(csv, {"t", "gamma", "gamma_hat", "gamma_star"},
                {t, gamma, gamma_hat, star});
  std::printf("wrote %s (%zu rows)\n", csv.c_str(), t.size());

  if (!stream_log.empty()) {
    // Replications cannot share one log, so stream a single representative
    // run of the converged thresholds (same options, base seed).
    sim::SimulationOptions streamed = so;
    streamed.stream_log = stream_log;
    streamed.sample_interval = 1.0;
    streamed.record_timeline = false;
    sim::MecSimulation des_one(pop.users, cfg.capacity, cfg.delay, streamed);
    (void)des_one.run_tro(dtu.thresholds);
    std::printf("telemetry stream written to %s\n\n", stream_log.c_str());
  }
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  parallel::ReplicationOptions ro;
  ro.replications =
      static_cast<std::size_t>(ctx.get_long("replications"));
  if (ctx.smoke() && !ctx.has("replications")) ro.replications = 2;
  ro.threads = static_cast<std::size_t>(ctx.get_long("threads"));
  ro.confidence = ctx.get_double("confidence");
  parallel::ThreadPool pool(ro.threads);

  std::printf(
      "=== Fig. 7: DTU convergence, practical settings (async p=0.8) ===\n\n");
  run_regime(ctx, population::LoadRegime::kBelowService, 'a', 0.43, ro, pool);
  // The at-service regime is the representative streamed run.
  run_regime(ctx, population::LoadRegime::kAtService, 'b', 0.44, ro, pool,
             ctx.get_path("stream-log"));
  run_regime(ctx, population::LoadRegime::kAboveService, 'c', 0.46, ro, pool);
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig7_dtu_practical",
     "Fig. 7: async DTU convergence under the practical settings + DES check",
     {{"replications", mec::bench::FlagKind::kLong, "8",
       "independent DES replications"},
      {"threads", mec::bench::FlagKind::kLong, "0",
       "worker threads (0 = hardware)"},
      {"confidence", mec::bench::FlagKind::kDouble, "0.95", "CI level"},
      {"stream-log", mec::bench::FlagKind::kPath, "",
       "stream the Fig. 7b representative run to this .meclog"}},
     run});

}  // namespace

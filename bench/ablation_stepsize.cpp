// Ablation X1: how the DTU step-size schedule (eta0) and the accuracy target
// (epsilon) trade off iterations-to-converge against final error.
//
// The step decays harmonically (eta0/L on each detected oscillation), so the
// iteration count scales like O(eta0/epsilon) once the estimate brackets the
// equilibrium — this bench quantifies that and the accuracy actually
// achieved.
#include <cmath>
#include <cstdio>

#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

int main() {
  using namespace mec;
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAtService, 5000);
  const auto pop = population::sample_population(cfg, 99);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  core::AnalyticUtilization source(pop.users, cfg.capacity);

  std::printf("=== Ablation: DTU step size and accuracy ===\n");
  std::printf("population: %s, gamma* = %.5f\n\n", cfg.name.c_str(), star);

  io::TextTable table("iterations and final error vs (eta0, epsilon)");
  table.set_header({"eta0", "epsilon", "iterations", "|gamma_hat - gamma*|",
                    "converged"});
  for (const double eta0 : {0.5, 0.25, 0.1, 0.05}) {
    for (const double eps : {0.05, 0.01, 0.002}) {
      core::DtuOptions opt;
      opt.eta0 = eta0;
      opt.epsilon = eps;
      opt.max_iterations = 2'000'000;
      const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
      table.add_row({io::TextTable::fmt(eta0, 2), io::TextTable::fmt(eps, 3),
                     std::to_string(r.iterations),
                     io::TextTable::fmt(std::abs(r.final_gamma_hat - star), 5),
                     r.converged ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: iterations grow ~ eta0/epsilon (harmonic step decay); the\n"
      "final error is bounded by epsilon as Theorem 2 predicts.  The paper's\n"
      "~20-iteration Fig. 5 traces correspond to (0.1, 0.01).\n");
  return 0;
}

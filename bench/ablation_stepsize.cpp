// Ablation X1: how the DTU step-size schedule (eta0) and the accuracy target
// (epsilon) trade off iterations-to-converge against final error.
//
// The step decays harmonically (eta0/L on each detected oscillation), so the
// iteration count scales like O(eta0/epsilon) once the estimate brackets the
// equilibrium — this bench quantifies that and the accuracy actually
// achieved.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 500 : 5000;
  const std::vector<double> eta0s =
      ctx.smoke() ? std::vector<double>{0.1} : std::vector<double>{0.5, 0.25,
                                                                   0.1, 0.05};
  const std::vector<double> epsilons =
      ctx.smoke() ? std::vector<double>{0.05, 0.01}
                  : std::vector<double>{0.05, 0.01, 0.002};
  const auto cfg =
      population::theoretical_scenario(population::LoadRegime::kAtService, n);
  const auto pop = population::sample_population(cfg, 99);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  core::AnalyticUtilization source(pop.users, cfg.capacity);

  std::printf("=== Ablation: DTU step size and accuracy ===\n");
  std::printf("population: %s, gamma* = %.5f\n\n", cfg.name.c_str(), star);

  io::TextTable table("iterations and final error vs (eta0, epsilon)");
  table.set_header({"eta0", "epsilon", "iterations", "|gamma_hat - gamma*|",
                    "converged"});
  for (const double eta0 : eta0s) {
    for (const double eps : epsilons) {
      core::DtuOptions opt;
      opt.eta0 = eta0;
      opt.epsilon = eps;
      opt.max_iterations = 2'000'000;
      const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
      table.add_row({io::TextTable::fmt(eta0, 2), io::TextTable::fmt(eps, 3),
                     std::to_string(r.iterations),
                     io::TextTable::fmt(std::abs(r.final_gamma_hat - star), 5),
                     r.converged ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: iterations grow ~ eta0/epsilon (harmonic step decay); the\n"
      "final error is bounded by epsilon as Theorem 2 predicts.  The paper's\n"
      "~20-iteration Fig. 5 traces correspond to (0.1, 0.01).\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_stepsize",
     "Ablation X1: DTU iterations/accuracy vs step size and epsilon",
     {},
     run});

}  // namespace

// Ablation X7: how efficient is the MFNE?  Selfish threshold play ignores
// the congestion externality at the edge; this bench compares the Nash
// equilibrium against the congestion-priced planner solution across load
// regimes and edge-delay steepness, reporting the price of anarchy.
#include <cstdio>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/social_optimum.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 500 : 3000;
  std::printf("=== Ablation: price of anarchy of the MFNE ===\n\n");

  io::TextTable table("Nash vs planner across regimes and delay steepness");
  table.set_header({"regime", "g(gamma)", "gamma Nash", "gamma planner",
                    "cost Nash", "cost planner", "PoA"});

  const struct {
    const char* label;
    core::EdgeDelay delay;
  } delays[] = {
      {"1/(1.1-g)  (paper)", core::make_reciprocal_delay(1.1)},
      {"1/(1.02-g) (steep)", core::make_reciprocal_delay(1.02)},
      {"0.5+2g     (linear)", core::make_linear_delay(0.5, 2.0)},
      {"0.5+40g    (cliff)", core::make_linear_delay(0.5, 40.0)},
  };

  for (const auto regime : {population::LoadRegime::kBelowService,
                            population::LoadRegime::kAtService,
                            population::LoadRegime::kAboveService}) {
    const auto cfg = population::theoretical_scenario(regime, n);
    const auto pop = population::sample_population(cfg, 11);
    for (const auto& d : delays) {
      const core::MfneResult nash =
          core::solve_mfne(pop.users, d.delay, cfg.capacity);
      std::vector<double> nash_xs(nash.thresholds.begin(),
                                  nash.thresholds.end());
      const double nash_cost = core::average_cost(
          pop.users, nash_xs, d.delay,
          core::utilization_of_thresholds(pop.users, nash_xs, cfg.capacity));
      const core::SocialOptimum so =
          core::solve_social_optimum(pop.users, d.delay, cfg.capacity);
      table.add_row({population::to_string(regime), d.label,
                     io::TextTable::fmt(nash.gamma_star, 3),
                     io::TextTable::fmt(so.gamma, 3),
                     io::TextTable::fmt(nash_cost, 4),
                     io::TextTable::fmt(so.average_cost, 4),
                     io::TextTable::fmt(nash_cost / so.average_cost, 4)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: with the paper's mild 1/(1.1-gamma) delay the equilibrium is\n"
      "nearly efficient (PoA ~ 1.00x), justifying the paper's focus on Nash\n"
      "convergence; a cliff-like congestion curve opens a visible gap that a\n"
      "congestion-priced broadcast (g + g'*a*mean_alpha/c) would close.\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_price_of_anarchy",
     "Ablation X7: price of anarchy of the MFNE vs a planner solution",
     {},
     run});

}  // namespace

// Ablation X5: google-benchmark micro-benchmarks of the hot paths — the TRO
// closed forms, the Lemma-1 oracle, a full V(gamma) population sweep, the
// MFNE bisection, the discrete-event simulator's event throughput, and the
// parallel replication engine's scaling across thread counts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/parallel/sequential.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/threshold_queue.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using namespace mec;

const population::Population& shared_population(std::size_t n) {
  static const population::Population pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       10000),
      1);
  (void)n;
  return pop;
}

void BM_TroMetrics(benchmark::State& state) {
  const double theta = 1.0 + static_cast<double>(state.range(0)) / 10.0;
  const double x = static_cast<double>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(queueing::tro_metrics(theta, x));
}
BENCHMARK(BM_TroMetrics)->Args({5, 2})->Args({5, 20})->Args({20, 100});

void BM_BestThresholdOracle(benchmark::State& state) {
  core::UserParams u;
  u.arrival_rate = 3.0;
  u.service_rate = 2.0;
  u.offload_latency = 0.5;
  u.energy_local = 1.0;
  u.energy_offload = 0.3;
  const double g = static_cast<double>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::best_threshold(u, g));
}
BENCHMARK(BM_BestThresholdOracle)->Arg(1)->Arg(5)->Arg(10);

void BM_BestResponseSweep(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::best_response(users, delay, 10.0, 0.3).utilization);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BestResponseSweep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MfneSolve(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::solve_mfne(users, delay, 10.0).gamma_star);
}
BENCHMARK(BM_MfneSolve)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_DesEventThroughput(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  sim::SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 20.0;
  o.fixed_gamma = 0.2;
  sim::MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const std::vector<double> xs(users.size(), 2.0);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::SimulationResult r = sim.run_tro(xs);
    events += r.total_events;
    benchmark::DoNotOptimize(r.mean_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DesEventThroughput)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Same workload with windowed telemetry streamed to a .meclog (one window
// per simulated second, in-memory timeline off).  The delta against
// BM_DesEventThroughput is the full cost of the streaming path: counter
// sampling, window folding, and the per-frame flush.
void BM_DesStreamedThroughput(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  sim::SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 20.0;
  o.fixed_gamma = 0.2;
  o.sample_interval = 1.0;
  o.stream_log = "micro_stream_bench.meclog";
  o.record_timeline = false;
  sim::MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const std::vector<double> xs(users.size(), 2.0);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::SimulationResult r = sim.run_tro(xs);
    events += r.total_events;
    benchmark::DoNotOptimize(r.mean_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  std::remove("micro_stream_bench.meclog");
}
BENCHMARK(BM_DesStreamedThroughput)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Scaling of the replication engine on a Fig.-7-sized workload (practical
// scenario, N = 1000, empirical service/latency): 8 independent DES
// replications spread over range(0) threads.  The replications are
// embarrassingly parallel with a serial merge at the end, so on a machine
// with >= 4 cores the wall-clock time should drop near-linearly from the
// --threads=1 row (the aggregate stays bit-identical; see test_parallel).
// UseRealTime is required: the work happens on pool threads, so CPU time of
// the benchmark thread alone would under-report.
void BM_RunReplicationsScaling(benchmark::State& state) {
  static const population::Population pop = population::sample_population(
      population::practical_scenario(population::LoadRegime::kAtService), 21);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  sim::SimulationOptions so;
  so.service = sim::empirical_service(random::synthetic_yolo_processing_times());
  so.latency = sim::empirical_latency(random::synthetic_wifi_offload_latencies());
  so.fixed_gamma = 0.44;
  so.horizon = 60.0;
  so.warmup = 10.0;
  const std::vector<double> xs(pop.users.size(), 2.0);
  parallel::ReplicationOptions ro;
  ro.replications = 8;
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const parallel::ReplicationResult r = parallel::run_replications(
        pop.users, 10.0, delay, so, xs, ro, &pool);
    benchmark::DoNotOptimize(r.mean_cost.mean());
  }
  state.counters["threads"] =
      static_cast<double>(pool.thread_count());
}
BENCHMARK(BM_RunReplicationsScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Sequential stopping vs a fixed budget: run-until-confident on a small DES
// workload with a relative CI-width target.  The counter reports how many
// replications the stopping rule actually spent per iteration — the wall
// clock to compare against is BM_RunReplicationsScaling's fixed R = 8.
void BM_RunUntilConfident(benchmark::State& state) {
  static const population::Population pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       200),
      7);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  sim::SimulationOptions so;
  so.fixed_gamma = 0.2;
  so.horizon = 40.0;
  so.warmup = 5.0;
  const std::vector<double> xs(pop.users.size(), 2.0);
  parallel::SequentialOptions sq;
  sq.target_relative = 1e-3 * static_cast<double>(state.range(0));
  sq.min_replications = 4;
  sq.wave = 4;
  sq.max_replications = 256;
  parallel::ThreadPool pool(0);
  std::uint64_t replications = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    const parallel::SequentialResult r = parallel::run_until_confident(
        pop.users, 10.0, delay, so, xs, sq, &pool);
    replications += r.replications;
    ++iterations;
    benchmark::DoNotOptimize(r.aggregate.mean_cost.mean());
  }
  state.counters["reps/iter"] = static_cast<double>(replications) /
                                static_cast<double>(iterations);
}
BENCHMARK(BM_RunUntilConfident)
    ->Arg(20)  // 2% relative target
    ->Arg(5)   // 0.5% relative target
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Scaling of the parallel V(gamma) sweep: one best_response over N = 10^5
// users per iteration, spread over range(0) threads in 256-user chunks.
void BM_ParallelBestResponse(benchmark::State& state) {
  static const population::Population pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       100000),
      1);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::best_response(pop.users, delay, 10.0, 0.3, pool).utilization);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pop.users.size()));
}
BENCHMARK(BM_ParallelBestResponse)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// google-benchmark keeps its own flag parser, so the experiment hands it a
// synthetic argv: the runner's --filter maps to --benchmark_filter, and
// --smoke pins the two cheapest closed-form benchmarks so the CI smoke
// matrix stays fast.
int run(mec::bench::Context& ctx) {
  std::string filter = ctx.get_string("filter");
  if (filter.empty() && ctx.smoke())
    filter = "BM_TroMetrics|BM_BestThresholdOracle";

  std::vector<std::string> argv_storage = {"micro_benchmarks"};
  if (!filter.empty())
    argv_storage.push_back("--benchmark_filter=" + filter);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size());
  for (std::string& arg : argv_storage) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());

  benchmark::Initialize(&argc, argv.data());
  if (benchmark::ReportUnrecognizedArguments(argc, argv.data()))
    throw std::runtime_error("micro_benchmarks: bad benchmark arguments");
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (ran == 0)
    throw std::runtime_error("micro_benchmarks: filter '" + filter +
                             "' matched no benchmarks");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"micro_benchmarks",
     "Ablation X5: google-benchmark micro-benchmarks of the hot paths",
     {{"filter", mec::bench::FlagKind::kString, "",
       "regex passed to --benchmark_filter (smoke pins the closed forms)"}},
     run});

}  // namespace

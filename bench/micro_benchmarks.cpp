// Ablation X5: google-benchmark micro-benchmarks of the hot paths — the TRO
// closed forms, the Lemma-1 oracle, a full V(gamma) population sweep, the
// MFNE bisection, and the discrete-event simulator's event throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/threshold_queue.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using namespace mec;

const population::Population& shared_population(std::size_t n) {
  static const population::Population pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       10000),
      1);
  (void)n;
  return pop;
}

void BM_TroMetrics(benchmark::State& state) {
  const double theta = 1.0 + static_cast<double>(state.range(0)) / 10.0;
  const double x = static_cast<double>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(queueing::tro_metrics(theta, x));
}
BENCHMARK(BM_TroMetrics)->Args({5, 2})->Args({5, 20})->Args({20, 100});

void BM_BestThresholdOracle(benchmark::State& state) {
  core::UserParams u;
  u.arrival_rate = 3.0;
  u.service_rate = 2.0;
  u.offload_latency = 0.5;
  u.energy_local = 1.0;
  u.energy_offload = 0.3;
  const double g = static_cast<double>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::best_threshold(u, g));
}
BENCHMARK(BM_BestThresholdOracle)->Arg(1)->Arg(5)->Arg(10);

void BM_BestResponseSweep(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::best_response(users, delay, 10.0, 0.3).utilization);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BestResponseSweep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MfneSolve(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::solve_mfne(users, delay, 10.0).gamma_star);
}
BENCHMARK(BM_MfneSolve)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_DesEventThroughput(benchmark::State& state) {
  const auto& pop = shared_population(10000);
  const auto users = std::span<const core::UserParams>(
      pop.users.data(), static_cast<std::size_t>(state.range(0)));
  sim::SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 20.0;
  o.fixed_gamma = 0.2;
  sim::MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  const std::vector<double> xs(users.size(), 2.0);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::SimulationResult r = sim.run_tro(xs);
    events += r.total_events;
    benchmark::DoNotOptimize(r.mean_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DesEventThroughput)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

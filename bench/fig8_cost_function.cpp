// Reproduces Fig. 8 (Appendix A): the per-user cost T(x|gamma) as a function
// of the threshold x, with tau = 1, p_L = 3, p_E = 1, w = 1 and utilization
// gamma = sqrt(3)/10, for arrival intensities theta = 2 and theta = 4.
//
// The figure's two take-aways, verified numerically here:
//   * T(x|gamma) is continuous in x but non-differentiable at integers;
//   * the minimizer is (generically) an integer, and when the offload price
//     beta equals f(m|theta) exactly the argmin is the whole flat segment
//     [m, m+1) (paper: "the optimal threshold can be any value between 1
//     and 2" in Fig. 8a).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/cost_model.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"

namespace {

mec::core::UserParams fig8_user(double theta, double arrival_rate) {
  mec::core::UserParams u;
  u.arrival_rate = arrival_rate;
  u.service_rate = arrival_rate / theta;
  u.offload_latency = 1.0;
  u.energy_local = 3.0;
  u.energy_offload = 1.0;
  u.weight = 1.0;
  return u;
}

void trace_one(double theta, double g_value, double arrival_rate,
               std::vector<std::vector<double>>& csv_columns) {
  using namespace mec;
  const core::UserParams u = fig8_user(theta, arrival_rate);
  const double beta = core::offload_price(u, g_value);
  const auto x_star = core::best_threshold(u, g_value);

  std::vector<double> xs, cost;
  for (double x = 0.0; x <= 8.0 + 1e-9; x += 0.02) {
    xs.push_back(x);
    cost.push_back(core::tro_cost(u, x, g_value));
  }

  std::printf("theta = %.0f  (a = %.2f, s = %.2f):  beta = %.3f", theta,
              u.arrival_rate, u.service_rate, beta);
  std::printf("  [f(1)=%.3f  f(2)=%.3f  f(3)=%.3f]   x* = %lld\n",
              core::f_recursive(1, theta), core::f_recursive(2, theta),
              core::f_recursive(3, theta), static_cast<long long>(x_star));

  io::PlotOptions opt;
  char title[128];
  std::snprintf(title, sizeof title,
                "T(x | gamma) for theta = %.0f  (min at x* = %lld)", theta,
                static_cast<long long>(x_star));
  opt.title = title;
  opt.x_label = "x";
  opt.y_label = "cost";
  std::printf("%s\n", io::line_plot(std::vector<io::Series>{
                                        {"T(x|gamma)", xs, cost, '*'}},
                                    opt)
                          .c_str());

  if (csv_columns.empty()) csv_columns.push_back(xs);
  csv_columns.push_back(cost);
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const double gamma = std::sqrt(3.0) / 10.0;
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const double g_value = delay(gamma);

  std::printf("=== Fig. 8: cost function T(x|gamma = sqrt(3)/10) ===\n");
  std::printf("tau = 1, p_L = 3, p_E = 1, w = 1;  g(gamma) = %.4f\n\n",
              g_value);

  // The paper does not report the arrival rates behind Fig. 8.  We choose
  // them so the offload price lands where the figure shows it:
  //   (a) theta = 2: beta == f(1|2) = 2 exactly => flat argmin on [1, 2);
  //   (b) theta = 4: beta in (f(1|4), f(2|4)) => unique integer minimizer.
  std::vector<std::vector<double>> csv;
  const double net_price = g_value + 1.0 + (1.0 - 3.0);  // g + tau + w(pE-pL)
  trace_one(2.0, g_value, 2.0 / net_price, csv);   // beta = 2 = f(1|2)
  trace_one(4.0, g_value, 10.0 / net_price, csv);  // beta = 10 in (4, 12)

  // Demonstrate the flat-argmin degeneracy of case (a) numerically.
  const core::UserParams u = fig8_user(2.0, 2.0 / net_price);
  std::printf("flat argmin check (theta=2, beta = f(1|2)):\n");
  for (const double x : {1.0, 1.25, 1.5, 1.75, 2.0})
    std::printf("  T(%.2f) = %.6f\n", x, core::tro_cost(u, x, g_value));

  const std::string csv_path = ctx.output_path("fig8_cost_function.csv");
  io::write_csv(csv_path, {"x", "cost_theta2", "cost_theta4"}, csv);
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig8_cost_function",
     "Fig. 8: per-user cost T(x|gamma) vs threshold, flat-argmin check",
     {},
     run});

}  // namespace

// Reproduces Fig. 2: the TRO queue's mean queue length Q(x) and offloading
// probability alpha(x) as functions of the threshold x at arrival intensity
// theta = 4, demonstrating both are continuous in x (Eq. 7-8).
//
// Output: the two series as ASCII plots plus a CSV
// (fig2_q_alpha.csv) with a fine grid for external plotting.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  constexpr double kTheta = 4.0;  // paper's Fig. 2 setting
  constexpr double kXMax = 10.0;
  constexpr double kStep = 0.05;

  std::vector<double> xs, q, alpha;
  for (double x = 0.0; x <= kXMax + kStep / 2; x += kStep) {
    const queueing::TroMetrics m = queueing::tro_metrics(kTheta, x);
    xs.push_back(x);
    q.push_back(m.mean_queue_length);
    alpha.push_back(m.offload_probability);
  }

  std::printf("=== Fig. 2: Q(x) and alpha(x) at theta = %.0f ===\n\n", kTheta);

  io::PlotOptions opt;
  opt.title = "(a) Q(x) — mean queue length vs threshold";
  opt.x_label = "x";
  opt.y_label = "Q(x)";
  std::printf("%s\n", io::line_plot(
                          std::vector<io::Series>{{"Q(x)", xs, q, '*'}}, opt)
                          .c_str());

  opt.title = "(b) alpha(x) — offload probability vs threshold";
  opt.y_label = "alpha(x)";
  std::printf("%s\n",
              io::line_plot(
                  std::vector<io::Series>{{"alpha(x)", xs, alpha, '*'}}, opt)
                  .c_str());

  // Spot rows matching the paper's qualitative observations.
  std::printf("spot values (theta=4):\n");
  std::printf("  %-6s %-12s %-12s\n", "x", "Q(x)", "alpha(x)");
  for (const double x : {0.0, 0.5, 1.0, 2.0, 2.5, 4.0, 8.0, 10.0}) {
    const auto m = queueing::tro_metrics(kTheta, x);
    std::printf("  %-6.2f %-12.6f %-12.6f\n", x, m.mean_queue_length,
                m.offload_probability);
  }
  std::printf(
      "\nNote: alpha(x) -> 1 - 1/theta = %.4f as x -> inf (theta > 1), and\n"
      "both curves are continuous in x, including at integer thresholds.\n",
      1.0 - 1.0 / kTheta);

  const std::string csv = ctx.output_path("fig2_q_alpha.csv");
  io::write_csv(csv, {"x", "Q", "alpha"}, {xs, q, alpha});
  std::printf("wrote %s (%zu rows)\n", csv.c_str(), xs.size());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"fig2_q_alpha",
     "Fig. 2: Q(x) and alpha(x) vs threshold at theta = 4",
     {},
     run});

}  // namespace

// Reproduces Table III: average per-user cost of the DTU threshold policy
// versus Distributed Probabilistic Offloading (DPO), under both setting
// families:
//   * theoretical: S ~ U(1,5), T ~ U(0,5), A ~ U(0, a_max) for a_max = 4/6/8;
//   * practical:  S, T resampled from the measured datasets, E[A] = 8 /
//     8.9437 / 10.
//
// The paper's exact DPO implementation is unpublished, so three readings of
// the probabilistic-offloading literature are reported (see EXPERIMENTS.md):
//   DPO-opt    per-user cost-optimal probability at its own equilibrium —
//              the strongest probabilistic baseline (lower bound on the gap);
//   DPO-delay  per-user delay-only probability (energy-blind designs);
//   DPO-1rho   a single shared probability minimizing the population mean
//              cost — the single-knob policy (upper bound on the gap).
// The paper's reported reductions (30.8/23.3/15.1% theoretical, decreasing
// with load) fall between DPO-opt and DPO-1rho; DPO-1rho reproduces the
// decreasing-in-load trend.
//
// Protocol mirrors the paper where specified: the primary DPO-opt mean cost
// carries a 98% confidence interval over 5*10^3 independent repetitions
// (population redraws, each solved to its own equilibrium); DTU and the
// variant baselines are averaged over 50 redraws.
#include <cstdio>
#include <string>
#include <vector>

#include "mec/baseline/dpo.hpp"
#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/args.hpp"
#include "mec/io/table.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/confidence.hpp"
#include "mec/stats/summary.hpp"

namespace {

struct RowResult {
  double dtu_cost;
  mec::stats::ConfidenceInterval dpo_ci;  // per-user-optimal DPO
  double dpo_delay_only;
  double dpo_common_rho;
};

RowResult evaluate(const mec::population::ScenarioConfig& cfg,
                   int dpo_repetitions, int small_repetitions,
                   mec::parallel::ThreadPool& pool) {
  using namespace mec;

  stats::RunningSummary dtu_costs, delay_only_costs, common_costs;
  for (int rep = 1; rep <= small_repetitions; ++rep) {
    const auto pop =
        population::sample_population(cfg, static_cast<std::uint64_t>(rep));

    const core::MfneResult mfne =
        core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
    std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
    dtu_costs.add(
        core::average_cost(pop.users, xs, cfg.delay, mfne.gamma_star));

    // Delay-only DPO at its own consistent utilization.
    {
      double lo = 0.0, hi = 1.0;
      for (int i = 0; i < 50; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double g = cfg.delay(mid);
        double acc = 0.0;
        for (const auto& u : pop.users)
          acc += u.arrival_rate *
                 baseline::delay_only_offload_probability(u, g);
        (acc / (static_cast<double>(pop.size()) * cfg.capacity) > mid ? lo
                                                                      : hi) =
            mid;
      }
      const double gamma = 0.5 * (lo + hi);
      const double g = cfg.delay(gamma);
      double cost = 0.0;
      for (const auto& u : pop.users)
        cost += baseline::dpo_cost(
            u, baseline::delay_only_offload_probability(u, g), g);
      delay_only_costs.add(cost / static_cast<double>(pop.size()));
    }

    common_costs.add(
        baseline::solve_common_rho_dpo(pop.users, cfg.delay, cfg.capacity)
            .average_cost);
  }

  // The 5*10^3 DPO repetitions are independent population redraws, so they
  // parallelize over the pool; each repetition writes its own slot and the
  // slots merge serially in repetition order, keeping the summary (and its
  // CI) bit-identical for any thread count.
  std::vector<double> dpo_slots(static_cast<std::size_t>(dpo_repetitions));
  pool.parallel_for_each(
      dpo_slots.size(),
      [&](std::size_t i) {
        const auto pop = population::sample_population(
            cfg, 0x5eed0000ULL + static_cast<std::uint64_t>(i) + 1);
        dpo_slots[i] = baseline::solve_dpo_equilibrium(pop.users, cfg.delay,
                                                       cfg.capacity, 1e-8)
                           .average_cost;
      },
      /*grain=*/16);
  stats::RunningSummary dpo_costs;
  for (const double cost : dpo_slots) dpo_costs.add(cost);

  return RowResult{dtu_costs.mean(),
                   stats::mean_confidence_interval(dpo_costs, 0.98),
                   delay_only_costs.mean(), common_costs.mean()};
}

std::string pct(double baseline_cost, double dtu_cost) {
  return mec::io::TextTable::fmt(
             (baseline_cost - dtu_cost) / dtu_cost * 100.0, 1) +
         "%";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mec;
  const io::Args args =
      io::Args::parse(std::vector<std::string>(argv + 1, argv + argc));
  args.reject_unknown({"replications", "threads"});
  // 5000 repetitions as in the paper; --replications trims it for smoke
  // runs (>= 2 so the 98% CI over the repetitions stays well defined).
  const int kDpoReps = static_cast<int>(args.get_long("replications", 5000));
  MEC_EXPECTS_MSG(kDpoReps >= 2,
                  "--replications must be >= 2 for the DPO confidence "
                  "interval");
  constexpr int kSmallReps = 50;
  parallel::ThreadPool pool(
      static_cast<std::size_t>(args.get_long("threads", 0)));

  io::TextTable table("TABLE III: DTU Algorithm vs DPO Policy variants");
  table.set_header({"Family", "System Setup", "DTU", "DPO-opt (98% CI)",
                    "red.", "DPO-delay", "red.", "DPO-1rho", "red.",
                    "Paper red."});

  const struct {
    const char* family;
    bool practical;
    population::LoadRegime regime;
    const char* paper;
  } rows[] = {
      {"theoretical", false, population::LoadRegime::kBelowService, "30.76%"},
      {"theoretical", false, population::LoadRegime::kAtService, "23.26%"},
      {"theoretical", false, population::LoadRegime::kAboveService, "15.14%"},
      {"practical", true, population::LoadRegime::kBelowService, "20.07%"},
      {"practical", true, population::LoadRegime::kAtService, "18.50%"},
      {"practical", true, population::LoadRegime::kAboveService, "17.51%"},
  };

  for (const auto& row : rows) {
    const auto cfg =
        row.practical
            ? population::practical_scenario(row.regime)
            : population::theoretical_comparison_scenario(row.regime);
    const RowResult r = evaluate(cfg, kDpoReps, kSmallReps, pool);
    table.add_row(
        {row.family, population::to_string(row.regime),
         io::TextTable::fmt(r.dtu_cost, 2),
         io::TextTable::fmt(r.dpo_ci.mean, 2) + " +/- " +
             io::TextTable::fmt(r.dpo_ci.half_width, 4),
         pct(r.dpo_ci.mean, r.dtu_cost),
         io::TextTable::fmt(r.dpo_delay_only, 2),
         pct(r.dpo_delay_only, r.dtu_cost),
         io::TextTable::fmt(r.dpo_common_rho, 2),
         pct(r.dpo_common_rho, r.dtu_cost), row.paper});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape checks vs the paper: DTU beats every probabilistic variant in\n"
      "every row; the paper's reported reductions fall between the strongest\n"
      "(DPO-opt) and weakest (DPO-1rho) variants, and DPO-1rho reproduces\n"
      "the paper's decreasing-reduction-with-load trend.  'red.' columns are\n"
      "(DPO - DTU)/DTU, the paper's convention (e.g. (3.04-2.33)/2.33 =\n"
      "30.76%%).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

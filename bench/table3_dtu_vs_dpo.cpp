// Reproduces Table III: average per-user cost of the DTU threshold policy
// versus Distributed Probabilistic Offloading (DPO), under both setting
// families:
//   * theoretical: S ~ U(1,5), T ~ U(0,5), A ~ U(0, a_max) for a_max = 4/6/8;
//   * practical:  S, T resampled from the measured datasets, E[A] = 8 /
//     8.9437 / 10.
//
// The paper's exact DPO implementation is unpublished, so three readings of
// the probabilistic-offloading literature are reported (see EXPERIMENTS.md):
//   DPO-opt    per-user cost-optimal probability at its own equilibrium —
//              the strongest probabilistic baseline (lower bound on the gap);
//   DPO-delay  per-user delay-only probability (energy-blind designs);
//   DPO-1rho   a single shared probability minimizing the population mean
//              cost — the single-knob policy (upper bound on the gap).
// The paper's reported reductions (30.8/23.3/15.1% theoretical, decreasing
// with load) fall between DPO-opt and DPO-1rho; DPO-1rho reproduces the
// decreasing-in-load trend.
//
// Protocol mirrors the paper where specified: the primary DPO-opt mean cost
// carries a 98% confidence interval over 5*10^3 independent repetitions
// (population redraws, each solved to its own equilibrium); DTU and the
// variant baselines are averaged over 50 redraws.
//
// --sequential replaces the brute-force budget with the run-until-confident
// engine: per cell, DTU and DPO-opt are evaluated on *common* population
// redraws (CRN pairs), and replication waves stop as soon as the
// spending-adjusted paired-t interval on the cost gap excludes zero.  The
// verdict matches the fixed-R protocol on every decisive cell while
// spending a small fraction of the replications; the table reports
// replications-spent-per-cell next to the verdict, and --csv dumps them.
// --smoke shrinks the population/budget for the CI gate, which asserts that
// at least one decisive cell stopped early.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/baseline/dpo.hpp"
#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"
#include "mec/parallel/sequential.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/confidence.hpp"
#include "mec/stats/summary.hpp"

namespace {

struct RowResult {
  double dtu_cost;
  mec::stats::ConfidenceInterval dpo_ci;  // per-user-optimal DPO
  double dpo_delay_only;
  double dpo_common_rho;
};

RowResult evaluate(const mec::population::ScenarioConfig& cfg,
                   int dpo_repetitions, int small_repetitions,
                   mec::parallel::ThreadPool& pool) {
  using namespace mec;

  stats::RunningSummary dtu_costs, delay_only_costs, common_costs;
  for (int rep = 1; rep <= small_repetitions; ++rep) {
    const auto pop =
        population::sample_population(cfg, static_cast<std::uint64_t>(rep));

    const core::MfneResult mfne =
        core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
    std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
    dtu_costs.add(
        core::average_cost(pop.users, xs, cfg.delay, mfne.gamma_star));

    // Delay-only DPO at its own consistent utilization.
    {
      double lo = 0.0, hi = 1.0;
      for (int i = 0; i < 50; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double g = cfg.delay(mid);
        double acc = 0.0;
        for (const auto& u : pop.users)
          acc += u.arrival_rate *
                 baseline::delay_only_offload_probability(u, g);
        (acc / (static_cast<double>(pop.size()) * cfg.capacity) > mid ? lo
                                                                      : hi) =
            mid;
      }
      const double gamma = 0.5 * (lo + hi);
      const double g = cfg.delay(gamma);
      double cost = 0.0;
      for (const auto& u : pop.users)
        cost += baseline::dpo_cost(
            u, baseline::delay_only_offload_probability(u, g), g);
      delay_only_costs.add(cost / static_cast<double>(pop.size()));
    }

    common_costs.add(
        baseline::solve_common_rho_dpo(pop.users, cfg.delay, cfg.capacity)
            .average_cost);
  }

  // The 5*10^3 DPO repetitions are independent population redraws, so they
  // parallelize over the pool; each repetition writes its own slot and the
  // slots merge serially in repetition order, keeping the summary (and its
  // CI) bit-identical for any thread count.
  std::vector<double> dpo_slots(static_cast<std::size_t>(dpo_repetitions));
  pool.parallel_for_each(
      dpo_slots.size(),
      [&](std::size_t i) {
        const auto pop = population::sample_population(
            cfg, 0x5eed0000ULL + static_cast<std::uint64_t>(i) + 1);
        dpo_slots[i] = baseline::solve_dpo_equilibrium(pop.users, cfg.delay,
                                                       cfg.capacity, 1e-8)
                           .average_cost;
      },
      /*grain=*/16);
  stats::RunningSummary dpo_costs;
  for (const double cost : dpo_slots) dpo_costs.add(cost);

  return RowResult{dtu_costs.mean(),
                   stats::mean_confidence_interval(dpo_costs, 0.98),
                   delay_only_costs.mean(), common_costs.mean()};
}

std::string pct(double baseline_cost, double dtu_cost) {
  return mec::io::TextTable::fmt(
             (baseline_cost - dtu_cost) / dtu_cost * 100.0, 1) +
         "%";
}

/// Sequential mode: paired DTU-vs-DPO-opt comparison on common population
/// redraws.  Replication r draws the population from the golden-ratio seed,
/// solves the MFNE (DTU arm) and the per-user-optimal DPO equilibrium (DPO
/// arm) on that same draw, and the engine stops the cell once the
/// spending-adjusted paired-t interval on the cost gap excludes zero.
mec::parallel::CompareResult compare_cell(
    const mec::population::ScenarioConfig& cfg, std::size_t budget,
    mec::parallel::ThreadPool& pool) {
  using namespace mec;
  parallel::CompareOptions co;
  co.confidence = 0.98;  // the paper's interval level
  co.min_replications = 8;
  co.wave = 16;
  co.max_replications = budget;
  const auto evaluate = [&cfg](std::size_t /*r*/,
                               std::uint64_t seed) -> parallel::PairedSample {
    const auto pop = population::sample_population(cfg, seed);
    const core::MfneResult mfne =
        core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
    const std::vector<double> xs(mfne.thresholds.begin(),
                                 mfne.thresholds.end());
    const double dtu =
        core::average_cost(pop.users, xs, cfg.delay, mfne.gamma_star);
    const double dpo = baseline::solve_dpo_equilibrium(pop.users, cfg.delay,
                                                       cfg.capacity, 1e-8)
                           .average_cost;
    return parallel::PairedSample{dtu, dpo};
  };
  return parallel::compare_sequential(evaluate, co, &pool);
}

const char* verdict_text(const mec::parallel::CompareResult& r) {
  switch (r.verdict) {
    case mec::parallel::Verdict::kFirstLower: return "DTU cheaper";
    case mec::parallel::Verdict::kSecondLower: return "DPO cheaper";
    case mec::parallel::Verdict::kUndecided: return "undecided";
  }
  return "?";
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const bool sequential = ctx.get_bool("sequential");
  const bool smoke = ctx.smoke();
  // 5000 repetitions as in the paper; --replications trims it for smoke
  // runs (>= 2 so the 98% CI over the repetitions stays well defined).  In
  // sequential mode the same number is the per-cell budget cap, i.e. the
  // fixed-R protocol this run races against.
  const long reps_flag = ctx.get_long("replications");
  const int kDpoReps =
      reps_flag > 0 ? static_cast<int>(reps_flag) : (smoke ? 200 : 5000);
  MEC_EXPECTS_MSG(kDpoReps >= 2,
                  "--replications must be >= 2 for the DPO confidence "
                  "interval");
  constexpr int kSmallReps = 50;
  const long n_flag = ctx.get_long("n");
  const auto n_users = static_cast<std::size_t>(
      n_flag > 0 ? n_flag : (smoke ? 200 : 0));
  parallel::ThreadPool pool(
      static_cast<std::size_t>(ctx.get_long("threads")));

  const struct {
    const char* family;
    bool practical;
    population::LoadRegime regime;
    const char* paper;
  } rows[] = {
      {"theoretical", false, population::LoadRegime::kBelowService, "30.76%"},
      {"theoretical", false, population::LoadRegime::kAtService, "23.26%"},
      {"theoretical", false, population::LoadRegime::kAboveService, "15.14%"},
      {"practical", true, population::LoadRegime::kBelowService, "20.07%"},
      {"practical", true, population::LoadRegime::kAtService, "18.50%"},
      {"practical", true, population::LoadRegime::kAboveService, "17.51%"},
  };

  const auto scenario_of = [&](const auto& row) {
    if (row.practical)
      return n_users ? population::practical_scenario(row.regime, n_users)
                     : population::practical_scenario(row.regime);
    return n_users
               ? population::theoretical_comparison_scenario(row.regime,
                                                             n_users)
               : population::theoretical_comparison_scenario(row.regime);
  };

  if (sequential) {
    // The smoke gate only needs the theoretical family: its gaps are the
    // decisive ones the early-stopping claim is about, and the cut keeps
    // the CI wall-clock small.
    const std::size_t n_rows = smoke ? 3 : 6;
    io::TextTable table(
        "TABLE III (sequential): paired DTU vs DPO-opt, run-until-confident");
    table.set_header({"Family", "System Setup", "DTU", "DPO-opt",
                      "gap (98% CI)", "verdict", "reps", "budget", "spent"});
    std::vector<double> c_cell, c_practical, c_regime, c_reps, c_budget,
        c_decided, c_lo, c_hi;
    bool any_early_decision = false;
    for (std::size_t i = 0; i < n_rows; ++i) {
      const auto& row = rows[i];
      const auto cfg = scenario_of(row);
      const parallel::CompareResult r =
          compare_cell(cfg, static_cast<std::size_t>(kDpoReps), pool);
      const double spent_pct = 100.0 * static_cast<double>(r.replications) /
                               static_cast<double>(kDpoReps);
      any_early_decision = any_early_decision ||
                           (r.decided() &&
                            r.replications < static_cast<std::size_t>(
                                                 kDpoReps));
      table.add_row(
          {row.family, population::to_string(row.regime),
           io::TextTable::fmt(r.mean_a, 2), io::TextTable::fmt(r.mean_b, 2),
           io::TextTable::fmt(r.difference.lower(), 3) + " .. " +
               io::TextTable::fmt(r.difference.upper(), 3),
           verdict_text(r), std::to_string(r.replications),
           std::to_string(kDpoReps), io::TextTable::fmt(spent_pct, 1) + "%"});
      c_cell.push_back(static_cast<double>(i));
      c_practical.push_back(row.practical ? 1.0 : 0.0);
      c_regime.push_back(static_cast<double>(row.regime));
      c_reps.push_back(static_cast<double>(r.replications));
      c_budget.push_back(static_cast<double>(kDpoReps));
      c_decided.push_back(r.decided() ? 1.0 : 0.0);
      c_lo.push_back(r.difference.lower());
      c_hi.push_back(r.difference.upper());
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "gap = DTU - DPO-opt per common population redraw; a cell stops as\n"
        "soon as the spending-adjusted paired-t interval excludes zero, so\n"
        "'reps' is what the verdict actually cost (vs the fixed-R budget).\n");
    if (ctx.has("csv") || smoke) {
      // The runner rejects a bare --csv outright, so a present flag always
      // carries a real filename; smoke falls back to the default name.
      std::string name = ctx.get_path("csv");
      if (name.empty()) name = "table3_sequential_spent.csv";
      const std::string path = ctx.output_path(name);
      io::write_csv(path,
                    {"cell", "practical", "regime", "replications_spent",
                     "budget", "decided", "gap_ci_lower", "gap_ci_upper"},
                    {c_cell, c_practical, c_regime, c_reps, c_budget,
                     c_decided, c_lo, c_hi});
      std::printf("per-cell replications-spent written to %s\n", path.c_str());
    }
    if (smoke && !any_early_decision)
      throw std::runtime_error(
          "smoke FAIL: no cell reached a verdict below the fixed-R budget "
          "of " +
          std::to_string(kDpoReps) + " replications");
    return 0;
  }

  io::TextTable table("TABLE III: DTU Algorithm vs DPO Policy variants");
  table.set_header({"Family", "System Setup", "DTU", "DPO-opt (98% CI)",
                    "red.", "DPO-delay", "red.", "DPO-1rho", "red.",
                    "Paper red."});

  for (const auto& row : rows) {
    const auto cfg = scenario_of(row);
    const RowResult r = evaluate(cfg, kDpoReps, kSmallReps, pool);
    table.add_row(
        {row.family, population::to_string(row.regime),
         io::TextTable::fmt(r.dtu_cost, 2),
         io::TextTable::fmt(r.dpo_ci.mean, 2) + " +/- " +
             io::TextTable::fmt(r.dpo_ci.half_width, 4),
         pct(r.dpo_ci.mean, r.dtu_cost),
         io::TextTable::fmt(r.dpo_delay_only, 2),
         pct(r.dpo_delay_only, r.dtu_cost),
         io::TextTable::fmt(r.dpo_common_rho, 2),
         pct(r.dpo_common_rho, r.dtu_cost), row.paper});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape checks vs the paper: DTU beats every probabilistic variant in\n"
      "every row; the paper's reported reductions fall between the strongest\n"
      "(DPO-opt) and weakest (DPO-1rho) variants, and DPO-1rho reproduces\n"
      "the paper's decreasing-reduction-with-load trend.  'red.' columns are\n"
      "(DPO - DTU)/DTU, the paper's convention (e.g. (3.04-2.33)/2.33 =\n"
      "30.76%%).\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"table3_dtu_vs_dpo",
     "Table III: DTU vs DPO baselines, fixed-R or sequential stopping",
     {{"replications", mec::bench::FlagKind::kLong, "0",
       "DPO repetition budget (0 = 200 smoke / 5000 full)"},
      {"threads", mec::bench::FlagKind::kLong, "0",
       "worker threads (0 = hardware)"},
      {"sequential", mec::bench::FlagKind::kBool, "false",
       "paired run-until-confident protocol instead of fixed-R"},
      {"n", mec::bench::FlagKind::kLong, "0",
       "population size override (0 = scenario default / 200 smoke)"},
      {"csv", mec::bench::FlagKind::kPath, "",
       "sequential mode: replications-spent CSV filename"}},
     run});

}  // namespace

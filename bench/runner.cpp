#include "bench/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>

#include "mec/common/error.hpp"
#include "mec/io/csv.hpp"

namespace mec::bench {

namespace {

/// Common flags the runner owns; experiments must not re-declare them.
const std::set<std::string> kCommonFlags = {"smoke", "out-dir", "out", "help",
                                            "list"};

std::map<std::string, Experiment>& registry() {
  static std::map<std::string, Experiment> experiments;
  return experiments;
}

const char* kind_name(FlagKind kind) {
  switch (kind) {
    case FlagKind::kString: return "string";
    case FlagKind::kLong: return "int";
    case FlagKind::kDouble: return "float";
    case FlagKind::kBool: return "bool";
    case FlagKind::kPath: return "path";
  }
  return "?";
}

/// Validates every provided flag of `experiment` eagerly: unknown flags,
/// bare value-typed flags, and unparsable values all throw before the
/// experiment function runs, so a typo can never silently run the default
/// configuration.
void validate_flags(const Experiment& experiment, const io::Args& args) {
  args.reject_unknown(known_flags(experiment));
  for (const FlagSpec& spec : experiment.flags) {
    if (!args.has(spec.name)) continue;
    if (spec.kind != FlagKind::kBool && args.was_bare(spec.name))
      throw RuntimeError("flag --" + spec.name + " expects a " +
                         kind_name(spec.kind) + " value (e.g. --" + spec.name +
                         "=...)");
    switch (spec.kind) {
      case FlagKind::kString:
      case FlagKind::kPath:
        break;
      case FlagKind::kLong:
        (void)args.get_long(spec.name, 0);
        break;
      case FlagKind::kDouble:
        (void)args.get_double(spec.name, 0.0);
        break;
      case FlagKind::kBool:
        (void)args.get_bool(spec.name, false);
        break;
    }
  }
}

void print_usage() {
  std::printf(
      "usage: mec_bench <experiment> [--smoke] [--out-dir=DIR] [flags]\n"
      "       mec_bench --list\n"
      "       mec_bench <experiment> --help\n");
}

void print_help(const Experiment& experiment) {
  std::printf("%s — %s\n\nflags:\n", experiment.name.c_str(),
              experiment.summary.c_str());
  for (const FlagSpec& spec : experiment.flags)
    std::printf("  --%-18s %-6s %s%s%s\n", spec.name.c_str(),
                kind_name(spec.kind), spec.help.c_str(),
                spec.default_value.empty() ? "" : " (default ",
                spec.default_value.empty()
                    ? ""
                    : (spec.default_value + ")").c_str());
  std::printf(
      "  --%-18s %-6s shrunken deterministic run for CI\n"
      "  --%-18s %-6s output directory for generated files (default "
      "results)\n"
      "  --%-18s %-6s append BENCH JSON lines to this file\n",
      "smoke", "bool", "out-dir", "path", "out", "path");
}

}  // namespace

Context::Context(const Experiment& experiment, const io::Args& args)
    : experiment_(experiment),
      args_(args),
      smoke_(args.get_bool("smoke", false)),
      out_dir_(args.get_path("out-dir", "results")),
      out_file_(args.get_path("out", "")) {}

std::string Context::output_path(const std::string& filename) const {
  return io::output_path(out_dir_, filename);
}

const FlagSpec& Context::spec(const std::string& flag, FlagKind kind) const {
  for (const FlagSpec& candidate : experiment_.flags)
    if (candidate.name == flag) {
      MEC_EXPECTS_MSG(candidate.kind == kind,
                      "experiment '" + experiment_.name + "' reads flag --" +
                          flag + " as " + kind_name(kind) +
                          " but declared it as " + kind_name(candidate.kind));
      return candidate;
    }
  throw RuntimeError("experiment '" + experiment_.name +
                     "' reads undeclared flag --" + flag);
}

bool Context::has(const std::string& flag) const {
  for (const FlagSpec& candidate : experiment_.flags)
    if (candidate.name == flag) return args_.has(flag);
  throw RuntimeError("experiment '" + experiment_.name +
                     "' reads undeclared flag --" + flag);
}

std::string Context::get_string(const std::string& flag) const {
  return args_.get_string(flag, spec(flag, FlagKind::kString).default_value);
}

std::string Context::get_path(const std::string& flag) const {
  return args_.get_path(flag, spec(flag, FlagKind::kPath).default_value);
}

long Context::get_long(const std::string& flag) const {
  const FlagSpec& declared = spec(flag, FlagKind::kLong);
  return args_.get_long(flag, std::stol(declared.default_value));
}

double Context::get_double(const std::string& flag) const {
  const FlagSpec& declared = spec(flag, FlagKind::kDouble);
  return args_.get_double(flag, std::stod(declared.default_value));
}

bool Context::get_bool(const std::string& flag) const {
  const FlagSpec& declared = spec(flag, FlagKind::kBool);
  return args_.get_bool(flag, declared.default_value == "true");
}

void Context::emit_bench(std::map<std::string, io::Json> fields) const {
  fields.emplace("bench", io::Json::string(experiment_.name));
  const std::string line = "BENCH " + io::Json::object(std::move(fields)).dump();
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
  if (!out_file_.empty()) {
    std::ofstream out(out_file_, std::ios::app);
    if (!out) throw RuntimeError("cannot open --out file " + out_file_);
    out << line << "\n";
  }
}

bool register_experiment(Experiment experiment) {
  if (experiment.name.empty())
    throw RuntimeError("experiment registered without a name");
  if (!experiment.fn)
    throw RuntimeError("experiment '" + experiment.name +
                       "' registered without a function");
  for (const FlagSpec& spec : experiment.flags)
    if (kCommonFlags.contains(spec.name))
      throw RuntimeError("experiment '" + experiment.name +
                         "' re-declares the common runner flag --" +
                         spec.name);
  const auto [it, inserted] =
      registry().emplace(experiment.name, std::move(experiment));
  if (!inserted)
    throw RuntimeError("duplicate experiment name '" + it->first + "'");
  return true;
}

std::vector<const Experiment*> experiments() {
  std::vector<const Experiment*> out;
  out.reserve(registry().size());
  for (const auto& [name, experiment] : registry()) out.push_back(&experiment);
  return out;  // std::map iteration is already name-sorted
}

const Experiment* find_experiment(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() ? nullptr : &it->second;
}

std::set<std::string> known_flags(const Experiment& experiment) {
  std::set<std::string> known = kCommonFlags;
  for (const FlagSpec& spec : experiment.flags) known.insert(spec.name);
  return known;
}

int run_main(int argc, const char* const* argv) {
  try {
    const io::Args args = io::Args::parse(
        std::vector<std::string>(argv + (argc > 0 ? 1 : 0), argv + argc));
    if (args.get_bool("list", false)) {
      for (const Experiment* experiment : experiments())
        std::printf("%s\t%s\n", experiment->name.c_str(),
                    experiment->summary.c_str());
      return 0;
    }
    if (args.command().empty()) {
      print_usage();
      return 2;
    }
    const Experiment* experiment = find_experiment(args.command());
    if (experiment == nullptr) {
      std::fprintf(stderr,
                   "error: unknown experiment '%s' (run with --list)\n",
                   args.command().c_str());
      return 2;
    }
    if (args.get_bool("help", false)) {
      print_help(*experiment);
      return 0;
    }
    validate_flags(*experiment, args);
    Context context(*experiment, args);
    return experiment->fn(context);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace mec::bench

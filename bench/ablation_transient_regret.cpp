// Ablation X9: what does convergence *cost*?  While DTU is still hunting for
// the equilibrium, users pay the cost of interim thresholds.  This bench
// measures the transient regret
//
//     R(T) = sum_{t<=T} [ W_t - W_eq ],
//
// where W_t is the realized population-average cost at iteration t and W_eq
// the equilibrium cost, as a function of the step-size schedule — exposing
// the practical trade-off behind (eta0, epsilon): faster schedules overshoot
// more (pay spiky early regret), slower ones linger longer off-equilibrium.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 500 : 3000;
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAboveService, n);
  const auto pop = population::sample_population(cfg, 31);

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  std::vector<double> eq_xs(mfne.thresholds.begin(), mfne.thresholds.end());
  const double eq_cost =
      core::average_cost(pop.users, eq_xs, cfg.delay, mfne.gamma_star);

  std::printf("=== Ablation: transient regret of DTU ===\n");
  std::printf("population: %s, equilibrium cost W_eq = %.4f\n\n",
              cfg.name.c_str(), eq_cost);

  core::AnalyticUtilization source(pop.users, cfg.capacity);
  io::TextTable table("cumulative regret vs step schedule");
  table.set_header({"eta0", "epsilon", "iterations", "cum. regret",
                    "peak iterate cost", "final cost gap"});

  std::vector<double> csv_t, csv_cost;
  for (const double eta0 : {0.4, 0.2, 0.1, 0.05}) {
    for (const double eps : {0.02, 0.005}) {
      core::DtuOptions opt;
      opt.eta0 = eta0;
      opt.epsilon = eps;
      opt.max_iterations = 100000;
      const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
      double regret = 0.0, peak = 0.0;
      for (const core::DtuIterate& it : r.trace) {
        regret += it.mean_cost - eq_cost;
        peak = std::max(peak, it.mean_cost);
      }
      table.add_row(
          {io::TextTable::fmt(eta0, 2), io::TextTable::fmt(eps, 3),
           std::to_string(r.iterations), io::TextTable::fmt(regret, 4),
           io::TextTable::fmt(peak, 4),
           io::TextTable::fmt(r.trace.back().mean_cost - eq_cost, 5)});
      if (eta0 == 0.1 && eps == 0.005) {
        for (const core::DtuIterate& it : r.trace) {
          csv_t.push_back(it.t);
          csv_cost.push_back(it.mean_cost);
        }
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  const std::string csv_path =
      ctx.output_path("ablation_transient_regret.csv");
  io::write_csv(csv_path, {"t", "realized_cost"}, {csv_t, csv_cost});
  std::printf(
      "Reading: the stop rule fires after ~eta0/epsilon step halvings, so\n"
      "*small* eta0 terminates in the fewest iterations at loose epsilon —\n"
      "but it crawls towards gamma* and accumulates the most regret, while\n"
      "large eta0 leaps near the equilibrium immediately (low regret) and\n"
      "then spends its iterations shrinking the step.  Final gaps can be\n"
      "slightly negative: transient thresholds can realize a cost below the\n"
      "Nash cost because the equilibrium is not socially optimal (see the\n"
      "price-of-anarchy ablation).\n"
      "wrote %s\n",
      csv_path.c_str());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_transient_regret",
     "Ablation X9: cumulative transient regret of DTU vs step schedule",
     {},
     run});

}  // namespace

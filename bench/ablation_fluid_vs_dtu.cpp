// Ablation X10: discrete DTU iterates vs the continuous fluid limit.
//
// The smooth best-response dynamic d(gamma)/dt = V(gamma) - gamma is the
// mean-field fluid picture of threshold adaptation; Algorithm 1 is its
// practical, sign-stepped discretization.  This bench overlays the two: both
// approach the same MFNE, the fluid path monotonically, the DTU path with
// the bisection overshoot pattern whose envelope the fluid curve tracks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/fluid_model.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 500 : 3000;
  const auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAboveService, n);
  const auto pop = population::sample_population(cfg, 41);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  std::printf("=== Ablation: fluid limit vs DTU iterates ===\n");
  std::printf("population: %s, gamma* = %.4f\n\n", cfg.name.c_str(), star);

  // Discrete algorithm (one iteration ~ one unit of fluid time).
  core::AnalyticUtilization source(pop.users, cfg.capacity);
  core::DtuOptions opt;
  opt.eta0 = 0.1;
  opt.epsilon = 0.005;
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);

  // Continuous dynamic over the same span.
  core::FluidOptions fopt;
  fopt.gamma0 = 0.0;
  fopt.horizon = static_cast<double>(dtu.iterations);
  fopt.dt = 0.25;
  const auto fluid =
      core::fluid_trajectory(pop.users, cfg.delay, cfg.capacity, fopt);

  std::vector<double> ft, fy, dt_axis, dhat, dstar;
  for (const auto& p : fluid) {
    ft.push_back(p.t);
    fy.push_back(p.y);
  }
  for (const auto& it : dtu.trace) {
    dt_axis.push_back(it.t);
    dhat.push_back(it.gamma_hat);
    dstar.push_back(star);
  }

  io::PlotOptions popt;
  popt.title = "fluid gamma(t) [o] vs DTU gamma_hat_t [*] vs gamma* [-]";
  popt.x_label = "t (iterations / fluid time)";
  popt.y_label = "utilization";
  std::printf("%s\n",
              io::line_plot(
                  std::vector<io::Series>{{"fluid", ft, fy, 'o'},
                                          {"dtu", dt_axis, dhat, '*'},
                                          {"gamma*", dt_axis, dstar, '-'}},
                  popt)
                  .c_str());

  std::printf("fluid endpoint:  %.5f\nDTU endpoint:    %.5f\nMFNE:            %.5f\n",
              fluid.back().y, dtu.final_gamma_hat, star);

  const std::string csv_path = ctx.output_path("ablation_fluid_vs_dtu.csv");
  io::write_csv(csv_path, {"fluid_t", "fluid_gamma"}, {ft, fy});
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_fluid_vs_dtu",
     "Ablation X10: continuous fluid dynamic vs discrete DTU iterates",
     {},
     run});

}  // namespace

// Ablation X3: sensitivity of the equilibrium and of DTU convergence to the
// shape of the edge-delay function g(.).  The theory only needs g increasing
// and continuous on [0,1]; this bench swaps the paper's reciprocal delay for
// linear and power-law shapes with matched g(0.5).
#include <cstdio>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 500 : 5000;
  auto cfg = population::theoretical_scenario(
      population::LoadRegime::kAboveService, n);
  const auto pop = population::sample_population(cfg, 17);

  // All candidates agree at gamma = 0.5 with the paper's reciprocal delay:
  // g(0.5) = 1/0.6 = 1.667.
  const double mid = 1.0 / 0.6;
  const struct {
    const char* label;
    core::EdgeDelay delay;
  } candidates[] = {
      {"reciprocal 1/(1.1-g)", core::make_reciprocal_delay(1.1)},
      {"linear, matched mid", core::make_linear_delay(mid / 2.0, mid)},
      {"power-law p=2", core::make_power_delay(4.0 * mid, 2.0)},
      {"power-law p=0.5", core::make_power_delay(mid / 0.7071, 0.5)},
      {"constant g=1.667", core::make_constant_delay(mid)},
      {"Erlang-C M/M/32", core::make_erlang_c_delay(32, 0.75)},
  };

  std::printf("=== Ablation: edge-delay function shape ===\n");
  std::printf("population: %s (E[A] > E[S])\n\n", cfg.name.c_str());

  io::TextTable table("equilibrium and convergence vs g(.) shape");
  table.set_header({"g(gamma)", "g(0)", "g(1)", "gamma*", "DTU iters",
                    "mean threshold"});
  for (const auto& c : candidates) {
    const core::MfneResult mfne =
        core::solve_mfne(pop.users, c.delay, cfg.capacity);
    core::AnalyticUtilization source(pop.users, cfg.capacity);
    const core::DtuResult dtu = run_dtu(pop.users, c.delay, source, {});
    double mean_x = 0.0;
    for (const double x : dtu.thresholds) mean_x += x;
    mean_x /= static_cast<double>(dtu.thresholds.size());
    table.add_row({c.label, io::TextTable::fmt(c.delay(0.0), 2),
                   io::TextTable::fmt(c.delay(1.0), 2),
                   io::TextTable::fmt(mfne.gamma_star, 4),
                   std::to_string(dtu.iterations),
                   io::TextTable::fmt(mean_x, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: steeper congestion feedback (larger g at high gamma) lowers\n"
      "gamma* and raises thresholds; DTU converges in a similar number of\n"
      "iterations for every admissible shape, as Theorem 2 requires only\n"
      "monotone continuous g.\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_edge_delay",
     "Ablation X3: MFNE and DTU sensitivity to the edge-delay shape",
     {},
     run});

}  // namespace

// Ablation X11: the two time scales for real — Algorithm 1 executed *inside*
// one continuous simulation.  Tasks flow on the fast scale; every
// update_period seconds the edge broadcasts its measured EWMA utilization
// and devices best-respond in place (no queue resets, no oracle).  The
// quasi-stationary argument predicts the loop still converges to the MFNE
// provided the broadcast period is long relative to queue mixing; this
// bench sweeps that separation.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/mfne.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/closed_loop.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::string stream_log = ctx.get_path("stream-log");
  const std::vector<double> periods =
      ctx.smoke() ? std::vector<double>{1.0, 5.0}
                  : std::vector<double>{1.0, 2.0, 5.0, 10.0, 20.0};
  const double epochs_per_row = ctx.smoke() ? 30.0 : 150.0;
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       ctx.smoke() ? 200 : 500),
      61);
  const auto& cfg = pop.config;
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  std::printf("=== Ablation: closed-loop DTU inside the simulator ===\n");
  std::printf("population: %s (N=%zu), oracle MFNE gamma* = %.4f\n\n",
              cfg.name.c_str(), pop.size(), star);

  io::TextTable table("time-scale separation sweep (EWMA tau = 10 s)");
  table.set_header({"update period (s)", "epochs", "settled", "gamma_hat",
                    "|gamma_hat - gamma*|", "run-wide gamma"});
  std::vector<double> csv_time, csv_meas, csv_hat;
  for (const double period : periods) {
    sim::ClosedLoopOptions opt;
    opt.update_period = period;
    opt.horizon = epochs_per_row * period;  // same number of epochs per row
    opt.seed = 7;
    if (period == 5.0 && !stream_log.empty()) {
      // Stream the representative row (the one the CSV also exports).
      opt.stream_log = stream_log;
      opt.sample_interval = period;
      opt.record_timeline = false;
    }
    const sim::ClosedLoopResult r =
        run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
    table.add_row(
        {io::TextTable::fmt(period, 1), std::to_string(r.epochs.size()),
         r.estimate_settled ? "yes" : "no",
         io::TextTable::fmt(r.final_gamma_hat, 4),
         io::TextTable::fmt(std::abs(r.final_gamma_hat - star), 4),
         io::TextTable::fmt(r.run.measured_utilization, 4)});
    if (period == 5.0) {
      for (const auto& e : r.epochs) {
        csv_time.push_back(e.time);
        csv_meas.push_back(e.gamma_measured);
        csv_hat.push_back(e.gamma_hat);
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  const std::string csv_path = ctx.output_path("ablation_closed_loop.csv");
  io::write_csv(csv_path, {"time_s", "gamma_measured", "gamma_hat"},
                {csv_time, csv_meas, csv_hat});

  // Second ablation: a mid-horizon 40% edge brown-out.  Algorithm 1's
  // stopping rule freezes thresholds once settled; with resume_on_drift the
  // loop re-opens when the measured utilization strays from the frozen
  // estimate and re-converges toward the *degraded* system's equilibrium.
  const double brownout_at = ctx.smoke() ? 100.0 : 400.0;
  const double brownout_horizon = ctx.smoke() ? 200.0 : 800.0;
  const double star_degraded =
      core::solve_mfne(pop.users, cfg.delay, 0.6 * cfg.capacity).gamma_star;
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(brownout_at, 0.6);
  io::TextTable fault_table(
      "brown-out at t=" + io::TextTable::fmt(brownout_at, 0) +
      " s (capacity x0.6); degraded gamma* = " +
      io::TextTable::fmt(star_degraded, 4));
  fault_table.set_header({"resume on drift", "drift resumes", "gamma_hat",
                          "|gamma_hat - degraded gamma*|"});
  for (const bool resume : {false, true}) {
    sim::ClosedLoopOptions opt;
    opt.update_period = 5.0;
    opt.horizon = brownout_horizon;
    opt.seed = 7;
    opt.faults = schedule;
    opt.resume_on_drift = resume;
    const sim::ClosedLoopResult r =
        run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
    fault_table.add_row(
        {resume ? "yes" : "no", std::to_string(r.drift_resumes),
         io::TextTable::fmt(r.final_gamma_hat, 4),
         io::TextTable::fmt(std::abs(r.final_gamma_hat - star_degraded), 4)});
  }
  std::printf("%s\n", fault_table.to_string().c_str());
  std::printf(
      "Reading: with broadcast periods comparable to or longer than the\n"
      "EWMA/queue mixing time the in-simulator loop settles within a few\n"
      "hundredths of the oracle MFNE; very fast broadcasting (1 s) reacts to\n"
      "estimator noise yet still converges — Algorithm 1's step halving\n"
      "absorbs the measurement jitter.\n"
      "wrote %s\n",
      csv_path.c_str());
  if (!stream_log.empty())
    std::printf("telemetry stream written to %s\n", stream_log.c_str());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_closed_loop",
     "Ablation X11: closed-loop DTU inside one continuous simulation",
     {{"stream-log", mec::bench::FlagKind::kPath, "",
       "stream the period=5 row's telemetry to this .meclog"}},
     run});

}  // namespace

// Ablation X2: the finite-N gap to the mean-field limit.
//
// Theorem 1 lives at N -> infinity.  This bench measures how fast the
// sampled-population equilibrium concentrates around the population-free
// QMC mean-field equilibrium as N grows: the SLLN predicts O(1/sqrt(N))
// spread.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/runner.hpp"
#include "mec/core/mean_field_integral.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/summary.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const auto regime = population::LoadRegime::kAtService;
  const std::uint64_t draws = ctx.smoke() ? 5 : 20;
  const std::size_t qmc_nodes = ctx.smoke() ? (1 << 12) : (1 << 16);
  const std::vector<std::size_t> sizes =
      ctx.smoke() ? std::vector<std::size_t>{100, 316, 1000, 3162}
                  : std::vector<std::size_t>{100, 316, 1000, 3162, 10000,
                                             31623};

  core::MeanFieldModel model;
  model.arrival = core::uniform_inverse_cdf(0.0, 6.0);
  model.service = core::uniform_inverse_cdf(1.0, 5.0);
  model.latency = core::uniform_inverse_cdf(0.0, 1.0);
  model.energy_local = core::uniform_inverse_cdf(0.0, 3.0);
  model.energy_offload = core::uniform_inverse_cdf(0.0, 1.0);
  model.capacity = 10.0;
  model.delay = core::make_reciprocal_delay();
  const double limit =
      core::mean_field_equilibrium(model, qmc_nodes).gamma_star;

  std::printf("=== Ablation: finite-N gap to the mean-field MFNE ===\n");
  std::printf("mean-field limit (QMC, %zu nodes): gamma* = %.5f\n\n",
              qmc_nodes, limit);

  io::TextTable table("sampled-population equilibrium vs N (" +
                      std::to_string(draws) + " draws each)");
  table.set_header({"N", "mean gamma*_N", "sd over draws", "|mean - limit|",
                    "sd * sqrt(N)"});
  for (const std::size_t n : sizes) {
    const auto cfg = population::theoretical_scenario(regime, n);
    stats::RunningSummary stars;
    for (std::uint64_t seed = 1; seed <= draws; ++seed) {
      const auto pop = population::sample_population(cfg, seed);
      stars.add(
          core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star);
    }
    table.add_row({std::to_string(n), io::TextTable::fmt(stars.mean(), 5),
                   io::TextTable::fmt(stars.stddev(), 5),
                   io::TextTable::fmt(std::abs(stars.mean() - limit), 5),
                   io::TextTable::fmt(
                       stars.stddev() * std::sqrt(static_cast<double>(n)),
                       4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the last column is roughly constant — the finite-N spread\n"
      "decays like 1/sqrt(N), so the paper's N = 10^4 populations sit within\n"
      "~0.005 of the large-system limit.\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_population_size",
     "Ablation X2: finite-N concentration around the mean-field MFNE",
     {},
     run});

}  // namespace

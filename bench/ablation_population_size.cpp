// Ablation X2: the finite-N gap to the mean-field limit.
//
// Theorem 1 lives at N -> infinity.  This bench measures how fast the
// sampled-population equilibrium concentrates around the population-free
// QMC mean-field equilibrium as N grows: the SLLN predicts O(1/sqrt(N))
// spread.
#include <cmath>
#include <cstdio>

#include "mec/core/mean_field_integral.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/summary.hpp"

int main() {
  using namespace mec;
  const auto regime = population::LoadRegime::kAtService;

  core::MeanFieldModel model;
  model.arrival = core::uniform_inverse_cdf(0.0, 6.0);
  model.service = core::uniform_inverse_cdf(1.0, 5.0);
  model.latency = core::uniform_inverse_cdf(0.0, 1.0);
  model.energy_local = core::uniform_inverse_cdf(0.0, 3.0);
  model.energy_offload = core::uniform_inverse_cdf(0.0, 1.0);
  model.capacity = 10.0;
  model.delay = core::make_reciprocal_delay();
  const double limit =
      core::mean_field_equilibrium(model, 1 << 16).gamma_star;

  std::printf("=== Ablation: finite-N gap to the mean-field MFNE ===\n");
  std::printf("mean-field limit (QMC, 65536 nodes): gamma* = %.5f\n\n", limit);

  io::TextTable table("sampled-population equilibrium vs N (20 draws each)");
  table.set_header({"N", "mean gamma*_N", "sd over draws", "|mean - limit|",
                    "sd * sqrt(N)"});
  for (const std::size_t n : {100u, 316u, 1000u, 3162u, 10000u, 31623u}) {
    const auto cfg = population::theoretical_scenario(regime, n);
    stats::RunningSummary stars;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto pop = population::sample_population(cfg, seed);
      stars.add(
          core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star);
    }
    table.add_row({std::to_string(n), io::TextTable::fmt(stars.mean(), 5),
                   io::TextTable::fmt(stars.stddev(), 5),
                   io::TextTable::fmt(std::abs(stars.mean() - limit), 5),
                   io::TextTable::fmt(
                       stars.stddev() * std::sqrt(static_cast<double>(n)),
                       4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the last column is roughly constant — the finite-N spread\n"
      "decays like 1/sqrt(N), so the paper's N = 10^4 populations sit within\n"
      "~0.005 of the large-system limit.\n");
  return 0;
}

// Ablation X8: the energy-delay trade-off frontier.
//
// The cost (1) weighs energy against delay through w_n; the paper fixes
// w = 1.  This bench sweeps w and traces the Pareto frontier (mean delay
// vs mean energy per task) achieved at the corresponding MFNE, for the
// threshold policy and for the per-user-optimal DPO baseline — showing the
// threshold policy dominates the probabilistic one across the whole
// frontier, not just at w = 1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "mec/baseline/dpo.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/queueing/threshold_queue.hpp"

namespace {

struct FrontierPoint {
  double delay;   // mean per-task delay (queueing + offload path)
  double energy;  // mean per-task energy
};

/// Splits the Eq.-(1) cost into its delay and energy parts for TRO
/// thresholds at utilization gamma.
FrontierPoint tro_split(std::span<const mec::core::UserParams> users,
                        std::span<const double> xs,
                        const mec::core::EdgeDelay& delay, double gamma) {
  using namespace mec;
  const double g = delay(gamma);
  FrontierPoint p{0.0, 0.0};
  for (std::size_t n = 0; n < users.size(); ++n) {
    const auto& u = users[n];
    const auto m = queueing::tro_metrics(u.intensity(), xs[n]);
    p.delay += m.mean_queue_length / u.arrival_rate +
               (g + u.offload_latency) * m.offload_probability;
    p.energy += u.energy_local * (1.0 - m.offload_probability) +
                u.energy_offload * m.offload_probability;
  }
  p.delay /= static_cast<double>(users.size());
  p.energy /= static_cast<double>(users.size());
  return p;
}

FrontierPoint dpo_split(std::span<const mec::core::UserParams> users,
                        std::span<const double> rhos,
                        const mec::core::EdgeDelay& delay, double gamma) {
  using namespace mec;
  const double g = delay(gamma);
  FrontierPoint p{0.0, 0.0};
  for (std::size_t n = 0; n < users.size(); ++n) {
    const auto& u = users[n];
    const double lambda = u.arrival_rate * (1.0 - rhos[n]);
    const double queue =
        lambda < u.service_rate ? lambda / (u.service_rate - lambda) : 1e9;
    p.delay += queue / u.arrival_rate + (g + u.offload_latency) * rhos[n];
    p.energy += u.energy_local * (1.0 - rhos[n]) + u.energy_offload * rhos[n];
  }
  p.delay /= static_cast<double>(users.size());
  p.energy /= static_cast<double>(users.size());
  return p;
}

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 300 : 1000;
  const std::vector<double> weights =
      ctx.smoke() ? std::vector<double>{0.25, 1.0, 4.0}
                  : std::vector<double>{0.0625, 0.125, 0.25, 0.5, 1.0, 2.0,
                                        4.0, 8.0};
  auto cfg = population::theoretical_comparison_scenario(
      population::LoadRegime::kAtService, n);
  auto pop = population::sample_population(cfg, 13);

  std::printf("=== Ablation: energy-delay trade-off (w sweep) ===\n");
  std::printf("population: %s\n\n", cfg.name.c_str());

  io::TextTable table("Pareto frontier at the respective equilibria");
  table.set_header({"w", "TRO delay", "TRO energy", "DPO delay", "DPO energy",
                    "TRO cost", "DPO cost"});
  std::vector<double> ws, td, te, dd, de;
  for (const double w : weights) {
    auto users = pop.users;
    for (auto& u : users) u.weight = w;

    const core::MfneResult mfne =
        core::solve_mfne(users, cfg.delay, cfg.capacity);
    std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
    const FrontierPoint tro =
        tro_split(users, xs, cfg.delay, mfne.gamma_star);
    const double tro_cost =
        core::average_cost(users, xs, cfg.delay, mfne.gamma_star);

    const baseline::DpoEquilibrium dpo =
        baseline::solve_dpo_equilibrium(users, cfg.delay, cfg.capacity);
    const FrontierPoint pro =
        dpo_split(users, dpo.rhos, cfg.delay, dpo.gamma_star);

    table.add_row({io::TextTable::fmt(w, 4), io::TextTable::fmt(tro.delay, 4),
                   io::TextTable::fmt(tro.energy, 4),
                   io::TextTable::fmt(pro.delay, 4),
                   io::TextTable::fmt(pro.energy, 4),
                   io::TextTable::fmt(tro_cost, 4),
                   io::TextTable::fmt(dpo.average_cost, 4)});
    ws.push_back(w);
    td.push_back(tro.delay);
    te.push_back(tro.energy);
    dd.push_back(pro.delay);
    de.push_back(pro.energy);
  }
  std::printf("%s\n", table.to_string().c_str());
  const std::string csv_path =
      ctx.output_path("ablation_energy_delay_tradeoff.csv");
  io::write_csv(csv_path,
                {"w", "tro_delay", "tro_energy", "dpo_delay", "dpo_energy"},
                {ws, td, te, dd, de});
  std::printf(
      "Reading: as w grows, both policies trade delay for energy (energy\n"
      "falls, delay rises); at every w the threshold frontier lies weakly\n"
      "inside the probabilistic one, and the weighted cost is always lower.\n"
      "wrote %s\n",
      csv_path.c_str());
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_energy_delay_tradeoff",
     "Ablation X8: TRO vs DPO Pareto frontier across the weight sweep",
     {},
     run});

}  // namespace

// Ablation X4: robustness of DTU to asynchronous participation.  Section
// IV-B uses update probability 0.8; this bench sweeps the probability from
// fully synchronous down to 10% participation and reports convergence
// iterations and final error.
#include <cmath>
#include <cstdio>

#include "bench/runner.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/stats/summary.hpp"

namespace {

int run(mec::bench::Context& ctx) {
  using namespace mec;
  const std::size_t n = ctx.smoke() ? 200 : 1000;
  const std::uint64_t gate_seeds = ctx.smoke() ? 2 : 5;
  const auto cfg =
      population::practical_scenario(population::LoadRegime::kAtService, n);
  const auto pop = population::sample_population(cfg, 8);
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  core::AnalyticUtilization source(pop.users, cfg.capacity);

  std::printf("=== Ablation: asynchronous update probability ===\n");
  std::printf("practical E[A]=E[S] population, gamma* = %.5f\n\n", star);

  io::TextTable table("DTU under asynchronous updates (" +
                      std::to_string(gate_seeds) + " gate seeds each)");
  table.set_header({"update prob", "mean iterations", "mean |gamma - gamma*|",
                    "all converged"});
  for (const double p : {1.0, 0.8, 0.5, 0.25, 0.1}) {
    stats::RunningSummary iters, err;
    bool all_converged = true;
    for (std::uint64_t seed = 1; seed <= gate_seeds; ++seed) {
      core::DtuOptions opt;
      if (p < 1.0) opt.update_gate = core::make_bernoulli_gate(p, seed);
      const core::DtuResult r = run_dtu(pop.users, cfg.delay, source, opt);
      iters.add(r.iterations);
      err.add(std::abs(r.final_gamma - star));
      all_converged &= r.converged;
    }
    table.add_row({io::TextTable::fmt(p, 2), io::TextTable::fmt(iters.mean(), 1),
                   io::TextTable::fmt(err.mean(), 5),
                   all_converged ? "yes" : "no"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: because stragglers re-optimize against a broadcast estimate\n"
      "that is still near the equilibrium, even 10%% participation converges\n"
      "— the gate only delays, never destabilizes, Algorithm 1.\n");
  return 0;
}

[[maybe_unused]] const bool kRegistered = mec::bench::register_experiment(
    {"ablation_async",
     "Ablation X4: DTU convergence under asynchronous participation",
     {},
     run});

}  // namespace

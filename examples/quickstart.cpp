// Quickstart: build a heterogeneous population, find the Mean-Field Nash
// Equilibrium, run the Distributed Threshold Update algorithm, and check the
// result against a discrete-event simulation.
//
// This is the 60-second tour of the library's public API.
#include <cmath>
#include <cstdio>
#include <span>

#include "mec/core/best_response.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/mec_simulation.hpp"

int main() {
  using namespace mec;

  // 1. Describe the system: 10^4 users whose arrival rates, service rates,
  //    offloading latencies, and energies are drawn from the paper's
  //    theoretical distributions (E[A] < E[S] regime).
  population::ScenarioConfig config = population::theoretical_scenario(
      population::LoadRegime::kBelowService);
  population::Population pop = population::sample_population(config, /*seed=*/7);
  std::printf("scenario: %s, N=%zu, c=%.1f, g=%s\n", config.name.c_str(),
              pop.size(), config.capacity, config.delay.description().c_str());
  std::printf("E[A]=%.3f  E[S]=%.3f\n", pop.mean_arrival_rate(),
              pop.mean_service_rate());

  // 2. Solve for the unique MFNE (Theorem 1): gamma* with V(gamma*) = gamma*.
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, config.delay, config.capacity);
  std::printf("\nMFNE: gamma* = %.4f (V(gamma*) = %.4f, %d bisection steps)\n",
              mfne.gamma_star, mfne.best_response_value, mfne.iterations);

  // 3. Run the distributed algorithm (Algorithm 1): every user only ever
  //    sees the broadcast estimated utilization and its own parameters.
  core::AnalyticUtilization source(pop.users, config.capacity);
  const core::DtuResult dtu = run_dtu(pop.users, config.delay, source, {});
  std::printf("DTU:  converged=%s after %d iterations, gamma_hat=%.4f\n",
              dtu.converged ? "yes" : "no", dtu.iterations,
              dtu.final_gamma_hat);

  // 4. The two agree: the distributed dynamics find the equilibrium.
  std::printf("|gamma_hat - gamma*| = %.5f\n",
              std::abs(dtu.final_gamma_hat - mfne.gamma_star));

  // 5. Cross-check with a discrete-event simulation of the final thresholds
  //    (smaller sub-population for speed).
  const std::size_t sim_n = 1000;
  std::span<const core::UserParams> sub(pop.users.data(), sim_n);
  std::span<const double> sub_thresholds(dtu.thresholds.data(), sim_n);
  sim::SimulationOptions sim_options;
  sim_options.fixed_gamma = mfne.gamma_star;
  sim::MecSimulation simulation(sub, config.capacity, config.delay,
                                sim_options);
  const sim::SimulationResult measured = simulation.run_tro(sub_thresholds);
  std::printf("\nDES check on %zu devices:\n%s", sim_n,
              sim::summarize(measured).c_str());
  std::printf(
      "analytic utilization of the same thresholds: %.4f (DES: %.4f)\n",
      core::utilization_of_thresholds(sub, sub_thresholds, config.capacity),
      measured.measured_utilization);
  return 0;
}

// Example: head-to-head comparison of offloading policies on one fleet,
// evaluated in the discrete-event simulator (not just the closed forms):
//
//   * TRO @ DTU      — thresholds tuned by the paper's Algorithm 1,
//   * DPO-opt        — per-user optimal probabilistic offloading,
//   * DPO-1rho       — one shared offloading probability,
//   * local-only     — never offload (where stable),
//   * offload-all    — never process locally.
//
// This is the Table-III story told operationally: every policy is simulated
// under identical seeds and the per-policy cost, delay, energy, and edge
// utilization are reported side by side.
#include <cstdio>
#include <memory>
#include <vector>

#include "mec/baseline/dpo.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace {

using PolicySet = std::vector<std::unique_ptr<mec::sim::OffloadPolicy>>;

void report(mec::io::TextTable& table, const char* name,
            const mec::sim::SimulationResult& r) {
  using mec::io::TextTable;
  table.add_row(
      {name, TextTable::fmt(r.mean_cost, 3),
       TextTable::fmt(r.mean_queue_length, 2),
       TextTable::fmt(100.0 * r.mean_offload_fraction, 1),
       TextTable::fmt(r.measured_utilization, 3),
       TextTable::fmt(r.device_mean([](const mec::sim::DeviceStats& d) {
         return d.energy_per_task;
       }), 3)});
}

}  // namespace

int main() {
  using namespace mec;

  const auto cfg = population::theoretical_comparison_scenario(
      population::LoadRegime::kAtService, 1000);
  const auto pop = population::sample_population(cfg, 5);
  std::printf("fleet: %s, N=%zu, c=%.0f\n\n", cfg.name.c_str(), pop.size(),
              cfg.capacity);

  // Tune each policy at its own self-consistent operating point.
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  core::AnalyticUtilization source(pop.users, cfg.capacity);
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, {});
  const baseline::DpoEquilibrium dpo =
      baseline::solve_dpo_equilibrium(pop.users, cfg.delay, cfg.capacity);
  const baseline::CommonRhoResult one_rho =
      baseline::solve_common_rho_dpo(pop.users, cfg.delay, cfg.capacity);

  std::printf("operating points: gamma* = %.3f (DTU), %.3f (DPO-opt), "
              "%.3f (DPO-1rho, rho = %.2f)\n\n",
              mfne.gamma_star, dpo.gamma_star, one_rho.gamma, one_rho.rho);

  // Simulate every policy with the EWMA congestion feedback enabled, so the
  // edge delay each task sees is whatever that policy actually causes.
  sim::SimulationOptions so;
  so.horizon = 300.0;
  so.warmup = 30.0;
  so.seed = 11;
  so.initial_gamma = mfne.gamma_star;
  sim::MecSimulation sim(pop.users, cfg.capacity, cfg.delay, so);

  io::TextTable table("policy showdown (simulated, identical fleets/seeds)");
  table.set_header({"policy", "mean cost", "local queue", "offload %",
                    "edge gamma", "energy/task"});

  report(table, "TRO @ DTU thresholds", sim.run_tro(dtu.thresholds));
  report(table, "DPO-opt (per-user rho)", sim.run_dpo(dpo.rhos));
  const std::vector<double> shared(pop.size(), one_rho.rho);
  report(table, "DPO-1rho (shared rho)", sim.run_dpo(shared));

  PolicySet local_only, offload_all;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    local_only.push_back(sim::make_local_only_policy());
    offload_all.push_back(sim::make_offload_all_policy());
  }
  report(table, "local-only", sim.run(local_only));
  report(table, "offload-all", sim.run(offload_all));

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading: the threshold policy wins because it offloads exactly the\n"
      "tasks that would otherwise queue behind a busy CPU; probabilistic\n"
      "policies offload blindly, local-only melts overloaded devices (its\n"
      "cost is dominated by unstable queues), and offload-all pays latency\n"
      "and congestion for work the devices could have absorbed.\n");
  return 0;
}

// Example: an IoT health-monitoring fleet (the paper's opening motivation).
//
// A hospital campus runs 2000 wearable gateways that score ECG/vitals
// windows with small on-device models.  Inference can run locally (slow,
// battery-hungry) or be offloaded to the campus edge cluster over a mix of
// WiFi and 5G links.  The fleet is heterogeneous in three ways: patient
// acuity drives the task rate, device generation drives the service rate and
// local energy, and the radio access drives the offload latency and energy.
//
// The example shows the full operational loop a deployment would run:
//   1. describe the fleet as a ScenarioConfig (mixture distributions),
//   2. let every gateway run the DTU algorithm against the edge's broadcast
//      estimated utilization,
//   3. validate the converged operating point in the discrete-event
//      simulator and report per-segment latency/energy/cost figures.
#include <cstdio>
#include <span>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/sim/mec_simulation.hpp"

int main() {
  using namespace mec;

  // --- 1. Fleet description -------------------------------------------
  population::ScenarioConfig fleet;
  fleet.name = "iot-health-fleet";
  // Task rate: general wards ~2 windows/s, telemetry ~5, ICU ~9.
  fleet.arrival = random::make_mixture(
      {random::make_uniform(1.0, 3.0), random::make_uniform(4.0, 6.0),
       random::make_uniform(8.0, 10.0)},
      {0.6, 0.3, 0.1});
  // Device generations: legacy gateways vs current ones.
  fleet.service = random::make_mixture(
      {random::make_uniform(1.5, 2.5), random::make_uniform(4.0, 6.0)},
      {0.4, 0.6});
  // Radio: WiFi (fast, cheap) vs 5G fallback (slower uplink here).
  fleet.latency = random::make_mixture(
      {random::make_uniform(0.05, 0.25), random::make_uniform(0.4, 0.9)},
      {0.7, 0.3});
  fleet.energy_local = random::make_uniform(1.0, 3.0);
  fleet.energy_offload = random::make_uniform(0.1, 0.8);
  fleet.weight = 1.0;       // equal emphasis on delay and energy
  fleet.capacity = 12.0;    // edge cores per gateway-equivalent
  fleet.delay = core::make_reciprocal_delay(1.1);
  fleet.n_users = 2000;

  const population::Population pop = population::sample_population(fleet, 7);
  std::printf("fleet: %zu gateways, E[A]=%.2f tasks/s, E[S]=%.2f tasks/s\n",
              pop.size(), pop.mean_arrival_rate(), pop.mean_service_rate());

  // --- 2. Distributed threshold tuning ---------------------------------
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, fleet.delay, fleet.capacity);
  core::AnalyticUtilization source(pop.users, fleet.capacity);
  core::DtuOptions opt;
  opt.update_gate = core::make_bernoulli_gate(0.9, 1);  // gateways nap
  const core::DtuResult dtu = run_dtu(pop.users, fleet.delay, source, opt);
  std::printf(
      "DTU: converged=%s in %d rounds; edge utilization %.3f (MFNE %.3f)\n\n",
      dtu.converged ? "yes" : "no", dtu.iterations, dtu.final_gamma,
      mfne.gamma_star);

  // --- 3. Validation run and per-segment report ------------------------
  sim::SimulationOptions so;
  so.fixed_gamma = dtu.final_gamma;
  so.horizon = 300.0;
  so.warmup = 30.0;
  so.seed = 99;
  sim::MecSimulation sim(pop.users, fleet.capacity, fleet.delay, so);
  const sim::SimulationResult run = sim.run_tro(dtu.thresholds);
  std::printf("%s", sim::summarize(run).c_str());

  // Segment the fleet by acuity band and report what each band experiences.
  io::TextTable table("per-acuity-band outcomes (simulated)");
  table.set_header({"band", "gateways", "offload %", "local queue",
                    "offload delay (s)", "energy/task", "cost"});
  const struct {
    const char* label;
    double lo, hi;
  } bands[] = {{"ward (a<3.5)", 0.0, 3.5},
               {"telemetry (3.5-7)", 3.5, 7.0},
               {"ICU (a>7)", 7.0, 100.0}};
  for (const auto& band : bands) {
    double n = 0, alpha = 0, q = 0, od = 0, e = 0, cost = 0;
    for (std::size_t i = 0; i < pop.users.size(); ++i) {
      if (pop.users[i].arrival_rate < band.lo ||
          pop.users[i].arrival_rate >= band.hi)
        continue;
      const sim::DeviceStats& d = run.devices[i];
      ++n;
      alpha += d.offload_fraction;
      q += d.mean_queue_length;
      od += d.mean_offload_delay;
      e += d.energy_per_task;
      cost += d.empirical_cost;
    }
    if (n == 0) continue;
    table.add_row({band.label, io::TextTable::fmt(n, 0),
                   io::TextTable::fmt(100.0 * alpha / n, 1),
                   io::TextTable::fmt(q / n, 2), io::TextTable::fmt(od / n, 3),
                   io::TextTable::fmt(e / n, 2),
                   io::TextTable::fmt(cost / n, 2)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nReading: high-acuity gateways overload their local CPU, so the\n"
      "threshold policy offloads most of their windows; ward devices keep\n"
      "work local and spend almost nothing on the radio.\n");
  return 0;
}

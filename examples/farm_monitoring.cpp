// Example: livestock monitoring on a farm (the paper's second motivating
// application), stressing *operational churn*: collars join and leave the
// radio network, links degrade during storms, and the edge box is shared
// with other services.
//
// The example demonstrates that the DTU loop is a control plane you can keep
// running: after each environmental event, the fleet re-converges to the new
// equilibrium from its current thresholds within a handful of rounds —
// there is no need to restart from scratch.
#include <cstdio>
#include <vector>

#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/io/table.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"

namespace {

/// Re-runs DTU warm-started from the fleet's current thresholds and reports
/// one row of the episode table.
mec::core::DtuResult retune(const char* event,
                            std::vector<mec::core::UserParams>& herd,
                            double capacity,
                            const mec::core::EdgeDelay& delay,
                            std::vector<double> warm_start,
                            mec::io::TextTable& table) {
  using namespace mec;
  core::AnalyticUtilization source(herd, capacity);
  core::DtuOptions opt;
  opt.update_gate = core::make_bernoulli_gate(0.8, 17);  // duty-cycled radios
  opt.initial_thresholds = std::move(warm_start);
  const core::DtuResult r = run_dtu(herd, delay, source, opt);
  const double star = core::solve_mfne(herd, delay, capacity).gamma_star;
  double mean_x = 0.0;
  for (const double x : r.thresholds) mean_x += x;
  mean_x /= static_cast<double>(r.thresholds.size());
  table.add_row({event, std::to_string(herd.size()),
                 std::to_string(r.iterations), io::TextTable::fmt(star, 3),
                 io::TextTable::fmt(r.final_gamma, 3),
                 io::TextTable::fmt(mean_x, 2)});
  return r;
}

}  // namespace

int main() {
  using namespace mec;

  // Collar population: camera collars (heavy vision tasks) and accelerometer
  // collars (light activity classification).
  population::ScenarioConfig farm;
  farm.name = "farm-monitoring";
  farm.arrival = random::make_mixture(
      {random::make_uniform(0.5, 2.0), random::make_uniform(3.0, 6.0)},
      {0.7, 0.3});
  farm.service = random::make_uniform(1.0, 4.0);
  farm.latency = random::make_truncated_lognormal(-1.2, 0.5, 3.0);  // LoRa/WiFi
  farm.energy_local = random::make_uniform(0.5, 2.5);
  farm.energy_offload = random::make_uniform(0.1, 1.0);
  farm.capacity = 6.0;
  farm.delay = core::make_reciprocal_delay(1.1);
  farm.n_users = 1200;

  random::Xoshiro256 rng(2026);
  population::Population pop = population::sample_population(farm, rng);
  std::vector<core::UserParams> herd = pop.users;

  std::printf("farm fleet: %zu collars, E[A]=%.2f, E[S]=%.2f, c=%.1f\n\n",
              herd.size(), pop.mean_arrival_rate(), pop.mean_service_rate(),
              farm.capacity);

  io::TextTable table("operational episodes (warm-started DTU)");
  table.set_header({"event", "collars", "rounds", "gamma*", "gamma reached",
                    "mean threshold"});

  // Episode 0: initial convergence from factory defaults (threshold 0).
  core::DtuResult state =
      retune("initial rollout", herd, farm.capacity, farm.delay, {}, table);

  // Episode 1: 400 camera collars join for the calving season.
  for (int i = 0; i < 400; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 3.0, 6.0);
    u.service_rate = random::uniform(rng, 1.0, 2.5);
    u.offload_latency = random::uniform(rng, 0.2, 0.8);
    u.energy_local = random::uniform(rng, 1.5, 2.5);
    u.energy_offload = random::uniform(rng, 0.2, 0.8);
    herd.push_back(u);
  }
  std::vector<double> warm = state.thresholds;
  warm.resize(herd.size(), 0.0);  // newcomers start at factory default
  state = retune("+400 camera collars", herd, farm.capacity, farm.delay,
                 std::move(warm), table);

  // Episode 2: a storm triples every collar's offload latency.
  for (auto& u : herd) u.offload_latency *= 3.0;
  state = retune("storm: 3x latency", herd, farm.capacity, farm.delay,
                 state.thresholds, table);

  // Episode 3: the storm passes and the edge box gets a hardware upgrade.
  for (auto& u : herd) u.offload_latency /= 3.0;
  state = retune("clear skies + edge upgrade", herd, 9.0, farm.delay,
                 state.thresholds, table);

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading: after every event the warm-started DTU loop re-converges\n"
      "in tens of rounds; the storm pushes work back onto the collars\n"
      "(higher thresholds, lower edge utilization) and the capacity upgrade\n"
      "pulls it back to the edge.\n");
  return 0;
}

// TCP transport + worker daemon tests (src/mec/net/).
//
// Determinism contract #8 extends to machine boundaries: the first half
// proves byte-identical results and streamed .meclog files between inproc
// and TCP ranks served by real WorkerDaemon instances on loopback, at
// several worker counts and on the hard coupling paths (faults + churn
// across clusters, closed-loop DTU).  Daemons run on ephemeral ports inside
// this process for the equivalence tests, and in forked child processes for
// the robustness tests (the crash hook hard-exits whoever hosts the rank,
// which must be a sacrificial process, not this test binary).
//
// The second half exercises the refusal paths: schema-revision mismatches
// in both directions (each error names both revisions), garbage bytes on
// connect (the daemon survives), duplicate worker addresses (named ranks),
// and a killed or stalled daemon mid-run, which must fail the run with a
// diagnostic naming the rank, the peer address, and the last completed
// barrier — never hang.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/edge_delay.hpp"
#include "mec/core/user.hpp"
#include "mec/fault/fault_schedule.hpp"
#include "mec/net/address.hpp"
#include "mec/net/protocol.hpp"
#include "mec/net/socket.hpp"
#include "mec/net/tcp_transport.hpp"
#include "mec/net/worker.hpp"
#include "mec/obs/wire.hpp"
#include "mec/parallel/transport.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/closed_loop.hpp"
#include "mec/sim/mec_simulation.hpp"
#include "mec/sim/policies.hpp"

namespace mec {
namespace {

namespace pwire = parallel::wire;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    if (const char* prev = std::getenv(name)) previous_ = prev;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_.has_value())
      ::setenv(name_, previous_->c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

std::vector<core::UserParams> mixed_users(std::size_t n) {
  std::vector<core::UserParams> users;
  random::Xoshiro256 rng(4242);
  for (std::size_t i = 0; i < n; ++i) {
    core::UserParams u;
    u.arrival_rate = random::uniform(rng, 0.5, 3.0);
    u.service_rate = random::uniform(rng, 2.0, 5.0);
    u.offload_latency = random::uniform(rng, 0.05, 0.6);
    u.energy_local = random::uniform(rng, 0.8, 1.2);
    u.energy_offload = random::uniform(rng, 0.3, 0.7);
    users.push_back(u);
  }
  return users;
}

std::vector<double> mixed_thresholds(std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(0.25 * static_cast<double>(i % 9));
  return xs;
}

void expect_result_identical(const sim::SimulationResult& a,
                             const sim::SimulationResult& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.mean_offload_fraction, b.mean_offload_fraction);
  ASSERT_EQ(a.cluster_utilization.size(), b.cluster_utilization.size());
  for (std::size_t i = 0; i < a.cluster_utilization.size(); ++i)
    EXPECT_EQ(a.cluster_utilization[i], b.cluster_utilization[i])
        << "cluster " << i;
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].arrivals, b.devices[i].arrivals) << "device " << i;
    EXPECT_EQ(a.devices[i].offloaded, b.devices[i].offloaded)
        << "device " << i;
    EXPECT_EQ(a.devices[i].empirical_cost, b.devices[i].empirical_cost)
        << "device " << i;
  }
  EXPECT_EQ(a.faults.tasks_lost, b.faults.tasks_lost);
  EXPECT_EQ(a.faults.churn_joined, b.faults.churn_joined);
  EXPECT_EQ(a.faults.churn_departed, b.faults.churn_departed);
}

/// N quiet daemons on ephemeral loopback ports, each served from its own
/// thread inside this process.  The destructor pokes every accept loop via
/// shutdown(), so a failing test cannot strand a serve() thread.
class DaemonFleet {
 public:
  explicit DaemonFleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      net::WorkerDaemon::Options o;
      o.listen = net::Address{"127.0.0.1", 0};
      o.quiet = true;
      daemons_.push_back(std::make_unique<net::WorkerDaemon>(o));
      addresses_.push_back("127.0.0.1:" +
                           std::to_string(daemons_.back()->port()));
    }
    for (const auto& d : daemons_)
      threads_.emplace_back([daemon = d.get()] { daemon->serve(); });
  }
  ~DaemonFleet() {
    for (const auto& d : daemons_) d->shutdown();
    for (std::thread& t : threads_) t.join();
  }
  const std::vector<std::string>& addresses() const { return addresses_; }

 private:
  std::vector<std::unique_ptr<net::WorkerDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::vector<std::string> addresses_;
};

// --- address parsing -------------------------------------------------------

TEST(NetAddress, ParsesHostAndPort) {
  const net::Address a = net::parse_address("127.0.0.1:8080");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);
  EXPECT_EQ(a.str(), "127.0.0.1:8080");
}

TEST(NetAddress, RejectsMalformedSpecs) {
  for (const char* bad : {"nocolon", ":1234", "host:", "host:0", "host:abc",
                          "host:12x", "host:65536", "host:-1"})
    EXPECT_THROW(net::parse_address(bad), RuntimeError) << bad;
  // Port 0 is only an error when ephemeral binds make no sense.
  EXPECT_EQ(net::parse_address("host:0", /*allow_port_zero=*/true).port, 0);
}

TEST(NetAddress, WorkerListRejectsDuplicatesNamingBothRanks) {
  try {
    net::parse_worker_list("10.0.0.1:7000,10.0.0.2:7000,10.0.0.1:7000");
    FAIL() << "duplicate worker addresses must be rejected";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("10.0.0.1:7000"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
  EXPECT_THROW(net::parse_worker_list(""), RuntimeError);
  EXPECT_THROW(net::parse_worker_list("a:1,,b:2"), RuntimeError);
}

// --- byte-equality across the TCP boundary ---------------------------------

sim::SimulationOptions faulted_cluster_options() {
  sim::SimulationOptions o;
  o.warmup = 3.0;
  o.horizon = 40.0;
  o.seed = 2024;
  o.utilization_ewma_tau = 8.0;
  o.initial_gamma = 0.2;
  o.sample_interval = 4.0;
  o.topology.clusters = 2;
  return o;
}

std::shared_ptr<fault::FaultSchedule> faulted_cluster_schedule() {
  auto schedule = std::make_shared<fault::FaultSchedule>();
  schedule->add_capacity_scale(10.0, 0.5, 1);
  schedule->add_capacity_scale(24.0, 1.0, 1);
  schedule->add_outage(12.0, 18.0, fault::OutageMode::kReject);
  schedule->add_outage(26.0, 32.0, fault::OutageMode::kPenalty, 0.4);
  schedule->add_crash(8.0, 3);
  schedule->add_restart(20.0, 3);
  schedule->add_user_departure(22.0, 0.37);
  core::UserParams joiner;
  joiner.arrival_rate = 1.5;
  joiner.service_rate = 3.0;
  joiner.offload_latency = 0.2;
  joiner.energy_local = 1.0;
  joiner.energy_offload = 0.5;
  schedule->add_user_arrival(15.0, joiner);
  return schedule;
}

TEST(TcpTransportEquivalence, FaultsAndChurnAcrossClustersMatchInProcess) {
  const auto users = mixed_users(41);
  sim::SimulationOptions options = faulted_cluster_options();
  options.faults = faulted_cluster_schedule();
  options.shards = 4;
  options.transport = sim::TransportKind::kInProcess;
  sim::MecSimulation reference(users, 8.0, core::make_reciprocal_delay(),
                               options);
  const sim::SimulationResult base =
      reference.run_tro(mixed_thresholds(reference.total_devices()));
  for (const std::size_t w : {1u, 2u, 4u}) {
    DaemonFleet fleet(w);
    options.transport = sim::TransportKind::kTcp;
    options.worker_addresses = fleet.addresses();
    sim::MecSimulation remote(users, 8.0, core::make_reciprocal_delay(),
                              options);
    const sim::SimulationResult r =
        remote.run_tro(mixed_thresholds(remote.total_devices()));
    SCOPED_TRACE("workers = " + std::to_string(w));
    expect_result_identical(base, r);
  }
}

TEST(TcpTransportEquivalence, ClosedLoopDtuCrossesTheMachineBoundary) {
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, 60),
      91);
  sim::ClosedLoopOptions opt;
  opt.horizon = 80.0;
  opt.update_period = 5.0;
  opt.eta0 = 0.2;
  opt.shards = 4;
  opt.transport = sim::TransportKind::kInProcess;
  const sim::ClosedLoopResult base =
      run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  DaemonFleet fleet(2);
  opt.transport = sim::TransportKind::kTcp;
  opt.worker_addresses = fleet.addresses();
  const sim::ClosedLoopResult r =
      run_closed_loop(pop.users, pop.config.capacity, pop.config.delay, opt);
  EXPECT_EQ(base.final_gamma_hat, r.final_gamma_hat);
  EXPECT_EQ(base.estimate_settled, r.estimate_settled);
  ASSERT_EQ(base.thresholds.size(), r.thresholds.size());
  for (std::size_t i = 0; i < base.thresholds.size(); ++i)
    EXPECT_EQ(base.thresholds[i], r.thresholds[i]) << "device " << i;
  ASSERT_EQ(base.epochs.size(), r.epochs.size());
  for (std::size_t i = 0; i < base.epochs.size(); ++i)
    EXPECT_EQ(base.epochs[i].gamma_hat, r.epochs[i].gamma_hat)
        << "epoch " << i;
  expect_result_identical(base.run, r.run);
}

std::string test_scoped_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name = std::string(info->test_suite_name()) + "_" +
                           info->name() + "_" + suffix;
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST(TcpTransportEquivalence, StreamedLogsAreByteIdentical) {
  const auto users = mixed_users(41);
  sim::SimulationOptions o = faulted_cluster_options();
  o.seed = 7;
  o.sample_interval = 2.0;
  o.shards = 4;
  o.stream_counters = false;  // counter frames carry wall-clock values

  const std::string in_path = test_scoped_path("inproc.meclog");
  const std::string tcp_path = test_scoped_path("tcp.meclog");
  o.transport = sim::TransportKind::kInProcess;
  o.stream_log = in_path;
  sim::MecSimulation a(users, 8.0, core::make_reciprocal_delay(), o);
  a.run_tro(mixed_thresholds(a.total_devices()));

  DaemonFleet fleet(2);
  o.transport = sim::TransportKind::kTcp;
  o.worker_addresses = fleet.addresses();
  o.stream_log = tcp_path;
  sim::MecSimulation b(users, 8.0, core::make_reciprocal_delay(), o);
  b.run_tro(mixed_thresholds(b.total_devices()));

  const std::vector<char> in_bytes = slurp(in_path);
  const std::vector<char> tcp_bytes = slurp(tcp_path);
  ASSERT_FALSE(in_bytes.empty());
  EXPECT_EQ(in_bytes, tcp_bytes);
  std::filesystem::remove(in_path);
  std::filesystem::remove(tcp_path);
}

TEST(TcpTransportEquivalence, OneDaemonServesManyRunsBackToBack) {
  const auto users = mixed_users(17);
  sim::SimulationOptions o;
  o.warmup = 1.0;
  o.horizon = 15.0;
  o.seed = 11;
  o.fixed_gamma = 0.25;
  o.shards = 2;
  o.transport = sim::TransportKind::kInProcess;
  sim::MecSimulation reference(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult base =
      reference.run_tro(mixed_thresholds(reference.total_devices()));

  DaemonFleet fleet(1);
  o.transport = sim::TransportKind::kTcp;
  o.worker_addresses = fleet.addresses();
  sim::MecSimulation remote(users, 8.0, core::make_reciprocal_delay(), o);
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    expect_result_identical(
        base, remote.run_tro(mixed_thresholds(remote.total_devices())));
  }
}

// --- refusal paths ---------------------------------------------------------

sim::SimulationOptions tcp_run_options(
    const std::vector<std::string>& addresses) {
  sim::SimulationOptions o;
  o.warmup = 2.0;
  o.horizon = 30.0;
  o.seed = 5;
  o.fixed_gamma = 0.25;
  o.sample_interval = 2.0;  // plenty of barriers for the hooks to hit
  o.shards = 4;
  o.transport = sim::TransportKind::kTcp;
  o.worker_addresses = addresses;
  return o;
}

void expect_tiny_tcp_run_succeeds(const std::vector<std::string>& addresses) {
  const auto users = mixed_users(9);
  sim::SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 5.0;
  o.seed = 3;
  o.fixed_gamma = 0.25;
  o.shards = 1;
  o.transport = sim::TransportKind::kTcp;
  o.worker_addresses = addresses;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r =
      des.run_tro(mixed_thresholds(des.total_devices()));
  EXPECT_GT(r.total_events, 0u);
}

TEST(TcpTransportHandshake, WorkerRejectsACoordinatorRevisionMismatch) {
  DaemonFleet fleet(1);
  const net::Address addr = net::parse_address(fleet.addresses()[0]);
  net::ScopedFd fd = net::connect_with_backoff(addr, 2000);
  net::wire::Hello hello;
  hello.revision = 99;
  hello.ranks = 1;
  pwire::write_frame(fd.get(), pwire::kFrameHello,
                     net::wire::encode_hello(hello));
  // The daemon answers with an error frame naming both revisions, then
  // closes this connection and survives to serve a real run.
  const pwire::DecodedFrame reply = pwire::read_frame_deadline(fd.get(), 5000);
  ASSERT_EQ(reply.kind, pwire::kFrameError);
  obs::wire::ByteReader r(reply.payload);
  const std::string what = r.get_string(r.get_u32());
  EXPECT_NE(what.find("revision 99"), std::string::npos) << what;
  EXPECT_NE(what.find("revision 1"), std::string::npos) << what;
  fd.reset();
  expect_tiny_tcp_run_succeeds(fleet.addresses());
}

TEST(TcpTransportHandshake, CoordinatorRejectsAWorkerRevisionMismatch) {
  // A fake "newer worker": accepts one connection, answers the hello with
  // an ack carrying revision 99.  The coordinator must refuse, naming both
  // revisions and the peer address.
  net::ScopedFd listener = net::listen_on(net::Address{"127.0.0.1", 0});
  const std::uint16_t port = net::bound_port(listener.get());
  std::thread fake([&listener] {
    net::ScopedFd conn = net::accept_connection(listener.get());
    const pwire::DecodedFrame frame =
        pwire::read_frame_deadline(conn.get(), 5000);
    const net::wire::Hello hello = net::wire::decode_hello(frame.payload);
    net::wire::HelloAck ack;
    ack.revision = 99;
    ack.rank = hello.rank;
    pwire::write_frame(conn.get(), pwire::kFrameHelloAck,
                       net::wire::encode_hello_ack(ack));
  });
  net::TcpTransport::Config cfg;
  cfg.workers = {net::Address{"127.0.0.1", port}};
  cfg.shard_count = 1;
  cfg.n_devices = 1;
  cfg.connect_timeout_ms = 2000;
  const std::vector<std::vector<std::uint8_t>> populations(1);
  const std::vector<double> thresholds(1, 1.0);
  try {
    net::TcpTransport transport(cfg, populations, thresholds);
    FAIL() << "a worker revision mismatch must be refused";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this coordinator speaks revision 1"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("answered revision 99"), std::string::npos) << what;
    EXPECT_NE(what.find("127.0.0.1:"), std::string::npos) << what;
  }
  fake.join();
}

TEST(TcpTransportHandshake, GarbageBytesOnConnectAreRejectedAndSurvived) {
  DaemonFleet fleet(1);
  const net::Address addr = net::parse_address(fleet.addresses()[0]);
  {
    net::ScopedFd fd = net::connect_with_backoff(addr, 2000);
    const std::string junk = "GET / HTTP/1.1\r\nHost: not-a-mec-peer\r\n\r\n";
    ASSERT_EQ(::write(fd.get(), junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    // The daemon kills this connection at the envelope decode (absurd
    // length / CRC); it must not crash, hang, or poison the next run.
  }
  expect_tiny_tcp_run_succeeds(fleet.addresses());
}

TEST(TcpTransportHandshake, DuplicateWorkerAddressIsRejectedUpFront) {
  DaemonFleet fleet(1);
  const auto users = mixed_users(9);
  sim::SimulationOptions o = tcp_run_options(
      {fleet.addresses()[0], fleet.addresses()[0]});
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "a duplicated worker address must be rejected";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("listed twice"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(TcpTransportHandshake, MoreWorkersThanShardsIsRejectedUpFront) {
  const auto users = mixed_users(9);
  sim::SimulationOptions o = tcp_run_options(
      {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4",
       "127.0.0.1:5"});
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "more workers than shards must be rejected before connecting";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 workers"), std::string::npos) << what;
    EXPECT_NE(what.find("4 shards"), std::string::npos) << what;
  }
}

// --- killed / stalled daemons ----------------------------------------------

/// Forks a child process that serves `daemon` (already bound in the parent,
/// so the port is known) with the given robustness hook set.  The crash
/// hook hard-exits the child, which is the point: the sacrificial process
/// stands in for a machine that dies mid-run.
pid_t fork_daemon(net::WorkerDaemon& daemon, const char* hook_name,
                  const char* hook_value, const char* hook_barrier_name,
                  const char* hook_barrier_value) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (hook_name != nullptr) {
      ::setenv(hook_name, hook_value, 1);
      ::setenv(hook_barrier_name, hook_barrier_value, 1);
    }
    int status = 1;
    try {
      status = daemon.serve();
    } catch (...) {
    }
    ::_exit(status);
  }
  return pid;
}

void reap(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

TEST(TcpTransportRobustness, KilledWorkerFailsWithRankAddressAndBarrier) {
  net::WorkerDaemon::Options o;
  o.listen = net::Address{"127.0.0.1", 0};
  o.quiet = true;
  net::WorkerDaemon d0(o), d1(o);
  const std::vector<std::string> addresses = {
      "127.0.0.1:" + std::to_string(d0.port()),
      "127.0.0.1:" + std::to_string(d1.port())};
  const pid_t pid0 = fork_daemon(d0, nullptr, nullptr, nullptr, nullptr);
  // Rank 1 _exit(17)s after its third advance: the TCP peer just vanishes.
  const pid_t pid1 =
      fork_daemon(d1, "MEC_TEST_WORKER_CRASH_RANK", "1",
                  "MEC_TEST_WORKER_CRASH_BARRIER", "3");
  const auto users = mixed_users(41);
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                         tcp_run_options(addresses));
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "a killed daemon must fail the run, not hang it";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tcp transport worker rank 1"), std::string::npos)
        << what;
    EXPECT_NE(what.find("127.0.0.1:"), std::string::npos) << what;
    EXPECT_NE(what.find("closed the connection"), std::string::npos) << what;
    EXPECT_NE(what.find("last completed barrier #2"), std::string::npos)
        << what;
    EXPECT_NE(what.find("pending frame: barrier payload"), std::string::npos)
        << what;
  }
  reap(pid0);
  reap(pid1);
}

TEST(TcpTransportRobustness, StalledWorkerFailsInsteadOfHanging) {
  ScopedEnv timeout("MEC_TRANSPORT_TIMEOUT_MS", "500");
  net::WorkerDaemon::Options o;
  o.listen = net::Address{"127.0.0.1", 0};
  o.quiet = true;
  net::WorkerDaemon d0(o), d1(o);
  const std::vector<std::string> addresses = {
      "127.0.0.1:" + std::to_string(d0.port()),
      "127.0.0.1:" + std::to_string(d1.port())};
  // Rank 0 stops heartbeating after its second advance but keeps the
  // connection open: only the read deadline can unstick the coordinator.
  const pid_t pid0 =
      fork_daemon(d0, "MEC_TEST_WORKER_STALL_RANK", "0",
                  "MEC_TEST_WORKER_STALL_BARRIER", "2");
  const pid_t pid1 = fork_daemon(d1, nullptr, nullptr, nullptr, nullptr);
  const auto users = mixed_users(41);
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(),
                         tcp_run_options(addresses));
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "a stalled daemon must fail the run within the timeout";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tcp transport worker rank 0"), std::string::npos)
        << what;
    EXPECT_NE(what.find("stopped responding"), std::string::npos) << what;
    EXPECT_NE(what.find("last completed barrier #1"), std::string::npos)
        << what;
  }
  reap(pid0);
  reap(pid1);
}

TEST(TcpTransportRobustness, UnreachableWorkerFailsWithAddress) {
  // Nothing listens here: connect must give up within the budget and name
  // the address instead of retrying forever.
  ScopedEnv timeout("MEC_TRANSPORT_TIMEOUT_MS", "400");
  const auto users = mixed_users(9);
  sim::SimulationOptions o = tcp_run_options({"127.0.0.1:9"});
  o.shards = 1;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  try {
    des.run_tro(mixed_thresholds(des.total_devices()));
    FAIL() << "an unreachable daemon must fail the run";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("127.0.0.1:9"), std::string::npos) << what;
  }
}

TEST(TcpTransportRobustness, RejectsPoliciesWithoutTroThresholds) {
  const auto users = mixed_users(8);
  sim::SimulationOptions o = tcp_run_options({"127.0.0.1:9"});
  o.shards = 2;
  sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
  std::vector<std::unique_ptr<sim::OffloadPolicy>> policies;
  for (std::size_t i = 0; i < users.size(); ++i)
    policies.push_back(sim::make_dpo_policy(0.5));
  try {
    des.run(policies);
    FAIL() << "non-TRO policies must be rejected under transport=tcp";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("transport=tcp"), std::string::npos) << what;
    EXPECT_NE(what.find("machine boundary"), std::string::npos) << what;
  }
}

TEST(TcpTransportRobustness, RawSamplerClosuresAreRejected) {
  // A closure cannot be shipped to a remote rank; the constructor must say
  // so instead of silently running different distributions per side.
  const auto users = mixed_users(8);
  sim::SimulationOptions o = tcp_run_options({"127.0.0.1:9"});
  o.service = sim::erlang_service(4);
  try {
    sim::MecSimulation des(users, 8.0, core::make_reciprocal_delay(), o);
    FAIL() << "raw sampler closures must be rejected under transport=tcp";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("service_spec"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mec

// End-to-end pipelines tying every subsystem together, mirroring the paper's
// evaluation narrative: equilibrium theory -> distributed algorithm ->
// simulated system, under both theoretical and practical settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mec/baseline/dpo.hpp"
#include "mec/core/dtu.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec {
namespace {

TEST(Integration, TheoreticalPipelineTheoryAlgorithmSimulationAgree) {
  // 1. Sample the paper's theoretical E[A]=E[S] system.
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService,
                                       1500),
      2024);
  const auto& cfg = pop.config;

  // 2. Equilibrium from theory.
  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);

  // 3. Distributed algorithm, analytic utilization oracle.
  core::AnalyticUtilization source(pop.users, cfg.capacity);
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, {});
  ASSERT_TRUE(dtu.converged);
  EXPECT_NEAR(dtu.final_gamma, mfne.gamma_star, 0.03);

  // 4. Simulate the converged thresholds; measured utilization must agree.
  sim::SimulationOptions o;
  o.fixed_gamma = mfne.gamma_star;
  o.horizon = 400.0;
  o.warmup = 40.0;
  sim::MecSimulation sim(pop.users, cfg.capacity, cfg.delay, o);
  const sim::SimulationResult r = sim.run_tro(dtu.thresholds);
  EXPECT_NEAR(r.measured_utilization, mfne.gamma_star, 0.03);

  // 5. And the realized average cost matches the analytic Eq.-(1) cost.
  const double analytic_cost = core::average_cost(
      pop.users, dtu.thresholds, cfg.delay, mfne.gamma_star);
  EXPECT_NEAR(r.mean_cost, analytic_cost, 0.1 * analytic_cost);
}

TEST(Integration, PracticalPipelineWithMeasuredDataAndAsyncUpdates) {
  // Practical settings: empirical service rates / latencies, asynchronous
  // updates with probability 0.8 (Section IV-B).
  const auto pop = population::sample_population(
      population::practical_scenario(population::LoadRegime::kBelowService,
                                     800),
      2025);
  const auto& cfg = pop.config;

  const core::MfneResult mfne =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
  EXPECT_GT(mfne.gamma_star, 0.0);
  EXPECT_LT(mfne.gamma_star, 1.0);

  core::AnalyticUtilization source(pop.users, cfg.capacity);
  core::DtuOptions opt;
  opt.update_gate = core::make_bernoulli_gate(0.8, 11);
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);
  ASSERT_TRUE(dtu.converged);
  EXPECT_NEAR(dtu.final_gamma, mfne.gamma_star, 0.05);

  // Simulate with the *empirical* (non-exponential) service and latency
  // distributions: the offload fractions shift only mildly, so the measured
  // utilization stays in the neighbourhood of the exponential-theory MFNE.
  sim::SimulationOptions o;
  o.service = sim::empirical_service(random::synthetic_yolo_processing_times());
  o.latency = sim::empirical_latency(random::synthetic_wifi_offload_latencies());
  o.fixed_gamma = mfne.gamma_star;
  o.horizon = 300.0;
  o.warmup = 30.0;
  sim::MecSimulation sim(pop.users, cfg.capacity, cfg.delay, o);
  const sim::SimulationResult r = sim.run_tro(dtu.thresholds);
  EXPECT_NEAR(r.measured_utilization, mfne.gamma_star,
              0.25 * mfne.gamma_star + 0.02);
}

TEST(Integration, DtuWithSimulationInTheLoopStillFindsTheEquilibrium) {
  // Algorithm 1 driven by *measured* utilization (DES oracle) instead of the
  // closed form: convergence must land near the analytic MFNE.
  const auto pop = population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kBelowService,
                                       300),
      2026);
  const auto& cfg = pop.config;
  const double gamma_star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  sim::SimulationOptions o;
  o.horizon = 150.0;
  o.warmup = 15.0;
  sim::DesUtilizationSource source(pop.users, cfg.capacity, cfg.delay, o);
  core::DtuOptions opt;
  opt.eta0 = 0.1;
  opt.epsilon = 0.02;  // looser: the oracle is noisy
  opt.max_iterations = 200;
  const core::DtuResult dtu = run_dtu(pop.users, cfg.delay, source, opt);
  EXPECT_TRUE(dtu.converged);
  EXPECT_NEAR(dtu.final_gamma_hat, gamma_star, 0.06);
}

TEST(Integration, TableThreeShapeDtuBeatsDpoInBothSettingFamilies) {
  for (const bool practical : {false, true}) {
    for (const auto regime : {population::LoadRegime::kBelowService,
                              population::LoadRegime::kAboveService}) {
      const auto cfg =
          practical
              ? population::practical_scenario(regime, 600)
              : population::theoretical_comparison_scenario(regime, 600);
      const auto pop = population::sample_population(cfg, 2027);

      const core::MfneResult mfne =
          core::solve_mfne(pop.users, cfg.delay, cfg.capacity);
      std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
      const double dtu_cost =
          core::average_cost(pop.users, xs, cfg.delay, mfne.gamma_star);

      const baseline::DpoEquilibrium dpo = baseline::solve_dpo_equilibrium(
          pop.users, cfg.delay, cfg.capacity);

      EXPECT_LT(dtu_cost, dpo.average_cost)
          << (practical ? "practical " : "theoretical ")
          << population::to_string(regime);
    }
  }
}

TEST(Integration, EquilibriumIsStableUnderRepopulation) {
  // Mean-field prediction: independent population draws give nearly the
  // same equilibrium (SLLN).  Spread across seeds must be small at N=5000.
  std::vector<double> stars;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto pop = population::sample_population(
        population::theoretical_scenario(population::LoadRegime::kAboveService,
                                         5000),
        seed);
    stars.push_back(core::solve_mfne(pop.users, pop.config.delay,
                                     pop.config.capacity)
                        .gamma_star);
  }
  const auto [lo, hi] = std::minmax_element(stars.begin(), stars.end());
  EXPECT_LT(*hi - *lo, 0.015);
}

}  // namespace
}  // namespace mec

// The DPO baseline: closed-form best response, equilibrium, and the paper's
// headline comparison (DTU's threshold policy beats DPO's probabilistic one).
#include "mec/baseline/dpo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/rng.hpp"

namespace mec::baseline {
namespace {

core::UserParams make_user(double a, double s, double tau = 1.0,
                           double p_l = 1.5, double p_e = 0.5) {
  core::UserParams u;
  u.arrival_rate = a;
  u.service_rate = s;
  u.offload_latency = tau;
  u.energy_local = p_l;
  u.energy_offload = p_e;
  return u;
}

TEST(DpoCost, FullOffloadPaysTheOffloadPricePerTask) {
  const core::UserParams u = make_user(2.0, 3.0);
  const double g = 0.8;
  EXPECT_NEAR(dpo_cost(u, 1.0, g),
              u.weight * u.energy_offload + g + u.offload_latency, 1e-12);
}

TEST(DpoCost, UnstableLocalQueueCostsInfinity) {
  const core::UserParams u = make_user(4.0, 2.0);  // a > s
  EXPECT_TRUE(std::isinf(dpo_cost(u, 0.0, 1.0)));
  EXPECT_TRUE(std::isinf(dpo_cost(u, 0.4, 1.0)));  // 4*0.6 = 2.4 >= 2
  EXPECT_TRUE(std::isfinite(dpo_cost(u, 0.6, 1.0)));
}

TEST(DpoCost, PureLocalMatchesMm1Cost) {
  const core::UserParams u = make_user(1.0, 2.0);
  // rho = 0: cost = w*p_L + L/a with L = 1/(2-1) = 1.
  EXPECT_NEAR(dpo_cost(u, 0.0, 5.0), u.energy_local + 1.0, 1e-12);
}

TEST(OptimalOffloadProbability, FullOffloadWhenOffloadingDominates) {
  // K = w*p_E + g + tau <= w*p_L: offload everything.
  core::UserParams u = make_user(2.0, 3.0, /*tau=*/0.0, /*p_l=*/5.0,
                                 /*p_e=*/0.1);
  EXPECT_DOUBLE_EQ(optimal_offload_probability(u, 0.0), 1.0);
}

TEST(OptimalOffloadProbability, ZeroWhenLocalIsFreeAndFast) {
  // Very fast local service, tiny load, expensive offload => keep local.
  core::UserParams u = make_user(0.2, 50.0, /*tau=*/10.0, /*p_l=*/0.0,
                                 /*p_e=*/1.0);
  EXPECT_DOUBLE_EQ(optimal_offload_probability(u, 1.0), 0.0);
}

TEST(OptimalOffloadProbability, OverloadedUsersAlwaysOffloadEnough) {
  // a > s: the optimum must keep the local queue stable.
  const core::UserParams u = make_user(5.0, 2.0);
  const double rho = optimal_offload_probability(u, 0.5);
  EXPECT_LT(u.arrival_rate * (1.0 - rho), u.service_rate);
}

TEST(OptimalOffloadProbability, IsNonIncreasingInEdgeDelay) {
  const core::UserParams u = make_user(3.0, 4.0);
  double prev = 1.1;
  for (double g = 0.0; g <= 8.0; g += 0.5) {
    const double rho = optimal_offload_probability(u, g);
    EXPECT_LE(rho, prev + 1e-12);
    prev = rho;
  }
}

class DpoClosedFormTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpoClosedFormTest, ClosedFormMatchesGridSearch) {
  random::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const core::UserParams u = make_user(
        random::uniform(rng, 0.3, 8.0), random::uniform(rng, 1.0, 5.0),
        random::uniform(rng, 0.0, 5.0), random::uniform(rng, 0.0, 3.0),
        random::uniform(rng, 0.0, 1.0));
    const double g = random::uniform(rng, 0.0, 6.0);
    const double rho_star = optimal_offload_probability(u, g);
    const double rho_grid = grid_search_offload_probability(u, g, 1e-4);
    // Costs at the two minimizers must agree (the argmin can be flat).
    EXPECT_NEAR(dpo_cost(u, rho_star, g), dpo_cost(u, rho_grid, g), 1e-5)
        << "a=" << u.arrival_rate << " s=" << u.service_rate << " g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpoClosedFormTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(DpoEquilibriumTest, IsAFixedPointOfTheBestResponse) {
  const auto pop = population::sample_population(
      population::theoretical_comparison_scenario(
          population::LoadRegime::kAtService),
      77);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const DpoEquilibrium eq =
      solve_dpo_equilibrium(pop.users, delay, pop.config.capacity);
  EXPECT_GT(eq.gamma_star, 0.0);
  EXPECT_LT(eq.gamma_star, 1.0);
  EXPECT_NEAR(dpo_utilization(pop.users, eq.rhos, pop.config.capacity),
              eq.gamma_star, 1e-6);
}

TEST(DpoEquilibriumTest, NoUserBenefitsFromDeviating) {
  const auto pop = population::sample_population(
      population::theoretical_comparison_scenario(
          population::LoadRegime::kBelowService, 500),
      78);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const DpoEquilibrium eq =
      solve_dpo_equilibrium(pop.users, delay, pop.config.capacity);
  const double g = delay(eq.gamma_star);
  for (std::size_t n = 0; n < pop.users.size(); n += 41) {
    const double own = dpo_cost(pop.users[n], eq.rhos[n], g);
    for (const double dev : {0.0, 0.25, 0.5, 0.75, 1.0})
      EXPECT_LE(own, dpo_cost(pop.users[n], dev, g) + 1e-9);
  }
}

TEST(DpoEquilibriumTest, ThresholdPolicyBeatsProbabilisticPolicy) {
  // The paper's Table III claim, checked at matched equilibria: the average
  // Eq.-(1) cost under the MFNE thresholds is lower than the average DPO
  // cost at the DPO equilibrium.
  for (const auto regime : {population::LoadRegime::kBelowService,
                            population::LoadRegime::kAtService,
                            population::LoadRegime::kAboveService}) {
    const auto pop = population::sample_population(
        population::theoretical_comparison_scenario(regime), 79);
    const core::EdgeDelay delay = core::make_reciprocal_delay();

    const core::MfneResult mfne =
        core::solve_mfne(pop.users, delay, pop.config.capacity);
    std::vector<double> xs(mfne.thresholds.begin(), mfne.thresholds.end());
    const double tro_cost_avg =
        core::average_cost(pop.users, xs, delay, mfne.gamma_star);

    const DpoEquilibrium dpo =
        solve_dpo_equilibrium(pop.users, delay, pop.config.capacity);

    EXPECT_LT(tro_cost_avg, dpo.average_cost)
        << population::to_string(regime);
  }
}

TEST(DelayOnlyDpo, IgnoresEnergyInTheDecision) {
  // Two users differing only in energy must pick the same delay-only rho.
  core::UserParams cheap = make_user(3.0, 4.0, 1.0, /*p_l=*/0.0, /*p_e=*/1.0);
  core::UserParams costly = make_user(3.0, 4.0, 1.0, /*p_l=*/3.0, /*p_e=*/0.0);
  EXPECT_DOUBLE_EQ(delay_only_offload_probability(cheap, 0.5),
                   delay_only_offload_probability(costly, 0.5));
}

TEST(DelayOnlyDpo, IsSuboptimalForTheFullCost) {
  // Energy-blind rho can never beat the cost-optimal rho on the full cost.
  random::Xoshiro256 rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const core::UserParams u = make_user(
        random::uniform(rng, 0.5, 6.0), random::uniform(rng, 1.0, 5.0),
        random::uniform(rng, 0.0, 5.0), random::uniform(rng, 0.0, 3.0),
        random::uniform(rng, 0.0, 1.0));
    const double g = random::uniform(rng, 0.0, 4.0);
    EXPECT_GE(dpo_cost(u, delay_only_offload_probability(u, g), g),
              dpo_cost(u, optimal_offload_probability(u, g), g) - 1e-9);
  }
}

TEST(DelayOnlyDpo, KeepsOverloadedQueuesStable) {
  const core::UserParams u = make_user(6.0, 2.0);
  const double rho = delay_only_offload_probability(u, 1.0);
  EXPECT_LT(u.arrival_rate * (1.0 - rho), u.service_rate);
}

TEST(CommonRhoDpo, FindsAFiniteCompromise) {
  const auto pop = population::sample_population(
      population::theoretical_comparison_scenario(
          population::LoadRegime::kAtService, 400),
      81);
  const CommonRhoResult r = solve_common_rho_dpo(
      pop.users, core::make_reciprocal_delay(), pop.config.capacity);
  EXPECT_TRUE(std::isfinite(r.average_cost));
  EXPECT_GE(r.rho, 0.0);
  EXPECT_LE(r.rho, 1.0);
  EXPECT_NEAR(r.gamma, r.rho * pop.mean_arrival_rate() / pop.config.capacity,
              1e-9);
}

TEST(CommonRhoDpo, IsDominatedByPerUserOptimalDpo) {
  // A shared probability is a strict subset of per-user probabilities.
  const auto pop = population::sample_population(
      population::theoretical_comparison_scenario(
          population::LoadRegime::kBelowService, 400),
      82);
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const CommonRhoResult common =
      solve_common_rho_dpo(pop.users, delay, pop.config.capacity);
  const DpoEquilibrium per_user =
      solve_dpo_equilibrium(pop.users, delay, pop.config.capacity);
  EXPECT_LT(per_user.average_cost, common.average_cost);
}

TEST(CommonRhoDpo, HomogeneousPlannerWeaklyBeatsTheNashEquilibrium) {
  // With identical users the shared rho costs nothing in heterogeneity, and
  // because it is chosen by a planner that internalizes the congestion
  // externality g(gamma(rho)), it can only do as well as or better than the
  // per-user Nash equilibrium — the classic price-of-anarchy direction.
  std::vector<core::UserParams> users(100, make_user(2.0, 3.0, 1.0, 2.0, 0.3));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const CommonRhoResult common =
      solve_common_rho_dpo(users, delay, 10.0, 0.0005);
  const DpoEquilibrium per_user = solve_dpo_equilibrium(users, delay, 10.0);
  EXPECT_LE(common.average_cost, per_user.average_cost + 1e-3);
  // ... but not by much: the externality correction is second-order here.
  EXPECT_NEAR(common.average_cost, per_user.average_cost,
              0.05 * per_user.average_cost);
}

TEST(CommonRhoDpo, ValidatesArguments) {
  const std::vector<core::UserParams> users(3, make_user(1.0, 2.0));
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  EXPECT_THROW(solve_common_rho_dpo({}, delay, 10.0), ContractViolation);
  EXPECT_THROW(solve_common_rho_dpo(users, delay, 10.0, 0.0),
               ContractViolation);
  EXPECT_THROW(solve_common_rho_dpo(users, delay, -1.0), ContractViolation);
}

TEST(DpoUtilization, ValidatesInput) {
  const std::vector<core::UserParams> users(3, make_user(1.0, 2.0));
  const std::vector<double> bad_rho{0.5, 1.5, 0.2};
  EXPECT_THROW(dpo_utilization(users, bad_rho, 10.0), ContractViolation);
  const std::vector<double> wrong_size{0.5};
  EXPECT_THROW(dpo_utilization(users, wrong_size, 10.0), ContractViolation);
}

TEST(DpoEquilibriumTest, ThrowsWhenEveryoneMustOffloadBeyondCapacity) {
  std::vector<core::UserParams> users(
      5, make_user(8.0, 1.0, /*tau=*/0.0, /*p_l=*/10.0, /*p_e=*/0.0));
  // K < w p_L at gamma = 0 => rho = 1 for all => V(0) = 8/c.
  EXPECT_THROW(
      solve_dpo_equilibrium(users, core::make_constant_delay(0.1), 2.0),
      ContractViolation);
}

}  // namespace
}  // namespace mec::baseline

// Phase-type service distributions and the exact TRO queue under them.
// Validated against: closed-form moments, the exponential special case
// (Eq. 7-8), and the discrete-event simulator with matching samplers.
#include "mec/queueing/phase_type.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/general_service.hpp"
#include "mec/core/threshold_oracle.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::queueing {
namespace {

TEST(PhaseTypeMoments, ExponentialHasMeanOneOverRateAndScvOne) {
  const PhaseType pt = exponential_phase(2.5);
  EXPECT_NEAR(pt.mean(), 0.4, 1e-12);
  EXPECT_NEAR(pt.scv(), 1.0, 1e-12);
}

TEST(PhaseTypeMoments, ErlangHasScvOneOverK) {
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const PhaseType pt = erlang_phase(k, 3.0);
    EXPECT_NEAR(pt.mean(), 3.0, 1e-10) << "k=" << k;
    EXPECT_NEAR(pt.scv(), 1.0 / static_cast<double>(k), 1e-10) << "k=" << k;
  }
}

TEST(PhaseTypeMoments, HyperexponentialMatchesMixtureFormulas) {
  // Mixture of Exp(1) w.p. 0.3 and Exp(4) w.p. 0.7.
  const PhaseType pt = hyperexponential_phase({0.3, 0.7}, {1.0, 4.0});
  const double mean = 0.3 / 1.0 + 0.7 / 4.0;
  const double m2 = 2.0 * (0.3 / 1.0 + 0.7 / 16.0);
  EXPECT_NEAR(pt.mean(), mean, 1e-12);
  EXPECT_NEAR(pt.scv(), (m2 - mean * mean) / (mean * mean), 1e-10);
  EXPECT_GE(pt.scv(), 1.0);
}

TEST(PhaseTypeMoments, ScvFitRoundTrips) {
  for (const double scv : {1.0, 1.5, 3.0, 8.0}) {
    const PhaseType pt = hyperexponential_from_scv(2.0, scv);
    EXPECT_NEAR(pt.mean(), 2.0, 1e-10) << "scv=" << scv;
    EXPECT_NEAR(pt.scv(), scv, 1e-9) << "scv=" << scv;
  }
  EXPECT_THROW(hyperexponential_from_scv(1.0, 0.5), ContractViolation);
}

TEST(PhaseTypeMoments, ScalingPreservesShape) {
  const PhaseType pt = hyperexponential_from_scv(2.0, 4.0);
  const PhaseType scaled = pt.scaled_to_mean(0.25);
  EXPECT_NEAR(scaled.mean(), 0.25, 1e-10);
  EXPECT_NEAR(scaled.scv(), 4.0, 1e-9);  // SCV is scale-invariant
}

TEST(PhaseTypeValidation, RejectsMalformedDistributions) {
  PhaseType bad;
  bad.initial = {0.5, 0.4};  // doesn't sum to 1
  bad.phase_change = {{0.0, 1.0}, {0.0, 0.0}};
  bad.completion = {0.0, 1.0};
  EXPECT_THROW(bad.check(), ContractViolation);
  bad.initial = {0.5, 0.5};
  bad.completion = {0.0, 0.0};
  bad.phase_change = {{0.0, 0.0}, {0.0, 0.0}};  // phase 1 has no way out
  EXPECT_THROW(bad.check(), ContractViolation);
  EXPECT_THROW(erlang_phase(0, 1.0), ContractViolation);
  EXPECT_THROW(exponential_phase(0.0), ContractViolation);
}

// The crucial consistency check: with exponential service the CTMC route
// must reproduce the Eq. (7)-(8) closed forms exactly.
class PhaseTypeExponentialConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PhaseTypeExponentialConsistency, MatchesClosedFormTro) {
  const auto [theta, x] = GetParam();
  const double s = 2.0;
  const double a = theta * s;
  const TroMetrics closed = tro_metrics(theta, x);
  const TroMetrics ctmc =
      tro_metrics_phase_type(a, exponential_phase(s), x);
  EXPECT_NEAR(ctmc.mean_queue_length, closed.mean_queue_length, 1e-8)
      << "theta=" << theta << " x=" << x;
  EXPECT_NEAR(ctmc.offload_probability, closed.offload_probability, 1e-9)
      << "theta=" << theta << " x=" << x;
  EXPECT_NEAR(ctmc.p_empty, closed.p_empty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PhaseTypeExponentialConsistency,
    ::testing::Combine(::testing::Values(0.3, 1.0, 2.0, 4.0),
                       ::testing::Values(0.0, 0.5, 1.0, 2.25, 5.0, 8.75)));

TEST(PhaseTypeTro, FlowBalanceHoldsForAllShapes) {
  // a(1 - alpha) = (1/mean_service) * (1 - pi_0) for every service law.
  const double a = 3.0;
  const std::vector<PhaseType> shapes = {
      exponential_phase(2.0), erlang_phase(4, 0.5),
      hyperexponential_from_scv(0.5, 5.0)};
  for (const auto& shape : shapes) {
    for (const double x : {0.5, 1.0, 3.25, 6.0}) {
      const TroMetrics m = tro_metrics_phase_type(a, shape, x);
      EXPECT_NEAR(a * (1.0 - m.offload_probability),
                  (1.0 - m.p_empty) / shape.mean(), 1e-8)
          << "x=" << x;
    }
  }
}

TEST(PhaseTypeTro, LowVariabilityServiceOffloadsLess) {
  // At equal mean and threshold, Erlang-4 (SCV 1/4) keeps the queue shorter
  // than exponential, which in turn beats a bursty H2 (SCV 4), so offload
  // probabilities are ordered by variability.
  const double a = 1.5, mean_service = 0.5, x = 3.0;
  const TroMetrics erl =
      tro_metrics_phase_type(a, erlang_phase(4, mean_service), x);
  const TroMetrics exp =
      tro_metrics_phase_type(a, exponential_phase(1.0 / mean_service), x);
  const TroMetrics h2 = tro_metrics_phase_type(
      a, hyperexponential_from_scv(mean_service, 4.0), x);
  EXPECT_LT(erl.offload_probability, exp.offload_probability);
  EXPECT_LT(exp.offload_probability, h2.offload_probability);
}

TEST(PhaseTypeTro, ZeroThresholdOffloadsEverything) {
  const TroMetrics m =
      tro_metrics_phase_type(2.0, erlang_phase(3, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(m.offload_probability, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_queue_length, 0.0);
}

TEST(PhaseTypeTro, AgreesWithDiscreteEventSimulation) {
  // Erlang-3 service on 200 homogeneous devices: the analytic CTMC numbers
  // must match long-run DES measurements using the matching sampler.
  const double a = 2.0, s = 2.5, x = 2.5;
  std::vector<core::UserParams> users(200);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = 0.1;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  sim::SimulationOptions o;
  o.warmup = 50.0;
  o.horizon = 1500.0;
  o.seed = 77;
  o.fixed_gamma = 0.2;
  o.service = sim::erlang_service(3);
  sim::MecSimulation des(users, 10.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r =
      des.run_tro(std::vector<double>(users.size(), x));

  const TroMetrics exact =
      tro_metrics_phase_type(a, erlang_phase(3, 1.0 / s), x);
  EXPECT_NEAR(r.mean_offload_fraction, exact.offload_probability, 0.01);
  EXPECT_NEAR(r.mean_queue_length, exact.mean_queue_length, 0.03);
}

TEST(PhaseTypeTro, HyperexponentialAgreesWithSimulation) {
  const double a = 1.2, s = 2.0, x = 3.0, scv = 4.0;
  std::vector<core::UserParams> users(200);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = 0.1;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  sim::SimulationOptions o;
  o.warmup = 50.0;
  o.horizon = 1500.0;
  o.seed = 78;
  o.fixed_gamma = 0.2;
  o.service = sim::hyperexponential_service(scv);
  sim::MecSimulation des(users, 10.0, core::make_reciprocal_delay(), o);
  const sim::SimulationResult r =
      des.run_tro(std::vector<double>(users.size(), x));

  const TroMetrics exact = tro_metrics_phase_type(
      a, hyperexponential_from_scv(1.0 / s, scv), x);
  EXPECT_NEAR(r.mean_offload_fraction, exact.offload_probability, 0.015);
  EXPECT_NEAR(r.mean_queue_length, exact.mean_queue_length, 0.05);
}

// --- General-service best response / equilibrium (mec/core) ---

TEST(GeneralService, PhaseTypeCostMatchesExponentialCostForExpShape) {
  core::UserParams u;
  u.arrival_rate = 2.0;
  u.service_rate = 3.0;
  u.offload_latency = 0.5;
  u.energy_local = 1.5;
  u.energy_offload = 0.5;
  for (const double x : {0.0, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(core::phase_type_cost(u, exponential_phase(1.0), x, 0.7),
                core::tro_cost(u, x, 0.7), 1e-8);
  }
}

TEST(GeneralService, ExponentialShapeRecoversLemmaOneThreshold) {
  core::UserParams u;
  u.arrival_rate = 3.0;
  u.service_rate = 2.0;
  u.offload_latency = 1.0;
  u.energy_local = 2.0;
  u.energy_offload = 0.5;
  for (const double g : {0.5, 2.0, 5.0}) {
    EXPECT_EQ(core::best_threshold_phase_type(u, exponential_phase(1.0), g),
              core::best_threshold(u, g))
        << "g=" << g;
  }
}

TEST(GeneralService, BestThresholdBeatsNeighborsUnderErlang) {
  core::UserParams u;
  u.arrival_rate = 2.5;
  u.service_rate = 2.0;
  u.offload_latency = 0.8;
  u.energy_local = 1.0;
  u.energy_offload = 0.4;
  const PhaseType shape = erlang_phase(4, 1.0);
  const double g = 2.0;
  const auto x = core::best_threshold_phase_type(u, shape, g);
  const double c_opt =
      core::phase_type_cost(u, shape, static_cast<double>(x), g);
  for (std::int64_t dx = -2; dx <= 2; ++dx) {
    const std::int64_t cand = x + dx;
    if (cand < 0) continue;
    EXPECT_LE(c_opt, core::phase_type_cost(
                          u, shape, static_cast<double>(cand), g) +
                         1e-10);
  }
}

TEST(GeneralService, EquilibriumExistsAndIsAFixedPoint) {
  std::vector<core::UserParams> users;
  for (int i = 0; i < 60; ++i) {
    core::UserParams u;
    u.arrival_rate = 1.0 + 0.05 * i;
    u.service_rate = 2.0 + 0.03 * i;
    u.offload_latency = 0.2 + 0.01 * i;
    u.energy_local = 1.0;
    u.energy_offload = 0.3;
    users.push_back(u);
  }
  const core::EdgeDelay delay = core::make_reciprocal_delay();
  const PhaseType shape = erlang_phase(2, 1.0);
  const core::PhaseTypeEquilibrium eq =
      core::solve_phase_type_equilibrium(users, shape, delay, 5.0, 1e-4);
  EXPECT_GT(eq.gamma_star, 0.0);
  EXPECT_LT(eq.gamma_star, 1.0);
  EXPECT_NEAR(core::phase_type_best_response(users, shape, delay, 5.0,
                                             eq.gamma_star),
              eq.gamma_star, 5e-3);
  EXPECT_EQ(eq.thresholds.size(), users.size());
}

}  // namespace
}  // namespace mec::queueing

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "mec/common/error.hpp"
#include "mec/io/ascii_plot.hpp"
#include "mec/io/csv.hpp"
#include "mec/io/table.hpp"

namespace mec::io {
namespace {

TEST(TextTableTest, RendersHeaderAndRowsAligned) {
  TextTable t("TABLE I: MFNE");
  t.set_header({"System Setup", "NE"});
  t.add_row({"E[A] < E[S]", "0.13"});
  t.add_row({"E[A] = E[S]", "0.21"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("TABLE I: MFNE"), std::string::npos);
  EXPECT_NE(out.find("System Setup"), std::string::npos);
  EXPECT_NE(out.find("0.21"), std::string::npos);
  // All body lines share the same width.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'T') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(TextTableTest, EnforcesProtocol) {
  TextTable t("x");
  EXPECT_THROW(t.add_row({"a"}), ContractViolation);
  t.set_header({"c1", "c2"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.set_header({}), ContractViolation);
}

TEST(TextTableTest, FormatsDoubles) {
  EXPECT_EQ(TextTable::fmt(0.12345, 2), "0.12");
  EXPECT_EQ(TextTable::fmt(3.0, 4), "3.0000");
}

TEST(CsvTest, RoundTripsColumns) {
  const std::string path = "/tmp/mec_test_io.csv";
  write_csv(path, {"x", "y"}, {{1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,10");
  std::getline(in, line);
  EXPECT_EQ(line, "2,20");
  std::remove(path.c_str());
}

TEST(CsvTest, ValidatesShapeAndPath) {
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}),
               ContractViolation);
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a", "b"}, {{1.0}, {2.0, 3.0}}),
               ContractViolation);
  EXPECT_THROW(
      write_csv("/nonexistent-dir/x.csv", {"a"}, {{1.0}}), RuntimeError);
}

TEST(OutputPathTest, CreatesNestedDirectoriesAndJoins) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "mec_outpath_test";
  fs::remove_all(root);
  const std::string nested = (root / "a" / "b").string();
  const std::string joined = output_path(nested, "file.csv");
  EXPECT_TRUE(fs::is_directory(nested));
  EXPECT_EQ(joined, (fs::path(nested) / "file.csv").string());
  // Idempotent on an existing directory; empty dir passes through.
  EXPECT_EQ(output_path(nested, "file.csv"), joined);
  EXPECT_EQ(output_path("", "bare.csv"), "bare.csv");
  fs::remove_all(root);
}

TEST(OutputPathTest, FailsClearlyWhenTheTargetIsUnusable) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "mec_outpath_bad";
  fs::remove_all(root);
  fs::create_directories(root);
  // A regular file squatting on the directory path: create_directories
  // reports "already exists" without error, so output_path must catch it.
  const fs::path squatter = root / "not_a_dir";
  { std::ofstream out(squatter); }
  EXPECT_THROW((void)output_path(squatter.string(), "x.csv"), RuntimeError);
#ifdef __unix__
  // An unwritable parent (meaningless under root, which bypasses modes).
  if (::geteuid() != 0) {
    fs::permissions(root, fs::perms::owner_read | fs::perms::owner_exec);
    EXPECT_THROW((void)output_path((root / "child").string(), "x.csv"),
                 RuntimeError);
    fs::permissions(root, fs::perms::owner_all);
  }
#endif
  fs::remove_all(root);
}

TEST(LinePlotTest, ContainsGlyphsAndLabels) {
  Series s1{"alpha(x)", {0.0, 1.0, 2.0}, {1.0, 0.5, 0.2}, '*'};
  Series s2{"Q(x)", {0.0, 1.0, 2.0}, {0.0, 0.7, 1.4}, 'o'};
  PlotOptions opt;
  opt.title = "Fig. 2";
  opt.x_label = "x";
  const std::string out =
      line_plot(std::vector<Series>{s1, s2}, opt);
  EXPECT_NE(out.find("Fig. 2"), std::string::npos);
  EXPECT_NE(out.find("alpha(x)"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LinePlotTest, HandlesDegenerateRanges) {
  Series flat{"const", {1.0, 2.0}, {5.0, 5.0}, '#'};
  const std::string out =
      line_plot(std::vector<Series>{flat}, PlotOptions{});
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(LinePlotTest, ValidatesInput) {
  EXPECT_THROW(line_plot(std::vector<Series>{}, PlotOptions{}),
               ContractViolation);
  Series bad{"b", {1.0}, {1.0, 2.0}, '*'};
  EXPECT_THROW(line_plot(std::vector<Series>{bad}, PlotOptions{}),
               ContractViolation);
}

TEST(BarChartTest, DrawsProportionalBars) {
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const std::vector<double> mass{0.2, 0.6, 0.2};
  PlotOptions opt;
  opt.width = 30;
  const std::string out = bar_chart(edges, mass, opt);
  // The 0.6 bin must have the longest bar (30 hashes).
  EXPECT_NE(out.find(std::string(30, '#')), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(BarChartTest, ValidatesShape) {
  EXPECT_THROW(
      bar_chart(std::vector<double>{1.0}, std::vector<double>{0.1, 0.9},
                PlotOptions{}),
      ContractViolation);
}

}  // namespace
}  // namespace mec::io

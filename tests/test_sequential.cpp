// The sequential engine's contract: it stops exactly when the width target
// is met (or the budget runs out), any stopped run replays bit-identically
// as a fixed-R run of the same count, and the paired comparison's repeated
// looks keep the false-decision rate under control via alpha spending.
#include "mec/parallel/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/best_response.hpp"
#include "mec/parallel/replication.hpp"
#include "mec/parallel/thread_pool.hpp"
#include "mec/random/rng.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::parallel {
namespace {

std::vector<core::UserParams> homogeneous(std::size_t n, double a, double s,
                                          double tau = 0.5) {
  std::vector<core::UserParams> users(n);
  for (auto& u : users) {
    u.arrival_rate = a;
    u.service_rate = s;
    u.offload_latency = tau;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  return users;
}

sim::SimulationOptions short_options(std::uint64_t seed = 5) {
  sim::SimulationOptions o;
  o.warmup = 5.0;
  o.horizon = 40.0;
  o.seed = seed;
  o.fixed_gamma = 0.2;
  return o;
}

TEST(MetricSelector, RoundTripsAllNames) {
  for (const Metric m :
       {Metric::kMeanCost, Metric::kMeanQueueLength,
        Metric::kMeanOffloadFraction, Metric::kMeasuredUtilization,
        Metric::kMeanLocalSojourn, Metric::kMeanOffloadDelay}) {
    EXPECT_EQ(parse_metric(to_string(m)), m);
  }
  EXPECT_THROW(parse_metric("p99-vibes"), RuntimeError);
}

TEST(RunUntilConfident, StopsExactlyWhenTheTargetIsMet) {
  const auto users = homogeneous(30, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  const auto delay = core::make_reciprocal_delay();

  SequentialOptions opt;
  opt.target_relative = 0.02;
  opt.min_replications = 2;
  opt.wave = 2;
  opt.max_replications = 128;
  opt.threads = 2;
  const SequentialResult r = run_until_confident(users, 10.0, delay,
                                                 short_options(), xs, opt);
  ASSERT_TRUE(r.target_met);
  ASSERT_GE(r.looks.size(), 1u);
  // The final look satisfies the target...
  const SequentialLook& last = r.looks.back();
  EXPECT_EQ(last.replications, r.replications);
  EXPECT_LE(last.half_width, opt.target_relative * std::fabs(last.mean));
  // ...and no earlier look does (otherwise it would have stopped there).
  for (std::size_t i = 0; i + 1 < r.looks.size(); ++i) {
    EXPECT_GT(r.looks[i].half_width,
              opt.target_relative * std::fabs(r.looks[i].mean))
        << "look " << i << " already met the target but did not stop";
  }
  EXPECT_EQ(r.waves, r.looks.size());
}

TEST(RunUntilConfident, ExhaustsTheBudgetOnAnUnreachableTarget) {
  const auto users = homogeneous(20, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);

  SequentialOptions opt;
  opt.target_relative = 1e-9;  // unreachable in 6 replications
  opt.min_replications = 2;
  opt.wave = 2;
  opt.max_replications = 6;
  opt.threads = 1;
  const SequentialResult r = run_until_confident(
      users, 10.0, core::make_reciprocal_delay(), short_options(), xs, opt);
  EXPECT_FALSE(r.target_met);
  EXPECT_EQ(r.replications, 6u);
  EXPECT_EQ(r.waves, 3u);
  const std::string text = summarize(r, opt.metric);
  EXPECT_NE(text.find("NOT met"), std::string::npos);
}

TEST(RunUntilConfident, StoppedRunReplaysBitIdenticallyAtFixedR) {
  // The replayability contract: whatever R the stopping rule lands on, a
  // fixed-R run with the same base seed reproduces the aggregate exactly —
  // same per-replication seeds, same serial merge order.
  const auto users = homogeneous(35, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  const auto delay = core::make_reciprocal_delay();

  SequentialOptions sq;
  sq.target_relative = 0.05;
  sq.min_replications = 2;
  sq.wave = 3;  // deliberately not a divisor of min so waves are ragged
  sq.max_replications = 64;
  sq.threads = 3;
  const SequentialResult stopped = run_until_confident(
      users, 10.0, delay, short_options(9), xs, sq);

  ReplicationOptions fixed;
  fixed.replications = stopped.replications;
  fixed.threads = 1;  // different thread count on purpose
  const ReplicationResult replay =
      run_replications(users, 10.0, delay, short_options(9), xs, fixed);

  EXPECT_EQ(stopped.aggregate.total_events, replay.total_events);
  const auto expect_metric_eq = [](const MetricSummary& a,
                                   const MetricSummary& b) {
    ASSERT_EQ(a.samples.count(), b.samples.count());
    EXPECT_DOUBLE_EQ(a.samples.mean(), b.samples.mean());
    if (a.samples.count() >= 2) {
      EXPECT_DOUBLE_EQ(a.samples.stddev(), b.samples.stddev());
      EXPECT_DOUBLE_EQ(a.ci.half_width, b.ci.half_width);
    }
    EXPECT_DOUBLE_EQ(a.ci.mean, b.ci.mean);
  };
  expect_metric_eq(stopped.aggregate.mean_cost, replay.mean_cost);
  expect_metric_eq(stopped.aggregate.mean_queue_length,
                   replay.mean_queue_length);
  expect_metric_eq(stopped.aggregate.mean_offload_fraction,
                   replay.mean_offload_fraction);
  expect_metric_eq(stopped.aggregate.measured_utilization,
                   replay.measured_utilization);
  expect_metric_eq(stopped.aggregate.mean_local_sojourn,
                   replay.mean_local_sojourn);
  expect_metric_eq(stopped.aggregate.mean_offload_delay,
                   replay.mean_offload_delay);
}

TEST(RunUntilConfident, AbsoluteAndRelativeTargetsCompose) {
  const auto users = homogeneous(20, 1.5, 2.0);
  const std::vector<double> xs(users.size(), 2.0);
  const auto delay = core::make_reciprocal_delay();

  // A loose relative target alone stops early...
  SequentialOptions loose;
  loose.target_relative = 0.05;
  loose.min_replications = 2;
  loose.wave = 2;
  loose.max_replications = 64;
  loose.threads = 1;
  const SequentialResult early =
      run_until_confident(users, 10.0, delay, short_options(), xs, loose);
  // ...but adding a tight absolute target forces more replications: the
  // conjunction must be at least as demanding as either target alone.
  SequentialOptions both = loose;
  both.target_half_width = 1e-4;
  const SequentialResult late =
      run_until_confident(users, 10.0, delay, short_options(), xs, both);
  EXPECT_GE(late.replications, early.replications);
  if (late.target_met) {
    EXPECT_LE(late.looks.back().half_width, 1e-4);
  }
}

TEST(RunUntilConfident, RejectsAMissingTarget) {
  const auto users = homogeneous(5, 1.0, 2.0);
  const std::vector<double> xs(users.size(), 1.0);
  SequentialOptions opt;  // neither target set
  EXPECT_THROW(
      run_until_confident(users, 10.0, core::make_reciprocal_delay(),
                          short_options(), xs, opt),
      ContractViolation);
}

TEST(CompareSequential, DecidesAClearGapEarly) {
  // Deterministic-gap evaluator: arm a is always 0.5 below arm b with a
  // little common noise.  The comparison must decide "first lower" on the
  // very first look instead of spending the whole budget.
  CompareOptions opt;
  opt.min_replications = 4;
  opt.wave = 8;
  opt.max_replications = 256;
  opt.threads = 2;
  const CompareResult r = compare_sequential(
      [](std::size_t, std::uint64_t seed) {
        random::Xoshiro256 rng(seed);
        const double noise = 0.05 * random::standard_normal(rng);
        return PairedSample{1.0 + noise, 1.5 + noise};
      },
      opt);
  EXPECT_EQ(r.verdict, Verdict::kFirstLower);
  EXPECT_TRUE(r.decided());
  EXPECT_EQ(r.replications, opt.min_replications);
  EXPECT_EQ(r.looks, 1u);
  EXPECT_LT(r.difference.upper(), 0.0);
  EXPECT_NEAR(r.mean_a - r.mean_b, -0.5, 1e-12);
}

TEST(CompareSequential, IsDeterministicAcrossThreadCounts) {
  const auto evaluate = [](std::size_t, std::uint64_t seed) {
    random::Xoshiro256 rng(seed);
    const double noise = random::standard_normal(rng);
    return PairedSample{noise + 0.3 * random::standard_normal(rng), noise};
  };
  CompareOptions opt;
  opt.min_replications = 8;
  opt.wave = 8;
  opt.max_replications = 64;
  opt.threads = 1;
  const CompareResult serial = compare_sequential(evaluate, opt);
  opt.threads = 4;
  const CompareResult parallel = compare_sequential(evaluate, opt);
  EXPECT_EQ(parallel.verdict, serial.verdict);
  EXPECT_EQ(parallel.replications, serial.replications);
  EXPECT_DOUBLE_EQ(parallel.difference.mean, serial.difference.mean);
  EXPECT_DOUBLE_EQ(parallel.difference.half_width,
                   serial.difference.half_width);
}

TEST(CompareSequential, FalseDecisionRateUnderTheNullIsControlled) {
  // Both arms identical in distribution (independent noise, no true gap):
  // over many repetitions, the fraction of runs that reach ANY decision —
  // despite looking repeatedly — must stay near the spending budget
  // alpha = 0.05, nowhere near the uncorrected multiple-looks rate.
  int decided = 0;
  const int trials = 200;
  ThreadPool pool(2);
  for (int t = 0; t < trials; ++t) {
    CompareOptions opt;
    opt.min_replications = 8;
    opt.wave = 8;
    opt.max_replications = 48;  // 6 looks per trial
    opt.base_seed = 0xFACEu + static_cast<std::uint64_t>(t) * 1000003u;
    const CompareResult r = compare_sequential(
        [](std::size_t, std::uint64_t seed) {
          random::Xoshiro256 rng(seed);
          const double a = random::standard_normal(rng);
          const double b = random::standard_normal(rng);
          return PairedSample{a, b};
        },
        opt, &pool);
    decided += r.decided();
  }
  // Binomial(200, 0.05) has sd ~3: 18 failures is > 2.5 sd above the
  // budget; an uncontrolled 6-look procedure at ~0.2 would show ~40.
  EXPECT_LE(decided, 18) << "null rejected in " << decided << "/" << trials;
}

TEST(CompareSequential, CommonRandomNumbersSharpenTheComparison) {
  // With CRN the shared noise cancels in the pairing, so a gap far smaller
  // than the noise floor is still decided within a modest budget.
  CompareOptions opt;
  opt.min_replications = 8;
  opt.wave = 8;
  opt.max_replications = 128;
  opt.threads = 2;
  const CompareResult r = compare_sequential(
      [](std::size_t, std::uint64_t seed) {
        random::Xoshiro256 rng(seed);
        const double noise = random::standard_normal(rng);  // shared, sd 1.0
        const double ia = 0.02 * random::standard_normal(rng);
        const double ib = 0.02 * random::standard_normal(rng);
        return PairedSample{noise + ia, noise + 0.05 + ib};  // gap 0.05
      },
      opt);
  EXPECT_EQ(r.verdict, Verdict::kFirstLower);
  EXPECT_LE(r.replications, opt.max_replications);
}

}  // namespace
}  // namespace mec::parallel

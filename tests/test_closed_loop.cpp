// Closed-loop operation: Algorithm 1 driven by live EWMA measurements
// inside one continuous simulation.
#include "mec/sim/closed_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/empirical_data.hpp"

namespace mec::sim {
namespace {

population::Population sampled(std::size_t n, std::uint64_t seed = 91) {
  return population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, n),
      seed);
}

TEST(ClosedLoop, ConvergesToTheMfneUnderMeasurementNoise) {
  const auto pop = sampled(500);
  const auto& cfg = pop.config;
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  ClosedLoopOptions opt;
  opt.horizon = 600.0;
  opt.update_period = 5.0;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_NEAR(r.final_gamma_hat, star, 0.05);
  // The realized offload rate over the run's tail should be near gamma*;
  // the run-wide measurement includes the transient, so allow more slack.
  EXPECT_NEAR(r.run.measured_utilization, star, 0.1);
}

TEST(ClosedLoop, EpochTraceFollowsAlgorithmOneStructure) {
  const auto pop = sampled(300);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 300.0;
  opt.update_period = 4.0;
  opt.eta0 = 0.2;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  ASSERT_GE(r.epochs.size(), 10u);
  // Epochs land on the broadcast grid.
  EXPECT_DOUBLE_EQ(r.epochs[0].time, 4.0);
  EXPECT_DOUBLE_EQ(r.epochs[1].time, 8.0);
  // Step sizes never grow, and estimates move by at most the current step.
  double prev_eta = opt.eta0;
  double prev_hat = 0.0;
  for (const ClosedLoopEpoch& e : r.epochs) {
    EXPECT_LE(e.eta, prev_eta + 1e-15);
    EXPECT_LE(std::abs(e.gamma_hat - prev_hat), prev_eta + 1e-12);
    EXPECT_GE(e.gamma_measured, 0.0);
    EXPECT_LE(e.gamma_measured, 1.0);
    prev_eta = e.eta;
    prev_hat = e.gamma_hat;
  }
}

TEST(ClosedLoop, AsynchronousGateStillSettles) {
  const auto pop = sampled(400, 92);
  const auto& cfg = pop.config;
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  ClosedLoopOptions opt;
  opt.horizon = 600.0;
  opt.update_gate = core::make_bernoulli_gate(0.8, 3);
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_NEAR(r.final_gamma_hat, star, 0.06);
}

TEST(ClosedLoop, WorksWithEmpiricalServiceTimes) {
  // The practical story: measured (non-exponential) service, live loop.
  auto pop = population::sample_population(
      population::practical_scenario(population::LoadRegime::kBelowService,
                                     300),
      93);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 400.0;
  opt.service = empirical_service(random::synthetic_yolo_processing_times());
  opt.latency = empirical_latency(random::synthetic_wifi_offload_latencies());
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_GT(r.final_gamma_hat, 0.2);
  EXPECT_LT(r.final_gamma_hat, 0.8);
}

TEST(ClosedLoop, ThresholdsFreezeOnceSettled) {
  const auto pop = sampled(200, 94);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 800.0;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  ASSERT_TRUE(r.estimate_settled);
  // Once the estimate settles, devices stop retuning: the tail of the epoch
  // trace must show a constant mean threshold (the horizon is long enough
  // that settling happens well before the end).
  ASSERT_GE(r.epochs.size(), 10u);
  const double settled_mean = r.epochs.back().mean_threshold;
  for (std::size_t i = r.epochs.size() - 5; i < r.epochs.size(); ++i)
    EXPECT_DOUBLE_EQ(r.epochs[i].mean_threshold, settled_mean);
}

TEST(ClosedLoop, RejectsBadOptions) {
  const auto pop = sampled(10, 95);
  ClosedLoopOptions opt;
  opt.update_period = 0.0;
  EXPECT_THROW(run_closed_loop(pop.users, 10.0, pop.config.delay, opt),
               ContractViolation);
  opt = {};
  opt.horizon = 1.0;  // below the update period
  EXPECT_THROW(run_closed_loop(pop.users, 10.0, pop.config.delay, opt),
               ContractViolation);
}

TEST(MutableTroPolicyTest, RetuningChangesDecisions) {
  random::Xoshiro256 rng(7);
  MutableTroPolicy policy(0.0);
  EXPECT_TRUE(policy.offload(0, rng));
  policy.set_threshold(3.0);
  EXPECT_FALSE(policy.offload(2, rng));
  EXPECT_TRUE(policy.offload(3, rng));
  EXPECT_DOUBLE_EQ(policy.threshold(), 3.0);
  EXPECT_THROW(policy.set_threshold(-1.0), ContractViolation);
  EXPECT_NE(policy.describe().find("3"), std::string::npos);
}

}  // namespace
}  // namespace mec::sim

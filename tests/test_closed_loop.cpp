// Closed-loop operation: Algorithm 1 driven by live EWMA measurements
// inside one continuous simulation.
#include "mec/sim/closed_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "mec/common/error.hpp"
#include "mec/core/mfne.hpp"
#include "mec/population/population.hpp"
#include "mec/population/scenario.hpp"
#include "mec/random/empirical_data.hpp"
#include "mec/sim/mec_simulation.hpp"

namespace mec::sim {
namespace {

population::Population sampled(std::size_t n, std::uint64_t seed = 91) {
  return population::sample_population(
      population::theoretical_scenario(population::LoadRegime::kAtService, n),
      seed);
}

TEST(ClosedLoop, ConvergesToTheMfneUnderMeasurementNoise) {
  const auto pop = sampled(500);
  const auto& cfg = pop.config;
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;

  ClosedLoopOptions opt;
  opt.horizon = 600.0;
  opt.update_period = 5.0;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_NEAR(r.final_gamma_hat, star, 0.05);
  // The realized offload rate over the run's tail should be near gamma*;
  // the run-wide measurement includes the transient, so allow more slack.
  EXPECT_NEAR(r.run.measured_utilization, star, 0.1);
}

TEST(ClosedLoop, EpochTraceFollowsAlgorithmOneStructure) {
  const auto pop = sampled(300);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 300.0;
  opt.update_period = 4.0;
  opt.eta0 = 0.2;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  ASSERT_GE(r.epochs.size(), 10u);
  // Epochs land on the broadcast grid.
  EXPECT_DOUBLE_EQ(r.epochs[0].time, 4.0);
  EXPECT_DOUBLE_EQ(r.epochs[1].time, 8.0);
  // Step sizes never grow, and estimates move by at most the current step.
  double prev_eta = opt.eta0;
  double prev_hat = 0.0;
  for (const ClosedLoopEpoch& e : r.epochs) {
    EXPECT_LE(e.eta, prev_eta + 1e-15);
    EXPECT_LE(std::abs(e.gamma_hat - prev_hat), prev_eta + 1e-12);
    EXPECT_GE(e.gamma_measured, 0.0);
    EXPECT_LE(e.gamma_measured, 1.0);
    prev_eta = e.eta;
    prev_hat = e.gamma_hat;
  }
}

TEST(ClosedLoop, AsynchronousGateStillSettles) {
  const auto pop = sampled(400, 92);
  const auto& cfg = pop.config;
  const double star =
      core::solve_mfne(pop.users, cfg.delay, cfg.capacity).gamma_star;
  ClosedLoopOptions opt;
  opt.horizon = 600.0;
  opt.update_gate = core::make_bernoulli_gate(0.8, 3);
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_NEAR(r.final_gamma_hat, star, 0.06);
}

TEST(ClosedLoop, WorksWithEmpiricalServiceTimes) {
  // The practical story: measured (non-exponential) service, live loop.
  auto pop = population::sample_population(
      population::practical_scenario(population::LoadRegime::kBelowService,
                                     300),
      93);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 400.0;
  opt.service = empirical_service(random::synthetic_yolo_processing_times());
  opt.latency = empirical_latency(random::synthetic_wifi_offload_latencies());
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  EXPECT_TRUE(r.estimate_settled);
  EXPECT_GT(r.final_gamma_hat, 0.2);
  EXPECT_LT(r.final_gamma_hat, 0.8);
}

TEST(ClosedLoop, ThresholdsFreezeOnceSettled) {
  const auto pop = sampled(200, 94);
  const auto& cfg = pop.config;
  ClosedLoopOptions opt;
  opt.horizon = 800.0;
  const ClosedLoopResult r =
      run_closed_loop(pop.users, cfg.capacity, cfg.delay, opt);
  ASSERT_TRUE(r.estimate_settled);
  // Once the estimate settles, devices stop retuning: the tail of the epoch
  // trace must show a constant mean threshold (the horizon is long enough
  // that settling happens well before the end).
  ASSERT_GE(r.epochs.size(), 10u);
  const double settled_mean = r.epochs.back().mean_threshold;
  for (std::size_t i = r.epochs.size() - 5; i < r.epochs.size(); ++i)
    EXPECT_DOUBLE_EQ(r.epochs[i].mean_threshold, settled_mean);
}

TEST(ClosedLoop, RejectsBadOptions) {
  const auto pop = sampled(10, 95);
  ClosedLoopOptions opt;
  opt.update_period = 0.0;
  EXPECT_THROW(run_closed_loop(pop.users, 10.0, pop.config.delay, opt),
               ContractViolation);
  opt = {};
  opt.horizon = 1.0;  // below the update period
  EXPECT_THROW(run_closed_loop(pop.users, 10.0, pop.config.delay, opt),
               ContractViolation);
}

TEST(EpochFlush, TrailingEpochsFireThroughTheEndOfTheHorizon) {
  // Regression for the dropped end-of-horizon epochs: callbacks were only
  // fired from inside the event loop, so every broadcast epoch between the
  // last event <= t_end and t_end itself was silently skipped.  With sparse
  // arrivals (mean inter-arrival 20 s vs a 10 s horizon) most epochs — and
  // always the one at exactly t_end, which no continuous arrival time can
  // trigger — fall in that gap.
  std::vector<core::UserParams> users(2);
  for (auto& u : users) {
    u.arrival_rate = 0.05;
    u.service_rate = 1.0;
    u.offload_latency = 0.1;
    u.energy_local = 1.0;
    u.energy_offload = 0.5;
  }
  SimulationOptions o;
  o.warmup = 0.0;
  o.horizon = 10.0;
  o.seed = 123;
  o.fixed_gamma = 0.1;
  o.epoch_period = 2.5;
  std::vector<double> fired;
  o.on_epoch = [&](double now, double gamma) {
    EXPECT_GE(gamma, 0.0);
    fired.push_back(now);
  };
  MecSimulation sim(users, 10.0, core::make_reciprocal_delay(), o);
  sim.run_tro(std::vector<double>(users.size(), 1.0));
  // floor(horizon / epoch_period) epochs: 2.5, 5, 7.5, and 10 (= t_end).
  ASSERT_EQ(fired.size(), 4u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_DOUBLE_EQ(fired[i], 2.5 * static_cast<double>(i + 1));
}

TEST(EpochFlush, EpochCountMatchesTheGridForAnActivePopulation) {
  // Same property under a dense event stream: epochs land exactly on the
  // broadcast grid over warm-up plus horizon, never more, never fewer.
  const auto pop = sampled(50, 96);
  SimulationOptions o;
  o.warmup = 3.0;
  o.horizon = 21.0;
  o.seed = 321;
  o.fixed_gamma = 0.2;
  o.epoch_period = 4.0;
  std::vector<double> fired;
  o.on_epoch = [&](double now, double) { fired.push_back(now); };
  MecSimulation sim(pop.users, pop.config.capacity, pop.config.delay, o);
  sim.run_tro(std::vector<double>(pop.users.size(), 2.0));
  // t_end = 24: epochs at 4, 8, 12, 16, 20, 24.
  ASSERT_EQ(fired.size(), 6u);
  EXPECT_DOUBLE_EQ(fired.back(), 24.0);
}

TEST(MutableTroPolicyTest, RetuningChangesDecisions) {
  random::Xoshiro256 rng(7);
  MutableTroPolicy policy(0.0);
  EXPECT_TRUE(policy.offload(0, rng));
  policy.set_threshold(3.0);
  EXPECT_FALSE(policy.offload(2, rng));
  EXPECT_TRUE(policy.offload(3, rng));
  EXPECT_DOUBLE_EQ(policy.threshold(), 3.0);
  EXPECT_THROW(policy.set_threshold(-1.0), ContractViolation);
  EXPECT_NE(policy.describe().find("3"), std::string::npos);
}

}  // namespace
}  // namespace mec::sim
